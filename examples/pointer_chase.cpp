/**
 * @file
 * Datathreading demo (paper Section 3.2 / Figure 3).
 *
 * Builds a linked structure whose dependent-address chain stays on
 * one node's pages for long runs before migrating, then compares how
 * a DataScalar machine and a traditional machine traverse it. The
 * DataScalar owner fetches consecutive dependent operands locally
 * and pipelines their broadcasts; the traditional system pays a
 * request/response round trip per remote operand.
 *
 * Usage: pointer_chase [run_length_cells]
 */

#include <cstdio>
#include <cstdlib>

#include "driver/driver.hh"
#include "prog/assembler.hh"

using namespace dscalar;
using namespace dscalar::prog::reg;

namespace {

/**
 * Chain over 16 pages: @p run cells of one page, then a hop to the
 * next page — datathread length is directly controlled by @p run.
 */
prog::Program
makeChain(unsigned run)
{
    prog::Program p;
    p.name = "pointer_chase";
    constexpr unsigned pages = 16;
    constexpr unsigned per_page =
        static_cast<unsigned>(prog::pageSize / 8);
    const unsigned cells = pages * per_page;
    Addr heap = p.allocHeap(pages * prog::pageSize);

    // Build one full-cycle permutation: visit pages round-robin,
    // consuming `run` not-yet-linked cells (stride 5 for fresh
    // lines) from each page per visit.
    std::vector<unsigned> order;
    order.reserve(cells);
    std::vector<unsigned> consumed(pages, 0);
    unsigned page = 0;
    while (order.size() < cells) {
        for (unsigned k = 0; k < run && consumed[page] < per_page;
             ++k) {
            unsigned off =
                (consumed[page] * 5) % per_page +
                (consumed[page] * 5) / per_page;
            order.push_back(page * per_page + off);
            ++consumed[page];
        }
        page = (page + 1) % pages;
    }
    for (unsigned i = 0; i < cells; ++i) {
        unsigned next = order[(i + 1) % cells];
        p.poke64(heap + 8ull * order[i], heap + 8ull * next);
    }

    prog::Assembler a(p);
    a.la(s1, heap);
    a.li(s0, 30000);
    a.label("loop");
    a.ld(s1, s1, 0);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.add(a0, s1, zero);
    a.syscall(isa::Syscall::PrintInt);
    a.syscall(isa::Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned run = argc > 1 ? std::atoi(argv[1]) : 0;

    std::printf("datathread-length sweep: cycles per pointer hop\n");
    std::printf("%-18s %12s %12s %12s\n", "cells-per-page-run",
                "DataScalar-4", "traditional", "DS advantage");

    std::vector<unsigned> runs =
        run ? std::vector<unsigned>{run}
            : std::vector<unsigned>{1, 4, 16, 64, 256};
    for (unsigned r : runs) {
        prog::Program p = makeChain(r);
        core::SimConfig cfg = driver::paperConfig();
        cfg.numNodes = 4;
        auto ds = driver::runDataScalar(p, cfg);
        auto trad = driver::runTraditional(p, cfg);
        double hops = static_cast<double>(ds.instructions) / 3.0;
        double ds_cyc = ds.cycles / hops;
        double trad_cyc = trad.cycles / hops;
        std::printf("%-18u %12.2f %12.2f %11.2fx\n", r, ds_cyc,
                    trad_cyc, trad_cyc / ds_cyc);
    }

    std::printf("\nlonger same-page runs let the owning node fetch "
                "dependent operands locally and pipeline their "
                "broadcasts (Section 3.2); the traditional system "
                "pays two serialized crossings per remote hop "
                "regardless\n");
    return 0;
}
