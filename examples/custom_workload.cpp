/**
 * @file
 * Bring-your-own-kernel walkthrough: define a workload with the
 * assembler DSL, then run the paper's full experiment methodology on
 * it — ESP traffic study (Table 1), datathread measurement
 * (Table 2), and the five-system timing comparison (Figure 7) — in
 * one sitting.
 *
 * The kernel here is a banded sparse matrix-vector product, a shape
 * the paper's benchmark set does not include.
 */

#include <cstdio>

#include "core/distribution.hh"
#include "driver/driver.hh"
#include "prog/assembler.hh"
#include "workloads/workloads.hh"

using namespace dscalar;
using namespace dscalar::prog::reg;

namespace {

/** y = A*x for a banded matrix stored by diagonals. */
prog::Program
makeSpmv()
{
    prog::Program p;
    p.name = "spmv_band";
    constexpr std::uint32_t n = 24 * 1024;  // vector length
    constexpr unsigned bands = 5;

    // allocArray staggers bases so the six streams do not collide
    // in the direct-mapped L1 (each diagonal is a multiple of 16 KB
    // long; without padding every row's five diagonal loads would
    // map to one set).
    Addr x = workloads::allocArray(p, n * 8);
    Addr y = workloads::allocArray(p, n * 8);
    Addr diags = workloads::allocArray(p, bands * n * 8 + bands * 1312);
    const std::uint64_t diag_stride = n * 8 + 1312;

    for (std::uint32_t i = 0; i < n; i += 2)
        p.pokeDouble(x + 8ull * i, 1.0 + (i % 11) * 0.125);
    for (unsigned b = 0; b < bands; ++b)
        for (std::uint32_t i = 0; i < n; i += 3)
            p.pokeDouble(diags + b * diag_stride + 8ull * i,
                         0.5 + (i % 7) * 0.0625);

    prog::Assembler a(p);
    a.la(s1, x);
    a.la(s2, y);
    a.la(s3, diags);
    a.li(s0, n - 4);
    a.li(s7, 2); // row index (skip the band edges)

    a.label("row");
    a.slli(t0, s7, 3);
    a.add(t1, s1, t0);        // &x[i]
    a.add(t2, s3, t0);        // &diag0[i]
    a.li(t7, 0);
    for (unsigned b = 0; b < 5; ++b) {
        auto xoff = static_cast<std::int32_t>(8 * b) - 16;
        // advance t2 to diagonal b (staggered stride keeps the
        // streams set-disjoint)
        if (b > 0) {
            a.li(t6, static_cast<std::int32_t>(diag_stride));
            a.add(t2, t2, t6);
        }
        a.ld(t3, t2, 0);
        a.ld(t4, t1, xoff);
        a.fmul(t3, t3, t4);
        a.fadd(t7, t7, t3);
    }
    a.add(t5, s2, t0);
    a.sd(t7, t5, 0);
    a.addi(s7, s7, 1);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "row");

    a.ld(t0, s2, 8 * 100);
    a.cvtfi(a0, t0);
    a.syscall(isa::Syscall::PrintInt);
    a.syscall(isa::Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace

int
main()
{
    prog::Program p = makeSpmv();
    constexpr InstSeq budget = 200'000;

    std::printf("custom workload: %s "
                "(banded SpMV, %zu pages)\n\n",
                p.name.c_str(), p.touchedPages().size());

    // 1. Table 1 methodology: how much traffic would ESP remove?
    driver::TrafficResult t = driver::measureEspTraffic(p, budget);
    std::printf("ESP traffic study: %.0f%% of bytes, %.0f%% of "
                "transactions eliminated\n",
                t.bytesEliminated() * 100.0,
                t.transactionsEliminated() * 100.0);

    // 2. Table 2 methodology: datathread lengths at 4 nodes.
    core::DistributionConfig dist;
    dist.numNodes = 4;
    dist.blockPages = 4;
    core::ReplicationReport rep;
    mem::PageTable ptable =
        core::buildPageTable(p, dist, nullptr, &rep);
    driver::DatathreadResult d =
        driver::measureDatathreads(p, ptable, rep, budget);
    std::printf("datathreads (4 nodes, 4-page blocks): "
                "all %.1f, data %.1f\n\n",
                d.meanAll, d.meanData);

    // 3. Figure 7 methodology: the five systems.
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = budget;
    auto perfect = driver::runPerfect(p, cfg);
    cfg.numNodes = 2;
    auto ds2 = driver::runDataScalar(p, cfg);
    auto t2 = driver::runTraditional(p, cfg);
    cfg.numNodes = 4;
    auto ds4 = driver::runDataScalar(p, cfg);
    auto t4 = driver::runTraditional(p, cfg);

    std::printf("%-26s %8s\n", "system", "IPC");
    std::printf("%-26s %8.3f\n", "perfect data cache", perfect.ipc);
    std::printf("%-26s %8.3f\n", "DataScalar (2 nodes)", ds2.ipc);
    std::printf("%-26s %8.3f\n", "DataScalar (4 nodes)", ds4.ipc);
    std::printf("%-26s %8.3f\n", "traditional (1/2)", t2.ipc);
    std::printf("%-26s %8.3f\n", "traditional (1/4)", t4.ipc);
    std::printf("\nDataScalar vs traditional: %.2fx at 2 nodes, "
                "%.2fx at 4 nodes\n",
                ds2.ipc / t2.ipc, ds4.ipc / t4.ipc);
    std::printf("\nreading the result: six interleaved streams give "
                "SpMV datathreads of ~1 (see above) -- DataScalar's "
                "weakest regime, like the paper's 2-node mgrid/"
                "turb3d losses. It still wins once the traditional "
                "system holds only 1/4 of memory on-chip.\n");
    return 0;
}
