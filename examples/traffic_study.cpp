/**
 * @file
 * ESP traffic study on any registered workload (the Table 1
 * methodology as a reusable tool).
 *
 * Usage: traffic_study [workload] [max_insts]
 *   workload   one of the 14 registered substitutes
 *              (default compress_s); "list" prints the registry.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "compress_s";
    if (name == "list") {
        stats::Table t({"name", "SPEC95", "kind", "behaviour"});
        for (const auto &w : workloads::allWorkloads())
            t.addRow({w.name, w.spec, w.kind, w.desc});
        t.print(std::cout);
        return 0;
    }
    InstSeq budget =
        argc > 2 ? static_cast<InstSeq>(std::atoll(argv[2]))
                 : 1'000'000;

    const auto &w = workloads::findWorkload(name);
    prog::Program p = w.build(1);
    std::printf("workload: %s (substitutes SPEC95 %s)\n",
                p.name.c_str(), w.spec);
    std::printf("  %s\n\n", w.desc);

    driver::TrafficResult t = driver::measureEspTraffic(p, budget);

    std::printf("off-chip traffic through a 64KB/2-way/32B "
                "write-back cache:\n");
    std::printf("  requests:    %10llu msgs %10llu bytes\n",
                (unsigned long long)t.requests,
                (unsigned long long)t.requestBytes);
    std::printf("  responses:   %10llu msgs %10llu bytes\n",
                (unsigned long long)t.responses,
                (unsigned long long)t.responseBytes);
    std::printf("  writes:      %10llu msgs %10llu bytes\n",
                (unsigned long long)t.writeBacks,
                (unsigned long long)t.writeBackBytes);
    std::printf("\nESP (DataScalar) eliminates requests and writes "
                "entirely:\n");
    std::printf("  bytes eliminated:        %5.1f%%\n",
                t.bytesEliminated() * 100.0);
    std::printf("  transactions eliminated: %5.1f%%\n",
                t.transactionsEliminated() * 100.0);
    return 0;
}
