/**
 * @file
 * Massive Memory Machine demo: synchronous ESP on arbitrary
 * reference strings (the execution model DataScalar generalizes —
 * paper Section 2, Figure 1).
 *
 * Usage: mmm_demo [owners]
 *   owners  digit string assigning each referenced word to a
 *           processor, e.g.\ "000011100" (default: the paper's
 *           Figure 1 string).
 */

#include <cstdio>
#include <cstring>

#include "baseline/mmm.hh"

using namespace dscalar;

int
main(int argc, char **argv)
{
    const char *digits = argc > 1 ? argv[1] : "000011100";
    std::vector<NodeId> owners;
    for (const char *c = digits; *c; ++c) {
        if (*c < '0' || *c > '9') {
            std::fprintf(stderr, "owners must be digits\n");
            return 1;
        }
        owners.push_back(static_cast<NodeId>(*c - '0'));
    }

    baseline::MmmResult r = baseline::runMmmEsp(owners);

    std::printf("synchronous ESP timeline (lead change penalty %u "
                "cycles):\n\n", 3);
    std::printf("ref  owner  cycle\n");
    std::printf("-----------------\n");
    for (std::size_t i = 0; i < owners.size(); ++i) {
        std::printf("w%-3zu %5u  %5llu%s\n", i + 1, owners[i],
                    (unsigned long long)r.receiveTime[i],
                    (i > 0 && owners[i] != owners[i - 1])
                        ? "  <- lead change"
                        : "");
    }
    std::printf("\ntotal: %llu cycles, %u lead changes, "
                "datathreads:",
                (unsigned long long)r.totalCycles, r.leadChanges);
    for (unsigned len : r.threadLengths)
        std::printf(" %u", len);
    std::printf("\n");

    auto cross = baseline::chainCrossings(owners);
    std::printf("\nif these references were a dependent chain:\n");
    std::printf("  ESP serialized off-chip crossings:         %u\n",
                cross.dataScalar);
    std::printf("  request/response crossings (all remote):   %u\n",
                cross.traditional);
    return 0;
}
