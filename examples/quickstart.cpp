/**
 * @file
 * Quickstart: assemble a small program with the DSL, run it on a
 * two-node DataScalar system, the traditional baseline, and the
 * perfect-cache upper bound, and print what happened.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "driver/driver.hh"
#include "func/func_sim.hh"
#include "prog/assembler.hh"

using namespace dscalar;
using namespace dscalar::prog::reg;

namespace {

/**
 * A toy kernel: sum a 64 KB array, then scatter increments into a
 * second array — enough data traffic to show the systems diverging.
 */
prog::Program
makeProgram()
{
    prog::Program p;
    p.name = "quickstart";
    prog::Assembler a(p);

    constexpr std::uint32_t words = 16 * 1024;
    Addr src = p.allocGlobal(words * 4);
    Addr dst = p.allocGlobal(words * 4);
    for (std::uint32_t i = 0; i < words; ++i)
        p.poke32(src + 4ull * i, i * 3 + 1);

    a.la(s1, src);
    a.la(s2, dst);
    a.li(s3, 0);        // sum
    a.li(s0, words);

    a.label("loop");
    a.lw(t0, s1, 0);
    a.add(s3, s3, t0);
    a.andi(t1, t0, (words - 1) & ~3);
    a.add(t2, s2, t1);
    a.lw(t3, t2, 0);
    a.add(t3, t3, t0);
    a.sw(t3, t2, 0);
    a.addi(s1, s1, 4);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");

    a.li(t0, 0xfffff);
    a.and_(a0, s3, t0);
    a.syscall(isa::Syscall::PrintInt);
    a.syscall(isa::Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace

int
main()
{
    prog::Program program = makeProgram();

    // 1. Functional run: the architectural reference.
    func::FuncSim ref(program);
    ref.run();
    std::printf("functional output: %s", ref.output().c_str());
    std::printf("instructions: %llu\n\n",
                (unsigned long long)ref.retired());

    // 2. Timing runs with the paper's configuration.
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;

    core::RunResult perfect = driver::runPerfect(program, cfg);
    core::RunResult ds = driver::runDataScalar(program, cfg);
    core::RunResult trad = driver::runTraditional(program, cfg);

    std::printf("%-28s %10s %8s\n", "system", "cycles", "IPC");
    std::printf("%-28s %10llu %8.3f\n", "perfect data cache",
                (unsigned long long)perfect.cycles, perfect.ipc);
    std::printf("%-28s %10llu %8.3f\n", "DataScalar (2 nodes)",
                (unsigned long long)ds.cycles, ds.ipc);
    std::printf("%-28s %10llu %8.3f\n", "traditional (1/2 on-chip)",
                (unsigned long long)trad.cycles, trad.ipc);
    return 0;
}
