/**
 * @file
 * Observability demo: trace ESP protocol events (broadcasts,
 * BSHR wakes/buffers/squashes) for a tiny run and print the full
 * per-node statistics dump.
 *
 * Usage: protocol_trace [max_events]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "prog/assembler.hh"

using namespace dscalar;
using namespace dscalar::prog::reg;

namespace {

prog::Program
tinyKernel()
{
    prog::Program p;
    p.name = "trace_demo";
    Addr g = p.allocGlobal(4 * prog::pageSize);
    for (Addr off = 0; off < 4 * prog::pageSize; off += 8)
        p.poke64(g + off, off / 8);

    prog::Assembler a(p);
    a.la(s1, g);
    a.li(s2, 0);
    a.li(s0, 512);
    a.label("loop");
    a.ld(t0, s1, 0);
    a.add(s2, s2, t0);
    a.addi(s1, s1, 64); // one line per access
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.add(a0, s2, zero);
    a.syscall(isa::Syscall::PrintInt);
    a.syscall(isa::Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned max_events = argc > 1 ? std::atoi(argv[1]) : 24;

    prog::Program p = tinyKernel();
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));

    std::ostringstream trace;
    TextTraceSink sink(trace);
    sys.setTraceSink(&sink);
    sys.run();

    std::printf("first %u protocol events:\n", max_events);
    std::istringstream lines(trace.str());
    std::string line;
    for (unsigned i = 0; i < max_events && std::getline(lines, line);
         ++i) {
        std::printf("  %s\n", line.c_str());
    }

    std::printf("\nfull statistics dump:\n");
    sys.dumpStats(std::cout);
    return 0;
}
