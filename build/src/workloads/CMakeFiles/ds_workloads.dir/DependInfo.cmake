
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/applu.cc" "src/workloads/CMakeFiles/ds_workloads.dir/applu.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/applu.cc.o.d"
  "/root/repo/src/workloads/compress.cc" "src/workloads/CMakeFiles/ds_workloads.dir/compress.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/compress.cc.o.d"
  "/root/repo/src/workloads/fpppp.cc" "src/workloads/CMakeFiles/ds_workloads.dir/fpppp.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/fpppp.cc.o.d"
  "/root/repo/src/workloads/gcc.cc" "src/workloads/CMakeFiles/ds_workloads.dir/gcc.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/gcc.cc.o.d"
  "/root/repo/src/workloads/go.cc" "src/workloads/CMakeFiles/ds_workloads.dir/go.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/go.cc.o.d"
  "/root/repo/src/workloads/hydro2d.cc" "src/workloads/CMakeFiles/ds_workloads.dir/hydro2d.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/hydro2d.cc.o.d"
  "/root/repo/src/workloads/li.cc" "src/workloads/CMakeFiles/ds_workloads.dir/li.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/li.cc.o.d"
  "/root/repo/src/workloads/m88ksim.cc" "src/workloads/CMakeFiles/ds_workloads.dir/m88ksim.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/m88ksim.cc.o.d"
  "/root/repo/src/workloads/mgrid.cc" "src/workloads/CMakeFiles/ds_workloads.dir/mgrid.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/mgrid.cc.o.d"
  "/root/repo/src/workloads/parallel.cc" "src/workloads/CMakeFiles/ds_workloads.dir/parallel.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/parallel.cc.o.d"
  "/root/repo/src/workloads/perl.cc" "src/workloads/CMakeFiles/ds_workloads.dir/perl.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/perl.cc.o.d"
  "/root/repo/src/workloads/swim.cc" "src/workloads/CMakeFiles/ds_workloads.dir/swim.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/swim.cc.o.d"
  "/root/repo/src/workloads/tomcatv.cc" "src/workloads/CMakeFiles/ds_workloads.dir/tomcatv.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/tomcatv.cc.o.d"
  "/root/repo/src/workloads/turb3d.cc" "src/workloads/CMakeFiles/ds_workloads.dir/turb3d.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/turb3d.cc.o.d"
  "/root/repo/src/workloads/wave5.cc" "src/workloads/CMakeFiles/ds_workloads.dir/wave5.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/wave5.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/ds_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prog/CMakeFiles/ds_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ds_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
