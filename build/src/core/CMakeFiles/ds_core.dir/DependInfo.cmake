
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bshr.cc" "src/core/CMakeFiles/ds_core.dir/bshr.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/bshr.cc.o.d"
  "/root/repo/src/core/datascalar.cc" "src/core/CMakeFiles/ds_core.dir/datascalar.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/datascalar.cc.o.d"
  "/root/repo/src/core/distribution.cc" "src/core/CMakeFiles/ds_core.dir/distribution.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/distribution.cc.o.d"
  "/root/repo/src/core/node.cc" "src/core/CMakeFiles/ds_core.dir/node.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/node.cc.o.d"
  "/root/repo/src/core/result_comm.cc" "src/core/CMakeFiles/ds_core.dir/result_comm.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/result_comm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ds_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/ds_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ds_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/ds_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/ds_func.dir/DependInfo.cmake"
  "/root/repo/build/src/ooo/CMakeFiles/ds_ooo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
