file(REMOVE_RECURSE
  "CMakeFiles/ds_core.dir/bshr.cc.o"
  "CMakeFiles/ds_core.dir/bshr.cc.o.d"
  "CMakeFiles/ds_core.dir/datascalar.cc.o"
  "CMakeFiles/ds_core.dir/datascalar.cc.o.d"
  "CMakeFiles/ds_core.dir/distribution.cc.o"
  "CMakeFiles/ds_core.dir/distribution.cc.o.d"
  "CMakeFiles/ds_core.dir/node.cc.o"
  "CMakeFiles/ds_core.dir/node.cc.o.d"
  "CMakeFiles/ds_core.dir/result_comm.cc.o"
  "CMakeFiles/ds_core.dir/result_comm.cc.o.d"
  "libds_core.a"
  "libds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
