file(REMOVE_RECURSE
  "CMakeFiles/ds_mem.dir/cache.cc.o"
  "CMakeFiles/ds_mem.dir/cache.cc.o.d"
  "CMakeFiles/ds_mem.dir/main_memory.cc.o"
  "CMakeFiles/ds_mem.dir/main_memory.cc.o.d"
  "CMakeFiles/ds_mem.dir/page_table.cc.o"
  "CMakeFiles/ds_mem.dir/page_table.cc.o.d"
  "CMakeFiles/ds_mem.dir/phys_mem.cc.o"
  "CMakeFiles/ds_mem.dir/phys_mem.cc.o.d"
  "libds_mem.a"
  "libds_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
