# Empty dependencies file for ds_mem.
# This may be replaced when dependencies are built.
