file(REMOVE_RECURSE
  "libds_mem.a"
)
