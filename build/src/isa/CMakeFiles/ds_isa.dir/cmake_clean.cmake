file(REMOVE_RECURSE
  "CMakeFiles/ds_isa.dir/instruction.cc.o"
  "CMakeFiles/ds_isa.dir/instruction.cc.o.d"
  "CMakeFiles/ds_isa.dir/opcodes.cc.o"
  "CMakeFiles/ds_isa.dir/opcodes.cc.o.d"
  "libds_isa.a"
  "libds_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
