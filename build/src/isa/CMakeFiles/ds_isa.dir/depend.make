# Empty dependencies file for ds_isa.
# This may be replaced when dependencies are built.
