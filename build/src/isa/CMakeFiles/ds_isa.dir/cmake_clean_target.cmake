file(REMOVE_RECURSE
  "libds_isa.a"
)
