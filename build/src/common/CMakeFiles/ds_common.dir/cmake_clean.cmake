file(REMOVE_RECURSE
  "CMakeFiles/ds_common.dir/logging.cc.o"
  "CMakeFiles/ds_common.dir/logging.cc.o.d"
  "libds_common.a"
  "libds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
