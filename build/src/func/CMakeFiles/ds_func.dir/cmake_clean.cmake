file(REMOVE_RECURSE
  "CMakeFiles/ds_func.dir/func_sim.cc.o"
  "CMakeFiles/ds_func.dir/func_sim.cc.o.d"
  "libds_func.a"
  "libds_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
