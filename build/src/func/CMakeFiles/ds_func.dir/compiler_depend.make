# Empty compiler generated dependencies file for ds_func.
# This may be replaced when dependencies are built.
