file(REMOVE_RECURSE
  "libds_func.a"
)
