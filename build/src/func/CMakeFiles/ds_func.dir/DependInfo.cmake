
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/func/func_sim.cc" "src/func/CMakeFiles/ds_func.dir/func_sim.cc.o" "gcc" "src/func/CMakeFiles/ds_func.dir/func_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ds_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/ds_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ds_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
