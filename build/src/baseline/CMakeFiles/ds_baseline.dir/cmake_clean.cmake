file(REMOVE_RECURSE
  "CMakeFiles/ds_baseline.dir/mmm.cc.o"
  "CMakeFiles/ds_baseline.dir/mmm.cc.o.d"
  "CMakeFiles/ds_baseline.dir/perfect.cc.o"
  "CMakeFiles/ds_baseline.dir/perfect.cc.o.d"
  "CMakeFiles/ds_baseline.dir/spmd.cc.o"
  "CMakeFiles/ds_baseline.dir/spmd.cc.o.d"
  "CMakeFiles/ds_baseline.dir/traditional.cc.o"
  "CMakeFiles/ds_baseline.dir/traditional.cc.o.d"
  "libds_baseline.a"
  "libds_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
