
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prog/asm_parser.cc" "src/prog/CMakeFiles/ds_prog.dir/asm_parser.cc.o" "gcc" "src/prog/CMakeFiles/ds_prog.dir/asm_parser.cc.o.d"
  "/root/repo/src/prog/assembler.cc" "src/prog/CMakeFiles/ds_prog.dir/assembler.cc.o" "gcc" "src/prog/CMakeFiles/ds_prog.dir/assembler.cc.o.d"
  "/root/repo/src/prog/layout.cc" "src/prog/CMakeFiles/ds_prog.dir/layout.cc.o" "gcc" "src/prog/CMakeFiles/ds_prog.dir/layout.cc.o.d"
  "/root/repo/src/prog/program.cc" "src/prog/CMakeFiles/ds_prog.dir/program.cc.o" "gcc" "src/prog/CMakeFiles/ds_prog.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ds_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
