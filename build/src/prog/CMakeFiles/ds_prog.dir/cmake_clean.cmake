file(REMOVE_RECURSE
  "CMakeFiles/ds_prog.dir/asm_parser.cc.o"
  "CMakeFiles/ds_prog.dir/asm_parser.cc.o.d"
  "CMakeFiles/ds_prog.dir/assembler.cc.o"
  "CMakeFiles/ds_prog.dir/assembler.cc.o.d"
  "CMakeFiles/ds_prog.dir/layout.cc.o"
  "CMakeFiles/ds_prog.dir/layout.cc.o.d"
  "CMakeFiles/ds_prog.dir/program.cc.o"
  "CMakeFiles/ds_prog.dir/program.cc.o.d"
  "libds_prog.a"
  "libds_prog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
