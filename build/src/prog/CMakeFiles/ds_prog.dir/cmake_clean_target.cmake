file(REMOVE_RECURSE
  "libds_prog.a"
)
