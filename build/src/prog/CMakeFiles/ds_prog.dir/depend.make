# Empty dependencies file for ds_prog.
# This may be replaced when dependencies are built.
