file(REMOVE_RECURSE
  "CMakeFiles/ds_interconnect.dir/bus.cc.o"
  "CMakeFiles/ds_interconnect.dir/bus.cc.o.d"
  "CMakeFiles/ds_interconnect.dir/ring.cc.o"
  "CMakeFiles/ds_interconnect.dir/ring.cc.o.d"
  "libds_interconnect.a"
  "libds_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
