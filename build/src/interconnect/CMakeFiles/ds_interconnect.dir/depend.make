# Empty dependencies file for ds_interconnect.
# This may be replaced when dependencies are built.
