file(REMOVE_RECURSE
  "libds_interconnect.a"
)
