# Empty compiler generated dependencies file for ds_driver.
# This may be replaced when dependencies are built.
