file(REMOVE_RECURSE
  "libds_driver.a"
)
