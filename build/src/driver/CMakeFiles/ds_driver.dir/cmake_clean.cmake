file(REMOVE_RECURSE
  "CMakeFiles/ds_driver.dir/driver.cc.o"
  "CMakeFiles/ds_driver.dir/driver.cc.o.d"
  "libds_driver.a"
  "libds_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
