# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("isa")
subdirs("prog")
subdirs("mem")
subdirs("interconnect")
subdirs("func")
subdirs("ooo")
subdirs("core")
subdirs("baseline")
subdirs("workloads")
subdirs("driver")
