# Empty compiler generated dependencies file for ds_ooo.
# This may be replaced when dependencies are built.
