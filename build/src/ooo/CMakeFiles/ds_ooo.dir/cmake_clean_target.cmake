file(REMOVE_RECURSE
  "libds_ooo.a"
)
