file(REMOVE_RECURSE
  "CMakeFiles/ds_ooo.dir/core.cc.o"
  "CMakeFiles/ds_ooo.dir/core.cc.o.d"
  "CMakeFiles/ds_ooo.dir/oracle_stream.cc.o"
  "CMakeFiles/ds_ooo.dir/oracle_stream.cc.o.d"
  "libds_ooo.a"
  "libds_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
