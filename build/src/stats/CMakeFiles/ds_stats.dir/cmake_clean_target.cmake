file(REMOVE_RECURSE
  "libds_stats.a"
)
