# Empty compiler generated dependencies file for ds_stats.
# This may be replaced when dependencies are built.
