file(REMOVE_RECURSE
  "CMakeFiles/ds_stats.dir/stats.cc.o"
  "CMakeFiles/ds_stats.dir/stats.cc.o.d"
  "CMakeFiles/ds_stats.dir/table.cc.o"
  "CMakeFiles/ds_stats.dir/table.cc.o.d"
  "libds_stats.a"
  "libds_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
