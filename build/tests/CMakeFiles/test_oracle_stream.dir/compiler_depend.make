# Empty compiler generated dependencies file for test_oracle_stream.
# This may be replaced when dependencies are built.
