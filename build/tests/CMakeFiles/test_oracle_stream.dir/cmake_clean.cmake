file(REMOVE_RECURSE
  "CMakeFiles/test_oracle_stream.dir/test_oracle_stream.cc.o"
  "CMakeFiles/test_oracle_stream.dir/test_oracle_stream.cc.o.d"
  "test_oracle_stream"
  "test_oracle_stream.pdb"
  "test_oracle_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
