file(REMOVE_RECURSE
  "CMakeFiles/test_bshr.dir/test_bshr.cc.o"
  "CMakeFiles/test_bshr.dir/test_bshr.cc.o.d"
  "test_bshr"
  "test_bshr.pdb"
  "test_bshr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bshr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
