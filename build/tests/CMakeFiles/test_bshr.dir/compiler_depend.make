# Empty compiler generated dependencies file for test_bshr.
# This may be replaced when dependencies are built.
