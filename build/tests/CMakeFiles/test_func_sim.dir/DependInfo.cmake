
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_func_sim.cc" "tests/CMakeFiles/test_func_sim.dir/test_func_sim.cc.o" "gcc" "tests/CMakeFiles/test_func_sim.dir/test_func_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/ds_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ds_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/ds_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/ooo/CMakeFiles/ds_ooo.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/ds_func.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ds_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/ds_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ds_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
