file(REMOVE_RECURSE
  "CMakeFiles/test_smoke_matrix.dir/test_smoke_matrix.cc.o"
  "CMakeFiles/test_smoke_matrix.dir/test_smoke_matrix.cc.o.d"
  "test_smoke_matrix"
  "test_smoke_matrix.pdb"
  "test_smoke_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoke_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
