# Empty dependencies file for test_smoke_matrix.
# This may be replaced when dependencies are built.
