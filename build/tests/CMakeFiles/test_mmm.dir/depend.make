# Empty dependencies file for test_mmm.
# This may be replaced when dependencies are built.
