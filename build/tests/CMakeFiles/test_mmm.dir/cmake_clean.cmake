file(REMOVE_RECURSE
  "CMakeFiles/test_mmm.dir/test_mmm.cc.o"
  "CMakeFiles/test_mmm.dir/test_mmm.cc.o.d"
  "test_mmm"
  "test_mmm.pdb"
  "test_mmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
