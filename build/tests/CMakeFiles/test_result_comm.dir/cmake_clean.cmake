file(REMOVE_RECURSE
  "CMakeFiles/test_result_comm.dir/test_result_comm.cc.o"
  "CMakeFiles/test_result_comm.dir/test_result_comm.cc.o.d"
  "test_result_comm"
  "test_result_comm.pdb"
  "test_result_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_result_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
