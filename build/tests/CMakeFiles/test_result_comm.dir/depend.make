# Empty dependencies file for test_result_comm.
# This may be replaced when dependencies are built.
