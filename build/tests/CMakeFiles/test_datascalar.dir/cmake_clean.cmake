file(REMOVE_RECURSE
  "CMakeFiles/test_datascalar.dir/test_datascalar.cc.o"
  "CMakeFiles/test_datascalar.dir/test_datascalar.cc.o.d"
  "test_datascalar"
  "test_datascalar.pdb"
  "test_datascalar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datascalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
