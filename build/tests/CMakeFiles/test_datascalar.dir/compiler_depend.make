# Empty compiler generated dependencies file for test_datascalar.
# This may be replaced when dependencies are built.
