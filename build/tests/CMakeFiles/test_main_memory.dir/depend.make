# Empty dependencies file for test_main_memory.
# This may be replaced when dependencies are built.
