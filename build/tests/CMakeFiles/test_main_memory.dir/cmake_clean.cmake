file(REMOVE_RECURSE
  "CMakeFiles/test_main_memory.dir/test_main_memory.cc.o"
  "CMakeFiles/test_main_memory.dir/test_main_memory.cc.o.d"
  "test_main_memory"
  "test_main_memory.pdb"
  "test_main_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_main_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
