# Empty compiler generated dependencies file for dsrun.
# This may be replaced when dependencies are built.
