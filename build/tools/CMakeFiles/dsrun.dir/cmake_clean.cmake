file(REMOVE_RECURSE
  "CMakeFiles/dsrun.dir/dsrun.cc.o"
  "CMakeFiles/dsrun.dir/dsrun.cc.o.d"
  "dsrun"
  "dsrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
