# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(dsrun_list "/root/repo/build/tools/dsrun" "--list")
set_tests_properties(dsrun_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(dsrun_func "/root/repo/build/tools/dsrun" "--max-insts=20000" "compress_s")
set_tests_properties(dsrun_func PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(dsrun_datascalar "/root/repo/build/tools/dsrun" "--system=datascalar" "--nodes=2" "--max-insts=20000" "--stats" "compress_s")
set_tests_properties(dsrun_datascalar PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(dsrun_traditional "/root/repo/build/tools/dsrun" "--system=traditional" "--nodes=4" "--max-insts=20000" "go_s")
set_tests_properties(dsrun_traditional PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(dsrun_ring "/root/repo/build/tools/dsrun" "--system=datascalar" "--nodes=4" "--ring" "--max-insts=20000" "wave5_s")
set_tests_properties(dsrun_ring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(dsrun_usage "/root/repo/build/tools/dsrun")
set_tests_properties(dsrun_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
