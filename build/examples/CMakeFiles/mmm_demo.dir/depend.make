# Empty dependencies file for mmm_demo.
# This may be replaced when dependencies are built.
