file(REMOVE_RECURSE
  "CMakeFiles/mmm_demo.dir/mmm_demo.cpp.o"
  "CMakeFiles/mmm_demo.dir/mmm_demo.cpp.o.d"
  "mmm_demo"
  "mmm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
