file(REMOVE_RECURSE
  "CMakeFiles/table2_datathreads.dir/table2_datathreads.cc.o"
  "CMakeFiles/table2_datathreads.dir/table2_datathreads.cc.o.d"
  "table2_datathreads"
  "table2_datathreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_datathreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
