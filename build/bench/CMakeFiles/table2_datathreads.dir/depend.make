# Empty dependencies file for table2_datathreads.
# This may be replaced when dependencies are built.
