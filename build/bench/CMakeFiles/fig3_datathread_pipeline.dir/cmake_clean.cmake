file(REMOVE_RECURSE
  "CMakeFiles/fig3_datathread_pipeline.dir/fig3_datathread_pipeline.cc.o"
  "CMakeFiles/fig3_datathread_pipeline.dir/fig3_datathread_pipeline.cc.o.d"
  "fig3_datathread_pipeline"
  "fig3_datathread_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_datathread_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
