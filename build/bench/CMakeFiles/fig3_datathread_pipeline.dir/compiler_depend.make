# Empty compiler generated dependencies file for fig3_datathread_pipeline.
# This may be replaced when dependencies are built.
