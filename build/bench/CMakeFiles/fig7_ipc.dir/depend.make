# Empty dependencies file for fig7_ipc.
# This may be replaced when dependencies are built.
