file(REMOVE_RECURSE
  "CMakeFiles/fig7_ipc.dir/fig7_ipc.cc.o"
  "CMakeFiles/fig7_ipc.dir/fig7_ipc.cc.o.d"
  "fig7_ipc"
  "fig7_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
