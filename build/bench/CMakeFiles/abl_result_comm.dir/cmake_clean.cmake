file(REMOVE_RECURSE
  "CMakeFiles/abl_result_comm.dir/abl_result_comm.cc.o"
  "CMakeFiles/abl_result_comm.dir/abl_result_comm.cc.o.d"
  "abl_result_comm"
  "abl_result_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_result_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
