# Empty dependencies file for abl_result_comm.
# This may be replaced when dependencies are built.
