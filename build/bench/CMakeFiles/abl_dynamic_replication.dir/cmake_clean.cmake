file(REMOVE_RECURSE
  "CMakeFiles/abl_dynamic_replication.dir/abl_dynamic_replication.cc.o"
  "CMakeFiles/abl_dynamic_replication.dir/abl_dynamic_replication.cc.o.d"
  "abl_dynamic_replication"
  "abl_dynamic_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dynamic_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
