file(REMOVE_RECURSE
  "CMakeFiles/fig1_mmm_esp.dir/fig1_mmm_esp.cc.o"
  "CMakeFiles/fig1_mmm_esp.dir/fig1_mmm_esp.cc.o.d"
  "fig1_mmm_esp"
  "fig1_mmm_esp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mmm_esp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
