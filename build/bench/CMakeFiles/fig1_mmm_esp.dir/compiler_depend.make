# Empty compiler generated dependencies file for fig1_mmm_esp.
# This may be replaced when dependencies are built.
