file(REMOVE_RECURSE
  "CMakeFiles/abl_replication_budget.dir/abl_replication_budget.cc.o"
  "CMakeFiles/abl_replication_budget.dir/abl_replication_budget.cc.o.d"
  "abl_replication_budget"
  "abl_replication_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_replication_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
