# Empty dependencies file for abl_replication_budget.
# This may be replaced when dependencies are built.
