file(REMOVE_RECURSE
  "CMakeFiles/abl_mshr.dir/abl_mshr.cc.o"
  "CMakeFiles/abl_mshr.dir/abl_mshr.cc.o.d"
  "abl_mshr"
  "abl_mshr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mshr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
