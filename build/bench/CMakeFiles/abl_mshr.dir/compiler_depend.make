# Empty compiler generated dependencies file for abl_mshr.
# This may be replaced when dependencies are built.
