file(REMOVE_RECURSE
  "CMakeFiles/abl_sync_vs_async_esp.dir/abl_sync_vs_async_esp.cc.o"
  "CMakeFiles/abl_sync_vs_async_esp.dir/abl_sync_vs_async_esp.cc.o.d"
  "abl_sync_vs_async_esp"
  "abl_sync_vs_async_esp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sync_vs_async_esp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
