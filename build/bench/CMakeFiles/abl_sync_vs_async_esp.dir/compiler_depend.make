# Empty compiler generated dependencies file for abl_sync_vs_async_esp.
# This may be replaced when dependencies are built.
