file(REMOVE_RECURSE
  "CMakeFiles/abl_interconnect.dir/abl_interconnect.cc.o"
  "CMakeFiles/abl_interconnect.dir/abl_interconnect.cc.o.d"
  "abl_interconnect"
  "abl_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
