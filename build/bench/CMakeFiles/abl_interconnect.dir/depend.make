# Empty dependencies file for abl_interconnect.
# This may be replaced when dependencies are built.
