file(REMOVE_RECURSE
  "CMakeFiles/abl_write_policy.dir/abl_write_policy.cc.o"
  "CMakeFiles/abl_write_policy.dir/abl_write_policy.cc.o.d"
  "abl_write_policy"
  "abl_write_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_write_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
