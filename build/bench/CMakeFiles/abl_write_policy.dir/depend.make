# Empty dependencies file for abl_write_policy.
# This may be replaced when dependencies are built.
