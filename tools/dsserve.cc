/**
 * @file
 * dsserve — persistent simulation-as-a-service daemon.
 *
 * Listens on a Unix-domain socket for newline-delimited `key = value`
 * run requests (the same keys as dsrun flags and dsfuzz repro files),
 * executes them on a shared thread pool with one process-wide trace
 * cache, and streams back stats JSON byte-identical to a cold
 * one-shot dsrun of the same request. Protocol and deployment notes:
 * docs/SERVING.md.
 *
 * Usage:
 *   dsserve [--socket=PATH] [--jobs=N] [--max-queue=N]
 *           [--max-insts=N] [--max-request-bytes=N]
 *           [--output-dir=DIR] [--trace-dir=DIR]
 *
 * Options:
 *   --socket=PATH          socket path (default dsserve.sock; keep it
 *                          short — sun_path holds ~107 bytes)
 *   --jobs=N               simulation worker threads (default 0 = all
 *                          cores)
 *   --max-queue=N          admission: max runs queued or running
 *                          (default 256)
 *   --max-insts=N          admission: per-request instruction budget;
 *                          requests must set max_insts in (0, N]
 *                          (default 0 = unlimited)
 *   --max-request-bytes=N  reject larger request blocks (default 16384)
 *   --output-dir=DIR       directory for server-side Perfetto files;
 *                          requests with a perfetto key are rejected
 *                          when unset
 *   --trace-dir=DIR        persistent trace store: captured traces are
 *                          written here and mmap-loaded on later
 *                          misses, so a restarted daemon starts warm
 *
 * Stop it with a client `op = shutdown` request (e.g.
 * `dsbench --shutdown`): the daemon drains in-flight runs, replies,
 * and exits. A stale socket file from a killed daemon is unlinked on
 * the next start.
 */

#include <cstdio>
#include <string>

#include "common/kv.hh"
#include "serve/server.hh"

using namespace dscalar;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dsserve [--socket=PATH] [--jobs=N] [--max-queue=N]"
        "\n               [--max-insts=N] [--max-request-bytes=N]"
        "\n               [--output-dir=DIR] [--trace-dir=DIR]\n");
    return 2;
}

bool
flagValue(const std::string &arg, const char *name, std::string &value)
{
    std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

bool
flagU64(const std::string &arg, const char *name, std::uint64_t &out,
        bool &bad)
{
    std::string value;
    if (!flagValue(arg, name, value))
        return false;
    if (!common::kv::parseU64(value, out))
        bad = true;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerConfig cfg;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        std::uint64_t v = 0;
        bool bad = false;
        if (flagValue(arg, "--socket", value)) {
            cfg.socketPath = value;
        } else if (flagValue(arg, "--output-dir", value)) {
            cfg.outputDir = value;
        } else if (flagValue(arg, "--trace-dir", value)) {
            cfg.traceDir = value;
        } else if (flagU64(arg, "--jobs", v, bad)) {
            cfg.jobs = static_cast<unsigned>(v);
        } else if (flagU64(arg, "--max-queue", v, bad)) {
            cfg.maxQueueDepth = static_cast<unsigned>(v);
        } else if (flagU64(arg, "--max-insts", v, bad)) {
            cfg.maxInstBudget = v;
        } else if (flagU64(arg, "--max-request-bytes", v, bad)) {
            cfg.maxRequestBytes = v;
        } else {
            return usage();
        }
        if (bad)
            return usage();
    }

    serve::Server server(cfg);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "dsserve: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr, "dsserve: listening on %s\n",
                 cfg.socketPath.c_str());

    server.waitShutdownRequest();
    server.stop();

    serve::ServerStats s = server.stats();
    std::fprintf(stderr,
                 "dsserve: shut down after %llu requests "
                 "(%llu completed, %llu rejected, trace cache "
                 "%llu hits / %llu captures, store "
                 "%llu disk hits / %llu writes)\n",
                 (unsigned long long)s.requests,
                 (unsigned long long)s.completed,
                 (unsigned long long)(s.rejectedParse +
                                      s.rejectedBudget +
                                      s.rejectedOverload +
                                      s.rejectedOversize),
                 (unsigned long long)s.traceHits,
                 (unsigned long long)s.traceCaptures,
                 (unsigned long long)s.traceDiskHits,
                 (unsigned long long)s.traceDiskWrites);
    return 0;
}
