/**
 * @file
 * dsfuzz — differential fuzzer and protocol model checker for the
 * DataScalar simulators.
 *
 * Fuzzing: each run generates one random program (check::ProgramGen),
 * executes it once through FuncSim as the golden architectural model,
 * then checks it through a sampled matrix of timing configurations
 * (check::Oracle): system family, node count, interconnect, cache
 * geometry, run-loop mode, trace replay, fault injection, hard BSHR
 * capacity. Any divergence from the golden stream or any violated
 * protocol invariant fails the campaign: the failing case is
 * auto-shrunk to minimal generation parameters and written as a
 * self-contained repro file. See docs/FUZZING.md.
 *
 * --coverage turns the campaign coverage-guided: every DataScalar
 * run's protocol-event history is fingerprinted as event-kind n-grams
 * (check/coverage.hh), and generation parameters that reached new
 * n-grams stay in a corpus that seeds further mutation. --coverage=
 * observe keeps the same bookkeeping on the uniform campaign, for
 * apples-to-apples coverage comparisons at an equal trial budget.
 *
 * --model switches to exhaustive model checking (check/model.hh):
 * the abstract ESP/BSHR/DCUB model is enumerated breadth-first over
 * a suite of small shapes (or one --model-* shape), and a
 * counterexample is converted into a concrete repro by ordinary
 * oracle seed search against the matching TrialConfig.
 *
 * --mutate plants a known single-line protocol bug (core/
 * protocol_mutation.hh) in both the concrete BSHR and the abstract
 * model — the sensitivity harness the mutation tests drive.
 *
 * Usage:
 *   dsfuzz [--runs=N] [--seed=S] [--time-budget=SECONDS]
 *          [--configs-per-trial=N] [--repro-out=FILE] [--quiet]
 *          [--trace-dir=DIR] [--coverage[=observe]] [--ngram=K]
 *          [--mutate=NAME]
 *   dsfuzz --model [--model-nodes=N] [--model-lines=L]
 *          [--model-episodes=E] [--model-faults] [--model-depth=D]
 *          [--mutate=NAME] [--runs=N] [--seed=S]
 *   dsfuzz --repro=FILE          replay a saved repro case
 *
 * A fraction of sampled configs additionally round-trip the golden
 * trace through the persistent trace store (func/trace_file.hh) and
 * replay the disk-loaded copy, requiring results identical to the
 * live run. By default the store is a private pid-suffixed directory
 * under $TMPDIR, created lazily on first use and cleaned up when the
 * campaign passes or is interrupted; --trace-dir=DIR keeps the files
 * somewhere durable, and --trace-dir= (empty) disables the
 * differential.
 *
 * Exit status: 0 = every trial passed / model safe (or a replayed
 * repro no longer fails), 1 = a mismatch or counterexample was found
 * (repro written / reproduced), 2 = usage or file error, 130 =
 * interrupted (SIGINT/SIGTERM; private trace store cleaned up).
 */

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/coverage.hh"
#include "check/model.hh"
#include "check/oracle.hh"
#include "check/program_gen.hh"
#include "check/repro.hh"

using namespace dscalar;

namespace {

enum class CoverageMode { Off, Guided, Observe };

struct Options
{
    std::uint64_t runs = 100;
    std::uint64_t seed = 1;
    double timeBudget = 0.0; ///< seconds; 0 = unlimited
    unsigned configsPerTrial = 2;
    std::string reproIn;
    std::string reproOut = "dsfuzz-repro.txt";
    std::string traceDir;
    bool traceDirSet = false; ///< --trace-dir= given (maybe empty)
    bool quiet = false;

    CoverageMode coverage = CoverageMode::Off;
    unsigned ngram = 3;
    core::ProtocolMutation mutation = core::ProtocolMutation::None;

    bool model = false;
    unsigned modelNodes = 0; ///< 0 = run the default shape suite
    unsigned modelLines = 0;
    unsigned modelEpisodes = 0;
    bool modelFaults = false;
    unsigned modelDepth = 0;
};

volatile sig_atomic_t g_interrupted = 0;

void
onSignal(int)
{
    g_interrupted = 1;
}

/** Graceful stop on the first SIGINT/SIGTERM (loops poll the flag
 *  and clean up the private trace store); a second signal falls back
 *  to the default disposition and kills the process. */
void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sa.sa_flags = SA_RESETHAND;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
parseFlag(const std::string &arg, const char *name, std::string &value)
{
    std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dsfuzz [--runs=N] [--seed=S] [--time-budget=SECONDS]"
        "\n              [--configs-per-trial=N] [--repro-out=FILE]"
        "\n              [--trace-dir=DIR] [--coverage[=observe]]"
        "\n              [--ngram=K] [--mutate=NAME] [--quiet]"
        "\n       dsfuzz --model [--model-nodes=N] [--model-lines=L]"
        "\n              [--model-episodes=E] [--model-faults]"
        "\n              [--model-depth=D] [--mutate=NAME]"
        "\n       dsfuzz --repro=FILE\n");
    return 2;
}

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Remove a private trace-store directory: every *.dstrace file in
 *  it, then the directory itself (best effort — a shared or
 *  user-provided directory is never passed here). */
void
removeTraceStore(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.size() > 8 &&
            name.compare(name.size() - 8, 8, ".dstrace") == 0)
            ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
}

/** Print the failing run's flight-recorder dump, if any. */
void
printFlightLog(const check::Oracle &oracle)
{
    const std::string &log = oracle.lastFlightLog();
    if (log.empty())
        return;
    std::printf("flight recorder (failing run):\n%s", log.c_str());
}

/**
 * Append free-form text to an already-written repro file as '#'
 * comment lines — the repro parser skips them, so the file stays
 * replayable while carrying its own post-mortem.
 */
void
appendComment(const std::string &path, const std::string &header,
              const std::string &text)
{
    if (text.empty())
        return;
    std::ofstream out(path, std::ios::app);
    if (!out)
        return;
    out << "#\n# " << header << ":\n";
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line))
        out << "# " << line << '\n';
}

/** Replay one saved repro case from scratch. */
int
replayRepro(const Options &opt)
{
    check::ReproCase repro;
    std::string error;
    if (!check::loadRepro(opt.reproIn, repro, error)) {
        std::fprintf(stderr, "dsfuzz: %s\n", error.c_str());
        return 2;
    }
    std::printf("replaying seed %llu: %s\n",
                (unsigned long long)repro.seed,
                check::describeConfig(repro.config).c_str());
    if (!repro.mismatch.empty())
        std::printf("recorded mismatch: %s\n", repro.mismatch.c_str());
    check::Oracle oracle({}, repro.params);
    std::string mismatch =
        oracle.recheck(repro.seed, repro.params, repro.config);
    if (mismatch.empty()) {
        std::printf("repro no longer fails\n");
        return 0;
    }
    std::printf("REPRODUCED: %s\n", mismatch.c_str());
    printFlightLog(oracle);
    return 1;
}

/**
 * Shrink a failing (seed, params, config) case, write the repro
 * (with the failing run's flight log, plus @p extra as a trailing
 * comment block), and report. Always returns 1.
 */
int
failAndSave(check::Oracle &oracle, std::uint64_t seed,
            const check::GenParams &params,
            const check::TrialConfig &config,
            const std::string &mismatch, const Options &opt,
            const std::string &extraHeader = "",
            const std::string &extraText = "")
{
    std::printf("FAIL seed %llu: %s\n  %s\n",
                (unsigned long long)seed,
                check::describeConfig(config).c_str(),
                mismatch.c_str());

    // Shrink the generation parameters against the failing config,
    // re-running the whole case per candidate.
    std::printf("shrinking...\n");
    check::ShrinkResult shrunk = check::shrinkParams(
        seed, params, mismatch,
        [&oracle, &config](std::uint64_t s,
                           const check::GenParams &p) {
            return oracle.recheck(s, p, config);
        });
    std::printf("shrunk in %u passes (%u attempts): iters [%u,%u] "
                "blockOps [%u,%u] dataPages [%u,%u]\n",
                shrunk.passes, shrunk.attempts,
                shrunk.params.minIters, shrunk.params.maxIters,
                shrunk.params.minBlockOps, shrunk.params.maxBlockOps,
                shrunk.params.minDataPages,
                shrunk.params.maxDataPages);

    // One confirming re-run of the shrunk case: the shrinker's final
    // pass ends on passing candidates, so this re-captures the flight
    // log that matches the minimal failing case.
    std::string confirmed = oracle.recheck(seed, shrunk.params, config);
    if (!confirmed.empty())
        shrunk.mismatch = confirmed;
    printFlightLog(oracle);

    check::ReproCase repro{seed, shrunk.params, config,
                           shrunk.mismatch};
    if (check::saveRepro(opt.reproOut, repro)) {
        appendComment(opt.reproOut, "flight recorder (failing run)",
                      oracle.lastFlightLog());
        if (!extraText.empty())
            appendComment(opt.reproOut, extraHeader, extraText);
        std::printf("repro written to %s\n", opt.reproOut.c_str());
    } else {
        std::fprintf(stderr, "dsfuzz: cannot write repro file %s\n",
                     opt.reproOut.c_str());
    }
    std::printf("final mismatch: %s\nreplay with: dsfuzz --repro=%s\n",
                shrunk.mismatch.c_str(), opt.reproOut.c_str());
    return 1;
}

// -------------------------------------------------------------------
// Model checking (--model)
// -------------------------------------------------------------------

/**
 * Convert a model counterexample into a concrete repro: seed-search
 * the oracle against the matching TrialConfig, shrink the first
 * failing seed, and carry the abstract trace in the repro file.
 */
int
modelCounterexampleToRepro(const check::ModelConfig &shape,
                           const check::ModelResult &res,
                           const Options &opt)
{
    std::string cex = check::formatCounterexample(shape, res);
    std::printf("%s", cex.c_str());

    check::TrialConfig config = check::modelTrialConfig(shape);
    check::Oracle oracle({}, check::GenParams::fuzzDefault());
    std::uint64_t budget = std::min<std::uint64_t>(opt.runs, 50);
    for (std::uint64_t i = 0; i < budget && !g_interrupted; ++i) {
        std::uint64_t seed = opt.seed + i;
        std::string mismatch =
            oracle.recheck(seed, oracle.genParams(), config);
        if (mismatch.empty())
            continue;
        std::printf("concrete reproduction found at seed %llu\n",
                    (unsigned long long)seed);
        return failAndSave(oracle, seed, oracle.genParams(), config,
                           mismatch, opt, "model counterexample",
                           cex);
    }
    std::printf("model violation stands, but no concrete seed of %llu"
                " tried reproduced it (%s)\n",
                (unsigned long long)budget,
                check::describeConfig(config).c_str());
    return 1;
}

int
runModel(const Options &opt)
{
    std::vector<check::ModelConfig> shapes;
    if (opt.modelNodes || opt.modelLines || opt.modelEpisodes) {
        check::ModelConfig cfg;
        if (opt.modelNodes)
            cfg.nodes = opt.modelNodes;
        if (opt.modelLines)
            cfg.lines = opt.modelLines;
        if (opt.modelEpisodes)
            cfg.episodes = opt.modelEpisodes;
        cfg.faults = opt.modelFaults;
        shapes.push_back(cfg);
    } else {
        // Default suite: the reliable base shape, the fault shape,
        // and a three-node shape — small enough to finish in seconds,
        // large enough that every protocol rule fires.
        check::ModelConfig reliable;
        reliable.nodes = 2;
        reliable.lines = 2;
        reliable.episodes = 3;
        shapes.push_back(reliable);
        check::ModelConfig faulty;
        faulty.nodes = 2;
        faulty.lines = 2;
        faulty.episodes = 2;
        faulty.faults = true;
        shapes.push_back(faulty);
        check::ModelConfig wide;
        wide.nodes = 3;
        wide.lines = 3;
        wide.episodes = 2;
        shapes.push_back(wide);
    }

    auto start = std::chrono::steady_clock::now();
    std::uint64_t states = 0, transitions = 0;
    for (check::ModelConfig &shape : shapes) {
        shape.mutation = opt.mutation;
        shape.depthBound = opt.modelDepth;
        check::ModelResult res = check::checkModel(shape);
        states += res.states;
        transitions += res.transitions;
        std::printf("model %s: %llu states, %llu transitions, "
                    "depth %u, %u scripts%s\n",
                    check::describeModelConfig(shape).c_str(),
                    (unsigned long long)res.states,
                    (unsigned long long)res.transitions, res.maxDepth,
                    res.scriptsChecked,
                    res.exhaustive ? "" : " (bounded, non-exhaustive)");
        if (!res.ok) {
            std::printf("VIOLATION: %s\n", res.violation.c_str());
            return modelCounterexampleToRepro(shape, res, opt);
        }
        if (g_interrupted) {
            std::printf("interrupted\n");
            return 130;
        }
    }
    if (!opt.quiet)
        std::printf("model OK: %zu shapes, %llu states, %llu "
                    "transitions, %.1f s\n",
                    shapes.size(), (unsigned long long)states,
                    (unsigned long long)transitions,
                    elapsedSeconds(start));
    return 0;
}

// -------------------------------------------------------------------
// Fuzzing campaigns
// -------------------------------------------------------------------

/** One corpus-mutation step: rescale one structural range or retune
 *  one op-mix weight; everything else inherited from the parent. */
check::GenParams
mutateParams(const check::GenParams &parent, Random &rng)
{
    check::GenParams p = parent;
    auto rescale = [&rng](unsigned &lo, unsigned &hi, unsigned floor,
                          unsigned cap) {
        switch (rng.below(3)) {
          case 0: // move the upper bound anywhere in [floor, cap]
            hi = floor +
                 static_cast<unsigned>(rng.below(cap - floor + 1));
            if (lo > hi)
                lo = hi;
            break;
          case 1: // move the lower bound anywhere in [floor, hi]
            lo = floor +
                 static_cast<unsigned>(rng.below(hi - floor + 1));
            break;
          default: // pin the range to one value
            lo = hi = floor + static_cast<unsigned>(
                                  rng.below(cap - floor + 1));
        }
    };
    switch (rng.below(4)) {
      case 0:
        rescale(p.minIters, p.maxIters, 1, 400);
        break;
      case 1:
        rescale(p.minBlockOps, p.maxBlockOps, 1, 80);
        break;
      case 2:
        rescale(p.minDataPages, p.maxDataPages, 1, 32);
        break;
      default: {
        unsigned *weights[] = {
            &p.mix.loadAccum,  &p.mix.storeData,
            &p.mix.loadXor,    &p.mix.branchSkip,
            &p.mix.cursorMul,  &p.mix.cursorHash,
            &p.mix.fpMix,      &p.mix.printSyscall,
            &p.mix.aliasStoreLoad, &p.mix.byteOps,
            &p.mix.pageCross};
        *weights[rng.below(11)] =
            static_cast<unsigned>(rng.below(9));
        if (p.mix.total() == 0)
            p.mix.loadAccum = 1;
      }
    }
    return p;
}

/**
 * One config-mutation step for the guided campaign: re-seed the
 * fault RNG or retune one matrix knob of a gainful parent. The
 * result is always a focused single DataScalar run — cross-check
 * re-runs are deterministic copies that can never add coverage.
 */
check::TrialConfig
mutateConfig(check::TrialConfig c, Random &rng)
{
    c.system = driver::SystemKind::DataScalar;
    c.crossReplay = false;
    c.crossEventDriven = false;
    c.crossTickThreads = false;
    c.traceDir.clear();
    switch (rng.below(8)) {
      case 0:
      case 1: // new fault/delay interleaving, same everything else —
              // the single most productive source of fresh n-grams
        c.faultSeed = 1 + rng.below(1'000'000);
        break;
      case 2: // force the fault paths open under a fresh seed
        c.faults = true;
        c.hardBshr = false;
        c.faultSeed = 1 + rng.below(1'000'000);
        break;
      case 3:
        c.faults = !c.faults;
        if (c.faults)
            c.hardBshr = false;
        c.faultSeed = 1 + rng.below(1'000'000);
        break;
      case 4:
        c.nodes = 2 + static_cast<unsigned>(rng.below(3));
        break;
      case 5:
        c.interconnect =
            c.interconnect == core::InterconnectKind::Bus
                ? core::InterconnectKind::Ring
                : core::InterconnectKind::Bus;
        break;
      case 6:
        c.maxInsts = rng.chance(0.5)
                         ? 1'000 + rng.below(12'000)
                         : InstSeq(0);
        break;
      default:
        c.hardBshr = !c.hardBshr;
        if (c.hardBshr) {
            c.faults = false;
            c.bshrCapacity = 4u << rng.below(3);
        } else {
            c.bshrCapacity = 128;
        }
    }
    return c;
}

int
runCampaign(const Options &opt)
{
    check::OracleOptions oopt;
    oopt.configsPerTrial = opt.configsPerTrial;
    bool tempStore = !opt.traceDirSet;
    if (tempStore) {
        const char *tmp = std::getenv("TMPDIR");
        oopt.traceDir = std::string(tmp && *tmp ? tmp : "/tmp") +
                        "/dsfuzz-traces." +
                        std::to_string(::getpid());
    } else {
        oopt.traceDir = opt.traceDir;
    }

    check::CoverageMap map(opt.ngram);
    if (opt.coverage != CoverageMode::Off)
        oopt.coverage = &map;
    check::Oracle oracle(oopt, check::GenParams::fuzzDefault());

    // Sampling/mutating the campaign's own stream: decoupled from
    // the per-trial config stream (which stays a pure function of
    // the trial seed) so guided and uniform campaigns explore the
    // same config matrix.
    Random rng(opt.seed * 0x2545f4914f6cdd1dULL +
               0x9e3779b97f4a7c15ULL);
    const bool guided = opt.coverage == CoverageMode::Guided;
    // Coverage campaigns (guided AND observe) share the explicit
    // one-config-per-trial loop, so guided-vs-observe numbers compare
    // equal trial budgets run the same way.
    const bool customLoop = opt.coverage != CoverageMode::Off ||
                            opt.mutation != core::ProtocolMutation::None;
    struct Candidate
    {
        check::GenParams params;
        check::TrialConfig config;
    };
    std::vector<Candidate> corpus;

    auto start = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    for (; done < opt.runs; ++done) {
        if (g_interrupted) {
            std::printf("interrupted after %llu trials\n",
                        (unsigned long long)done);
            if (tempStore)
                removeTraceStore(oopt.traceDir);
            return 130;
        }
        if (opt.timeBudget > 0.0 &&
            elapsedSeconds(start) >= opt.timeBudget) {
            std::printf("time budget reached after %llu trials\n",
                        (unsigned long long)done);
            break;
        }
        std::uint64_t seed = opt.seed + done;

        if (customLoop) {
            // Corpus-driven loop: one explicit config per trial so
            // the coverage gain attributes to exactly one run shape.
            // Guided campaigns split trials between exploration
            // (fresh uniform draws, the observe-mode distribution)
            // and exploitation (mutating a parent that reached new
            // n-grams — in particular re-seeding its fault RNG).
            check::GenParams params = oracle.genParams();
            check::TrialConfig config = oracle.sampleConfig(rng);
            if (guided && !corpus.empty() && rng.chance(0.7)) {
                // Pick from the frontier: the newest gainers are the
                // sequences the map hasn't saturated around yet.
                std::size_t window =
                    std::min<std::size_t>(corpus.size(), 8);
                const Candidate &base =
                    corpus[corpus.size() - 1 - rng.below(window)];
                params = rng.chance(0.5)
                             ? mutateParams(base.params, rng)
                             : base.params;
                config = mutateConfig(base.config, rng);
            }
            if (opt.mutation != core::ProtocolMutation::None) {
                // Planted bugs leave BSHR residue: keep the medium
                // reliable and the system DataScalar so the strict
                // drain/conservation invariants can see it.
                config.system = driver::SystemKind::DataScalar;
                config.faults = false;
                config.hardBshr = false;
                config.faultsNoRecovery = false;
                config.mutation = opt.mutation;
            }
            std::string mismatch =
                oracle.recheck(seed, params, config);
            if (guided && oracle.lastCoverageGain() > 0)
                corpus.push_back({params, config});
            if (!mismatch.empty()) {
                int rc = failAndSave(oracle, seed, params, config,
                                     mismatch, opt);
                return rc;
            }
        } else {
            auto failure = oracle.runTrial(seed);
            if (failure)
                return failAndSave(oracle, seed, failure->params,
                                   failure->config,
                                   failure->mismatch, opt);
        }
    }

    // A passing campaign leaves nothing behind; a failing one keeps
    // its store so the written repro replays against the same files.
    if (tempStore)
        removeTraceStore(oopt.traceDir);

    const check::OracleStats &st = oracle.stats();
    if (opt.coverage != CoverageMode::Off)
        std::printf("coverage%s: %llu unique n-grams (k<=%u) over "
                    "%llu recorded runs, corpus %zu\n",
                    guided ? "" : " (observe)",
                    (unsigned long long)map.uniqueNgrams(), opt.ngram,
                    (unsigned long long)map.runsRecorded(),
                    corpus.size());
    if (!opt.quiet)
        std::printf("OK: %llu trials, %llu configs, %llu timing "
                    "runs, %.1f s\n",
                    (unsigned long long)(customLoop
                                             ? done
                                             : st.trials),
                    (unsigned long long)st.configsChecked,
                    (unsigned long long)st.timingRuns,
                    elapsedSeconds(start));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        if (parseFlag(arg, "--runs", value))
            opt.runs = std::stoull(value);
        else if (parseFlag(arg, "--seed", value))
            opt.seed = std::stoull(value);
        else if (parseFlag(arg, "--time-budget", value))
            opt.timeBudget = std::stod(value);
        else if (parseFlag(arg, "--configs-per-trial", value))
            opt.configsPerTrial =
                static_cast<unsigned>(std::stoul(value));
        else if (parseFlag(arg, "--repro", value))
            opt.reproIn = value;
        else if (parseFlag(arg, "--repro-out", value))
            opt.reproOut = value;
        else if (parseFlag(arg, "--trace-dir", value)) {
            opt.traceDir = value;
            opt.traceDirSet = true;
        }
        else if (arg == "--coverage")
            opt.coverage = CoverageMode::Guided;
        else if (parseFlag(arg, "--coverage", value)) {
            if (value == "observe")
                opt.coverage = CoverageMode::Observe;
            else if (value == "guided" || value.empty())
                opt.coverage = CoverageMode::Guided;
            else
                return usage();
        }
        else if (parseFlag(arg, "--ngram", value))
            opt.ngram = static_cast<unsigned>(std::stoul(value));
        else if (parseFlag(arg, "--mutate", value)) {
            if (!core::parseProtocolMutation(value, opt.mutation)) {
                std::fprintf(stderr,
                             "dsfuzz: unknown mutation '%s'\n",
                             value.c_str());
                return usage();
            }
        }
        else if (arg == "--model")
            opt.model = true;
        else if (parseFlag(arg, "--model-nodes", value))
            opt.modelNodes = static_cast<unsigned>(std::stoul(value));
        else if (parseFlag(arg, "--model-lines", value))
            opt.modelLines = static_cast<unsigned>(std::stoul(value));
        else if (parseFlag(arg, "--model-episodes", value))
            opt.modelEpisodes =
                static_cast<unsigned>(std::stoul(value));
        else if (arg == "--model-faults")
            opt.modelFaults = true;
        else if (parseFlag(arg, "--model-depth", value))
            opt.modelDepth = static_cast<unsigned>(std::stoul(value));
        else if (arg == "--quiet")
            opt.quiet = true;
        else
            return usage();
    }
    if (opt.ngram < 1 || opt.ngram > 8) {
        std::fprintf(stderr, "dsfuzz: --ngram must be 1..8\n");
        return usage();
    }

    if (!opt.reproIn.empty())
        return replayRepro(opt);

    installSignalHandlers();
    if (opt.model)
        return runModel(opt);
    return runCampaign(opt);
}
