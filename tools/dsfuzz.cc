/**
 * @file
 * dsfuzz — differential fuzzer for the DataScalar simulators.
 *
 * Each run generates one random program (check::ProgramGen), executes
 * it once through FuncSim as the golden architectural model, then
 * checks it through a sampled matrix of timing configurations
 * (check::Oracle): system family, node count, interconnect, cache
 * geometry, run-loop mode, trace replay, fault injection, hard BSHR
 * capacity. Any divergence from the golden stream or any violated
 * protocol invariant fails the campaign: the failing case is
 * auto-shrunk to minimal generation parameters and written as a
 * self-contained repro file. See docs/FUZZING.md.
 *
 * Usage:
 *   dsfuzz [--runs=N] [--seed=S] [--time-budget=SECONDS]
 *          [--configs-per-trial=N] [--repro-out=FILE] [--quiet]
 *          [--trace-dir=DIR]
 *   dsfuzz --repro=FILE          replay a saved repro case
 *
 * A fraction of sampled configs additionally round-trip the golden
 * trace through the persistent trace store (func/trace_file.hh) and
 * replay the disk-loaded copy, requiring results identical to the
 * live run. By default the store is a private pid-suffixed directory
 * under $TMPDIR, cleaned up when the campaign passes; --trace-dir=DIR
 * keeps the files somewhere durable, and --trace-dir= (empty)
 * disables the differential.
 *
 * Exit status: 0 = every trial passed (or a replayed repro no longer
 * fails), 1 = a mismatch was found (repro written / reproduced),
 * 2 = usage or file error.
 */

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "check/oracle.hh"
#include "check/program_gen.hh"
#include "check/repro.hh"

using namespace dscalar;

namespace {

struct Options
{
    std::uint64_t runs = 100;
    std::uint64_t seed = 1;
    double timeBudget = 0.0; ///< seconds; 0 = unlimited
    unsigned configsPerTrial = 2;
    std::string reproIn;
    std::string reproOut = "dsfuzz-repro.txt";
    std::string traceDir;
    bool traceDirSet = false; ///< --trace-dir= given (maybe empty)
    bool quiet = false;
};

bool
parseFlag(const std::string &arg, const char *name, std::string &value)
{
    std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dsfuzz [--runs=N] [--seed=S] [--time-budget=SECONDS]"
        "\n              [--configs-per-trial=N] [--repro-out=FILE]"
        "\n              [--trace-dir=DIR] [--quiet]"
        "\n       dsfuzz --repro=FILE\n");
    return 2;
}

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Remove a private trace-store directory: every *.dstrace file in
 *  it, then the directory itself (best effort — a shared or
 *  user-provided directory is never passed here). */
void
removeTraceStore(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.size() > 8 &&
            name.compare(name.size() - 8, 8, ".dstrace") == 0)
            ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
}

/** Print the failing run's flight-recorder dump, if any. */
void
printFlightLog(const check::Oracle &oracle)
{
    const std::string &log = oracle.lastFlightLog();
    if (log.empty())
        return;
    std::printf("flight recorder (failing run):\n%s", log.c_str());
}

/**
 * Append the flight log to an already-written repro file as '#'
 * comment lines — the repro parser skips them, so the file stays
 * replayable while carrying its own post-mortem.
 */
void
appendFlightLog(const std::string &path, const std::string &log)
{
    if (log.empty())
        return;
    std::ofstream out(path, std::ios::app);
    if (!out)
        return;
    out << "#\n# flight recorder (failing run):\n";
    std::istringstream lines(log);
    std::string line;
    while (std::getline(lines, line))
        out << "# " << line << '\n';
}

/** Replay one saved repro case from scratch. */
int
replayRepro(const Options &opt)
{
    check::ReproCase repro;
    std::string error;
    if (!check::loadRepro(opt.reproIn, repro, error)) {
        std::fprintf(stderr, "dsfuzz: %s\n", error.c_str());
        return 2;
    }
    std::printf("replaying seed %llu: %s\n",
                (unsigned long long)repro.seed,
                check::describeConfig(repro.config).c_str());
    if (!repro.mismatch.empty())
        std::printf("recorded mismatch: %s\n", repro.mismatch.c_str());
    check::Oracle oracle({}, repro.params);
    std::string mismatch =
        oracle.recheck(repro.seed, repro.params, repro.config);
    if (mismatch.empty()) {
        std::printf("repro no longer fails\n");
        return 0;
    }
    std::printf("REPRODUCED: %s\n", mismatch.c_str());
    printFlightLog(oracle);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        if (parseFlag(arg, "--runs", value))
            opt.runs = std::stoull(value);
        else if (parseFlag(arg, "--seed", value))
            opt.seed = std::stoull(value);
        else if (parseFlag(arg, "--time-budget", value))
            opt.timeBudget = std::stod(value);
        else if (parseFlag(arg, "--configs-per-trial", value))
            opt.configsPerTrial =
                static_cast<unsigned>(std::stoul(value));
        else if (parseFlag(arg, "--repro", value))
            opt.reproIn = value;
        else if (parseFlag(arg, "--repro-out", value))
            opt.reproOut = value;
        else if (parseFlag(arg, "--trace-dir", value)) {
            opt.traceDir = value;
            opt.traceDirSet = true;
        }
        else if (arg == "--quiet")
            opt.quiet = true;
        else
            return usage();
    }

    if (!opt.reproIn.empty())
        return replayRepro(opt);

    check::OracleOptions oopt;
    oopt.configsPerTrial = opt.configsPerTrial;
    bool tempStore = !opt.traceDirSet;
    if (tempStore) {
        const char *tmp = std::getenv("TMPDIR");
        oopt.traceDir = std::string(tmp && *tmp ? tmp : "/tmp") +
                        "/dsfuzz-traces." +
                        std::to_string(::getpid());
    } else {
        oopt.traceDir = opt.traceDir;
    }
    check::Oracle oracle(oopt, check::GenParams::fuzzDefault());

    auto start = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    for (; done < opt.runs; ++done) {
        if (opt.timeBudget > 0.0 &&
            elapsedSeconds(start) >= opt.timeBudget) {
            std::printf("time budget reached after %llu trials\n",
                        (unsigned long long)done);
            break;
        }
        std::uint64_t seed = opt.seed + done;
        auto failure = oracle.runTrial(seed);
        if (!failure)
            continue;

        std::printf("FAIL seed %llu: %s\n  %s\n",
                    (unsigned long long)seed,
                    check::describeConfig(failure->config).c_str(),
                    failure->mismatch.c_str());

        // Shrink the generation parameters against the failing
        // config, re-running the whole case per candidate.
        std::printf("shrinking...\n");
        check::TrialConfig bad = failure->config;
        check::ShrinkResult shrunk = check::shrinkParams(
            seed, failure->params, failure->mismatch,
            [&oracle, &bad](std::uint64_t s,
                            const check::GenParams &p) {
                return oracle.recheck(s, p, bad);
            });
        std::printf("shrunk in %u passes (%u attempts): iters "
                    "[%u,%u] blockOps [%u,%u] dataPages [%u,%u]\n",
                    shrunk.passes, shrunk.attempts,
                    shrunk.params.minIters, shrunk.params.maxIters,
                    shrunk.params.minBlockOps,
                    shrunk.params.maxBlockOps,
                    shrunk.params.minDataPages,
                    shrunk.params.maxDataPages);

        // One confirming re-run of the shrunk case: the shrinker's
        // final pass ends on passing candidates, so this re-captures
        // the flight log that matches the minimal failing case.
        std::string confirmed =
            oracle.recheck(seed, shrunk.params, bad);
        if (!confirmed.empty())
            shrunk.mismatch = confirmed;
        printFlightLog(oracle);

        check::ReproCase repro{seed, shrunk.params, bad,
                               shrunk.mismatch};
        if (check::saveRepro(opt.reproOut, repro)) {
            appendFlightLog(opt.reproOut, oracle.lastFlightLog());
            std::printf("repro written to %s\n",
                        opt.reproOut.c_str());
        } else {
            std::fprintf(stderr,
                         "dsfuzz: cannot write repro file %s\n",
                         opt.reproOut.c_str());
        }
        std::printf("final mismatch: %s\nreplay with: dsfuzz "
                    "--repro=%s\n",
                    shrunk.mismatch.c_str(), opt.reproOut.c_str());
        return 1;
    }

    // A passing campaign leaves nothing behind; a failing one keeps
    // its store so the written repro replays against the same files.
    if (tempStore)
        removeTraceStore(oopt.traceDir);

    const check::OracleStats &st = oracle.stats();
    if (!opt.quiet)
        std::printf("OK: %llu trials, %llu configs, %llu timing "
                    "runs, %.1f s\n",
                    (unsigned long long)st.trials,
                    (unsigned long long)st.configsChecked,
                    (unsigned long long)st.timingRuns,
                    elapsedSeconds(start));
    return 0;
}
