/**
 * @file
 * dsfuzz — differential fuzzer for the DataScalar simulators.
 *
 * Each run generates one random program (check::ProgramGen), executes
 * it once through FuncSim as the golden architectural model, then
 * checks it through a sampled matrix of timing configurations
 * (check::Oracle): system family, node count, interconnect, cache
 * geometry, run-loop mode, trace replay, fault injection, hard BSHR
 * capacity. Any divergence from the golden stream or any violated
 * protocol invariant fails the campaign: the failing case is
 * auto-shrunk to minimal generation parameters and written as a
 * self-contained repro file. See docs/FUZZING.md.
 *
 * Usage:
 *   dsfuzz [--runs=N] [--seed=S] [--time-budget=SECONDS]
 *          [--configs-per-trial=N] [--repro-out=FILE] [--quiet]
 *   dsfuzz --repro=FILE          replay a saved repro case
 *
 * Exit status: 0 = every trial passed (or a replayed repro no longer
 * fails), 1 = a mismatch was found (repro written / reproduced),
 * 2 = usage or file error.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "check/oracle.hh"
#include "check/program_gen.hh"
#include "check/repro.hh"

using namespace dscalar;

namespace {

struct Options
{
    std::uint64_t runs = 100;
    std::uint64_t seed = 1;
    double timeBudget = 0.0; ///< seconds; 0 = unlimited
    unsigned configsPerTrial = 2;
    std::string reproIn;
    std::string reproOut = "dsfuzz-repro.txt";
    bool quiet = false;
};

bool
parseFlag(const std::string &arg, const char *name, std::string &value)
{
    std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dsfuzz [--runs=N] [--seed=S] [--time-budget=SECONDS]"
        "\n              [--configs-per-trial=N] [--repro-out=FILE]"
        "\n              [--quiet]"
        "\n       dsfuzz --repro=FILE\n");
    return 2;
}

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Replay one saved repro case from scratch. */
int
replayRepro(const Options &opt)
{
    check::ReproCase repro;
    std::string error;
    if (!check::loadRepro(opt.reproIn, repro, error)) {
        std::fprintf(stderr, "dsfuzz: %s\n", error.c_str());
        return 2;
    }
    std::printf("replaying seed %llu: %s\n",
                (unsigned long long)repro.seed,
                check::describeConfig(repro.config).c_str());
    if (!repro.mismatch.empty())
        std::printf("recorded mismatch: %s\n", repro.mismatch.c_str());
    check::Oracle oracle({}, repro.params);
    std::string mismatch =
        oracle.recheck(repro.seed, repro.params, repro.config);
    if (mismatch.empty()) {
        std::printf("repro no longer fails\n");
        return 0;
    }
    std::printf("REPRODUCED: %s\n", mismatch.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        if (parseFlag(arg, "--runs", value))
            opt.runs = std::stoull(value);
        else if (parseFlag(arg, "--seed", value))
            opt.seed = std::stoull(value);
        else if (parseFlag(arg, "--time-budget", value))
            opt.timeBudget = std::stod(value);
        else if (parseFlag(arg, "--configs-per-trial", value))
            opt.configsPerTrial =
                static_cast<unsigned>(std::stoul(value));
        else if (parseFlag(arg, "--repro", value))
            opt.reproIn = value;
        else if (parseFlag(arg, "--repro-out", value))
            opt.reproOut = value;
        else if (arg == "--quiet")
            opt.quiet = true;
        else
            return usage();
    }

    if (!opt.reproIn.empty())
        return replayRepro(opt);

    check::OracleOptions oopt;
    oopt.configsPerTrial = opt.configsPerTrial;
    check::Oracle oracle(oopt, check::GenParams::fuzzDefault());

    auto start = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    for (; done < opt.runs; ++done) {
        if (opt.timeBudget > 0.0 &&
            elapsedSeconds(start) >= opt.timeBudget) {
            std::printf("time budget reached after %llu trials\n",
                        (unsigned long long)done);
            break;
        }
        std::uint64_t seed = opt.seed + done;
        auto failure = oracle.runTrial(seed);
        if (!failure)
            continue;

        std::printf("FAIL seed %llu: %s\n  %s\n",
                    (unsigned long long)seed,
                    check::describeConfig(failure->config).c_str(),
                    failure->mismatch.c_str());

        // Shrink the generation parameters against the failing
        // config, re-running the whole case per candidate.
        std::printf("shrinking...\n");
        check::TrialConfig bad = failure->config;
        check::ShrinkResult shrunk = check::shrinkParams(
            seed, failure->params, failure->mismatch,
            [&oracle, &bad](std::uint64_t s,
                            const check::GenParams &p) {
                return oracle.recheck(s, p, bad);
            });
        std::printf("shrunk in %u passes (%u attempts): iters "
                    "[%u,%u] blockOps [%u,%u] dataPages [%u,%u]\n",
                    shrunk.passes, shrunk.attempts,
                    shrunk.params.minIters, shrunk.params.maxIters,
                    shrunk.params.minBlockOps,
                    shrunk.params.maxBlockOps,
                    shrunk.params.minDataPages,
                    shrunk.params.maxDataPages);

        check::ReproCase repro{seed, shrunk.params, bad,
                               shrunk.mismatch};
        if (check::saveRepro(opt.reproOut, repro))
            std::printf("repro written to %s\n",
                        opt.reproOut.c_str());
        else
            std::fprintf(stderr,
                         "dsfuzz: cannot write repro file %s\n",
                         opt.reproOut.c_str());
        std::printf("final mismatch: %s\nreplay with: dsfuzz "
                    "--repro=%s\n",
                    shrunk.mismatch.c_str(), opt.reproOut.c_str());
        return 1;
    }

    const check::OracleStats &st = oracle.stats();
    if (!opt.quiet)
        std::printf("OK: %llu trials, %llu configs, %llu timing "
                    "runs, %.1f s\n",
                    (unsigned long long)st.trials,
                    (unsigned long long)st.configsChecked,
                    (unsigned long long)st.timingRuns,
                    elapsedSeconds(start));
    return 0;
}
