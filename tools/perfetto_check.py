#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (obs::PerfettoTraceSink).

Checks the structural contract that ui.perfetto.dev / chrome://tracing
rely on, so CI catches a malformed exporter before a human ever loads
a trace:

  - the document is one JSON object with a "traceEvents" array;
  - every event has a known phase: "M" (metadata), "i" (instant),
    "X" (complete/duration);
  - metadata events are process_name/thread_name records with a
    string args.name;
  - instants and durations carry pid/tid and a non-negative integer
    ts; durations a non-negative dur; instants scope "t";
  - every tid that carries events was announced by a thread_name
    metadata record (tracks render unnamed otherwise).

--require-thread=NAME (repeatable) additionally asserts that a
thread_name record with that name exists and that its track carries
at least one event — used by CI to pin the wall-clock span track
("request") that --profile adds next to the sim-time tracks.

Event order is NOT checked: the trace-event format allows unsorted
events (the Perfetto importer sorts by ts), and the simulator
legitimately emits out of cycle order — a delayed delivery is
stamped with its future arrival cycle at decision time.

Exit status: 0 = valid, 1 = validation failure, 2 = usage/IO error.
"""

import argparse
import json
import sys


KNOWN_PHASES = {"M", "i", "X"}


def fail(msg):
    print(f"perfetto_check: {msg}", file=sys.stderr)
    return 1


def validate(data, min_events, require_threads=()):
    if not isinstance(data, dict) or "traceEvents" not in data:
        return fail("top level must be an object with 'traceEvents'")
    events = data["traceEvents"]
    if not isinstance(events, list):
        return fail("'traceEvents' must be an array")

    named_tids = set()
    thread_tids = {}  # thread name -> set of tids announced with it
    tid_events = {}   # tid -> emitted event count
    counts = {"M": 0, "i": 0, "X": 0}

    for n, ev in enumerate(events):
        where = f"event #{n}"
        if not isinstance(ev, dict):
            return fail(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            return fail(f"{where}: unknown phase {ph!r}")
        counts[ph] += 1

        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                return fail(f"{where}: unexpected metadata "
                            f"{ev.get('name')!r}")
            name = ev.get("args", {}).get("name")
            if not isinstance(name, str) or not name:
                return fail(f"{where}: metadata without args.name")
            if ev["name"] == "thread_name":
                if "tid" not in ev:
                    return fail(f"{where}: thread_name without tid")
                named_tids.add(ev["tid"])
                thread_tids.setdefault(name, set()).add(ev["tid"])
            continue

        for key in ("name", "ts", "pid", "tid"):
            if key not in ev:
                return fail(f"{where}: missing {key!r}")
        ts = ev["ts"]
        if not isinstance(ts, int) or ts < 0:
            return fail(f"{where}: bad ts {ts!r}")
        tid = ev["tid"]
        if tid not in named_tids:
            return fail(f"{where}: tid {tid} has no thread_name "
                        "metadata")
        tid_events[tid] = tid_events.get(tid, 0) + 1
        if ph == "i" and ev.get("s") != "t":
            return fail(f"{where}: instant without thread scope")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                return fail(f"{where}: bad dur {dur!r}")

    emitted = counts["i"] + counts["X"]
    if emitted < min_events:
        return fail(f"only {emitted} events, expected at least "
                    f"{min_events}")
    for name in require_threads:
        tids = thread_tids.get(name)
        if not tids:
            return fail(f"required thread {name!r} has no "
                        "thread_name record")
        if not any(tid_events.get(t, 0) for t in tids):
            return fail(f"required thread {name!r} carries no "
                        "events")
    print(f"ok: {emitted} events ({counts['i']} instant, "
          f"{counts['X']} duration) on {len(named_tids)} tracks, "
          f"{counts['M']} metadata records")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="validate Chrome trace-event JSON")
    ap.add_argument("trace", help="trace-event JSON file")
    ap.add_argument("--min-events", type=int, default=1,
                    help="fail when fewer instant/duration events "
                         "are present (default: %(default)s)")
    ap.add_argument("--require-thread", action="append", default=[],
                    metavar="NAME",
                    help="fail unless a thread with this name exists "
                         "and carries events (repeatable)")
    args = ap.parse_args()
    try:
        with open(args.trace) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perfetto_check: cannot read {args.trace}: {e}",
              file=sys.stderr)
        return 2
    return validate(data, args.min_events, args.require_thread)


if __name__ == "__main__":
    sys.exit(main())
