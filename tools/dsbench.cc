/**
 * @file
 * dsbench — load generator and acceptance harness for dsserve.
 *
 * Hammers one daemon with a mixed table of run requests (workloads ×
 * system families × node counts × interconnects) over N concurrent
 * persistent connections, then reports throughput, latency
 * percentiles, and the server's trace-cache hit rate. Three checks
 * gate the exit status:
 *
 *  - every request must succeed (status = ok, non-empty stats JSON),
 *  - the server must report trace-cache hits > 0 (the mix repeats
 *    workloads, so a shared cache must show reuse),
 *  - a spot-checked warm response must byte-match a cold in-process
 *    run of the same request (the dsserve contract: serving adds no
 *    observable difference),
 *  - the server's request-latency histogram (op = metrics) must have
 *    sampled exactly the client-observed completed count — the two
 *    ends of the wire agree on how many runs finished.
 *
 * The report prints latency percentiles from BOTH sides: client-side
 * stopwatch timings and the server's own histogram, a cross-check
 * that the exported metrics describe the load actually applied.
 *
 * Usage:
 *   dsbench [--socket=PATH] [--spawn=DSSERVE] [--requests=N]
 *           [--connections=N] [--max-insts=N] [--trace-dir=DIR]
 *           [--expect-no-captures] [--smoke] [--shutdown]
 *           [--watch[=MS]] [--watch-count=N]
 *
 * Options:
 *   --socket=PATH     daemon socket (default dsserve.sock)
 *   --watch[=MS]      poll op = metrics every MS milliseconds
 *                     (default 500) on a side connection while the
 *                     bench runs, printing a one-line live dashboard
 *                     to stderr; always polls at least once
 *   --watch-count=N   stop watching after N polls (0 = until done)
 *   --spawn=DSSERVE   fork/exec this dsserve binary on --socket,
 *                     bench it, then shut it down and reap it
 *   --trace-dir=DIR   pass a persistent trace store to the spawned
 *                     daemon (--spawn only) and report its disk
 *                     hit/write counters
 *   --expect-no-captures  fail unless the daemon served the whole
 *                     bench with 0 functional captures and > 0 trace
 *                     store disk hits (the warm-restart acceptance
 *                     check: run the bench twice on one --trace-dir)
 *   --requests=N      total requests across all connections
 *                     (default 1000)
 *   --connections=N   concurrent client connections (default 16)
 *   --max-insts=N     per-request instruction budget (default 10000)
 *   --smoke           small preset for CI: 56 requests over 4
 *                     connections at a 2000-instruction budget
 *   --shutdown        just ask the daemon on --socket to shut down
 */

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/kv.hh"
#include "core/sim_config.hh"
#include "driver/run_request.hh"
#include "serve/client.hh"

using namespace dscalar;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dsbench [--socket=PATH] [--spawn=DSSERVE] [--requests=N]"
        "\n               [--connections=N] [--max-insts=N]"
        "\n               [--trace-dir=DIR] [--expect-no-captures]"
        "\n               [--smoke] [--shutdown]"
        "\n               [--watch[=MS]] [--watch-count=N]\n");
    return 2;
}

/** The mixed request table: every entry is a complete RunRequest the
 *  bench cycles through round-robin. Four cheap workloads × three
 *  system families × two node counts, plus a ring variant per
 *  workload; one shared budget so the server's trace cache sees one
 *  capture per workload and hits for everything else. */
std::vector<driver::RunRequest>
buildMix(InstSeq budget)
{
    static const char *const kWorkloads[] = {"go_s", "compress_s",
                                             "li_s", "perl_s"};
    static const driver::SystemKind kSystems[] = {
        driver::SystemKind::DataScalar,
        driver::SystemKind::Traditional,
        driver::SystemKind::Perfect,
    };

    std::vector<driver::RunRequest> mix;
    for (const char *workload : kWorkloads) {
        for (driver::SystemKind system : kSystems) {
            for (unsigned nodes : {2u, 4u}) {
                driver::RunRequest req;
                req.workload = workload;
                req.system = system;
                req.config.numNodes = nodes;
                req.config.maxInsts = budget;
                mix.push_back(req);
            }
        }
        driver::RunRequest ring;
        ring.workload = workload;
        ring.system = driver::SystemKind::DataScalar;
        ring.config.numNodes = 4;
        ring.config.interconnect = core::InterconnectKind::Ring;
        ring.config.maxInsts = budget;
        mix.push_back(ring);
    }
    return mix;
}

/** Pull one counter value out of a stats JSON document: the first
 *  `"name":{"value":N` after the first occurrence of `"group"`.
 *  Narrow by design — dsbench only reads documents it just requested
 *  from a matching server. */
bool
extractCounter(const std::string &json, const std::string &group,
               const std::string &name, std::uint64_t &out)
{
    std::size_t g = json.find("\"" + group + "\"");
    if (g == std::string::npos)
        return false;
    std::string needle = "\"" + name + "\":{\"value\":";
    std::size_t n = json.find(needle, g);
    if (n == std::string::npos)
        return false;
    std::size_t digits = n + needle.size();
    std::size_t end = digits;
    while (end < json.size() && json[end] >= '0' && json[end] <= '9')
        ++end;
    if (end == digits)
        return false;
    return common::kv::parseU64(json.substr(digits, end - digits), out);
}

struct BenchResult
{
    std::vector<double> latenciesMs;
    std::uint64_t failures = 0;
    std::uint64_t clientCacheHits = 0;
    double wallSeconds = 0.0;
};

BenchResult
runBench(const std::string &socket_path,
         const std::vector<driver::RunRequest> &mix,
         std::uint64_t total_requests, unsigned connections)
{
    BenchResult result;
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> hits{0};
    std::vector<std::vector<double>> lanes(connections);
    std::vector<std::thread> workers;

    auto start = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < connections; ++c) {
        workers.emplace_back([&, c] {
            serve::Client client;
            std::string error;
            if (!client.connect(socket_path, error)) {
                // Count every request this lane would have served as
                // failed rather than silently shrinking the load.
                std::size_t i;
                while ((i = next.fetch_add(1)) < total_requests)
                    failures.fetch_add(1);
                return;
            }
            std::size_t i;
            while ((i = next.fetch_add(1)) < total_requests) {
                const driver::RunRequest &req = mix[i % mix.size()];
                auto t0 = std::chrono::steady_clock::now();
                serve::Reply reply = client.run(req);
                auto t1 = std::chrono::steady_clock::now();
                lanes[c].push_back(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
                if (!reply.ok || reply.json.empty())
                    failures.fetch_add(1);
                else if (reply.field("cache_hit") == "1")
                    hits.fetch_add(1);
            }
        });
    }
    for (std::thread &t : workers)
        t.join();
    auto stop = std::chrono::steady_clock::now();

    result.wallSeconds =
        std::chrono::duration<double>(stop - start).count();
    result.failures = failures.load();
    result.clientCacheHits = hits.load();
    for (std::vector<double> &lane : lanes)
        result.latenciesMs.insert(result.latenciesMs.end(),
                                  lane.begin(), lane.end());
    std::sort(result.latenciesMs.begin(), result.latenciesMs.end());
    return result;
}

double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx = static_cast<std::size_t>(q * sorted.size());
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

/** One parsed snapshot of the daemon's Prometheus text exposition
 *  (op = metrics): the headline counters plus the request-latency
 *  histogram's cumulative buckets, enough for percentiles. */
struct MetricsSample
{
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t queueDepth = 0;
    std::uint64_t latencyCount = 0;
    /** (upper bound in us, cumulative count), ascending, +Inf elided. */
    std::vector<std::pair<double, std::uint64_t>> latencyBuckets;
};

bool
parseMetrics(const std::string &text, MetricsSample &out)
{
    static const char *const kBucketPrefix =
        "dsserve_request_latency_us_bucket{le=\"";
    bool any = false;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        std::size_t sp = line.find_last_of(' ');
        if (sp == std::string::npos)
            continue;
        std::string name = line.substr(0, sp);
        std::string value = line.substr(sp + 1);
        std::uint64_t v = 0;
        if (name == "dsserve_requests_total" &&
            common::kv::parseU64(value, v)) {
            out.requests = v;
            any = true;
        } else if (name == "dsserve_completed_total" &&
                   common::kv::parseU64(value, v)) {
            out.completed = v;
            any = true;
        } else if (name == "dsserve_failed_total" &&
                   common::kv::parseU64(value, v)) {
            out.failed = v;
            any = true;
        } else if (name == "dsserve_queue_depth" &&
                   common::kv::parseU64(value, v)) {
            out.queueDepth = v;
        } else if (name == "dsserve_request_latency_us_count" &&
                   common::kv::parseU64(value, v)) {
            out.latencyCount = v;
            any = true;
        } else if (name.rfind(kBucketPrefix, 0) == 0) {
            std::string le = name.substr(std::strlen(kBucketPrefix));
            std::size_t quote = le.find('"');
            if (quote == std::string::npos || le[0] == '+')
                continue; // +Inf duplicates _count
            if (!common::kv::parseU64(value, v))
                continue;
            out.latencyBuckets.emplace_back(
                std::strtod(le.substr(0, quote).c_str(), nullptr), v);
        }
    }
    return any;
}

/** Percentile in milliseconds from cumulative histogram buckets: the
 *  upper bound of the first bucket holding the target rank (so an
 *  over-estimate by at most one bucket width). */
double
histPercentileMs(const MetricsSample &m, double q)
{
    if (m.latencyCount == 0 || m.latencyBuckets.empty())
        return 0.0;
    std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(m.latencyCount));
    if (target == 0)
        target = 1;
    for (const auto &bucket : m.latencyBuckets)
        if (bucket.second >= target)
            return bucket.first / 1000.0;
    // Rank lives in the +Inf overflow bucket; the last finite bound
    // is the best (under-)estimate available.
    return m.latencyBuckets.back().first / 1000.0;
}

/** One op = metrics poll on a fresh connection. */
bool
pollMetrics(const std::string &socket_path, MetricsSample &out)
{
    serve::Client client;
    std::string error;
    if (!client.connect(socket_path, error))
        return false;
    serve::Reply reply = client.metrics();
    return reply.ok && parseMetrics(reply.json, out);
}

/** Re-run @p req cold in-process (fresh trace, no cache, the same
 *  flight-recorder arming dsserve applies) and compare the stats
 *  JSON byte-for-byte with the warm server reply. */
bool
spotCheck(const std::string &socket_path, driver::RunRequest req)
{
    serve::Client client;
    std::string error;
    if (!client.connect(socket_path, error)) {
        std::fprintf(stderr, "dsbench: spot check connect: %s\n",
                     error.c_str());
        return false;
    }
    serve::Reply warm = client.run(req);
    if (!warm.ok) {
        std::fprintf(stderr, "dsbench: spot check request: %s\n",
                     warm.error.c_str());
        return false;
    }

    req.flightRecorder = true;
    driver::RunResponse cold = driver::runOne(req);
    if (!cold.ok()) {
        std::fprintf(stderr, "dsbench: spot check local run: %s\n",
                     cold.error.c_str());
        return false;
    }
    if (warm.json != cold.statsJson()) {
        std::fprintf(stderr,
                     "dsbench: SPOT CHECK MISMATCH: warm server JSON "
                     "(%zu bytes) != cold local JSON (%zu bytes)\n",
                     warm.json.size(), cold.statsJson().size());
        return false;
    }
    return true;
}

bool
flagValue(const std::string &arg, const char *name, std::string &value)
{
    std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path = "dsserve.sock";
    std::string spawn_path;
    std::uint64_t total_requests = 1000;
    std::uint64_t connections = 16;
    std::uint64_t budget = 10000;
    std::string trace_dir;
    bool expect_no_captures = false;
    bool shutdown_only = false;
    bool watch = false;
    std::uint64_t watch_interval_ms = 500;
    std::uint64_t watch_count = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        if (arg == "--smoke") {
            total_requests = 56;
            connections = 4;
            budget = 2000;
        } else if (arg == "--shutdown") {
            shutdown_only = true;
        } else if (arg == "--expect-no-captures") {
            expect_no_captures = true;
        } else if (arg == "--watch") {
            watch = true;
        } else if (flagValue(arg, "--watch", value)) {
            watch = true;
            if (!common::kv::parseU64(value, watch_interval_ms) ||
                watch_interval_ms == 0)
                return usage();
        } else if (flagValue(arg, "--watch-count", value)) {
            if (!common::kv::parseU64(value, watch_count))
                return usage();
        } else if (flagValue(arg, "--trace-dir", value)) {
            trace_dir = value;
        } else if (flagValue(arg, "--socket", value)) {
            socket_path = value;
        } else if (flagValue(arg, "--spawn", value)) {
            spawn_path = value;
        } else if (flagValue(arg, "--requests", value)) {
            if (!common::kv::parseU64(value, total_requests))
                return usage();
        } else if (flagValue(arg, "--connections", value)) {
            if (!common::kv::parseU64(value, connections) ||
                connections == 0)
                return usage();
        } else if (flagValue(arg, "--max-insts", value)) {
            if (!common::kv::parseU64(value, budget) || budget == 0)
                return usage();
        } else {
            return usage();
        }
    }

    if (shutdown_only) {
        serve::Client client;
        std::string error;
        if (!client.connect(socket_path, error)) {
            std::fprintf(stderr, "dsbench: %s\n", error.c_str());
            return 1;
        }
        serve::Reply reply = client.shutdown();
        if (!reply.ok) {
            std::fprintf(stderr, "dsbench: %s\n", reply.error.c_str());
            return 1;
        }
        return 0;
    }

    pid_t daemon = -1;
    if (!spawn_path.empty()) {
        daemon = fork();
        if (daemon < 0) {
            std::perror("dsbench: fork");
            return 1;
        }
        if (daemon == 0) {
            std::string socket_arg = "--socket=" + socket_path;
            std::string trace_arg = "--trace-dir=" + trace_dir;
            if (trace_dir.empty())
                execl(spawn_path.c_str(), spawn_path.c_str(),
                      socket_arg.c_str(), (char *)nullptr);
            else
                execl(spawn_path.c_str(), spawn_path.c_str(),
                      socket_arg.c_str(), trace_arg.c_str(),
                      (char *)nullptr);
            std::perror("dsbench: exec dsserve");
            _exit(127);
        }
        // Wait for the daemon's socket to come up.
        bool up = false;
        for (int attempt = 0; attempt < 250 && !up; ++attempt) {
            serve::Client probe;
            std::string error;
            if (probe.connect(socket_path, error) && probe.ping().ok)
                up = true;
            else
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
        }
        if (!up) {
            std::fprintf(stderr,
                         "dsbench: spawned dsserve never came up on "
                         "%s\n", socket_path.c_str());
            kill(daemon, SIGKILL);
            waitpid(daemon, nullptr, 0);
            return 1;
        }
    }

    std::vector<driver::RunRequest> mix = buildMix(budget);

    // The live dashboard: a side thread polling op = metrics while
    // the bench runs. Guaranteed at least one poll (do/while) so a
    // fast bench still exercises the wire path.
    std::atomic<bool> bench_done{false};
    std::thread watcher;
    if (watch) {
        watcher = std::thread([&] {
            std::uint64_t polls = 0;
            do {
                MetricsSample m;
                if (pollMetrics(socket_path, m)) {
                    ++polls;
                    std::fprintf(
                        stderr,
                        "dsbench watch: completed %llu/%llu failed "
                        "%llu queue %llu p50 %.1f ms p99 %.1f ms\n",
                        (unsigned long long)m.completed,
                        (unsigned long long)total_requests,
                        (unsigned long long)m.failed,
                        (unsigned long long)m.queueDepth,
                        histPercentileMs(m, 0.50),
                        histPercentileMs(m, 0.99));
                }
                if (watch_count && polls >= watch_count)
                    break;
                for (std::uint64_t slept = 0;
                     slept < watch_interval_ms && !bench_done.load();
                     slept += 20)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
            } while (!bench_done.load());
        });
    }

    BenchResult bench = runBench(socket_path, mix, total_requests,
                                 static_cast<unsigned>(connections));
    bench_done.store(true);
    if (watcher.joinable())
        watcher.join();

    // Fetch the metrics exposition BEFORE the spot check: at this
    // point the latency histogram has sampled exactly the bench's
    // completed runs, so its _count must equal the client-observed
    // completed count (the spot check would add one more).
    MetricsSample metrics;
    bool have_metrics = pollMetrics(socket_path, metrics);

    bool spot_ok = spotCheck(socket_path, mix[0]);

    std::uint64_t server_hits = 0, server_captures = 0;
    std::uint64_t server_requests = 0, server_completed = 0;
    std::uint64_t disk_hits = 0, disk_writes = 0;
    {
        serve::Client client;
        std::string error;
        if (client.connect(socket_path, error)) {
            serve::Reply stats = client.serverStats();
            if (stats.ok) {
                extractCounter(stats.json, "trace_cache", "hits",
                               server_hits);
                extractCounter(stats.json, "trace_cache", "captures",
                               server_captures);
                extractCounter(stats.json, "server", "requests",
                               server_requests);
                extractCounter(stats.json, "server", "completed",
                               server_completed);
                extractCounter(stats.json, "trace_cache", "disk_hits",
                               disk_hits);
                extractCounter(stats.json, "trace_cache",
                               "disk_writes", disk_writes);
            }
        }
    }

    if (daemon > 0) {
        serve::Client client;
        std::string error;
        if (client.connect(socket_path, error))
            client.shutdown();
        waitpid(daemon, nullptr, 0);
    }

    double thrpt = bench.wallSeconds > 0
                       ? total_requests / bench.wallSeconds
                       : 0.0;
    std::printf("dsbench: %llu requests over %llu connections "
                "(%zu-entry mix, %llu-inst budget)\n",
                (unsigned long long)total_requests,
                (unsigned long long)connections, mix.size(),
                (unsigned long long)budget);
    std::printf("  wall %.2f s, %.1f req/s, failures %llu\n",
                bench.wallSeconds, thrpt,
                (unsigned long long)bench.failures);
    std::printf("  latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n",
                percentile(bench.latenciesMs, 0.50),
                percentile(bench.latenciesMs, 0.90),
                percentile(bench.latenciesMs, 0.99),
                percentile(bench.latenciesMs, 1.0));
    if (have_metrics)
        std::printf("  server latency ms: p50 %.2f  p90 %.2f  "
                    "p99 %.2f  (histogram n=%llu)\n",
                    histPercentileMs(metrics, 0.50),
                    histPercentileMs(metrics, 0.90),
                    histPercentileMs(metrics, 0.99),
                    (unsigned long long)metrics.latencyCount);
    std::printf("  trace cache: client-observed hits %llu, server "
                "hits %llu / captures %llu\n",
                (unsigned long long)bench.clientCacheHits,
                (unsigned long long)server_hits,
                (unsigned long long)server_captures);
    std::printf("  trace store: disk hits %llu, disk writes %llu\n",
                (unsigned long long)disk_hits,
                (unsigned long long)disk_writes);
    std::printf("  server: requests %llu, completed %llu\n",
                (unsigned long long)server_requests,
                (unsigned long long)server_completed);
    std::printf("  warm-vs-cold spot check: %s\n",
                spot_ok ? "byte-identical" : "MISMATCH");

    if (bench.failures != 0) {
        std::fprintf(stderr, "dsbench: FAIL: %llu failed requests\n",
                     (unsigned long long)bench.failures);
        return 1;
    }
    if (server_hits == 0) {
        std::fprintf(stderr,
                     "dsbench: FAIL: server reported no trace-cache "
                     "hits\n");
        return 1;
    }
    if (expect_no_captures &&
        (server_captures != 0 || disk_hits == 0)) {
        std::fprintf(stderr,
                     "dsbench: FAIL: expected a warm trace store "
                     "(captures %llu, disk hits %llu)\n",
                     (unsigned long long)server_captures,
                     (unsigned long long)disk_hits);
        return 1;
    }
    std::uint64_t client_completed = total_requests - bench.failures;
    if (!have_metrics || metrics.latencyCount != client_completed) {
        std::fprintf(stderr,
                     "dsbench: FAIL: server latency histogram count "
                     "%llu != client-observed completed %llu\n",
                     (unsigned long long)metrics.latencyCount,
                     (unsigned long long)client_completed);
        return 1;
    }
    if (!spot_ok)
        return 1;
    return 0;
}
