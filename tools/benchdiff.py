#!/usr/bin/env python3
"""Compare two JSON dumps: google-benchmark runs or dsrun stats.

Benchmark mode — the simspeed baseline workflow:

    build/bench/simspeed --benchmark_out=new.json \
                         --benchmark_out_format=json
    tools/benchdiff.py simspeed.benchmark.json new.json

Benchmarks are matched by name. The primary metric is
items_per_second (simulated instructions per wall second, which every
simspeed benchmark reports); real_time is the fallback, normalized
through time_unit. A benchmark is a regression when it got slower by
more than --threshold (default 20%, generous because single-machine
wall-clock — especially on loaded CI hosts — is noisy; tighten for a
quiet dedicated box).

Stats mode — selected automatically when both inputs carry a
"groups" key (dsrun --stats-json output, docs/OBSERVABILITY.md):

    build/tools/dsrun --system=datascalar --stats-json=a.json ...
    tools/benchdiff.py a.json b.json [--tolerance=0.01]

Every stat field is flattened to group.stat.field and compared
numerically; simulated counters are deterministic, so the default
tolerance is exact. --tolerance accepts a relative bound for
intentionally-perturbed comparisons (e.g. across fault seeds).

Wall-clock stats are the exception: the `profile` group (dsrun
--profile), the server's `latency`/`phases` groups (dsserve op =
stats snapshots), and any stat named *_us measure wall time, which
never repeats exactly. Those keys get their own generous bound,
--wall-tolerance (default 1.0 = a factor of two, with a 1000 us
absolute floor so microsecond-scale phases don't trip it), while the
deterministic counters in the same documents stay exact. This lets
one invocation diff a full --profile dump or two dsserve stats
snapshots without hand-filtering the timing keys.

Exit status: 0 = no regressions / all stats within tolerance,
1 = at least one difference beyond the bound, 2 = usage/input error.
"""

import argparse
import json
import sys

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"benchdiff: cannot read {path}: {e}")


def load_rows(path, data):
    """name -> (metric_value, higher_is_better) for every real run."""
    rows = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b["name"]
        if "items_per_second" in b:
            rows[name] = (float(b["items_per_second"]), True)
        elif "real_time" in b:
            scale = _TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
            rows[name] = (float(b["real_time"]) * scale, False)
    if not rows:
        sys.exit(f"benchdiff: no benchmark rows in {path}")
    return rows


# Stats groups whose values are wall-clock measurements rather than
# deterministic simulation counters.
_WALL_GROUPS = {"profile", "latency", "phases"}

# Absolute slack (in the stat's own unit, microseconds for every
# wall-clock stat we emit) under which a wall-clock delta is noise
# regardless of its relative size.
_WALL_ABS_FLOOR = 1000.0


def is_wall_clock(key):
    """True for keys measuring wall time: the profile group, the
    server latency/phase groups, and any *_us stat."""
    parts = key.split(".")
    if parts and parts[0] in _WALL_GROUPS:
        return True
    return len(parts) >= 2 and parts[1].endswith("_us")


def flatten_stats(data):
    """group.stat.field -> numeric value for a dsrun stats dump."""
    flat = {}
    for group, stats in data.get("groups", {}).items():
        for stat, fields in stats.items():
            for field, value in fields.items():
                key = f"{group}.{stat}.{field}"
                if isinstance(value, list):
                    for i, v in enumerate(value):
                        flat[f"{key}[{i}]"] = float(v)
                else:
                    flat[key] = float(value)
    return flat


def diff_stats(base_data, cur_data, tolerance, wall_tolerance):
    base = flatten_stats(base_data)
    cur = flatten_stats(cur_data)
    if not base or not cur:
        sys.exit("benchdiff: no stats in one of the inputs")

    diffs = []
    print(f"{'stat':<52} {'baseline':>14} {'current':>14} "
          f"{'delta':>12}")
    for key in sorted(base):
        if key not in cur:
            print(f"{key:<52} {'(missing in current)':>42}")
            diffs.append((key, None))
            continue
        b, c = base[key], cur[key]
        delta = c - b
        rel = abs(delta) / abs(b) if b != 0 else float("inf")
        if is_wall_clock(key):
            within = (rel <= wall_tolerance or
                      abs(delta) <= _WALL_ABS_FLOOR)
        else:
            within = delta == 0 or rel <= tolerance
        if not within:
            diffs.append((key, delta))
        if delta != 0:
            mark = "" if within else "  DIFF"
            print(f"{key:<52} {b:>14.6g} {c:>14.6g} "
                  f"{delta:>+12.6g}{mark}")
    for key in sorted(set(cur) - set(base)):
        print(f"{key:<52} {'(new, no baseline)':>42}")

    if diffs:
        print(f"\n{len(diffs)} stat(s) beyond tolerance "
              f"{tolerance:g} (wall-clock: {wall_tolerance:g}):",
              file=sys.stderr)
        for key, delta in diffs:
            what = "missing" if delta is None else f"{delta:+g}"
            print(f"  {key}: {what}", file=sys.stderr)
        return 1
    print(f"\nall stats within tolerance {tolerance:g}")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="diff two google-benchmark or dsrun-stats JSON "
                    "dumps")
    ap.add_argument("baseline", help="reference JSON dump")
    ap.add_argument("current", help="candidate JSON dump")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fractional slowdown that counts as a "
                         "regression (benchmark mode, default: "
                         "%(default)s)")
    ap.add_argument("--tolerance", type=float, default=0.0,
                    help="relative per-stat bound (stats mode, "
                         "default: exact)")
    ap.add_argument("--wall-tolerance", type=float, default=1.0,
                    help="relative bound for wall-clock stats "
                         "(profile/latency/phases groups, *_us "
                         "stats; 1000 us absolute floor applies, "
                         "default: %(default)s)")
    args = ap.parse_args()
    if args.threshold < 0:
        ap.error("--threshold must be >= 0")
    if args.tolerance < 0:
        ap.error("--tolerance must be >= 0")
    if args.wall_tolerance < 0:
        ap.error("--wall-tolerance must be >= 0")

    base_data = load_json(args.baseline)
    cur_data = load_json(args.current)
    base_is_stats = "groups" in base_data
    if base_is_stats != ("groups" in cur_data):
        sys.exit("benchdiff: cannot mix a stats dump with a "
                 "benchmark dump")
    if base_is_stats:
        return diff_stats(base_data, cur_data, args.tolerance,
                          args.wall_tolerance)

    base = load_rows(args.baseline, base_data)
    cur = load_rows(args.current, cur_data)

    regressions = []
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} "
          f"{'speedup':>8}")
    for name in sorted(base):
        if name not in cur:
            print(f"{name:<44} {'(missing in current)':>34}")
            continue
        bval, higher_better = base[name]
        cval, _ = cur[name]
        if bval <= 0 or cval <= 0:
            continue
        # speedup > 1 means the current run is faster.
        speedup = (cval / bval) if higher_better else (bval / cval)
        mark = ""
        if speedup < 1.0 - args.threshold:
            mark = "  REGRESSION"
            regressions.append((name, speedup))
        print(f"{name:<44} {bval:>12.4g} {cval:>12.4g} "
              f"{speedup:>7.2f}x{mark}")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<44} {'(new, no baseline)':>34}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, speedup in regressions:
            print(f"  {name}: {speedup:.2f}x", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
