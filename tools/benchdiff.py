#!/usr/bin/env python3
"""Compare two google-benchmark JSON dumps and flag regressions.

Intended for the simspeed baseline workflow:

    build/bench/simspeed --benchmark_out=new.json \
                         --benchmark_out_format=json
    tools/benchdiff.py simspeed.benchmark.json new.json

Benchmarks are matched by name. The primary metric is
items_per_second (simulated instructions per wall second, which every
simspeed benchmark reports); real_time is the fallback, normalized
through time_unit. A benchmark is a regression when it got slower by
more than --threshold (default 20%, generous because single-machine
wall-clock — especially on loaded CI hosts — is noisy; tighten for a
quiet dedicated box). Exit status: 0 = no regressions, 1 = at least
one, 2 = usage/input error.
"""

import argparse
import json
import sys

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_rows(path):
    """name -> (metric_value, higher_is_better) for every real run."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"benchdiff: cannot read {path}: {e}")
    rows = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b["name"]
        if "items_per_second" in b:
            rows[name] = (float(b["items_per_second"]), True)
        elif "real_time" in b:
            scale = _TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
            rows[name] = (float(b["real_time"]) * scale, False)
    if not rows:
        sys.exit(f"benchdiff: no benchmark rows in {path}")
    return rows


def main():
    ap = argparse.ArgumentParser(
        description="diff two google-benchmark JSON dumps")
    ap.add_argument("baseline", help="reference JSON dump")
    ap.add_argument("current", help="candidate JSON dump")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="fractional slowdown that counts as a "
                         "regression (default: %(default)s)")
    args = ap.parse_args()
    if args.threshold < 0:
        ap.error("--threshold must be >= 0")

    base = load_rows(args.baseline)
    cur = load_rows(args.current)

    regressions = []
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} "
          f"{'speedup':>8}")
    for name in sorted(base):
        if name not in cur:
            print(f"{name:<44} {'(missing in current)':>34}")
            continue
        bval, higher_better = base[name]
        cval, _ = cur[name]
        if bval <= 0 or cval <= 0:
            continue
        # speedup > 1 means the current run is faster.
        speedup = (cval / bval) if higher_better else (bval / cval)
        mark = ""
        if speedup < 1.0 - args.threshold:
            mark = "  REGRESSION"
            regressions.append((name, speedup))
        print(f"{name:<44} {bval:>12.4g} {cval:>12.4g} "
              f"{speedup:>7.2f}x{mark}")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<44} {'(new, no baseline)':>34}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, speedup in regressions:
            print(f"  {name}: {speedup:.2f}x", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
