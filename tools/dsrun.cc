/**
 * @file
 * dsrun — command-line driver: assemble a .s file (or pick a
 * registered workload) and run it functionally or on any of the
 * timing systems. One-shot front end over driver::RunRequest — every
 * `--key=value` flag below maps 1:1 onto a serialized RunRequest key
 * (dashes to underscores), so a dsrun invocation, a dsfuzz repro
 * file, and a dsserve wire request can describe the same run.
 *
 * Usage:
 *   dsrun [options] <program.s | workload-name>
 *
 * Options:
 *   --system=func|perfect|traditional|datascalar   (default func)
 *   --nodes=N          node count (default 2)
 *   --ring             use the ring interconnect (DataScalar only)
 *   --max-insts=N      truncate the run (default: completion)
 *   --scale=N          workload build scale (registered workloads)
 *   --block-pages=N    round-robin distribution block (default 1)
 *   --jobs=N           sweep worker threads (default 1; 0 = all cores)
 *   --tick-threads=N   tick nodes of ONE simulation on N threads in
 *                      conservative windows; byte-identical results
 *                      (default 1 = serial; 0 = all cores, clamped
 *                      to the node count). Composes with --jobs: a
 *                      sweep runs jobs × tick-threads workers.
 *   --no-skip          disable event-driven cycle skipping
 *   --stats            print the full statistics dump
 *   --stats-json=FILE  write run metadata + every stat as JSON
 *                      (schema: docs/OBSERVABILITY.md). FILE "-"
 *                      writes the document to stdout and reroutes
 *                      all human output to stderr, so the result
 *                      pipes cleanly into jq and friends.
 *   --sample-interval=N  sample a per-node timeline every N cycles
 *                      into the stats JSON ("timeline" key)
 *   --profile          measure where wall time goes: request spans
 *                      (build / trace acquisition / sim_run) plus
 *                      the run loop's per-phase attribution, printed
 *                      as a human summary and exported as the
 *                      `profile` stats group. Wall-clock only —
 *                      simulated results are byte-identical.
 *   --perfetto=FILE    write the protocol event stream as Chrome
 *                      trace-event JSON (open in ui.perfetto.dev);
 *                      with --profile the wall-clock spans ride
 *                      along as their own process track. FILE "-"
 *                      streams the JSON to stdout (human output
 *                      moves to stderr).
 *   --trace-dir=DIR    persistent trace store: mmap-load this run's
 *                      captured trace from DIR when a valid file is
 *                      there, else capture and save it for the next
 *                      process (docs/PERF.md "Persistent trace store")
 *   --trace            stream protocol events to stderr
 *   --fault-drop=P     drop each transmission with probability P
 *   --fault-dup=P      duplicate each transmission with probability P
 *   --fault-delay=P    jitter each delivery with probability P
 *   --fault-max-delay=N  jitter uniform in [1,N] cycles
 *   --fault-seed=S     fault decision-stream seed (default 1)
 *   --rerequest-timeout=N  re-request a missing broadcast after N
 *                      cycles (default 2000 when faults or --bshr-hard
 *                      are on, else recovery off)
 *   --bshr-hard        enforce BSHR capacity (stall + re-request)
 *   --sweep            run the Figure 7 sweep over the timing
 *                      workloads instead of one program
 *   --no-trace-reuse   capture no shared traces: re-execute each
 *                      sweep point functionally (slower, identical
 *                      numbers)
 *   --list             list registered workloads
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/kv.hh"
#include "driver/driver.hh"
#include "func/func_sim.hh"
#include "obs/span.hh"
#include "prog/asm_parser.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dsrun [--system=func|perfect|traditional|datascalar]"
        "\n             [--nodes=N] [--ring] [--max-insts=N]"
        "\n             [--scale=N] [--block-pages=N] [--jobs=N]"
        "\n             [--tick-threads=N]"
        "\n             [--no-skip] [--stats] [--stats-json=FILE|-]"
        "\n             [--sample-interval=N] [--profile]"
        "\n             [--perfetto=FILE|-]"
        "\n             [--trace-dir=DIR] [--trace]"
        "\n             [--fault-drop=P] [--fault-dup=P]"
        "\n             [--fault-delay=P] [--fault-max-delay=N]"
        "\n             [--fault-seed=S] [--rerequest-timeout=N]"
        "\n             [--bshr-hard]"
        "\n             <program.s | workload-name>\n"
        "       dsrun --sweep [--max-insts=N] [--jobs=N] "
        "[--no-skip] [--no-trace-reuse]\n"
        "       dsrun --list\n");
    return 2;
}

bool
isRegisteredWorkload(const std::string &name)
{
    for (const auto &w : workloads::allWorkloads())
        if (name == w.name)
            return true;
    return false;
}

/** `--long-flag=value` -> RunRequest key `long_flag` + value.
 *  @return false for non-flag arguments. */
bool
argToKey(const std::string &arg, std::string &key, std::string &value)
{
    if (arg.rfind("--", 0) != 0)
        return false;
    std::size_t eq = arg.find('=');
    key = arg.substr(2, eq == std::string::npos ? std::string::npos
                                                : eq - 2);
    value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    for (char &c : key)
        if (c == '-')
            c = '_';
    return true;
}

/** The --profile human summary: the request's span tree (closed
 *  spans, indented by nesting) and the run loop's phase attribution
 *  with percentages of the phase total. */
void
printProfileSummary(std::FILE *out, const obs::SpanRecorder &rec)
{
    std::fprintf(out, "-- wall-clock profile\n");
    std::fprintf(out, "request spans:\n");
    for (const auto &span : rec.spans()) {
        if (span.open)
            continue;
        std::fprintf(out, "  %*s%-20s %10llu us\n", span.depth * 2, "",
                     span.name,
                     (unsigned long long)(span.durNs / 1000));
    }
    if (rec.phaseCount() == 0)
        return;
    std::uint64_t total_ns = rec.phaseTotalNs();
    std::fprintf(out, "run-loop phases:\n");
    for (unsigned i = 0; i < rec.phaseCount(); ++i) {
        double pct = total_ns
                         ? 100.0 * static_cast<double>(rec.phaseNs(i)) /
                               static_cast<double>(total_ns)
                         : 0.0;
        std::fprintf(out, "  %-22s %10llu us  %5.1f%%\n",
                     rec.phaseName(i),
                     (unsigned long long)rec.phaseUs(i), pct);
    }
    std::fprintf(out, "  %-22s %10llu us  100.0%%\n", "phase total",
                 (unsigned long long)(total_ns / 1000));
}

} // namespace

int
main(int argc, char **argv)
{
    driver::RunRequest req;
    std::string system = "func";
    std::string statsJsonPath;
    std::string target;
    unsigned jobs = 1;
    bool stats = false;
    bool sweep = false;
    bool noTraceReuse = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto &w : workloads::allWorkloads())
                std::printf("%-12s %-9s %s\n", w.name, w.spec,
                            w.desc);
            return 0;
        } else if (arg == "--trace") {
            req.traceToStderr = true;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg == "--no-trace-reuse") {
            noTraceReuse = true;
        } else if (arg == "--ring") {
            req.config.interconnect = core::InterconnectKind::Ring;
        } else if (arg == "--no-skip") {
            req.config.eventDriven = false;
        } else if (arg == "--bshr-hard") {
            req.config.bshrHardCapacity = true;
        } else if (arg == "--profile") {
            req.profile = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::string key, value;
            if (!argToKey(arg, key, value))
                return usage();
            if (key == "system") {
                system = value;
                continue;
            }
            if (key == "jobs") {
                std::uint64_t v = 0;
                if (!common::kv::parseU64(value, v))
                    return usage();
                jobs = static_cast<unsigned>(v);
                continue;
            }
            if (key == "stats_json") {
                statsJsonPath = value;
                continue;
            }
            // Everything else is a serialized RunRequest key.
            std::string error;
            if (!driver::applyRunRequestKey(req, key, value, error)) {
                std::fprintf(stderr, "dsrun: %s\n", error.c_str());
                return usage();
            }
        } else {
            target = arg;
        }
    }

    if (sweep) {
        InstSeq budget =
            req.config.maxInsts ? req.config.maxInsts : 100'000;
        stats::Table table = driver::fig7IpcTable(
            workloads::timingWorkloadNames(), budget, jobs,
            req.config.eventDriven, !noTraceReuse);
        table.print(std::cout);
        return 0;
    }
    if (target.empty())
        return usage();

    driver::finalizeRunRequest(req);
    req.workload = target;
    if (!isRegisteredWorkload(target)) {
        // Assemble a local .s file; fatal on parse errors, exactly
        // like the registry build path.
        req.program = std::make_shared<const prog::Program>(
            prog::assembleFile(target));
    }

    if (system == "func") {
        prog::Program program =
            req.program ? *req.program
                        : workloads::findWorkload(target).build(
                              req.scale);
        func::FuncSim sim(program);
        sim.run(req.config.maxInsts ? req.config.maxInsts
                                    : ~static_cast<InstSeq>(0));
        std::printf("%s", sim.output().c_str());
        std::printf("-- %llu instructions, halted=%d\n",
                    (unsigned long long)sim.retired(),
                    sim.halted() ? 1 : 0);
        return 0;
    }

    std::optional<driver::SystemKind> kind =
        driver::parseSystemKind(system);
    if (!kind)
        return usage();
    req.system = *kind;
    req.flightRecorder = true;

    // The "-" convention: when stdout carries a machine payload
    // (stats JSON or a streamed Perfetto trace), every human line —
    // program output, dumps, summaries — moves to stderr.
    bool stdout_is_payload =
        statsJsonPath == "-" || req.perfettoPath == "-";
    std::FILE *human = stdout_is_payload ? stderr : stdout;

    obs::SpanRecorder rec;
    if (req.profile)
        req.spans = &rec;

    driver::RunResponse resp = driver::runOne(req);
    if (!resp.ok()) {
        std::fprintf(stderr, "dsrun: %s\n", resp.error.c_str());
        return 2;
    }
    std::fprintf(human, "%s", resp.output.c_str());
    if (stats)
        resp.result.stats->dump(stdout_is_payload ? std::cerr
                                                  : std::cout);

    if (statsJsonPath == "-") {
        std::cout << resp.statsJson();
    } else if (!statsJsonPath.empty()) {
        std::ofstream js(statsJsonPath);
        if (!js) {
            std::fprintf(stderr, "dsrun: cannot write %s\n",
                         statsJsonPath.c_str());
            return 2;
        }
        js << resp.statsJson();
    }

    // Faults and hard BSHR capacity break the exactly-once delivery
    // the drained invariant rests on; residue there is expected, not
    // a protocol bug.
    if (req.system == driver::SystemKind::DataScalar &&
        !resp.drained && !req.config.fault.enabled() &&
        !req.config.bshrHardCapacity)
        std::fprintf(stderr, "warning: protocol not drained\n");

    if (req.profile)
        printProfileSummary(human, rec);

    std::fprintf(human,
                 "-- %s: %llu instructions, %llu cycles, IPC %.3f\n",
                 system.c_str(),
                 (unsigned long long)resp.result.instructions,
                 (unsigned long long)resp.result.cycles,
                 resp.result.ipc);
    return 0;
}
