/**
 * @file
 * dsrun — command-line driver: assemble a .s file (or pick a
 * registered workload) and run it functionally or on any of the
 * timing systems.
 *
 * Usage:
 *   dsrun [options] <program.s | workload-name>
 *
 * Options:
 *   --system=func|perfect|traditional|datascalar   (default func)
 *   --nodes=N          node count (default 2)
 *   --ring             use the ring interconnect (DataScalar only)
 *   --max-insts=N      truncate the run (default: completion)
 *   --scale=N          workload build scale (registered workloads)
 *   --block-pages=N    round-robin distribution block (default 1)
 *   --jobs=N           sweep worker threads (default 1; 0 = all cores)
 *   --tick-threads=N   tick nodes of ONE simulation on N threads in
 *                      conservative windows; byte-identical results
 *                      (default 1 = serial; 0 = all cores, clamped
 *                      to the node count). Composes with --jobs: a
 *                      sweep runs jobs × tick-threads workers.
 *   --no-skip          disable event-driven cycle skipping
 *   --stats            print the full statistics dump
 *   --stats-json=FILE  write run metadata + every stat as JSON
 *                      (schema: docs/OBSERVABILITY.md)
 *   --sample-interval=N  sample a per-node timeline every N cycles
 *                      into the stats JSON ("timeline" key)
 *   --perfetto=FILE    write the protocol event stream as Chrome
 *                      trace-event JSON (open in ui.perfetto.dev)
 *   --trace            stream protocol events to stderr
 *   --fault-drop=P     drop each transmission with probability P
 *   --fault-dup=P      duplicate each transmission with probability P
 *   --fault-delay=P    jitter each delivery with probability P
 *   --fault-max-delay=N  jitter uniform in [1,N] cycles
 *   --fault-seed=S     fault decision-stream seed (default 1)
 *   --rerequest-timeout=N  re-request a missing broadcast after N
 *                      cycles (default 2000 when faults or --bshr-hard
 *                      are on, else recovery off)
 *   --bshr-hard        enforce BSHR capacity (stall + re-request)
 *   --sweep            run the Figure 7 sweep over the timing
 *                      workloads instead of one program
 *   --no-trace-reuse   capture no shared traces: re-execute each
 *                      sweep point functionally (slower, identical
 *                      numbers)
 *   --list             list registered workloads
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "baseline/perfect.hh"
#include "baseline/traditional.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "func/func_sim.hh"
#include "obs/flight_recorder.hh"
#include "obs/perfetto.hh"
#include "obs/sampler.hh"
#include "prog/asm_parser.hh"
#include "stats/json_writer.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

namespace {

struct Options
{
    std::string system = "func";
    unsigned nodes = 2;
    bool ring = false;
    InstSeq maxInsts = 0;
    unsigned scale = 1;
    unsigned blockPages = 1;
    unsigned jobs = 1;
    unsigned tickThreads = 1;
    bool noSkip = false;
    bool stats = false;
    std::string statsJson;
    std::string perfettoOut;
    Cycle sampleInterval = 0;
    bool trace = false;
    bool sweep = false;
    bool noTraceReuse = false;
    double faultDrop = 0.0;
    double faultDup = 0.0;
    double faultDelay = 0.0;
    Cycle faultMaxDelay = 0;
    std::uint64_t faultSeed = 1;
    Cycle rerequestTimeout = 0;
    bool rerequestTimeoutSet = false;
    bool bshrHard = false;
    std::string target;
};

bool
parseFlag(const std::string &arg, const char *name,
          std::string &value)
{
    std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dsrun [--system=func|perfect|traditional|datascalar]"
        "\n             [--nodes=N] [--ring] [--max-insts=N]"
        "\n             [--scale=N] [--block-pages=N] [--jobs=N]"
        "\n             [--tick-threads=N]"
        "\n             [--no-skip] [--stats] [--stats-json=FILE]"
        "\n             [--sample-interval=N] [--perfetto=FILE]"
        "\n             [--trace]"
        "\n             [--fault-drop=P] [--fault-dup=P]"
        "\n             [--fault-delay=P] [--fault-max-delay=N]"
        "\n             [--fault-seed=S] [--rerequest-timeout=N]"
        "\n             [--bshr-hard]"
        "\n             <program.s | workload-name>\n"
        "       dsrun --sweep [--max-insts=N] [--jobs=N] "
        "[--no-skip] [--no-trace-reuse]\n"
        "       dsrun --list\n");
    return 2;
}

bool
isRegisteredWorkload(const std::string &name)
{
    for (const auto &w : workloads::allWorkloads())
        if (name == w.name)
            return true;
    return false;
}

/**
 * Observability wiring shared by the three timing systems: optional
 * stderr tracing and Perfetto export (fanned out via the system's
 * TeeTraceSink), an always-on flight recorder dumped by any panic
 * (e.g. the run-loop watchdog), an optional sampled timeline, and
 * the stats dumps. @return the process exit code (0 = success).
 */
template <typename System>
int
runTimingSystem(System &sys, const Options &opt,
                const stats::RunMeta &meta, core::RunResult &r)
{
    TextTraceSink text_sink(std::cerr);
    if (opt.trace)
        sys.addTraceSink(&text_sink);

    std::ofstream perfetto_file;
    std::unique_ptr<obs::PerfettoTraceSink> perfetto;
    if (!opt.perfettoOut.empty()) {
        perfetto_file.open(opt.perfettoOut);
        if (!perfetto_file) {
            std::fprintf(stderr, "dsrun: cannot write %s\n",
                         opt.perfettoOut.c_str());
            return 2;
        }
        perfetto =
            std::make_unique<obs::PerfettoTraceSink>(perfetto_file);
        sys.addTraceSink(perfetto.get());
    }

    obs::FlightRecorder flight;
    sys.addTraceSink(&flight);
    flight.installPanicDump();

    obs::Sampler sampler(opt.sampleInterval ? opt.sampleInterval : 1);
    if (opt.sampleInterval)
        sys.setSampler(&sampler);

    r = sys.run();
    std::printf("%s", sys.output().c_str());
    if (perfetto)
        perfetto->finish();
    if (opt.stats)
        sys.dumpStats(std::cout);

    if (!opt.statsJson.empty()) {
        std::ofstream js(opt.statsJson);
        if (!js) {
            std::fprintf(stderr, "dsrun: cannot write %s\n",
                         opt.statsJson.c_str());
            return 2;
        }
        stats::JsonWriter::ExtraWriter timeline;
        if (opt.sampleInterval)
            timeline = [&sampler](std::ostream &os) {
                sampler.writeJson(os);
            };
        stats::JsonWriter::write(js, meta, *sys.snapshotStats(),
                                 timeline);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        if (arg == "--list") {
            for (const auto &w : workloads::allWorkloads())
                std::printf("%-12s %-9s %s\n", w.name, w.spec,
                            w.desc);
            return 0;
        } else if (parseFlag(arg, "--system", value)) {
            opt.system = value;
        } else if (parseFlag(arg, "--nodes", value)) {
            opt.nodes = static_cast<unsigned>(std::stoul(value));
        } else if (arg == "--ring") {
            opt.ring = true;
        } else if (parseFlag(arg, "--max-insts", value)) {
            opt.maxInsts = std::stoull(value);
        } else if (parseFlag(arg, "--scale", value)) {
            opt.scale = static_cast<unsigned>(std::stoul(value));
        } else if (parseFlag(arg, "--block-pages", value)) {
            opt.blockPages =
                static_cast<unsigned>(std::stoul(value));
        } else if (parseFlag(arg, "--jobs", value)) {
            opt.jobs = static_cast<unsigned>(std::stoul(value));
        } else if (parseFlag(arg, "--tick-threads", value)) {
            opt.tickThreads =
                static_cast<unsigned>(std::stoul(value));
        } else if (parseFlag(arg, "--fault-drop", value)) {
            opt.faultDrop = std::stod(value);
        } else if (parseFlag(arg, "--fault-dup", value)) {
            opt.faultDup = std::stod(value);
        } else if (parseFlag(arg, "--fault-delay", value)) {
            opt.faultDelay = std::stod(value);
        } else if (parseFlag(arg, "--fault-max-delay", value)) {
            opt.faultMaxDelay = std::stoull(value);
        } else if (parseFlag(arg, "--fault-seed", value)) {
            opt.faultSeed = std::stoull(value);
        } else if (parseFlag(arg, "--rerequest-timeout", value)) {
            opt.rerequestTimeout = std::stoull(value);
            opt.rerequestTimeoutSet = true;
        } else if (arg == "--bshr-hard") {
            opt.bshrHard = true;
        } else if (arg == "--no-skip") {
            opt.noSkip = true;
        } else if (arg == "--sweep") {
            opt.sweep = true;
        } else if (arg == "--no-trace-reuse") {
            opt.noTraceReuse = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (parseFlag(arg, "--stats-json", value)) {
            opt.statsJson = value;
        } else if (parseFlag(arg, "--perfetto", value)) {
            opt.perfettoOut = value;
        } else if (parseFlag(arg, "--sample-interval", value)) {
            opt.sampleInterval = std::stoull(value);
        } else if (arg == "--trace") {
            opt.trace = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            opt.target = arg;
        }
    }
    if (opt.sweep) {
        InstSeq budget = opt.maxInsts ? opt.maxInsts : 100'000;
        stats::Table table = driver::fig7IpcTable(
            workloads::timingWorkloadNames(), budget, opt.jobs,
            !opt.noSkip, !opt.noTraceReuse);
        table.print(std::cout);
        return 0;
    }
    if (opt.target.empty())
        return usage();

    prog::Program program =
        isRegisteredWorkload(opt.target)
            ? workloads::findWorkload(opt.target).build(opt.scale)
            : prog::assembleFile(opt.target);

    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = opt.nodes;
    cfg.maxInsts = opt.maxInsts;
    cfg.eventDriven = !opt.noSkip;
    cfg.tickThreads = opt.tickThreads;
    if (opt.ring)
        cfg.interconnect = core::InterconnectKind::Ring;
    cfg.fault.dropProb = opt.faultDrop;
    cfg.fault.dupProb = opt.faultDup;
    cfg.fault.delayProb = opt.faultDelay;
    cfg.fault.maxDelay = opt.faultMaxDelay;
    cfg.fault.seed = opt.faultSeed;
    cfg.bshrHardCapacity = opt.bshrHard;
    if (opt.rerequestTimeoutSet)
        cfg.rerequestTimeout = opt.rerequestTimeout;
    else if (opt.faultDrop > 0.0 || opt.bshrHard)
        cfg.rerequestTimeout = 2000; // dropped data must be recoverable

    if (opt.system == "func") {
        func::FuncSim sim(program);
        sim.run(opt.maxInsts ? opt.maxInsts
                             : ~static_cast<InstSeq>(0));
        std::printf("%s", sim.output().c_str());
        std::printf("-- %llu instructions, halted=%d\n",
                    (unsigned long long)sim.retired(),
                    sim.halted() ? 1 : 0);
        return 0;
    }

    driver::SystemKind kind;
    if (!driver::parseSystemKind(opt.system, kind))
        return usage();

    stats::RunMeta meta;
    meta.add("system", opt.system);
    meta.add("target", opt.target);
    meta.add("scale", std::uint64_t(opt.scale));
    meta.add("nodes", std::uint64_t(opt.nodes));
    meta.add("interconnect",
             driver::interconnectKindName(cfg.interconnect));
    meta.add("block_pages", std::uint64_t(opt.blockPages));
    meta.add("max_insts", std::uint64_t(opt.maxInsts));
    meta.add("event_driven", std::uint64_t(cfg.eventDriven ? 1 : 0));
    meta.add("tick_threads", std::uint64_t(opt.tickThreads));
    if (opt.sampleInterval)
        meta.add("sample_interval", std::uint64_t(opt.sampleInterval));

    core::RunResult r;
    int rc = 0;
    switch (kind) {
      case driver::SystemKind::Perfect: {
        baseline::PerfectSystem sys(program, cfg);
        rc = runTimingSystem(sys, opt, meta, r);
        break;
      }
      case driver::SystemKind::Traditional: {
        baseline::TraditionalSystem sys(
            program, cfg,
            driver::figure7PageTable(program, opt.nodes,
                                     opt.blockPages));
        rc = runTimingSystem(sys, opt, meta, r);
        break;
      }
      case driver::SystemKind::DataScalar: {
        core::DataScalarSystem sys(
            program, cfg,
            driver::figure7PageTable(program, opt.nodes,
                                     opt.blockPages));
        rc = runTimingSystem(sys, opt, meta, r);
        // Faults and hard BSHR capacity break the exactly-once
        // delivery the drained invariant rests on; residue there
        // is expected, not a protocol bug.
        if (rc == 0 && !sys.protocolDrained() &&
            !cfg.fault.enabled() && !cfg.bshrHardCapacity)
            std::fprintf(stderr,
                         "warning: protocol not drained\n");
        break;
      }
    }
    if (rc != 0)
        return rc;

    std::printf("-- %s: %llu instructions, %llu cycles, IPC %.3f\n",
                opt.system.c_str(),
                (unsigned long long)r.instructions,
                (unsigned long long)r.cycles, r.ipc);
    return 0;
}
