/**
 * @file
 * Regenerates Figure 7: instructions per cycle across the five
 * systems — perfect data cache, DataScalar at 2 and 4 nodes, and
 * the traditional system with 1/2 and 1/4 of memory on-chip — for
 * the six timing benchmarks (applu, compress, go, mgrid, turb3d,
 * wave5).
 *
 * The thirty (workload × system) points are independent simulations
 * and run concurrently (BENCH_JOBS workers, default = hardware);
 * output is byte-identical at any job count.
 *
 * Paper's findings reproduced here as shape, not absolute numbers:
 *  - DataScalar outperforms the traditional system on (almost) all
 *    benchmarks, by more at four nodes (9%-15% in the paper);
 *  - compress gains most (stores never cross the chip boundary);
 *  - DataScalar degrades little from finer-grained distribution
 *    (2 -> 4 nodes) while the traditional system degrades sharply.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "driver/driver.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Figure 7", "timing-simulation IPC comparison");
    InstSeq budget = bench::defaultBudget(300'000);

    stats::Table table = driver::fig7IpcTable(
        workloads::timingWorkloadNames(), budget, bench::benchJobs());
    table.print(std::cout);

    std::printf("\npaper: 2-node DataScalar 7%% slower to 15%% "
                "faster; 4-node 9%%-15%% faster; compress nearly "
                "doubles; DS2->DS4 drop < 0.5 IPC while trad "
                "drops 0.2-0.6 IPC\n");
    return 0;
}
