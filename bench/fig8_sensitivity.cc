/**
 * @file
 * Regenerates Figure 8: sensitivity of the Figure 7 comparison to
 * data-cache size, memory access time, global bus clock, global bus
 * width, and RUU entries, for go and compress.
 *
 * Each block prints one sub-graph as a series: the five systems'
 * IPC at each parameter value.
 *
 * Paper's findings: DataScalar consistently outperforms the
 * traditional runs across the range; the systems converge as memory
 * access time dominates; the gap grows as the global bus slows.
 *
 * Every (value x system) point of a sub-sweep is an independent
 * simulation; they run concurrently (BENCH_JOBS workers, default =
 * hardware) with output identical to the serial order.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

namespace {

void
sweep(const std::string &workload, const char *param,
      const std::vector<std::uint64_t> &values,
      const std::function<void(core::SimConfig &, std::uint64_t)>
          &apply,
      InstSeq budget, driver::TraceCache &cache)
{
    // Five system points per parameter value, all independent. The
    // studied parameters (dcache geometry, memory latency, ...) are
    // not part of the serialized RunRequest key set; library callers
    // set them directly on RunRequest::config.
    std::vector<driver::RunRequest> requests;
    for (std::uint64_t v : values) {
        driver::RunRequest req;
        req.workload = workload;
        req.config.maxInsts = budget;
        apply(req.config, v);
        auto add = [&](driver::SystemKind system, unsigned nodes) {
            req.system = system;
            req.config.numNodes = nodes;
            requests.push_back(req);
        };
        add(driver::SystemKind::Perfect, 2);
        add(driver::SystemKind::DataScalar, 2);
        add(driver::SystemKind::DataScalar, 4);
        add(driver::SystemKind::Traditional, 2);
        add(driver::SystemKind::Traditional, 4);
    }

    // Every point of every sub-sweep replays the one captured stream
    // for (workload, budget) — the parameters under study never
    // change the dynamic stream, only its timing.
    std::vector<driver::RunResponse> results =
        driver::runMany(requests, cache, bench::benchJobs());

    stats::Table table({param, "perfect", "DS-2", "DS-4", "trad-1/2",
                        "trad-1/4"});
    for (std::size_t i = 0; i < values.size(); ++i) {
        auto ipc = [&](std::size_t k) {
            return stats::Table::num(results[5 * i + k].result.ipc, 3);
        };
        table.addRow({std::to_string(values[i]), ipc(0), ipc(1),
                      ipc(2), ipc(3), ipc(4)});
    }
    table.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Figure 8", "sensitivity analysis (go, compress)");
    InstSeq budget = bench::defaultBudget(120'000);

    // One shared cache: each workload is captured once and replayed
    // by all five sub-sweeps (one hundred points).
    driver::TraceCache cache;
    for (const char *name : {"go_s", "compress_s"}) {
        prog::Program p = workloads::findWorkload(name).build(1);
        std::printf("======== %s ========\n\n", p.name.c_str());

        std::printf("-- data cache size (KB) --\n");
        sweep(name, "dcacheKB", {4, 16, 64, 128},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.core.dcache.sizeBytes = v * 1024;
              },
              budget, cache);

        std::printf("-- memory access time (cycles @1GHz = ns) --\n");
        sweep(name, "mem-ns", {4, 8, 32, 128},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.mem.accessLatency = v;
              },
              budget, cache);

        std::printf("-- global bus clock (core cycles per bus "
                    "clock) --\n");
        sweep(name, "bus-div", {2, 5, 10, 20},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.bus.clockDivisor = v;
              },
              budget, cache);

        std::printf("-- global bus width (bytes) --\n");
        sweep(name, "bus-bytes", {2, 8, 16, 32},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.bus.widthBytes = static_cast<unsigned>(v);
              },
              budget, cache);

        std::printf("-- RUU entries (LSQ = half) --\n");
        sweep(name, "ruu", {16, 64, 256, 1024},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.core.ruuEntries = static_cast<unsigned>(v);
                  cfg.core.lsqEntries =
                      static_cast<unsigned>(v / 2);
              },
              budget, cache);
    }

    std::printf("paper: DataScalar consistently ahead across the "
                "range; convergence as memory time dominates; gap "
                "grows as the bus slows\n");
    return 0;
}
