/**
 * @file
 * Regenerates Figure 8: sensitivity of the Figure 7 comparison to
 * data-cache size, memory access time, global bus clock, global bus
 * width, and RUU entries, for go and compress.
 *
 * Each block prints one sub-graph as a series: the five systems'
 * IPC at each parameter value.
 *
 * Paper's findings: DataScalar consistently outperforms the
 * traditional runs across the range; the systems converge as memory
 * access time dominates; the gap grows as the global bus slows.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

namespace {

struct FivePoint
{
    double perfect, ds2, ds4, t2, t4;
};

FivePoint
measure(const prog::Program &p, core::SimConfig cfg)
{
    FivePoint r{};
    r.perfect = driver::runPerfect(p, cfg).ipc;
    cfg.numNodes = 2;
    r.ds2 = driver::runDataScalar(p, cfg).ipc;
    r.t2 = driver::runTraditional(p, cfg).ipc;
    cfg.numNodes = 4;
    r.ds4 = driver::runDataScalar(p, cfg).ipc;
    r.t4 = driver::runTraditional(p, cfg).ipc;
    return r;
}

void
sweep(const prog::Program &p, const char *param,
      const std::vector<std::uint64_t> &values,
      const std::function<void(core::SimConfig &, std::uint64_t)>
          &apply,
      InstSeq budget)
{
    stats::Table table({param, "perfect", "DS-2", "DS-4", "trad-1/2",
                        "trad-1/4"});
    for (std::uint64_t v : values) {
        core::SimConfig cfg = driver::paperConfig();
        cfg.maxInsts = budget;
        apply(cfg, v);
        FivePoint r = measure(p, cfg);
        table.addRow({std::to_string(v),
                      stats::Table::num(r.perfect, 3),
                      stats::Table::num(r.ds2, 3),
                      stats::Table::num(r.ds4, 3),
                      stats::Table::num(r.t2, 3),
                      stats::Table::num(r.t4, 3)});
    }
    table.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Figure 8", "sensitivity analysis (go, compress)");
    InstSeq budget = bench::defaultBudget(120'000);

    for (const char *name : {"go_s", "compress_s"}) {
        prog::Program p = workloads::findWorkload(name).build(1);
        std::printf("======== %s ========\n\n", p.name.c_str());

        std::printf("-- data cache size (KB) --\n");
        sweep(p, "dcacheKB", {4, 16, 64, 128},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.core.dcache.sizeBytes = v * 1024;
              },
              budget);

        std::printf("-- memory access time (cycles @1GHz = ns) --\n");
        sweep(p, "mem-ns", {4, 8, 32, 128},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.mem.accessLatency = v;
              },
              budget);

        std::printf("-- global bus clock (core cycles per bus "
                    "clock) --\n");
        sweep(p, "bus-div", {2, 5, 10, 20},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.bus.clockDivisor = v;
              },
              budget);

        std::printf("-- global bus width (bytes) --\n");
        sweep(p, "bus-bytes", {2, 8, 16, 32},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.bus.widthBytes = static_cast<unsigned>(v);
              },
              budget);

        std::printf("-- RUU entries (LSQ = half) --\n");
        sweep(p, "ruu", {16, 64, 256, 1024},
              [](core::SimConfig &cfg, std::uint64_t v) {
                  cfg.core.ruuEntries = static_cast<unsigned>(v);
                  cfg.core.lsqEntries =
                      static_cast<unsigned>(v / 2);
              },
              budget);
    }

    std::printf("paper: DataScalar consistently ahead across the "
                "range; convergence as memory time dominates; gap "
                "grows as the bus slows\n");
    return 0;
}
