/**
 * @file
 * Ablation: result communication (Section 5.1, analytical).
 *
 * Sweeps private-region shapes (operand count, result count,
 * compute length) and reports when broadcasting only results beats
 * plain ESP in traffic and in critical path. The paper proposes the
 * technique without evaluation; this quantifies its envelope under
 * the paper's bus parameters.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/result_comm.hh"
#include "driver/driver.hh"
#include "stats/table.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Ablation: result communication",
                  "private regions: broadcast operands (ESP) vs "
                  "results only");

    core::SimConfig cfg = driver::paperConfig();

    stats::Table table({"operands", "results", "compute", "ESP-B",
                        "RC-B", "byte-savings", "ESP-crit", "RC-crit",
                        "RC-wins-latency"});

    for (unsigned operands : {2u, 4u, 8u, 16u, 32u}) {
        for (unsigned results : {1u, 4u}) {
            for (Cycle compute : {Cycle(10), Cycle(100)}) {
                core::PrivateRegion region;
                region.operandLoads = operands;
                region.resultValues = results;
                region.computeCycles = compute;
                core::ResultCommEstimate est =
                    core::estimateResultComm(
                        region, cfg.bus, cfg.mem,
                        cfg.core.dcache.lineSize);
                table.addRow(
                    {std::to_string(operands),
                     std::to_string(results),
                     std::to_string(compute),
                     std::to_string(est.espBytes),
                     std::to_string(est.rcBytes),
                     stats::Table::pct(est.byteSavings()),
                     std::to_string(est.espCriticalPath),
                     std::to_string(est.rcCriticalPath),
                     est.rcCriticalPath < est.espCriticalPath
                         ? "yes"
                         : "no"});
            }
        }
    }
    table.print(std::cout);

    std::printf("\nobservation: result communication always saves "
                "traffic once operands > results; it also wins "
                "latency when the region is operand-rich, because "
                "the owner's local fetches replace a pipeline of "
                "line broadcasts\n");
    return 0;
}
