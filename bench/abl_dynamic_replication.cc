/**
 * @file
 * Ablation: dynamic replication (Section 4.1).
 *
 * "Dynamic replication, therefore, is crucial to the competitiveness
 * of DataScalar systems." Dynamic replication is the caching of
 * broadcast data; shrinking the L1 toward a single line approximates
 * turning it off (every communicated access must be re-broadcast).
 * The sweep shows how the broadcast load and IPC respond.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Ablation: dynamic replication",
                  "L1D (the dynamic-replication store) from one "
                  "line to full size");
    InstSeq budget = bench::defaultBudget(120'000);

    for (const char *name : {"compress_s", "mgrid_s"}) {
        prog::Program p = workloads::findWorkload(name).build(1);
        std::printf("-- %s --\n", p.name.c_str());
        stats::Table table({"dcache-bytes", "IPC", "broadcasts",
                            "bus-busy%"});
        for (std::uint64_t size :
             {32ull, 1024ull, 4096ull, 16384ull, 65536ull}) {
            core::SimConfig cfg = driver::paperConfig();
            cfg.numNodes = 2;
            cfg.maxInsts = budget;
            cfg.core.dcache.sizeBytes = size;
            core::DataScalarSystem sys(
                p, cfg, driver::figure7PageTable(p, 2));
            core::RunResult r = sys.run();
            table.addRow(
                {std::to_string(size), stats::Table::num(r.ipc, 3),
                 std::to_string(sys.bus().totalMessages()),
                 stats::Table::pct(
                     static_cast<double>(sys.bus().busyCycles()) /
                     static_cast<double>(r.cycles))});
        }
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("expected: without a meaningful dynamic-replication "
                "store, every access re-broadcasts and the bus "
                "saturates -- the paper's argument for the cache "
                "correspondence machinery\n");
    return 0;
}
