/**
 * @file
 * Regenerates Figure 1: operation of the ESP Massive Memory Machine
 * on the paper's reference string w1..w9, where w5, w6, w7 live on
 * machine 1 and all other words on machine 0.
 *
 * The figure's key event: a lead change before w5, stalling all
 * processors until the new lead catches up (the paper's timeline
 * shows w5 arriving at cycle 7).
 */

#include <cstdio>

#include "baseline/mmm.hh"
#include "bench/bench_util.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Figure 1", "synchronous ESP on the MMM "
                              "reference string");

    std::vector<NodeId> owners = {0, 0, 0, 0, 1, 1, 1, 0, 0};
    baseline::MmmConfig cfg;
    cfg.pipelinedStep = 1;
    cfg.leadChangePenalty = 3;
    baseline::MmmResult r = baseline::runMmmEsp(owners, cfg);

    std::printf("word  owner  received-at-cycle\n");
    std::printf("--------------------------------\n");
    for (std::size_t i = 0; i < owners.size(); ++i) {
        std::printf("w%zu    %5u  %8llu%s\n", i + 1, r.leader[i],
                    (unsigned long long)r.receiveTime[i],
                    (i > 0 && owners[i] != owners[i - 1])
                        ? "   <- lead change"
                        : "");
    }
    std::printf("\nlead changes: %u, total cycles: %llu\n",
                r.leadChanges, (unsigned long long)r.totalCycles);
    std::printf("datathreads (consecutive same-owner runs): ");
    for (unsigned len : r.threadLengths)
        std::printf("%u ", len);
    std::printf("\n\npaper: w1-w4 pipelined on machine 0, lead "
                "change stalls until w5 at cycle 7, w5-w7 on "
                "machine 1, final lead change for w8-w9\n");
    return 0;
}
