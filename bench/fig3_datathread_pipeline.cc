/**
 * @file
 * Regenerates Figure 3: serialized off-chip accesses for a dependent
 * operand chain — pipelined DataScalar broadcasts versus the
 * traditional request/response per operand.
 *
 * Part 1 reproduces the figure's analytical count (x1..x3 on one
 * chip, x4 on another: 2 crossings vs 8). Part 2 runs a real
 * pointer-chase program through both timing systems to show the
 * latency consequence the figure illustrates.
 */

#include <cstdio>

#include "baseline/mmm.hh"
#include "bench/bench_util.hh"
#include "driver/driver.hh"
#include "prog/assembler.hh"

using namespace dscalar;
using namespace dscalar::prog::reg;

namespace {

/** Pointer chase across pages: dependent addresses (Section 3.2). */
prog::Program
chaseProgram(unsigned pages, unsigned hops)
{
    prog::Program p;
    p.name = "chase";
    const unsigned cells = pages * prog::pageSize / 8;
    Addr heap = p.allocHeap(pages * prog::pageSize);
    // A stride-7 cycle (7 coprime to the cell count) walks each page
    // in a long run of dependent hops before migrating to the next:
    // page-length datathreads separated by migrations.
    std::uint32_t idx = 0;
    for (unsigned i = 0; i < cells; ++i) {
        std::uint32_t target = (idx + 7) % cells;
        p.poke64(heap + 8ull * idx, heap + 8ull * target);
        idx = target;
    }

    prog::Assembler a(p);
    a.la(s1, heap);
    a.li(s0, static_cast<std::int32_t>(hops));
    a.label("loop");
    a.ld(s1, s1, 0);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.add(a0, s1, zero);
    a.syscall(isa::Syscall::PrintInt);
    a.syscall(isa::Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace

int
main()
{
    bench::banner("Figure 3", "pipelined broadcasts vs "
                              "request/response serialization");

    // Part 1: the figure's four-operand dependent chain.
    auto ds_case = baseline::chainCrossings({0, 0, 0, 1});
    auto trad_case = baseline::chainCrossings({1, 1, 1, 1});
    std::printf("four dependent operands, x1..x3 colocated:\n");
    std::printf("  DataScalar serialized off-chip crossings:  %u "
                "(paper: 2)\n", ds_case.dataScalar);
    std::printf("  traditional serialized off-chip crossings: %u "
                "(paper: 8)\n\n", trad_case.traditional);

    // Part 2: timing consequence on a real dependent-load chain.
    prog::Program p = chaseProgram(16, 20'000 * bench::benchScale());
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 4;
    auto ds = driver::runDataScalar(p, cfg);
    auto trad = driver::runTraditional(p, cfg);
    auto perfect = driver::runPerfect(p, cfg);

    std::printf("pointer chase over 16 pages, 4 nodes "
                "(cycles per hop, lower is better):\n");
    std::printf("  perfect data cache: %8.2f\n",
                static_cast<double>(perfect.cycles) /
                    static_cast<double>(perfect.instructions / 3));
    std::printf("  DataScalar:         %8.2f\n",
                static_cast<double>(ds.cycles) /
                    static_cast<double>(ds.instructions / 3));
    std::printf("  traditional:        %8.2f\n",
                static_cast<double>(trad.cycles) /
                    static_cast<double>(trad.instructions / 3));
    std::printf("\npaper: a datathread migration costs one "
                "serialized off-chip access; every traditional "
                "remote operand costs two\n");
    return 0;
}
