/**
 * @file
 * Regenerates Table 2: approximate datathread measurements for a
 * four-processor system.
 *
 * For each benchmark the hottest pages (by a profiling run) are
 * replicated, the communicated remainder is distributed round-robin
 * in blocks, and the cache-filtered miss stream is attributed to
 * owning nodes. Reported: replicated pages per segment, the mean
 * run of consecutive same-node references (all / text / data), and
 * the mean run of contiguous replicated-page references.
 *
 * Paper's observations: instruction datathreads are long (tens to
 * thousands); data datathreads are short (<10) for interleaved FP
 * codes (swim, applu, turb3d, mgrid, hydro2d) and longer for integer
 * codes and codes with replicated data sets (li).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/distribution.hh"
#include "driver/driver.hh"
#include "func/inst_trace.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

namespace {

/** Per-benchmark round-robin block size in pages, following the
 *  paper's rule: as large as possible while keeping the largest
 *  segment spread over several owners. */
unsigned
blockPagesFor(const prog::Program &p)
{
    std::size_t largest = std::max(
        {p.pagesInSegment(prog::Segment::Global),
         p.pagesInSegment(prog::Segment::Heap),
         p.pagesInSegment(prog::Segment::Stack)});
    unsigned block = static_cast<unsigned>(largest / 8);
    return block == 0 ? 1 : block;
}

} // namespace

int
main()
{
    bench::banner("Table 2",
                  "approximate datathread measurements, 4 nodes");
    InstSeq budget = bench::defaultBudget(2'000'000);
    constexpr unsigned num_nodes = 4;

    stats::Table table({"benchmark", "dist(KB)", "text", "global",
                        "heap", "stack", "total-repl", "all", "text",
                        "data", "repl"});

    // Variant without any replication: every page is communicated,
    // exposing the raw text/data run lengths (the paper's long
    // instruction datathreads come from the sequential code stream).
    stats::Table raw({"benchmark", "all", "text", "data"});

    for (const auto &w : workloads::allWorkloads()) {
        // Build and functionally execute each substitute exactly
        // once; the page-heat profile and both datathread variants
        // are single passes over the captured stream.
        prog::Program p = w.build(1);
        std::shared_ptr<const func::InstTrace> trace =
            func::InstTrace::capture(p, budget);
        core::PageHeat heat = driver::profilePages(*trace);

        core::DistributionConfig dist;
        dist.numNodes = num_nodes;
        // The paper's Table 2 setup replicates the most heavily
        // accessed pages of ANY segment (it lists replicated text,
        // global, heap, and stack pages separately) and distributes
        // the rest -- so text is not replicated wholesale here.
        dist.replicateText = false;
        dist.replicatedDataPages = p.touchedPages().size() / 4;
        dist.blockPages = blockPagesFor(p);

        core::ReplicationReport rep;
        mem::PageTable ptable =
            core::buildPageTable(p, dist, &heat, &rep);
        driver::DatathreadResult r =
            driver::measureDatathreads(*trace, ptable, rep);

        table.addRow(
            {p.name,
             std::to_string(dist.blockPages * prog::pageSize / 1024),
             std::to_string(rep.text), std::to_string(rep.global),
             std::to_string(rep.heap), std::to_string(rep.stack),
             std::to_string(rep.total()),
             stats::Table::num(r.meanAll, 1),
             stats::Table::num(r.meanText, 1),
             stats::Table::num(r.meanData, 1),
             stats::Table::num(r.meanRepl, 1)});

        core::DistributionConfig dist_raw;
        dist_raw.numNodes = num_nodes;
        dist_raw.replicateText = false;
        dist_raw.blockPages = blockPagesFor(p);
        core::ReplicationReport rep_raw;
        mem::PageTable ptable_raw =
            core::buildPageTable(p, dist_raw, nullptr, &rep_raw);
        driver::DatathreadResult rr =
            driver::measureDatathreads(*trace, ptable_raw, rep_raw);
        raw.addRow({p.name, stats::Table::num(rr.meanAll, 1),
                    stats::Table::num(rr.meanText, 1),
                    stats::Table::num(rr.meanData, 1)});
    }
    table.print(std::cout);

    std::printf("\ncolumns: replicated 8KB pages per segment, then "
                "arithmetic-mean datathread-length approximations\n");
    std::printf("note: our substitutes' text segments are small "
                "enough that the hot-page budget replicates them "
                "fully (text runs 0); the paper's much larger SPEC "
                "texts were only 1/3-1/2 replicated\n\n");

    std::printf("-- no-replication variant (all pages "
                "distributed) --\n");
    raw.print(std::cout);
    std::printf("\npaper: instruction datathreads are long "
                "(sequential code streams, tens to thousands); data "
                "datathreads are short (<10) for interleaved FP "
                "codes and longer for integer codes\n");
    return 0;
}
