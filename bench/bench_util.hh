/**
 * @file
 * Shared helpers for the table/figure regeneration binaries.
 *
 * Instruction budgets are scaled down from the paper's 100M-per-run
 * (their runs took machine-days in 1997); the BENCH_SCALE environment
 * variable multiplies every budget for longer, higher-fidelity runs.
 */

#ifndef DSCALAR_BENCH_BENCH_UTIL_HH
#define DSCALAR_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/types.hh"

namespace dscalar {
namespace bench {

/** Budget multiplier from the BENCH_SCALE environment variable. */
inline unsigned
benchScale()
{
    const char *env = std::getenv("BENCH_SCALE");
    if (!env)
        return 1;
    long v = std::atol(env);
    return v >= 1 ? static_cast<unsigned>(v) : 1;
}

/** Default per-run dynamic-instruction budget. */
inline InstSeq
defaultBudget(InstSeq base)
{
    return base * benchScale();
}

/**
 * Worker count for parallel experiment sweeps: the BENCH_JOBS
 * environment variable, defaulting to hardware concurrency. Sweep
 * output is byte-identical at any job count (results are ordered by
 * point, not by completion), so parallelism is safe to default on.
 */
inline unsigned
benchJobs()
{
    const char *env = std::getenv("BENCH_JOBS");
    if (env) {
        long v = std::atol(env);
        return v >= 1 ? static_cast<unsigned>(v) : 1;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/** Banner naming the experiment and its provenance in the paper. */
inline void
banner(const char *experiment_id, const char *description)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s -- %s\n", experiment_id, description);
    std::printf("DataScalar Architectures (ISCA 1997) "
                "reproduction\n");
    std::printf("==============================================="
                "=====================\n\n");
}

} // namespace bench
} // namespace dscalar

#endif // DSCALAR_BENCH_BENCH_UTIL_HH
