/**
 * @file
 * Ablation: hybrid execution models (Section 5.2).
 *
 * The same hardware (N processor/memory nodes) can run as a
 * DataScalar machine (SPSD: redundant computation, ESP broadcasts)
 * or as a parallel processor (SPMD: partitioned computation, local
 * memory). The paper argues the models complement one another:
 * parallel codes should use SPMD; codes "for which traditional
 * parallelization techniques fail" are where DataScalar earns its
 * keep. This bench shows both halves.
 */

#include <cstdio>
#include <iostream>

#include "baseline/spmd.hh"
#include "bench/bench_util.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Ablation: hybrid execution",
                  "SPSD (DataScalar) vs SPMD (parallel) on the same "
                  "hardware");
    InstSeq budget = bench::defaultBudget(200'000);

    // Part 1: a parallelizable 2-D relaxation.
    std::printf("parallelizable stencil (speedup over 1-node "
                "serial run):\n");
    stats::Table table({"nodes", "SPMD-cycles", "DataScalar-cycles",
                        "SPMD-speedup", "DS-speedup"});

    // Part 1 runs to completion: truncating the serial run but not
    // the (shorter) partitions would distort the speedup.
    core::SimConfig cfg = driver::paperConfig();
    prog::Program serial = workloads::buildStencilStrip(0, 1, 1);
    baseline::SpmdResult base =
        baseline::runSpmd({serial}, cfg);

    for (unsigned nodes : {2u, 4u}) {
        std::vector<prog::Program> strips;
        for (unsigned n = 0; n < nodes; ++n)
            strips.push_back(
                workloads::buildStencilStrip(n, nodes, 1));
        baseline::SpmdResult spmd = baseline::runSpmd(strips, cfg);

        core::SimConfig ds_cfg = cfg;
        ds_cfg.numNodes = nodes;
        core::DataScalarSystem ds(
            serial, ds_cfg,
            driver::figure7PageTable(serial, nodes));
        core::RunResult ds_r = ds.run();

        table.addRow(
            {std::to_string(nodes), std::to_string(spmd.cycles),
             std::to_string(ds_r.cycles),
             stats::Table::num(
                 static_cast<double>(base.cycles) / spmd.cycles, 2),
             stats::Table::num(
                 static_cast<double>(base.cycles) / ds_r.cycles,
                 2)});
    }
    table.print(std::cout);

    // Part 2: a non-parallelizable code — SPMD cannot split it, so
    // its only option is one node plus idle silicon; DataScalar uses
    // all nodes' memory to speed the single thread.
    std::printf("\nserial (unparallelizable) code -- compress:\n");
    prog::Program comp = workloads::findWorkload("compress_s").build(1);
    cfg.maxInsts = budget;
    baseline::SpmdResult one = baseline::runSpmd({comp}, cfg);
    // The single SPMD node only has 1/N of the machine's memory;
    // the honest comparison is against the traditional system with
    // 1/4 on-chip.
    core::SimConfig q = cfg;
    q.numNodes = 4;
    core::RunResult trad = driver::runTraditional(comp, q);
    core::RunResult ds = driver::runDataScalar(comp, q);
    std::printf("  all-memory-local single node (upper bound): "
                "%llu cycles\n",
                (unsigned long long)one.cycles);
    std::printf("  one node + 3/4 memory remote (realistic):    "
                "%llu cycles\n",
                (unsigned long long)trad.cycles);
    std::printf("  DataScalar across all 4 nodes:               "
                "%llu cycles\n",
                (unsigned long long)ds.cycles);

    std::printf("\nexpected: SPMD wins (near-linear) where the code "
                "partitions; DataScalar recovers most of the memory "
                "penalty where it does not -- the paper's argument "
                "for a hybrid machine\n");
    return 0;
}
