/**
 * @file
 * Ablation: global-bus vs ring interconnect (Section 4.4).
 *
 * The paper evaluates a bus ("broadcasts on a bus are free") but
 * envisions an SCI-style ring "because of the high-performance
 * capability": disjoint ring segments carry different broadcasts
 * simultaneously, so aggregate bandwidth scales with nodes, at the
 * price of per-hop latency and per-receiver delivery skew.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Ablation: interconnect",
                  "DataScalar broadcasts over a bus vs a "
                  "unidirectional ring");
    InstSeq budget = bench::defaultBudget(150'000);

    for (unsigned nodes : {2u, 4u, 8u}) {
        std::printf("-- %u nodes --\n", nodes);
        stats::Table table(
            {"benchmark", "bus-IPC", "ring-IPC", "ring/bus"});
        for (const auto &name : workloads::timingWorkloadNames()) {
            prog::Program p = workloads::findWorkload(name).build(1);
            core::SimConfig cfg = driver::paperConfig();
            cfg.numNodes = nodes;
            cfg.maxInsts = budget;

            core::DataScalarSystem bus_sys(
                p, cfg, driver::figure7PageTable(p, nodes));
            double bus_ipc = bus_sys.run().ipc;

            cfg.interconnect = core::InterconnectKind::Ring;
            core::DataScalarSystem ring_sys(
                p, cfg, driver::figure7PageTable(p, nodes));
            double ring_ipc = ring_sys.run().ipc;

            table.addRow({p.name, stats::Table::num(bus_ipc, 3),
                          stats::Table::num(ring_ipc, 3),
                          stats::Table::num(ring_ipc / bus_ipc, 2)});
        }
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("expected: the ring wins where broadcasts saturate "
                "the bus (bandwidth-bound codes, more nodes) and "
                "roughly ties where latency dominates\n");
    return 0;
}
