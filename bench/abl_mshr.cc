/**
 * @file
 * Ablation: outstanding-miss (MSHR) capacity.
 *
 * The paper assumes caches that "can support an arbitrarily high
 * number of outstanding requests". Datathreading's benefit comes
 * from memory-level parallelism — an owner streaming several owned
 * lines while others wait — so bounding the outstanding fills
 * quantifies how much of that parallelism the results depend on.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Ablation: MSHR capacity",
                  "bounded outstanding line fills, 2-node "
                  "DataScalar");
    InstSeq budget = bench::defaultBudget(150'000);

    for (const char *name : {"applu_s", "wave5_s", "compress_s"}) {
        prog::Program p = workloads::findWorkload(name).build(1);
        std::printf("-- %s --\n", p.name.c_str());
        stats::Table table({"MSHRs", "IPC", "vs-unlimited"});

        core::SimConfig cfg = driver::paperConfig();
        cfg.numNodes = 2;
        cfg.maxInsts = budget;
        double unlimited = driver::runDataScalar(p, cfg).ipc;

        for (unsigned mshrs : {1u, 2u, 4u, 8u, 16u}) {
            cfg.core.maxOutstandingFills = mshrs;
            core::RunResult r = driver::runDataScalar(p, cfg);
            table.addRow({std::to_string(mshrs),
                          stats::Table::num(r.ipc, 3),
                          stats::Table::num(r.ipc / unlimited, 2)});
        }
        table.addRow({"unlimited", stats::Table::num(unlimited, 3),
                      "1.00"});
        table.print(std::cout);
        std::printf("\n");
    }
    return 0;
}
