/**
 * @file
 * Ablation: L1 data-cache write policy under ESP.
 *
 * Section 4.2: "we believe that this write policy [write-noallocate]
 * is superior to write-allocate in an ESP-based system (with a
 * write-allocate protocol, a write miss requires sending an
 * inter-processor message, only to overwrite the received data)."
 * This bench quantifies that choice: IPC and broadcast counts for
 * both policies on the two store-heavy timing benchmarks.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

namespace {

struct Point
{
    double ipc;
    std::uint64_t broadcasts;
    std::uint64_t busBytes;
};

Point
run(const prog::Program &p, bool write_allocate, InstSeq budget)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.maxInsts = budget;
    cfg.core.dcache.writeAllocate = write_allocate;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    core::RunResult r = sys.run();
    Point out;
    out.ipc = r.ipc;
    out.broadcasts = sys.bus().totalMessages();
    out.busBytes = sys.bus().totalBytes();
    return out;
}

} // namespace

int
main()
{
    bench::banner("Ablation: write policy",
                  "write-noallocate vs write-allocate under ESP "
                  "(2-node DataScalar)");
    InstSeq budget = bench::defaultBudget(200'000);

    stats::Table table({"benchmark", "noalloc-IPC", "alloc-IPC",
                        "noalloc-bcasts", "alloc-bcasts",
                        "noalloc-KB", "alloc-KB"});

    for (const char *name :
         {"compress_s", "wave5_s", "go_s", "applu_s"}) {
        prog::Program p = workloads::findWorkload(name).build(1);
        Point na = run(p, false, budget);
        Point wa = run(p, true, budget);
        table.addRow({p.name, stats::Table::num(na.ipc, 3),
                      stats::Table::num(wa.ipc, 3),
                      std::to_string(na.broadcasts),
                      std::to_string(wa.broadcasts),
                      std::to_string(na.busBytes / 1024),
                      std::to_string(wa.busBytes / 1024)});
    }
    table.print(std::cout);
    std::printf("\nexpected: write-allocate adds fetch-for-write "
                "broadcasts (messages sent only to be overwritten) "
                "without improving IPC\n");
    return 0;
}
