/**
 * @file
 * Ablation: static replication budget (Section 3.2).
 *
 * Replicating the hottest data pages at every node converts
 * communicated traffic into local accesses at the cost of memory
 * capacity. The sweep replicates 0%..75% of the hottest data pages
 * and reports broadcasts and IPC — the knob the paper turns in its
 * Table 2 setup.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/datascalar.hh"
#include "core/distribution.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Ablation: static replication budget",
                  "fraction of hottest data pages replicated, "
                  "2-node DataScalar");
    InstSeq budget = bench::defaultBudget(150'000);

    for (const char *name : {"li_s", "go_s", "compress_s"}) {
        prog::Program p = workloads::findWorkload(name).build(1);
        core::PageHeat heat = driver::profilePages(p, budget);
        std::size_t data_pages =
            p.touchedPages().size() -
            p.pagesInSegment(prog::Segment::Text);

        std::printf("-- %s (%zu data pages) --\n", p.name.c_str(),
                    data_pages);
        stats::Table table({"repl-pages", "IPC", "broadcasts",
                            "bus-KB"});
        for (unsigned pct : {0u, 12u, 25u, 50u, 75u}) {
            core::DistributionConfig dist;
            dist.numNodes = 2;
            dist.replicatedDataPages = data_pages * pct / 100;
            core::ReplicationReport rep;
            mem::PageTable table_pt =
                core::buildPageTable(p, dist, &heat, &rep);

            core::SimConfig cfg = driver::paperConfig();
            cfg.numNodes = 2;
            cfg.maxInsts = budget;
            core::DataScalarSystem sys(p, cfg, std::move(table_pt));
            core::RunResult r = sys.run();
            table.addRow({std::to_string(rep.total()),
                          stats::Table::num(r.ipc, 3),
                          std::to_string(sys.bus().totalMessages()),
                          std::to_string(sys.bus().totalBytes() /
                                         1024)});
        }
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("expected: replication monotonically removes "
                "broadcasts; IPC gains are largest for codes whose "
                "hot set fits the budget (li)\n");
    return 0;
}
