/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself:
 * functional-simulation and timing-simulation throughput in
 * simulated instructions per second, per system type. Useful when
 * tuning the simulator; not a paper experiment.
 *
 * Each timing benchmark has a *NoSkip twin with event-driven cycle
 * skipping disabled, so the win from fast-forwarding idle cycles is
 * visible directly (reported cycle counts are identical either way;
 * tests/test_cycle_skip.cc proves it). BM_SweepSerial/Parallel time
 * the Figure 7 sweep at 1 vs benchJobs() workers; their *NoReuse
 * twins disable the shared trace capture (driver::TraceCache), so
 * the win from executing each workload once is visible directly.
 * BM_TraceCaptureCold/BM_TraceLoadDisk time a functional trace
 * capture against mmap-loading the same trace back from the
 * persistent store (docs/PERF.md "Persistent trace store").
 *
 * Smoke variants (--benchmark_filter=Smoke) run one tiny iteration
 * of every engine; the custom main() exits non-zero if any run
 * crashes or reports zero throughput, which backs the perf-smoke
 * ctest label. Pass --benchmark_out=<file> --benchmark_out_format=
 * json for a machine-readable artifact.
 */

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "func/trace_file.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

namespace {

const prog::Program &
compressProgram()
{
    static prog::Program p =
        workloads::findWorkload("compress_s").build(1);
    return p;
}

/** Workload for the timing-simulator benchmarks: turb3d's long
 *  FP-latency and memory chains keep the cores stalled most cycles
 *  (IPC ~0.15 at the paper config) — the dead time the paper's
 *  asynchronous ESP creates by design and the regime the
 *  event-driven skip targets. Busy low-stall workloads (compress,
 *  IPC ~1.2) are covered by the sweep benchmarks below. */
const prog::Program &
timingProgram()
{
    static prog::Program p =
        workloads::findWorkload("turb3d_s").build(1);
    return p;
}

void
BM_FunctionalSim(benchmark::State &state)
{
    const prog::Program &p = compressProgram();
    InstSeq budget = static_cast<InstSeq>(state.range(0));
    for (auto _ : state) {
        func::FuncSim sim(p);
        benchmark::DoNotOptimize(sim.run(budget));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(budget));
}

/** The persistent-trace-store twins — the two TraceCache miss
 *  paths with a store configured. Cold: capture by functional
 *  execution, then write the trace file (what the first process
 *  ever to want this trace pays). Disk: mmap-load the file back
 *  (what every later process pays instead). The load side is not
 *  lazy — checksum validation reads the whole payload, so every
 *  page is resident when loadTraceFile returns; the loop only
 *  spot-reads each chunk's borrowed columns on top. Per-record
 *  decode happens during replay either way, so it belongs to
 *  neither side. The ratio is the warm-restart win the store
 *  exists for; bytes_per_record tracks the on-disk cost of the raw
 *  ({insts, 0}) and delta-compressed ({insts, 1}) layouts. */
std::string
benchTracePath(const char *tag)
{
    const char *tmp = std::getenv("TMPDIR");
    return std::string(tmp && *tmp ? tmp : "/tmp") +
           "/simspeed-trace." + std::to_string(::getpid()) + "." +
           tag + ".dstrace";
}

void
BM_TraceCaptureCold(benchmark::State &state)
{
    const prog::Program &p = compressProgram();
    InstSeq budget = static_cast<InstSeq>(state.range(0));
    std::string path = benchTracePath("cold");
    std::string err;
    for (auto _ : state) {
        auto t = func::InstTrace::capture(p, budget);
        if (!func::saveTraceFile(path, *t, "bench", p.imageDigest(),
                                 err)) {
            state.SkipWithError(err.c_str());
            break;
        }
        benchmark::DoNotOptimize(t);
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(budget));
}

void
BM_TraceLoadDisk(benchmark::State &state)
{
    const prog::Program &p = compressProgram();
    InstSeq budget = static_cast<InstSeq>(state.range(0));
    func::TraceSaveOptions save;
    save.compressed = state.range(1) != 0;

    std::string path =
        benchTracePath(save.compressed ? "z" : "raw");
    auto captured = func::InstTrace::capture(p, budget);
    std::string err;
    if (!func::saveTraceFile(path, *captured, "bench",
                             p.imageDigest(), err, save)) {
        state.SkipWithError(err.c_str());
        return;
    }

    for (auto _ : state) {
        auto t = func::loadTraceFile(path, "bench", p.imageDigest(),
                                     err);
        if (!t) {
            state.SkipWithError(err.c_str());
            break;
        }
        std::uint64_t sum = 0;
        for (std::size_t ci = 0; ci < t->numChunks(); ++ci) {
            const auto &c = t->chunk(ci);
            std::size_t last = c->size() - 1;
            sum += c->pc[0] + c->word[last] + c->effAddr[0] +
                   c->memSize[last] + c->nextPc[last];
        }
        benchmark::DoNotOptimize(sum);
    }

    func::TraceFileInfo info;
    if (func::probeTraceFile(path, info, err) && info.records)
        state.counters["bytes_per_record"] =
            static_cast<double>(info.fileBytes) /
            static_cast<double>(info.records);
    std::remove(path.c_str());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(budget));
}

void
BM_PerfectTiming(benchmark::State &state)
{
    const prog::Program &p = timingProgram();
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = static_cast<InstSeq>(state.range(0));
    cfg.eventDriven = state.range(1) != 0;
    for (auto _ : state) {
        auto r = driver::runPerfect(p, cfg);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}

void
BM_DataScalarTiming(benchmark::State &state)
{
    const prog::Program &p = timingProgram();
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = static_cast<InstSeq>(state.range(0));
    cfg.numNodes = static_cast<unsigned>(state.range(1));
    cfg.eventDriven = state.range(2) != 0;
    for (auto _ : state) {
        auto r = driver::runDataScalar(p, cfg);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}

void
BM_TraditionalTiming(benchmark::State &state)
{
    const prog::Program &p = timingProgram();
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = static_cast<InstSeq>(state.range(0));
    cfg.numNodes = static_cast<unsigned>(state.range(1));
    cfg.eventDriven = state.range(2) != 0;
    for (auto _ : state) {
        auto r = driver::runTraditional(p, cfg);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}

/** Serial vs conservative-window parallel ticking of ONE simulation
 *  ({insts, nodes, tickThreads}); results are byte-identical
 *  (tests/test_parallel_tick.cc), so any delta is pure simulator
 *  speed. The stall-dominated timing workload is the intended
 *  regime: wide windows, little cross-node traffic per cycle. */
void
BM_ParallelTickTiming(benchmark::State &state)
{
    const prog::Program &p = timingProgram();
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = static_cast<InstSeq>(state.range(0));
    cfg.numNodes = static_cast<unsigned>(state.range(1));
    cfg.tickThreads = static_cast<unsigned>(state.range(2));
    for (auto _ : state) {
        auto r = driver::runDataScalar(p, cfg);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}

/** The Figure 7 sweep (2 workloads to keep runtime sane) at a given
 *  worker count; items = simulated instructions across all points.
 *  @p reuse toggles the shared-trace capture (the *NoReuse twins
 *  re-execute every point functionally — identical table, slower). */
void
sweepBody(benchmark::State &state, unsigned jobs, bool reuse = true)
{
    const std::vector<std::string> names{"compress_s", "go_s"};
    InstSeq budget = static_cast<InstSeq>(state.range(0));
    for (auto _ : state) {
        stats::Table t =
            driver::fig7IpcTable(names, budget, jobs, true, reuse);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * 5 *
        static_cast<std::int64_t>(names.size()));
}

void
BM_SweepSerial(benchmark::State &state)
{
    sweepBody(state, 1);
}

void
BM_SweepSerialNoReuse(benchmark::State &state)
{
    sweepBody(state, 1, false);
}

void
BM_SweepParallel(benchmark::State &state)
{
    // At least two workers so the pool path is always exercised and
    // the serial/parallel comparison is meaningful; scaling beyond
    // that follows the host's core count (BENCH_JOBS to override).
    unsigned jobs = std::max(2u, bench::benchJobs());
    state.counters["jobs"] = jobs;
    sweepBody(state, jobs);
}

void
BM_SweepParallelNoReuse(benchmark::State &state)
{
    unsigned jobs = std::max(2u, bench::benchJobs());
    state.counters["jobs"] = jobs;
    sweepBody(state, jobs, false);
}

BENCHMARK(BM_FunctionalSim)->Arg(100000);
BENCHMARK(BM_TraceCaptureCold)->Arg(100000);
// {insts, compressed}
BENCHMARK(BM_TraceLoadDisk)
    ->Args({100000, 0})
    ->Args({100000, 1});
// {insts, skip} / {insts, nodes, skip}
BENCHMARK(BM_PerfectTiming)->Args({30000, 1})->Args({30000, 0});
BENCHMARK(BM_DataScalarTiming)
    ->Args({30000, 2, 1})
    ->Args({30000, 2, 0})
    ->Args({30000, 4, 1})
    ->Args({30000, 4, 0});
BENCHMARK(BM_TraditionalTiming)
    ->Args({30000, 2, 1})
    ->Args({30000, 2, 0})
    ->Args({30000, 4, 1})
    ->Args({30000, 4, 0});
// {insts, nodes, tickThreads}: each node count with its serial twin.
BENCHMARK(BM_ParallelTickTiming)
    ->Args({30000, 2, 1})
    ->Args({30000, 2, 2})
    ->Args({30000, 4, 1})
    ->Args({30000, 4, 4})
    ->Args({30000, 8, 1})
    ->Args({30000, 8, 4})
    ->Args({30000, 16, 1})
    ->Args({30000, 16, 4})
    ->UseRealTime(); // node workers run off-thread
BENCHMARK(BM_SweepSerial)->Arg(15000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepSerialNoReuse)
    ->Arg(15000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepParallel)
    ->Arg(15000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime(); // workers run off-thread; CPU time misleads
BENCHMARK(BM_SweepParallelNoReuse)
    ->Arg(15000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Smoke tier: one fixed iteration per engine at a tiny budget, for
// the perf-smoke ctest label. Kept separate so the full benchmarks
// stay statistically meaningful while plain `ctest` stays fast.
void
BM_SmokeFunctional(benchmark::State &state)
{
    BM_FunctionalSim(state);
}
void
BM_SmokePerfect(benchmark::State &state)
{
    BM_PerfectTiming(state);
}
void
BM_SmokeDataScalar(benchmark::State &state)
{
    BM_DataScalarTiming(state);
}
void
BM_SmokeTraditional(benchmark::State &state)
{
    BM_TraditionalTiming(state);
}
void
BM_SmokeParallelTick(benchmark::State &state)
{
    BM_ParallelTickTiming(state);
}
void
BM_SmokeSweepParallel(benchmark::State &state)
{
    sweepBody(state, 4);
}
void
BM_SmokeTraceCapture(benchmark::State &state)
{
    BM_TraceCaptureCold(state);
}
void
BM_SmokeTraceLoad(benchmark::State &state)
{
    BM_TraceLoadDisk(state);
}

BENCHMARK(BM_SmokeFunctional)->Arg(5000)->Iterations(1);
BENCHMARK(BM_SmokePerfect)->Args({2000, 1})->Iterations(1);
BENCHMARK(BM_SmokeDataScalar)
    ->Args({2000, 2, 1})
    ->Args({2000, 2, 0})
    ->Iterations(1);
BENCHMARK(BM_SmokeTraditional)->Args({2000, 2, 1})->Iterations(1);
BENCHMARK(BM_SmokeParallelTick)->Args({2000, 4, 2})->Iterations(1);
BENCHMARK(BM_SmokeSweepParallel)->Arg(2000)->Iterations(1);
BENCHMARK(BM_SmokeTraceCapture)->Arg(5000)->Iterations(1);
BENCHMARK(BM_SmokeTraceLoad)->Args({5000, 1})->Iterations(1);

/**
 * Console reporter that also checks every run for forward progress:
 * an errored run or a missing/zero items_per_second counter marks
 * the whole binary as failed (exit 1 from main).
 */
class CheckedReporter : public benchmark::ConsoleReporter
{
  public:
    bool
    ReportContext(const Context &context) override
    {
        return benchmark::ConsoleReporter::ReportContext(context);
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred) {
                failed_ = true;
                continue;
            }
            auto it = run.counters.find("items_per_second");
            if (it == run.counters.end() || !(it->second > 0.0))
                failed_ = true;
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    bool failed() const { return failed_; }

  private:
    bool failed_ = false;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CheckedReporter reporter;
    std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (ran == 0) {
        std::fprintf(stderr, "simspeed: no benchmarks matched\n");
        return 1;
    }
    if (reporter.failed()) {
        std::fprintf(stderr,
                     "simspeed: a benchmark errored or reported "
                     "zero throughput\n");
        return 1;
    }
    return 0;
}
