/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself:
 * functional-simulation and timing-simulation throughput in
 * simulated instructions per second, per system type. Useful when
 * tuning the simulator; not a paper experiment.
 */

#include <benchmark/benchmark.h>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

namespace {

const prog::Program &
compressProgram()
{
    static prog::Program p =
        workloads::findWorkload("compress_s").build(1);
    return p;
}

void
BM_FunctionalSim(benchmark::State &state)
{
    const prog::Program &p = compressProgram();
    InstSeq budget = static_cast<InstSeq>(state.range(0));
    for (auto _ : state) {
        func::FuncSim sim(p);
        benchmark::DoNotOptimize(sim.run(budget));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(budget));
}

void
BM_PerfectTiming(benchmark::State &state)
{
    const prog::Program &p = compressProgram();
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = static_cast<InstSeq>(state.range(0));
    for (auto _ : state) {
        auto r = driver::runPerfect(p, cfg);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}

void
BM_DataScalarTiming(benchmark::State &state)
{
    const prog::Program &p = compressProgram();
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = static_cast<unsigned>(state.range(1));
    cfg.maxInsts = static_cast<InstSeq>(state.range(0));
    for (auto _ : state) {
        auto r = driver::runDataScalar(p, cfg);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}

void
BM_TraditionalTiming(benchmark::State &state)
{
    const prog::Program &p = compressProgram();
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = static_cast<unsigned>(state.range(1));
    cfg.maxInsts = static_cast<InstSeq>(state.range(0));
    for (auto _ : state) {
        auto r = driver::runTraditional(p, cfg);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}

BENCHMARK(BM_FunctionalSim)->Arg(100000);
BENCHMARK(BM_PerfectTiming)->Arg(30000);
BENCHMARK(BM_DataScalarTiming)
    ->Args({30000, 2})
    ->Args({30000, 4});
BENCHMARK(BM_TraditionalTiming)
    ->Args({30000, 2})
    ->Args({30000, 4});

} // namespace

BENCHMARK_MAIN();
