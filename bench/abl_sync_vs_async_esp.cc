/**
 * @file
 * Ablation: synchronous (MMM-style) vs asynchronous (DataScalar)
 * ESP.
 *
 * The MMM ran ESP in lock-step with in-order minicomputers: one
 * datathread at a time, every lead change fully serialized.
 * DataScalar's contribution is the combination of ESP with
 * out-of-order cores so multiple datathreads run concurrently.
 * A 1-entry window turns our core into an in-order machine — the
 * closest timing analogue of the MMM — and the window sweep shows
 * asynchrony paying for itself.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Ablation: sync vs async ESP",
                  "window size 1 (lock-step MMM analogue) to 256 "
                  "(DataScalar), 2 nodes");
    InstSeq budget = bench::defaultBudget(120'000);

    for (const char *name : {"applu_s", "compress_s", "wave5_s"}) {
        prog::Program p = workloads::findWorkload(name).build(1);
        std::printf("-- %s --\n", p.name.c_str());
        stats::Table table({"window", "issue", "IPC",
                            "found-in-BSHR%"});
        struct Config
        {
            unsigned ruu;
            unsigned width;
        };
        for (Config c : {Config{1, 1}, Config{4, 1}, Config{16, 4},
                         Config{64, 8}, Config{256, 8}}) {
            core::SimConfig cfg = driver::paperConfig();
            cfg.numNodes = 2;
            cfg.maxInsts = budget;
            cfg.core.ruuEntries = c.ruu;
            cfg.core.lsqEntries = std::max(1u, c.ruu / 2);
            cfg.core.issueWidth = c.width;
            cfg.core.fetchWidth = c.width;
            cfg.core.commitWidth = c.width;
            core::DataScalarSystem sys(
                p, cfg, driver::figure7PageTable(p, 2));
            core::RunResult r = sys.run();
            const auto &bs = sys.node(0).bshr().bshrStats();
            double found =
                bs.bufferedHits + bs.waiterAllocs
                    ? static_cast<double>(bs.bufferedHits) /
                          (bs.bufferedHits + bs.waiterAllocs)
                    : 0.0;
            table.addRow({std::to_string(c.ruu),
                          std::to_string(c.width),
                          stats::Table::num(r.ipc, 3),
                          stats::Table::pct(found)});
        }
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("expected: larger windows let nodes run ahead on "
                "owned operands (datathreading), raising both IPC "
                "and the found-in-BSHR rate over the lock-step "
                "configuration\n");
    return 0;
}
