/**
 * @file
 * Regenerates Table 1: off-chip data traffic reduced by ESP.
 *
 * For each of the fourteen benchmark substitutes, an in-order run is
 * filtered through the paper's study cache (64 KB, 2-way, write-back,
 * write-allocate, 32 B lines) and the resulting off-chip traffic is
 * decomposed into requests, responses, and write traffic. ESP
 * removes requests and writes; the table reports the eliminated
 * fraction in bytes and in transactions.
 *
 * Paper's observed ranges: 25%-45% of bytes, 50%-75% of
 * transactions (always >= 50% because every request pairs with a
 * response).
 *
 * Rows are measured concurrently (BENCH_JOBS workers, default =
 * hardware) and printed in registry order, so output is identical
 * at any job count.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/thread_pool.hh"
#include "driver/driver.hh"
#include "func/inst_trace.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Table 1",
                  "off-chip data traffic eliminated by ESP");
    InstSeq budget = bench::defaultBudget(2'000'000);

    stats::Table table({"benchmark", "(SPEC95)", "traffic-bytes",
                        "transactions", "req", "resp", "writes"});

    const auto &all = workloads::allWorkloads();
    std::vector<driver::TrafficResult> results(all.size());
    std::vector<std::string> names(all.size());
    common::parallelFor(
        bench::benchJobs(), all.size(), [&](std::size_t i) {
            prog::Program p = all[i].build(1);
            names[i] = p.name;
            // One functional execution, decomposed from the captured
            // trace (identical numbers to a hooked run).
            std::shared_ptr<const func::InstTrace> trace =
                func::InstTrace::capture(p, budget);
            results[i] = driver::measureEspTraffic(*trace);
        });

    double min_bytes = 1.0;
    double max_bytes = 0.0;
    for (std::size_t i = 0; i < all.size(); ++i) {
        const driver::TrafficResult &t = results[i];
        table.addRow({names[i], all[i].spec,
                      stats::Table::pct(t.bytesEliminated()),
                      stats::Table::pct(t.transactionsEliminated()),
                      std::to_string(t.requests),
                      std::to_string(t.responses),
                      std::to_string(t.writeBacks)});
        min_bytes = std::min(min_bytes, t.bytesEliminated());
        max_bytes = std::max(max_bytes, t.bytesEliminated());
    }
    table.print(std::cout);

    std::printf("\npaper: bytes eliminated 25%%-45%%, transactions "
                "50%%-75%% (>=50%% by construction)\n");
    std::printf("ours:  bytes eliminated %.0f%%-%.0f%%\n",
                min_bytes * 100.0, max_bytes * 100.0);
    return 0;
}
