/**
 * @file
 * Regenerates Table 3: DataScalar broadcast statistics from the
 * two-processor timing runs.
 *
 * Columns (arithmetic mean over nodes, as in the paper):
 *  - late broadcasts: reparative broadcasts issued at commit because
 *    of false hits, as a fraction of all broadcasts;
 *  - BSHR squashes: entries squashed due to false hits, as a
 *    fraction of BSHR accesses;
 *  - data found in BSHR: remote fetches whose data was already
 *    waiting (evidence of datathreading -- the owner ran ahead).
 *
 * Paper ranges: late broadcasts 0%-29%, squashes 0%-59%, data found
 * in BSHR 1%-39%.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace dscalar;

int
main()
{
    bench::banner("Table 3", "DataScalar broadcast statistics "
                             "(2-node timing runs)");
    InstSeq budget = bench::defaultBudget(300'000);
    constexpr unsigned nodes = 2;

    stats::Table table({"benchmark", "late-broadcasts",
                        "BSHR-squashes", "found-in-BSHR",
                        "broadcasts", "max-BSHR-occupancy"});

    for (const auto &name : workloads::timingWorkloadNames()) {
        prog::Program p = workloads::findWorkload(name).build(1);
        core::SimConfig cfg = driver::paperConfig();
        cfg.numNodes = nodes;
        cfg.maxInsts = budget;
        core::DataScalarSystem sys(
            p, cfg, driver::figure7PageTable(p, nodes));
        sys.run();

        double late = 0.0;
        double squash = 0.0;
        double found = 0.0;
        std::uint64_t total_broadcasts = 0;
        std::uint64_t max_occ = 0;
        for (NodeId n = 0; n < nodes; ++n) {
            const auto &ns = sys.node(n).nodeStats();
            const auto &bs = sys.node(n).bshr().bshrStats();
            if (ns.totalBroadcasts())
                late += static_cast<double>(ns.reparativeBroadcasts) /
                        ns.totalBroadcasts();
            if (bs.accesses())
                squash +=
                    static_cast<double>(bs.squashes) / bs.accesses();
            std::uint64_t remote = bs.bufferedHits + bs.waiterAllocs;
            if (remote)
                found +=
                    static_cast<double>(bs.bufferedHits) / remote;
            total_broadcasts += ns.totalBroadcasts();
            max_occ = std::max(max_occ, bs.maxOccupancy);
        }
        late /= nodes;
        squash /= nodes;
        found /= nodes;

        table.addRow({p.name, stats::Table::pct(late),
                      stats::Table::pct(squash),
                      stats::Table::pct(found),
                      std::to_string(total_broadcasts),
                      std::to_string(max_occ)});
    }
    table.print(std::cout);

    std::printf("\npaper: late 0%%-29%%, squashes 0%%-59%%, found "
                "1%%-39%%; found-in-BSHR is the datathreading "
                "signal\n");
    return 0;
}
