/**
 * @file
 * Minimal JSON parser for tests.
 *
 * Just enough of RFC 8259 to round-trip the exporters under test
 * (stats::JsonWriter, obs::PerfettoTraceSink, obs::Sampler): objects
 * (insertion-ordered), arrays, strings with the escapes the writers
 * emit, numbers, booleans, null. Numbers keep their raw source text
 * so byte-match tests can compare the emitted token, not a re-printed
 * double. Parse errors surface as an error string, never UB.
 *
 * Test-only — production code has no JSON input path.
 */

#ifndef DSCALAR_TESTS_MINI_JSON_HH
#define DSCALAR_TESTS_MINI_JSON_HH

#include <cctype>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mini_json {

struct Value
{
    enum Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string raw; ///< verbatim number token (Number only)
    std::string str; ///< decoded string (String only)
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isObject() const { return kind == Object; }
    bool isArray() const { return kind == Array; }
    bool isNumber() const { return kind == Number; }
    bool isString() const { return kind == String; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (kind != Object)
            return nullptr;
        for (const auto &kv : object)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    /** @return true and fill @p out on success; else set error(). */
    bool
    parse(Value &out)
    {
        pos_ = 0;
        error_.clear();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after value");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = Value::String;
            return parseString(out.str);
        }
        if (c == 't' || c == 'f')
            return parseKeyword(out);
        if (c == 'n')
            return parseKeyword(out);
        return parseNumber(out);
    }

    bool
    parseKeyword(Value &out)
    {
        static const struct
        {
            const char *word;
            Value::Kind kind;
            bool value;
        } kws[] = {{"true", Value::Bool, true},
                   {"false", Value::Bool, false},
                   {"null", Value::Null, false}};
        for (const auto &kw : kws) {
            std::size_t len = std::string(kw.word).size();
            if (text_.compare(pos_, len, kw.word) == 0) {
                out.kind = kw.kind;
                out.boolean = kw.value;
                pos_ += len;
                return true;
            }
        }
        return fail("unknown keyword");
    }

    bool
    parseNumber(Value &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        out.kind = Value::Number;
        out.raw = text_.substr(start, pos_ - start);
        try {
            out.number = std::stod(out.raw);
        } catch (...) {
            return fail("malformed number '" + out.raw + "'");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // The writers only emit \u for control characters;
                // decode the BMP-ASCII range and reject the rest.
                if (v > 0x7f)
                    return fail("non-ASCII \\u escape unsupported");
                out.push_back(static_cast<char>(v));
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(Value &out)
    {
        if (!consume('['))
            return fail("expected '['");
        out.kind = Value::Array;
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            Value elem;
            if (!parseValue(elem))
                return false;
            out.array.push_back(std::move(elem));
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(Value &out)
    {
        if (!consume('{'))
            return fail("expected '{'");
        out.kind = Value::Object;
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return fail("expected ':'");
            Value member;
            if (!parseValue(member))
                return false;
            out.object.emplace_back(std::move(key),
                                    std::move(member));
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

/** Parse @p text; empty error string on success. */
inline Value
parse(const std::string &text, std::string &error)
{
    Value v;
    Parser p(text);
    if (!p.parse(v))
        error = p.error();
    else
        error.clear();
    return v;
}

} // namespace mini_json

#endif // DSCALAR_TESTS_MINI_JSON_HH
