/** @file Tests for the result-communication analytical model. */

#include <gtest/gtest.h>

#include "core/result_comm.hh"
#include "driver/driver.hh"

namespace dscalar {
namespace core {
namespace {

ResultCommEstimate
estimate(unsigned operands, unsigned results, Cycle compute)
{
    SimConfig cfg = driver::paperConfig();
    PrivateRegion r;
    r.operandLoads = operands;
    r.resultValues = results;
    r.computeCycles = compute;
    return estimateResultComm(r, cfg.bus, cfg.mem,
                              cfg.core.dcache.lineSize);
}

TEST(ResultComm, TrafficCountsAreExact)
{
    ResultCommEstimate e = estimate(8, 2, 50);
    // ESP: 8 broadcasts of (8 header + 32 line).
    EXPECT_EQ(e.espMessages, 8u);
    EXPECT_EQ(e.espBytes, 8u * 40);
    // RC: 2 broadcasts of (8 header + 8 result).
    EXPECT_EQ(e.rcMessages, 2u);
    EXPECT_EQ(e.rcBytes, 2u * 16);
}

TEST(ResultComm, SavingsGrowWithOperandCount)
{
    double prev = -1.0;
    for (unsigned k : {2u, 4u, 8u, 16u}) {
        double s = estimate(k, 1, 10).byteSavings();
        EXPECT_GT(s, prev);
        prev = s;
    }
    EXPECT_GT(prev, 0.9); // 16 lines vs 1 result
}

TEST(ResultComm, NoSavingsWhenResultsMatchOperandPayload)
{
    // Many results, few operands: RC can lose on bytes.
    ResultCommEstimate e = estimate(1, 8, 10);
    EXPECT_LT(e.byteSavings(), 0.0);
}

TEST(ResultComm, LatencyWinsWhenOperandRich)
{
    // Broadcasting 32 lines serializes the bus; shipping one result
    // after local compute is faster.
    ResultCommEstimate rich = estimate(32, 1, 50);
    EXPECT_LT(rich.rcCriticalPath, rich.espCriticalPath);
}

TEST(ResultComm, LatencyGapShrinksAsComputeDominates)
{
    // The owner starts the private compute right after its local
    // fetch, so RC's region latency always leads by about one
    // broadcast; as compute grows that lead becomes negligible
    // (and the model ignores RC's real cost — non-owners idling
    // instead of computing, the loss of SPSD symmetry).
    ResultCommEstimate light = estimate(1, 1, 10);
    ResultCommEstimate heavy = estimate(1, 1, 10'000);
    double light_ratio = static_cast<double>(light.espCriticalPath) /
                         light.rcCriticalPath;
    double heavy_ratio = static_cast<double>(heavy.espCriticalPath) /
                         heavy.rcCriticalPath;
    EXPECT_GT(light_ratio, heavy_ratio);
    EXPECT_NEAR(heavy_ratio, 1.0, 0.01);
}

TEST(ResultComm, CriticalPathsScaleWithBusSpeed)
{
    SimConfig cfg = driver::paperConfig();
    PrivateRegion r;
    r.operandLoads = 16;
    r.resultValues = 1;
    r.computeCycles = 20;
    auto base = estimateResultComm(r, cfg.bus, cfg.mem,
                                   cfg.core.dcache.lineSize);
    cfg.bus.clockDivisor = 40;
    auto slow = estimateResultComm(r, cfg.bus, cfg.mem,
                                   cfg.core.dcache.lineSize);
    EXPECT_GT(slow.espCriticalPath, base.espCriticalPath);
    // A slower bus makes result communication relatively better.
    double base_ratio = static_cast<double>(base.espCriticalPath) /
                        base.rcCriticalPath;
    double slow_ratio = static_cast<double>(slow.espCriticalPath) /
                        slow.rcCriticalPath;
    EXPECT_GT(slow_ratio, base_ratio);
}

} // namespace
} // namespace core
} // namespace dscalar
