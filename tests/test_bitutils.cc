/** @file Unit tests for common/bitutils.hh. */

#include <gtest/gtest.h>

#include "common/bitutils.hh"

namespace dscalar {
namespace {

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(BitUtils, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
    EXPECT_EQ(floorLog2(~0ULL), 63u);
}

TEST(BitUtils, AlignDownUp)
{
    EXPECT_EQ(alignDown(0x1234, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1234, 0x1000), 0x2000u);
    EXPECT_EQ(alignDown(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignUp(0x1000, 0x1000), 0x1000u);
    EXPECT_EQ(alignDown(31, 32), 0u);
    EXPECT_EQ(alignUp(33, 32), 64u);
}

TEST(BitUtils, Bits)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xff, 3, 0), 0xfu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(sext(0xffff, 16), -1);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0x7fff, 16), 32767);
    EXPECT_EQ(sext(0x0, 16), 0);
    EXPECT_EQ(sext(0x2000000, 26), -33554432);
}

class AlignParamTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AlignParamTest, DownUpInverse)
{
    std::uint64_t align = GetParam();
    for (Addr a : {Addr(0), Addr(1), Addr(align - 1), Addr(align),
                   Addr(align * 7 + 3), Addr(0x12345678)}) {
        EXPECT_LE(alignDown(a, align), a);
        EXPECT_GE(alignUp(a, align), a);
        EXPECT_EQ(alignDown(a, align) % align, 0u);
        EXPECT_EQ(alignUp(a, align) % align, 0u);
        EXPECT_LT(a - alignDown(a, align), align);
    }
}

INSTANTIATE_TEST_SUITE_P(Alignments, AlignParamTest,
                         ::testing::Values(1, 2, 8, 32, 4096, 8192));

} // namespace
} // namespace dscalar
