/** @file Unit tests for the synchronous Massive Memory Machine model. */

#include <gtest/gtest.h>

#include "baseline/mmm.hh"

namespace dscalar {
namespace baseline {
namespace {

TEST(Mmm, PaperFigure1ReferenceString)
{
    // Figure 1: w1..w9 with w5,w6,w7 on machine 1, all others on
    // machine 0: two lead changes, three datathreads.
    std::vector<NodeId> owners = {0, 0, 0, 0, 1, 1, 1, 0, 0};
    MmmResult r = runMmmEsp(owners);
    EXPECT_EQ(r.leadChanges, 2u);
    ASSERT_EQ(r.threadLengths.size(), 3u);
    EXPECT_EQ(r.threadLengths[0], 4u);
    EXPECT_EQ(r.threadLengths[1], 3u);
    EXPECT_EQ(r.threadLengths[2], 2u);
    // Receive times strictly increase.
    for (std::size_t i = 1; i < r.receiveTime.size(); ++i)
        EXPECT_GT(r.receiveTime[i], r.receiveTime[i - 1]);
}

TEST(Mmm, SingleOwnerPipelinesFully)
{
    std::vector<NodeId> owners(10, 0);
    MmmConfig cfg;
    cfg.pipelinedStep = 1;
    cfg.leadChangePenalty = 5;
    MmmResult r = runMmmEsp(owners, cfg);
    EXPECT_EQ(r.leadChanges, 0u);
    EXPECT_EQ(r.totalCycles, 10u); // one per word after the first...
}

TEST(Mmm, AlternatingOwnersPayPenaltyEveryWord)
{
    std::vector<NodeId> owners = {0, 1, 0, 1, 0, 1};
    MmmConfig cfg;
    cfg.pipelinedStep = 1;
    cfg.leadChangePenalty = 4;
    MmmResult r = runMmmEsp(owners, cfg);
    EXPECT_EQ(r.leadChanges, 5u);
    EXPECT_EQ(r.totalCycles, 1u + 5 * 4);
}

TEST(Mmm, EmptyString)
{
    MmmResult r = runMmmEsp({});
    EXPECT_EQ(r.totalCycles, 0u);
    EXPECT_TRUE(r.threadLengths.empty());
}

TEST(Mmm, ChainCrossingsPaperFigure3)
{
    // x1..x3 on chip 0, x4 on chip 1, requester = chip 0:
    // DataScalar pipelines to 2 serialized crossings; the
    // traditional system pays request+response per remote operand.
    EXPECT_EQ(chainCrossings({0, 0, 0, 1}).dataScalar, 2u);
    EXPECT_EQ(chainCrossings({1, 1, 1, 1}).traditional, 8u);
}

TEST(Mmm, ChainCrossingsAllLocal)
{
    ChainCrossings c = chainCrossings({0, 0, 0});
    EXPECT_EQ(c.dataScalar, 1u); // still broadcast once
    EXPECT_EQ(c.traditional, 0u);
}

TEST(Mmm, ChainCrossingsScaleWithTransitions)
{
    ChainCrossings c = chainCrossings({0, 1, 2, 3});
    EXPECT_EQ(c.dataScalar, 4u);
    EXPECT_EQ(c.traditional, 6u);
}

} // namespace
} // namespace baseline
} // namespace dscalar
