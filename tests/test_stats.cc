/** @file Unit tests for the statistics package and table printer. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"
#include "stats/table.hh"

namespace dscalar {
namespace stats {
namespace {

TEST(Counter, IncrementAndAdd)
{
    StatGroup group("g");
    Counter c(&group, "c", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, Mean)
{
    StatGroup group("g");
    Average avg(&group, "a", "an average");
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    avg.sample(1.0);
    avg.sample(2.0);
    avg.sample(6.0);
    EXPECT_DOUBLE_EQ(avg.mean(), 3.0);
    EXPECT_EQ(avg.count(), 3u);
}

TEST(HistogramTest, BucketsAndOverflow)
{
    StatGroup group("g");
    Histogram h(&group, "h", "a histogram", 10, 4);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40);   // overflow
    h.sample(1000); // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_NEAR(h.mean(), (0 + 9 + 10 + 39 + 40 + 1000) / 6.0, 1e-9);
}

TEST(StatGroupTest, DumpContainsAllStats)
{
    StatGroup group("memsys");
    Counter c1(&group, "reads", "read count");
    Counter c2(&group, "writes", "write count");
    ++c1;
    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("memsys"), std::string::npos);
    EXPECT_NE(out.find("reads"), std::string::npos);
    EXPECT_NE(out.find("writes"), std::string::npos);
}

TEST(StatGroupTest, ResetAll)
{
    StatGroup group("g");
    Counter c(&group, "c", "");
    Average a(&group, "a", "");
    c += 5;
    a.sample(1.0);
    group.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

TEST(TableTest, AlignedOutput)
{
    Table t({"bench", "ipc"});
    t.addRow({"compress", "1.95"});
    t.addRow({"go", "2.50"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("compress"), std::string::npos);
    EXPECT_NE(out.find("2.50"), std::string::npos);
    // header + separator + 2 rows = 4 lines
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableTest, Formatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.37), "37%");
    EXPECT_EQ(Table::pct(0.375, 1), "37.5%");
}

TEST(StatGroupTest, DuplicateNamePanics)
{
    StatGroup group("g");
    Counter c(&group, "twice", "first registration");
    EXPECT_DEATH(Counter(&group, "twice", "second registration"),
                 "duplicate stat 'twice' in group 'g'");
}

TEST(HistogramTest, DumpAlwaysPrintsOverflow)
{
    StatGroup group("g");
    Histogram h(&group, "h", "a histogram", 10, 2);
    h.sample(5); // no overflow samples
    std::ostringstream os;
    h.dump(os);
    EXPECT_NE(os.str().find("overflow"), std::string::npos)
        << os.str();
}

TEST(ScalarTest, SetAndDump)
{
    StatGroup group("g");
    Scalar s(&group, "ipc", "instructions per cycle");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s.set(1.25);
    EXPECT_DOUBLE_EQ(s.value(), 1.25);
    std::ostringstream os;
    s.dump(os);
    EXPECT_NE(os.str().find("1.25"), std::string::npos);
}

/** Records which visit method ran, proving typed dispatch. */
struct KindVisitor : StatVisitor
{
    std::string last;
    void visitCounter(const Counter &) override { last = "counter"; }
    void visitScalar(const Scalar &) override { last = "scalar"; }
    void visitAverage(const Average &) override { last = "average"; }
    void
    visitHistogram(const Histogram &) override
    {
        last = "histogram";
    }
};

TEST(StatVisitorTest, TypedDispatch)
{
    StatGroup group("g");
    Counter c(&group, "c", "");
    Scalar s(&group, "s", "");
    Average a(&group, "a", "");
    Histogram h(&group, "h", "", 1, 1);
    KindVisitor v;
    c.visit(v);
    EXPECT_EQ(v.last, "counter");
    s.visit(v);
    EXPECT_EQ(v.last, "scalar");
    a.visit(v);
    EXPECT_EQ(v.last, "average");
    h.visit(v);
    EXPECT_EQ(v.last, "histogram");
}

} // namespace
} // namespace stats
} // namespace dscalar
