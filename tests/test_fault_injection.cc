/** @file Tests for interconnect fault injection and re-request
 *  recovery: seeded determinism, completion under loss, hard BSHR
 *  capacity, and the watchdog diagnostic dump. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "interconnect/fault_model.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace {

using namespace prog::reg;
using interconnect::FaultDecision;
using interconnect::FaultModel;
using interconnect::FaultParams;
using interconnect::MsgKind;

prog::Program
streamProgram(unsigned data_pages)
{
    prog::Program p;
    Addr g = p.allocGlobal(data_pages * prog::pageSize);
    for (Addr off = 0; off < data_pages * prog::pageSize; off += 8)
        p.poke64(g + off, off);
    prog::Assembler a(p);
    a.la(s1, g);
    a.li(s0,
         static_cast<std::int32_t>(data_pages * prog::pageSize / 64));
    a.label("loop");
    a.ld(t0, s1, 0);
    a.add(s2, s2, t0);
    a.addi(s1, s1, 64);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

bool
sameDecision(const FaultDecision &a, const FaultDecision &b)
{
    return a.drop == b.drop && a.duplicate == b.duplicate &&
           a.delay == b.delay;
}

// --- FaultModel unit tests -----------------------------------------

TEST(FaultModel, SeededDrawsAreReproducible)
{
    FaultParams p;
    p.dropProb = 0.3;
    p.dupProb = 0.2;
    p.delayProb = 0.5;
    p.maxDelay = 16;
    p.seed = 7;

    FaultModel a(p);
    FaultModel b(p);
    for (unsigned i = 0; i < 256; ++i) {
        NodeId src = i % 4;
        Addr line = 0x1000 + 0x40 * (i % 8);
        EXPECT_TRUE(sameDecision(
            a.decide(MsgKind::Broadcast, src, line, i),
            b.decide(MsgKind::Broadcast, src, line, i)));
    }
    EXPECT_EQ(a.faultStats().decisions, 256u);
}

TEST(FaultModel, DecisionsAreKeyedNotGloballyOrdered)
{
    // The nth transmission of a given (kind, src, line) faults the
    // same way no matter what other traffic interleaves with it.
    FaultParams p;
    p.dropProb = 0.4;
    p.seed = 11;

    FaultModel alone(p);
    FaultModel interleaved(p);
    std::vector<FaultDecision> want;
    for (unsigned n = 0; n < 64; ++n)
        want.push_back(
            alone.decide(MsgKind::Broadcast, 0, 0x2000, n));
    for (unsigned n = 0; n < 64; ++n) {
        // Noise from another node between every draw of interest.
        interleaved.decide(MsgKind::Broadcast, 1, 0x9000 + 64 * n, n);
        EXPECT_TRUE(sameDecision(
            interleaved.decide(MsgKind::Broadcast, 0, 0x2000, n),
            want[n]))
            << "draw " << n;
    }
}

TEST(FaultModel, SeedChangesThePattern)
{
    FaultParams p;
    p.dropProb = 0.5;
    FaultParams q = p;
    q.seed = 99;

    FaultModel a(p);
    FaultModel b(q);
    unsigned differing = 0;
    for (unsigned i = 0; i < 256; ++i) {
        Addr line = 0x4000 + 0x40 * i;
        if (!sameDecision(a.decide(MsgKind::Broadcast, 0, line, i),
                          b.decide(MsgKind::Broadcast, 0, line, i)))
            ++differing;
    }
    EXPECT_GT(differing, 0u);
}

TEST(FaultModel, DisabledDrawsNothing)
{
    FaultModel m; // all-off defaults
    EXPECT_FALSE(m.enabled());
    FaultDecision d = m.decide(MsgKind::Broadcast, 0, 0x1000, 0);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.duplicate);
    EXPECT_EQ(d.delay, 0u);
    EXPECT_EQ(m.faultStats().decisions, 0u);
}

TEST(FaultModel, DroppedMessagesAreNeitherLateNorDuplicated)
{
    FaultParams p;
    p.dropProb = 1.0;
    p.dupProb = 1.0;
    p.delayProb = 1.0;
    p.maxDelay = 8;
    FaultModel m(p);
    for (unsigned i = 0; i < 32; ++i) {
        FaultDecision d =
            m.decide(MsgKind::Broadcast, 0, 0x40 * i, i);
        EXPECT_TRUE(d.drop);
        EXPECT_FALSE(d.duplicate);
        EXPECT_EQ(d.delay, 0u);
    }
    EXPECT_EQ(m.faultStats().duplicates, 0u);
    EXPECT_EQ(m.faultStats().delays, 0u);
}

// --- System-level fault injection ----------------------------------

struct FaultRun
{
    core::RunResult result;
    std::string stats;
    std::uint64_t rerequests = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t waitersLeft = 0;
    bool allCommitted = false;
    bool drained = false;
};

FaultRun
runFaulty(const prog::Program &p, const core::SimConfig &cfg)
{
    core::DataScalarSystem sys(
        p, cfg, driver::figure7PageTable(p, cfg.numNodes));
    FaultRun r;
    r.result = sys.run();
    std::ostringstream os;
    sys.dumpStats(os);
    r.stats = os.str();
    r.allCommitted = true;
    for (NodeId n = 0; n < cfg.numNodes; ++n) {
        r.rerequests += sys.node(n).nodeStats().rerequestsSent;
        r.recoveries += sys.node(n).nodeStats().recoveryBroadcasts;
        for (const core::BshrEntryInfo &e :
             sys.node(n).bshr().entries())
            r.waitersLeft += e.waiters;
        r.allCommitted =
            r.allCommitted && sys.node(n).core().committedSeq() ==
                                  r.result.instructions;
    }
    r.drained = sys.protocolDrained();
    return r;
}

TEST(FaultInjection, FaultFreeRunsAreCycleIdentical)
{
    // Arming recovery (non-zero timeout, non-default seed) with all
    // fault probabilities at zero must not perturb a single cycle.
    prog::Program p = streamProgram(8);
    core::SimConfig base = driver::paperConfig();
    base.numNodes = 2;
    core::SimConfig armed = base;
    armed.fault.seed = 123;
    armed.rerequestTimeout = 50'000;

    FaultRun a = runFaulty(p, base);
    FaultRun b = runFaulty(p, armed);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.instructions, b.result.instructions);
    EXPECT_EQ(b.rerequests, 0u);
    EXPECT_TRUE(b.drained);
}

TEST(FaultInjection, DropRecoveryCompletesOnBus)
{
    prog::Program p = streamProgram(8);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.fault.dropProb = 0.05;
    cfg.fault.seed = 42;
    cfg.rerequestTimeout = 2'000;

    // Losses deliberately break the exactly-once invariant behind
    // protocolDrained() (a dropped broadcast strands its pending
    // squash), so completion here means: everything committed and no
    // waiter left behind.
    FaultRun a = runFaulty(p, cfg);
    EXPECT_TRUE(a.allCommitted);
    EXPECT_EQ(a.waitersLeft, 0u);
    EXPECT_GT(a.result.instructions, 0u);
    EXPECT_GT(a.rerequests, 0u);
    EXPECT_GT(a.recoveries, 0u);

    // Bit-deterministic: a repeat and the single-stepping run loop
    // produce the same cycle count and the same statistics dump.
    FaultRun b = runFaulty(p, cfg);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.stats, b.stats);

    core::SimConfig stepped = cfg;
    stepped.eventDriven = false;
    FaultRun c = runFaulty(p, stepped);
    EXPECT_EQ(a.result.cycles, c.result.cycles);
    EXPECT_EQ(a.stats, c.stats);
}

TEST(FaultInjection, DropRecoveryCompletesOnRing)
{
    prog::Program p = streamProgram(8);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 4;
    cfg.interconnect = core::InterconnectKind::Ring;
    cfg.fault.dropProb = 0.05;
    cfg.fault.seed = 42;
    cfg.rerequestTimeout = 2'000;

    FaultRun a = runFaulty(p, cfg);
    EXPECT_TRUE(a.allCommitted);
    EXPECT_EQ(a.waitersLeft, 0u);
    EXPECT_GT(a.result.instructions, 0u);
    EXPECT_GT(a.rerequests, 0u);

    FaultRun b = runFaulty(p, cfg);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(FaultInjection, DelayAndDuplicationPreserveCompletion)
{
    // Jitter and duplicates reorder and repeat deliveries but never
    // lose data: the run completes without any recovery action, and
    // retires exactly as many instructions as the fault-free run.
    prog::Program p = streamProgram(8);
    core::SimConfig clean = driver::paperConfig();
    clean.numNodes = 2;
    FaultRun base = runFaulty(p, clean);

    core::SimConfig cfg = clean;
    cfg.fault.dupProb = 0.05;
    cfg.fault.delayProb = 0.2;
    cfg.fault.maxDelay = 40;
    cfg.fault.seed = 3;

    FaultRun r = runFaulty(p, cfg);
    EXPECT_TRUE(r.allCommitted);
    EXPECT_EQ(r.waitersLeft, 0u);
    EXPECT_EQ(r.result.instructions, base.result.instructions);
    EXPECT_EQ(r.rerequests, 0u);
}

TEST(FaultInjection, CountingSinkSeesFaultEvents)
{
    prog::Program p = streamProgram(8);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.fault.dropProb = 0.05;
    cfg.fault.seed = 42;
    cfg.rerequestTimeout = 2'000;

    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    CountingTraceSink sink;
    sys.setTraceSink(&sink);
    sys.run();

    EXPECT_EQ(sink.count(TraceEventKind::FaultDrop),
              sys.faultModel().faultStats().drops);
    EXPECT_GT(sink.count(TraceEventKind::FaultDrop), 0u);
    EXPECT_GT(sink.count(TraceEventKind::Rerequest), 0u);
    EXPECT_GT(sink.count(TraceEventKind::RecoveryBroadcast), 0u);
}

TEST(FaultInjection, HardBshrCapacityCompletes)
{
    // A tiny hard-capacity BSHR forces flow-control stalls and
    // full-bank drops; re-request recovery must still drain the run.
    prog::Program p = streamProgram(8);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.bshrCapacity = 4;
    cfg.bshrHardCapacity = true;
    cfg.rerequestTimeout = 2'000;

    FaultRun a = runFaulty(p, cfg);
    EXPECT_TRUE(a.allCommitted);
    EXPECT_EQ(a.waitersLeft, 0u);
    EXPECT_GT(a.result.instructions, 0u);

    FaultRun b = runFaulty(p, cfg);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.stats, b.stats);
}

// --- Watchdog diagnostics ------------------------------------------

TEST(Watchdog, DumpIsDiagnostic)
{
    prog::Program p = streamProgram(4);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.rerequestTimeout = 50'000;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    sys.run();

    std::ostringstream os;
    sys.watchdogDump(os, 123);
    std::string dump = os.str();
    EXPECT_NE(dump.find("watchdog diagnostics @ cycle 123"),
              std::string::npos);
    EXPECT_NE(dump.find("node 0:"), std::string::npos);
    EXPECT_NE(dump.find("node 1:"), std::string::npos);
    EXPECT_NE(dump.find("in-flight messages:"), std::string::npos);
}

TEST(Watchdog, DeadlockPanicsWithDiagnostics)
{
    // Total loss with recovery disabled is an unrecoverable protocol
    // deadlock: the watchdog must dump diagnostics and panic rather
    // than spin forever.
    prog::Program p = streamProgram(4);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.fault.dropProb = 1.0;
    cfg.watchdogCycles = 50'000;

    EXPECT_DEATH(
        {
            core::DataScalarSystem sys(
                p, cfg, driver::figure7PageTable(p, 2));
            sys.run();
        },
        "protocol deadlock");
}

TEST(Watchdog, HardCapacityWithoutRecoveryIsRejected)
{
    // bshrHardCapacity drops broadcasts at a full bank; without
    // re-request recovery that is guaranteed data loss.
    prog::Program p = streamProgram(4);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.bshrHardCapacity = true;

    EXPECT_DEATH(core::DataScalarSystem(
                     p, cfg, driver::figure7PageTable(p, 2)),
                 "rerequestTimeout");
}

} // namespace
} // namespace dscalar
