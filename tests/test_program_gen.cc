/** @file
 * check::ProgramGen contract tests: determinism (identical seeds
 * produce byte-identical images), guaranteed termination under
 * FuncSim across many seeds and op mixes, compatibility of the
 * default parameters with the historical test_properties generator,
 * and parameter validation.
 */

#include <gtest/gtest.h>

#include "check/program_gen.hh"
#include "func/func_sim.hh"

namespace dscalar {
namespace {

TEST(ProgramGen, IdenticalSeedsProduceByteIdenticalImages)
{
    check::ProgramGen gen(check::GenParams::fuzzDefault());
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        prog::Program a = gen.generate(seed);
        prog::Program b = gen.generate(seed);
        ASSERT_EQ(a.imageDigest(), b.imageDigest()) << "seed " << seed;
        ASSERT_EQ(a.textWords(), b.textWords());
        for (std::size_t i = 0; i < a.textWords(); ++i)
            ASSERT_EQ(a.textWord(i), b.textWord(i))
                << "seed " << seed << " word " << i;
    }
    // Digests must separate distinct seeds.
    EXPECT_NE(gen.generate(1).imageDigest(),
              gen.generate(2).imageDigest());
}

TEST(ProgramGen, HundredSeedsTerminateWithinBudget)
{
    check::ProgramGen gen; // historical default mix
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        prog::Program p = gen.generate(seed);
        func::FuncSim sim(p);
        sim.run(20'000'000);
        ASSERT_TRUE(sim.halted()) << "seed " << seed;
        ASSERT_GT(sim.retired(), 0u);
        ASSERT_FALSE(sim.output().empty()) << "seed " << seed;
    }
}

TEST(ProgramGen, FuzzMixTerminatesAndPrintsMidLoop)
{
    // The extended mix adds FP, mid-loop syscalls, aliasing, byte
    // ops, and page-crossing accesses; termination must survive all
    // of them, and the print op must grow the output stream beyond
    // the single final PrintInt.
    check::ProgramGen gen(check::GenParams::fuzzDefault());
    bool saw_midloop_output = false;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        prog::Program p = gen.generate(seed);
        func::FuncSim sim(p);
        sim.run(20'000'000);
        ASSERT_TRUE(sim.halted()) << "seed " << seed;
        if (sim.output().find('\n') != sim.output().rfind('\n'))
            saw_midloop_output = true;
    }
    EXPECT_TRUE(saw_midloop_output);
}

TEST(ProgramGen, DefaultParamsMatchHistoricalGenerator)
{
    // The historical test_properties generator drew structure as
    // 4 + below(12) pages, range(40, 160) iterations, and
    // 10 + below(30) block ops. The default GenParams must keep
    // every seed's drawn structure inside those bounds, and the
    // choices report must agree with the defaults' ranges.
    check::ProgramGen gen;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        check::GenChoices choices;
        prog::Program p = gen.generate(seed, &choices);
        EXPECT_GE(choices.dataPages, 4u);
        EXPECT_LE(choices.dataPages, 15u);
        EXPECT_GE(choices.iters, 40u);
        EXPECT_LE(choices.iters, 160u);
        EXPECT_GE(choices.blockOps, 10u);
        EXPECT_LE(choices.blockOps, 39u);
        EXPECT_EQ(p.name, "random_" + std::to_string(seed));
    }
}

TEST(ProgramGen, PinnedParamsGenerateMinimalPrograms)
{
    // The shrinker pins every dimension to 1; generation must stay
    // well-formed down there (a single iteration of a single op over
    // one data page).
    check::GenParams tiny;
    tiny.minDataPages = tiny.maxDataPages = 1;
    tiny.minIters = tiny.maxIters = 1;
    tiny.minBlockOps = tiny.maxBlockOps = 1;
    tiny.mix = check::GenParams::fuzzDefault().mix;
    check::ProgramGen gen(tiny);
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        check::GenChoices choices;
        prog::Program p = gen.generate(seed, &choices);
        EXPECT_EQ(choices.dataPages, 1u);
        EXPECT_EQ(choices.iters, 1u);
        EXPECT_EQ(choices.blockOps, 1u);
        func::FuncSim sim(p);
        sim.run(1'000'000);
        ASSERT_TRUE(sim.halted()) << "seed " << seed;
    }
}

TEST(ProgramGenDeath, RejectsDegenerateParams)
{
    check::GenParams empty;
    empty.mix = check::OpMix{0, 0, 0, 0, 0, 0};
    EXPECT_DEATH({ check::ProgramGen g(empty); }, "empty op mix");

    check::GenParams inverted;
    inverted.minIters = 50;
    inverted.maxIters = 10;
    EXPECT_DEATH({ check::ProgramGen g(inverted); },
                 "bad iteration range");

    check::GenParams huge;
    huge.maxDataPages = 4096;
    EXPECT_DEATH({ check::ProgramGen g(huge); }, "exceeds 512");
}

} // namespace
} // namespace dscalar
