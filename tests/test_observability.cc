/** @file Tests for protocol tracing, stats dumps, and FU pools. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "mem/main_memory.hh"
#include "ooo/core.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace {

using namespace prog::reg;

prog::Program
streamProgram(unsigned data_pages)
{
    prog::Program p;
    Addr g = p.allocGlobal(data_pages * prog::pageSize);
    for (Addr off = 0; off < data_pages * prog::pageSize; off += 8)
        p.poke64(g + off, off);
    prog::Assembler a(p);
    a.la(s1, g);
    a.li(s0,
         static_cast<std::int32_t>(data_pages * prog::pageSize / 64));
    a.label("loop");
    a.ld(t0, s1, 0);
    a.addi(s1, s1, 64);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

TEST(Trace, EventsMatchStats)
{
    prog::Program p = streamProgram(6);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    std::ostringstream trace;
    TextTraceSink sink(trace);
    sys.setTraceSink(&sink);
    sys.run();

    std::string t = trace.str();
    EXPECT_FALSE(t.empty());

    auto count = [&t](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t pos = t.find(needle);
             pos != std::string::npos;
             pos = t.find(needle, pos + needle.size()))
            ++n;
        return n;
    };

    std::uint64_t sent = 0;
    std::uint64_t wakes = 0;
    std::uint64_t buffers = 0;
    for (NodeId n = 0; n < 2; ++n) {
        sent += sys.node(n).nodeStats().ownerBroadcasts;
        wakes += sys.node(n).bshr().bshrStats().wokenWaiters;
        buffers += sys.node(n).bshr().bshrStats().buffered;
    }
    EXPECT_EQ(count(": broadcast "), sent);
    EXPECT_EQ(count("bshr-wake"), wakes);
    EXPECT_EQ(count("bshr-buffer"), buffers);
}

TEST(Trace, CountingSinkMatchesStats)
{
    prog::Program p = streamProgram(6);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    CountingTraceSink sink;
    sys.setTraceSink(&sink);
    sys.run();

    std::uint64_t sent = 0;
    std::uint64_t wakes = 0;
    std::uint64_t buffers = 0;
    std::uint64_t false_hits = 0;
    std::uint64_t false_misses = 0;
    for (NodeId n = 0; n < 2; ++n) {
        sent += sys.node(n).nodeStats().ownerBroadcasts;
        wakes += sys.node(n).bshr().bshrStats().wokenWaiters;
        buffers += sys.node(n).bshr().bshrStats().buffered;
        false_hits += sys.node(n).core().coreStats().falseHits;
        false_misses += sys.node(n).core().coreStats().falseMisses;
    }
    EXPECT_EQ(sink.count(TraceEventKind::Broadcast), sent);
    EXPECT_EQ(sink.count(TraceEventKind::BshrWake), wakes);
    EXPECT_EQ(sink.count(TraceEventKind::BshrBuffer), buffers);
    EXPECT_EQ(sink.count(TraceEventKind::FalseHit), false_hits);
    EXPECT_EQ(sink.count(TraceEventKind::FalseMiss), false_misses);
    EXPECT_EQ(sink.count(TraceEventKind::FaultDrop), 0u);
    EXPECT_GT(sink.total(), 0u);
}

TEST(Trace, DisabledByDefault)
{
    prog::Program p = streamProgram(2);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    sys.run(); // must not crash with no trace sink
    SUCCEED();
}

TEST(Trace, TeeFansOutToEverySink)
{
    TeeTraceSink tee;
    CountingTraceSink a, b;
    tee.add(&a);
    tee.add(&b);
    tee.add(&a);      // duplicates are ignored
    tee.add(nullptr); // nulls are ignored
    tee.add(&tee);    // self-attachment is ignored
    EXPECT_EQ(tee.size(), 2u);

    tee.event({0, 1, TraceEventKind::Broadcast, 0x40});
    tee.event({1, 2, TraceEventKind::BshrWake, 0x80});
    EXPECT_EQ(a.total(), 2u);
    EXPECT_EQ(b.total(), 2u);

    tee.clear();
    EXPECT_TRUE(tee.empty());
    tee.event({0, 3, TraceEventKind::Broadcast, 0xc0});
    EXPECT_EQ(a.total(), 2u); // detached sinks see nothing
}

TEST(Trace, AddTraceSinkAccumulatesSetReplaces)
{
    prog::Program p = streamProgram(4);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    // Historically a second setTraceSink silently replaced the
    // first observer; addTraceSink attaches both.
    CountingTraceSink first, second;
    sys.setTraceSink(&first);
    sys.addTraceSink(&second);
    sys.run();
    EXPECT_GT(first.total(), 0u);
    EXPECT_EQ(first.total(), second.total());
    EXPECT_EQ(first.count(TraceEventKind::Broadcast),
              second.count(TraceEventKind::Broadcast));
}

TEST(StatsDump, ContainsAllSections)
{
    prog::Program p = streamProgram(4);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    core::RunResult r = sys.run();

    std::ostringstream os;
    sys.dumpStats(os);
    std::string dump = os.str();
    EXPECT_NE(dump.find("DataScalarSystem (2 nodes)"),
              std::string::npos);
    EXPECT_NE(dump.find("node0:"), std::string::npos);
    EXPECT_NE(dump.find("node1:"), std::string::npos);
    EXPECT_NE(dump.find("owner_broadcasts"), std::string::npos);
    EXPECT_NE(dump.find(std::to_string(r.cycles)),
              std::string::npos);
}

// --- FU pools ------------------------------------------------------

class NullBackend : public ooo::MemBackend
{
  public:
    explicit NullBackend(const mem::MainMemoryParams &p) : mem_(p) {}
    ooo::FillResult
    startLineFetch(Addr line, Cycle now) override
    {
        return {mem_.request(line, now), false};
    }
    void onUnclaimedCanonicalMiss(Addr, Cycle) override {}
    void writeBack(Addr, Cycle) override {}
    void storeMiss(Addr, Cycle) override {}
    Cycle
    fetchInstLine(Addr line, Cycle now) override
    {
        return mem_.request(line, now);
    }

  private:
    mem::MainMemory mem_;
};

Cycle
runFpKernel(const ooo::CoreParams &params)
{
    // Independent FP adds in a warm loop.
    prog::Program p;
    Addr g = p.allocGlobal(256);
    for (int i = 0; i < 8; ++i)
        p.pokeDouble(g + 8 * i, 1.0 + i);
    prog::Assembler a(p);
    a.la(s1, g);
    for (RegIndex r = t0; r <= t7; ++r)
        a.ld(r, s1, 8 * (r - t0));
    a.li(s0, 50);
    a.label("loop");
    for (int i = 0; i < 64; ++i) {
        auto rd = static_cast<RegIndex>(t0 + (i % 8));
        a.fadd(rd, rd, rd);
    }
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();

    func::FuncSim sim(p);
    ooo::OracleStream stream(sim);
    NullBackend backend{mem::MainMemoryParams{}};
    ooo::OoOCore core(params, stream, backend);
    Cycle now = 0;
    while (!core.done() && now < 5'000'000) {
        core.tick(now);
        ++now;
    }
    EXPECT_TRUE(core.done());
    return now;
}

TEST(FuPools, FewerFpUnitsSlowFpCode)
{
    ooo::CoreParams wide;
    wide.fpUnits = 8;
    ooo::CoreParams narrow;
    narrow.fpUnits = 1;
    Cycle fast = runFpKernel(wide);
    Cycle slow = runFpKernel(narrow);
    EXPECT_GT(slow, fast * 2);
}

TEST(FuPools, UnlimitedEncodedAsZero)
{
    ooo::CoreParams unlimited;
    unlimited.fpUnits = 0;
    unlimited.intAluUnits = 0;
    unlimited.intMulUnits = 0;
    unlimited.memPorts = 0;
    Cycle c = runFpKernel(unlimited);
    ooo::CoreParams defaults;
    EXPECT_LE(c, runFpKernel(defaults));
}

TEST(FuPools, PoolMapping)
{
    using isa::OpClass;
    using ooo::CoreParams;
    EXPECT_EQ(CoreParams::fuPool(OpClass::IntAlu), 0u);
    EXPECT_EQ(CoreParams::fuPool(OpClass::Ctrl), 0u);
    EXPECT_EQ(CoreParams::fuPool(OpClass::IntMul), 1u);
    EXPECT_EQ(CoreParams::fuPool(OpClass::IntDiv), 1u);
    EXPECT_EQ(CoreParams::fuPool(OpClass::FpAdd), 2u);
    EXPECT_EQ(CoreParams::fuPool(OpClass::FpDiv), 2u);
    EXPECT_EQ(CoreParams::fuPool(OpClass::MemRead), 3u);
    EXPECT_EQ(CoreParams::fuPool(OpClass::MemWrite), 3u);
}

TEST(FuPools, MemPortsLimitLoadThroughput)
{
    // Independent cached loads: 1 port vs 4 ports.
    prog::Program p;
    Addr g = p.allocGlobal(64);
    prog::Assembler a(p);
    a.la(s1, g);
    a.lw(t0, s1, 0); // warm the line
    a.li(s0, 100);
    a.label("loop");
    for (int i = 0; i < 16; ++i)
        a.lw(static_cast<RegIndex>(t0 + (i % 8)), s1, (i % 8) * 4);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();

    auto run = [&](unsigned ports) {
        func::FuncSim sim(p);
        ooo::OracleStream stream(sim);
        NullBackend backend{mem::MainMemoryParams{}};
        ooo::CoreParams params;
        params.memPorts = ports;
        ooo::OoOCore core(params, stream, backend);
        Cycle now = 0;
        while (!core.done() && now < 5'000'000) {
            core.tick(now);
            ++now;
        }
        return now;
    };
    EXPECT_GT(run(1), run(4) * 3 / 2);
}

} // namespace
} // namespace dscalar
