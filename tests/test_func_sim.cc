/** @file Unit tests for the functional simulator's ISA semantics. */

#include <gtest/gtest.h>

#include <cstring>

#include "func/func_sim.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace func {
namespace {

using namespace prog::reg;
using prog::Assembler;
using prog::Program;

/** Assemble, run, return the simulator. */
FuncSim
run(const std::function<void(Program &, Assembler &)> &body)
{
    Program p;
    Assembler a(p);
    body(p, a);
    a.halt();
    a.finalize();
    FuncSim sim(p);
    sim.run(1'000'000);
    EXPECT_TRUE(sim.halted());
    return sim;
}

TEST(FuncSim, IntegerArithmetic)
{
    auto sim = run([](Program &, Assembler &a) {
        a.li(t0, 100);
        a.li(t1, 7);
        a.add(s0, t0, t1);   // 107
        a.sub(s1, t0, t1);   // 93
        a.mul(s2, t0, t1);   // 700
        a.div(s3, t0, t1);   // 14
        a.rem(s4, t0, t1);   // 2
    });
    EXPECT_EQ(sim.reg(s0), 107u);
    EXPECT_EQ(sim.reg(s1), 93u);
    EXPECT_EQ(sim.reg(s2), 700u);
    EXPECT_EQ(sim.reg(s3), 14u);
    EXPECT_EQ(sim.reg(s4), 2u);
}

TEST(FuncSim, DivisionByZeroIsZero)
{
    auto sim = run([](Program &, Assembler &a) {
        a.li(t0, 5);
        a.li(t1, 0);
        a.div(s0, t0, t1);
        a.rem(s1, t0, t1);
    });
    EXPECT_EQ(sim.reg(s0), 0u);
    EXPECT_EQ(sim.reg(s1), 0u);
}

TEST(FuncSim, SignedDivisionAndShifts)
{
    auto sim = run([](Program &, Assembler &a) {
        a.li(t0, -100);
        a.li(t1, 7);
        a.div(s0, t0, t1);   // -14 (trunc toward zero)
        a.li(t2, -8);
        a.srai(s1, t2, 1);   // -4 arithmetic
        a.li(t3, 1);
        a.slli(s2, t3, 40);  // 64-bit shift
        a.srli(s3, t2, 1);   // logical: huge positive
    });
    EXPECT_EQ(static_cast<std::int64_t>(sim.reg(s0)), -14);
    EXPECT_EQ(static_cast<std::int64_t>(sim.reg(s1)), -4);
    EXPECT_EQ(sim.reg(s2), 1ULL << 40);
    EXPECT_EQ(sim.reg(s3), static_cast<std::uint64_t>(-8) >> 1);
}

TEST(FuncSim, SetLessThan)
{
    auto sim = run([](Program &, Assembler &a) {
        a.li(t0, -1);
        a.li(t1, 1);
        a.slt(s0, t0, t1);   // signed: -1 < 1 -> 1
        a.sltu(s1, t0, t1);  // unsigned: huge > 1 -> 0
        a.slti(s2, t1, 100); // 1 < 100 -> 1
    });
    EXPECT_EQ(sim.reg(s0), 1u);
    EXPECT_EQ(sim.reg(s1), 0u);
    EXPECT_EQ(sim.reg(s2), 1u);
}

TEST(FuncSim, FloatingPoint)
{
    auto sim = run([](Program &p, Assembler &a) {
        Addr c = p.allocGlobal(16);
        p.pokeDouble(c, 2.5);
        p.pokeDouble(c + 8, 0.5);
        a.la(s7, c);
        a.ld(t0, s7, 0);
        a.ld(t1, s7, 8);
        a.fadd(s0, t0, t1);  // 3.0
        a.fmul(s1, t0, t1);  // 1.25
        a.fdiv(s2, t0, t1);  // 5.0
        a.fsub(s3, t0, t1);  // 2.0
        a.fslt(s4, t1, t0);  // 0.5 < 2.5 -> 1
        a.cvtfi(s5, s2);     // 5
        a.li(t2, 9);
        a.cvtif(s6, t2);     // 9.0 -> compare via fslt
    });
    auto as_double = [&](RegIndex r) {
        double d;
        std::uint64_t b = sim.reg(r);
        std::memcpy(&d, &b, 8);
        return d;
    };
    EXPECT_DOUBLE_EQ(as_double(s0), 3.0);
    EXPECT_DOUBLE_EQ(as_double(s1), 1.25);
    EXPECT_DOUBLE_EQ(as_double(s2), 5.0);
    EXPECT_DOUBLE_EQ(as_double(s3), 2.0);
    EXPECT_EQ(sim.reg(s4), 1u);
    EXPECT_EQ(sim.reg(s5), 5u);
    EXPECT_DOUBLE_EQ(as_double(s6), 9.0);
}

TEST(FuncSim, R0IsAlwaysZero)
{
    auto sim = run([](Program &, Assembler &a) {
        a.li(t0, 55);
        a.add(zero, t0, t0); // write to r0 dropped
        a.add(s0, zero, zero);
    });
    EXPECT_EQ(sim.reg(zero), 0u);
    EXPECT_EQ(sim.reg(s0), 0u);
}

TEST(FuncSim, LoadStoreWidths)
{
    auto sim = run([](Program &p, Assembler &a) {
        Addr g = p.allocGlobal(32);
        a.la(s7, g);
        a.li(t0, -1);
        a.sd(t0, s7, 0);
        a.lw(s0, s7, 0);  // zero-extended 32-bit
        a.ld(s1, s7, 0);
        a.li(t1, 0x1234);
        a.sw(t1, s7, 16);
        a.ld(s2, s7, 16); // upper half zero
    });
    EXPECT_EQ(sim.reg(s0), 0xffffffffULL);
    EXPECT_EQ(sim.reg(s1), ~0ULL);
    EXPECT_EQ(sim.reg(s2), 0x1234u);
}

TEST(FuncSim, SyscallOutput)
{
    auto sim = run([](Program &, Assembler &a) {
        a.li(a0, -7);
        a.syscall(isa::Syscall::PrintInt);
        a.li(a0, 'h');
        a.syscall(isa::Syscall::PrintChar);
        a.li(a0, 'i');
        a.syscall(isa::Syscall::PrintChar);
    });
    EXPECT_EQ(sim.output(), "-7\nhi");
}

TEST(FuncSim, ExitSyscallHalts)
{
    prog::Program p;
    Assembler a(p);
    a.syscall(isa::Syscall::Exit);
    a.li(t0, 99); // never executed
    a.halt();
    a.finalize();
    FuncSim sim(p);
    sim.run(100);
    EXPECT_TRUE(sim.halted());
    EXPECT_EQ(sim.reg(t0), 0u);
    EXPECT_EQ(sim.retired(), 1u);
}

TEST(FuncSim, MemHookSeesAllDataAccesses)
{
    prog::Program p;
    Addr g = p.allocGlobal(64);
    Assembler a(p);
    a.la(s1, g);
    a.lw(t0, s1, 0);
    a.sw(t0, s1, 4);
    a.ld(t1, s1, 8);
    a.sd(t1, s1, 16);
    a.halt();
    a.finalize();

    FuncSim sim(p);
    std::vector<std::tuple<Addr, unsigned, bool>> accesses;
    sim.setMemHook([&](Addr addr, unsigned size, bool w) {
        accesses.emplace_back(addr, size, w);
    });
    sim.run(100);
    ASSERT_EQ(accesses.size(), 4u);
    EXPECT_EQ(accesses[0], std::make_tuple(g, 4u, false));
    EXPECT_EQ(accesses[1], std::make_tuple(g + 4, 4u, true));
    EXPECT_EQ(accesses[2], std::make_tuple(g + 8, 8u, false));
    EXPECT_EQ(accesses[3], std::make_tuple(g + 16, 8u, true));
}

TEST(FuncSim, FetchHookSeesEveryPc)
{
    prog::Program p;
    Assembler a(p);
    a.nop();
    a.nop();
    a.halt();
    a.finalize();
    FuncSim sim(p);
    std::vector<Addr> pcs;
    sim.setFetchHook([&](Addr pc) { pcs.push_back(pc); });
    sim.run(100);
    ASSERT_EQ(pcs.size(), 3u);
    EXPECT_EQ(pcs[0], p.textBaseAddr());
    EXPECT_EQ(pcs[1], p.textBaseAddr() + 4);
}

TEST(FuncSim, DynInstRecordsMemAndControl)
{
    prog::Program p;
    Addr g = p.allocGlobal(16);
    Assembler a(p);
    a.la(s1, g);     // 2 insts (lui/ori)
    a.lw(t0, s1, 8);
    a.j("end");
    a.nop();
    a.label("end");
    a.halt();
    a.finalize();

    FuncSim sim(p);
    DynInst rec;
    sim.step(&rec); // la -> single lui (low halfword is zero)
    EXPECT_EQ(rec.effAddr, invalidAddr);
    sim.step(&rec); // lw
    EXPECT_EQ(rec.effAddr, g + 8);
    EXPECT_EQ(rec.memSize, 4u);
    EXPECT_EQ(rec.nextPc, rec.pc + 4);
    sim.step(&rec); // j over the nop
    EXPECT_EQ(rec.nextPc, p.textBaseAddr() + 4 * 4);
}

} // namespace
} // namespace func
} // namespace dscalar

namespace dscalar {
namespace func {
namespace {

TEST(FuncSimDeath, UnknownSyscallIsFatal)
{
    prog::Program p;
    prog::Assembler a(p);
    isa::Instruction bad;
    bad.op = isa::Opcode::SYSCALL;
    bad.imm = 999;
    a.emit(bad);
    a.halt();
    a.finalize();
    FuncSim sim(p);
    EXPECT_EXIT(sim.run(10), ::testing::ExitedWithCode(1),
                "unknown syscall");
}

} // namespace
} // namespace func
} // namespace dscalar
