/**
 * @file
 * Tests of the shared trace cache under concurrent sweeps: one
 * functional capture per (workload, scale, maxInsts) no matter how
 * many worker threads ask, results byte-identical to per-point
 * re-execution, and clean teardown. Carries the sanitize-smoke
 * label so the race-sensitive paths also run under the sanitizer
 * presets (ASan/UBSan, and -DDSCALAR_TSAN for ThreadSanitizer).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "driver/driver.hh"
#include "driver/trace_cache.hh"

namespace dscalar {
namespace driver {
namespace {

constexpr InstSeq kBudget = 4000;

std::vector<SweepPoint>
dcacheSweepPoints()
{
    // A fig8-shaped sub-sweep: one workload, several dcache sizes,
    // two systems per size — 12 points sharing a single stream.
    std::vector<SweepPoint> points;
    for (unsigned kb : {4, 8, 16, 32, 64, 128}) {
        core::SimConfig cfg = paperConfig();
        cfg.maxInsts = kBudget;
        cfg.numNodes = 2;
        cfg.core.dcache.sizeBytes = kb * 1024;
        points.push_back(
            SweepPoint{"compress_s", SystemKind::DataScalar, cfg, 1, 1});
        points.push_back(
            SweepPoint{"compress_s", SystemKind::Traditional, cfg, 1, 1});
    }
    return points;
}

TEST(TraceCache, ConcurrentSweepCapturesOnceAndMatchesFresh)
{
    std::vector<SweepPoint> points = dcacheSweepPoints();

    TraceCache cache;
    std::vector<core::RunResult> reused = runSweep(points, cache, 4);
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_EQ(cache.hits(), points.size() - 1);

    // Replayed results must be byte-identical to per-point
    // execution (the SPSD guarantee the cache rests on).
    std::vector<core::RunResult> fresh = runSweep(points, 1, false);
    ASSERT_EQ(reused.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        EXPECT_EQ(reused[i].cycles, fresh[i].cycles);
        EXPECT_EQ(reused[i].instructions, fresh[i].instructions);
        EXPECT_EQ(reused[i].ipc, fresh[i].ipc);
    }
}

TEST(TraceCache, ConcurrentAcquireSingleCapture)
{
    TraceCache cache;
    constexpr unsigned kThreads = 8;
    std::vector<std::shared_ptr<const func::InstTrace>> got(kThreads);
    std::vector<std::thread> workers;
    for (unsigned i = 0; i < kThreads; ++i) {
        workers.emplace_back([&cache, &got, i] {
            got[i] = cache.acquire("compress_s", 1, kBudget);
        });
    }
    for (auto &w : workers)
        w.join();

    for (unsigned i = 0; i < kThreads; ++i) {
        ASSERT_NE(got[i], nullptr);
        EXPECT_EQ(got[i], got[0]); // one shared capture
    }
    EXPECT_EQ(cache.captures(), 1u);
    EXPECT_EQ(cache.hits(), kThreads - 1);
    EXPECT_EQ(got[0]->length(), kBudget);
}

TEST(TraceCache, DistinctKeysCaptureSeparately)
{
    TraceCache cache;
    auto a = cache.acquire("compress_s", 1, 2000);
    auto b = cache.acquire("compress_s", 1, 3000);
    auto c = cache.acquire("compress_s", 1, 2000);
    EXPECT_EQ(cache.captures(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(a, c);
    EXPECT_NE(a, b);
    EXPECT_EQ(a->length(), 2000u);
    EXPECT_EQ(b->length(), 3000u);
}

TEST(TraceCache, ProgramBuiltOnce)
{
    TraceCache cache;
    auto a = cache.program("compress_s", 1);
    auto b = cache.program("compress_s", 1);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a, b);
}

TEST(TraceCache, MemoryBytesAndClear)
{
    TraceCache cache;
    EXPECT_EQ(cache.memoryBytes(), 0u);
    cache.acquire("compress_s", 1, kBudget);
    EXPECT_GT(cache.memoryBytes(), 0u);

    cache.clear();
    EXPECT_EQ(cache.memoryBytes(), 0u);
    // A cleared cache re-captures on the next ask.
    cache.acquire("compress_s", 1, kBudget);
    EXPECT_EQ(cache.captures(), 2u);
}

} // namespace
} // namespace driver
} // namespace dscalar
