/** @file Tests for obs::Sampler and its run-loop integration. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "obs/sampler.hh"
#include "prog/assembler.hh"

#include "mini_json.hh"

namespace dscalar {
namespace {

using namespace prog::reg;
using obs::Sampler;

prog::Program
stridedProgram(unsigned data_pages)
{
    prog::Program p;
    Addr g = p.allocGlobal(data_pages * prog::pageSize);
    for (Addr off = 0; off < data_pages * prog::pageSize; off += 8)
        p.poke64(g + off, off);
    prog::Assembler a(p);
    a.la(s1, g);
    a.li(s0, static_cast<std::int32_t>(
                 data_pages * prog::pageSize / 64));
    a.label("loop");
    a.ld(t0, s1, 0);
    a.addi(s1, s1, 64);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

TEST(SamplerUnit, LevelAndDeltaSemantics)
{
    Sampler s(10);
    std::uint64_t raw = 0;
    s.addColumn("level", Sampler::Mode::Level, [&] { return raw; });
    s.addColumn("delta", Sampler::Mode::Delta, [&] { return raw; });

    raw = 5;
    s.advance(3); // emits the cycle-0 sample only
    raw = 7;
    s.advance(25); // cycles 10 and 20 collapse into one advance
    s.advance(25); // no-op: nothing newly due

    ASSERT_EQ(s.sampleCount(), 3u);
    EXPECT_EQ(s.cycles(), (std::vector<Cycle>{0, 10, 20}));
    EXPECT_EQ(s.column(0),
              (std::vector<std::uint64_t>{5, 7, 7})); // level
    // The whole delta lands on the first due cycle of the window.
    EXPECT_EQ(s.column(1), (std::vector<std::uint64_t>{5, 2, 0}));
}

TEST(SamplerUnit, WriteJsonRoundTrips)
{
    Sampler s(4);
    std::uint64_t raw = 3;
    s.addColumn("c", Sampler::Mode::Level, [&] { return raw; });
    s.advance(9);

    std::ostringstream os;
    s.writeJson(os);
    std::string error;
    mini_json::Value doc = mini_json::parse(os.str(), error);
    ASSERT_EQ(error, "") << os.str();
    EXPECT_EQ(doc.find("interval")->number, 4);
    ASSERT_EQ(doc.find("cycles")->array.size(), 3u); // 0, 4, 8
    EXPECT_EQ(doc.find("columns")->find("c")->array[2].number, 3);
}

TEST(SamplerUnitDeath, ZeroIntervalIsFatal)
{
    EXPECT_DEATH(Sampler(0), "sample interval must be positive");
}

TEST(SamplerUnitDeath, DuplicateColumnPanics)
{
    Sampler s(10);
    s.addColumn("x", Sampler::Mode::Level, [] { return 0ull; });
    EXPECT_DEATH(
        s.addColumn("x", Sampler::Mode::Level, [] { return 0ull; }),
        "duplicate sampler column 'x'");
}

TEST(SamplerUnitDeath, AddColumnAfterStartPanics)
{
    Sampler s(10);
    s.addColumn("x", Sampler::Mode::Level, [] { return 0ull; });
    s.advance(0);
    EXPECT_DEATH(
        s.addColumn("y", Sampler::Mode::Level, [] { return 0ull; }),
        "after sampling started");
}

/** Timeline of one DataScalar run as (cycles, per-column values). */
std::string
sampledTimeline(bool event_driven, core::RunResult *result = nullptr)
{
    prog::Program p = stridedProgram(6);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.eventDriven = event_driven;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    Sampler sampler(100);
    sys.setSampler(&sampler);
    core::RunResult r = sys.run();
    if (result)
        *result = r;
    std::ostringstream os;
    sampler.writeJson(os);
    return os.str();
}

TEST(SamplerIntegration, EventDrivenMatchesCycleStepped)
{
    core::RunResult fast, slow;
    std::string a = sampledTimeline(true, &fast);
    std::string b = sampledTimeline(false, &slow);
    EXPECT_EQ(fast.cycles, slow.cycles);
    // The sampled timeline is byte-identical across run-loop modes:
    // skipped cycles are no-ops, so sampling inside a skip window
    // observes exactly the stepped-mode values.
    EXPECT_EQ(a, b);
    EXPECT_GT(a.size(), 100u);
}

TEST(SamplerIntegration, SamplingDoesNotPerturbTheRun)
{
    prog::Program p = stridedProgram(6);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;

    core::DataScalarSystem plain(p, cfg,
                                 driver::figure7PageTable(p, 2));
    core::RunResult r0 = plain.run();
    std::ostringstream s0;
    plain.dumpStats(s0);

    core::DataScalarSystem sampled(p, cfg,
                                   driver::figure7PageTable(p, 2));
    Sampler sampler(50);
    sampled.setSampler(&sampler);
    core::RunResult r1 = sampled.run();
    std::ostringstream s1;
    sampled.dumpStats(s1);

    EXPECT_EQ(r0.cycles, r1.cycles);
    EXPECT_EQ(r0.instructions, r1.instructions);
    EXPECT_EQ(s0.str(), s1.str());
    EXPECT_GT(sampler.sampleCount(), 0u);
}

TEST(SamplerIntegration, RegistersExpectedColumns)
{
    prog::Program p = stridedProgram(2);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    Sampler sampler(100);
    sys.setSampler(&sampler);
    sys.run();

    std::vector<std::string> names;
    for (std::size_t i = 0; i < sampler.columnCount(); ++i)
        names.push_back(sampler.columnName(i));
    auto has = [&](const char *n) {
        return std::find(names.begin(), names.end(), n) !=
               names.end();
    };
    EXPECT_TRUE(has("node0.commit_rate"));
    EXPECT_TRUE(has("node1.bshr_occupancy"));
    EXPECT_TRUE(has("node0.dcub_depth"));
    EXPECT_TRUE(has("bus_messages"));
    EXPECT_TRUE(has("lead_node"));
}

TEST(SamplerIntegration, DeterministicUnderConcurrentRuns)
{
    // Two simultaneous runs with independent samplers: timelines
    // must equal a serial run's, byte for byte (the --jobs story:
    // samplers share nothing).
    std::string serial = sampledTimeline(true);
    std::vector<std::string> parallel(2);
    std::thread t0([&] { parallel[0] = sampledTimeline(true); });
    std::thread t1([&] { parallel[1] = sampledTimeline(true); });
    t0.join();
    t1.join();
    EXPECT_EQ(parallel[0], serial);
    EXPECT_EQ(parallel[1], serial);
}

TEST(SamplerIntegration, RunSystemAcceptsSampler)
{
    prog::Program p = stridedProgram(2);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    Sampler sampler(100);
    core::RunResult r = driver::runSystem(
        driver::SystemKind::DataScalar, p, cfg, 1, nullptr, &sampler);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(sampler.sampleCount(), 0u);
    // The last emitted nominal cycle never exceeds the run length.
    EXPECT_LT(sampler.cycles().back(), r.cycles);
}

} // namespace
} // namespace dscalar
