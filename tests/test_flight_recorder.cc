/** @file Tests for obs::FlightRecorder and its panic hook. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/logging.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "obs/flight_recorder.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace {

using namespace prog::reg;

ProtocolEvent
ev(NodeId node, Cycle cycle, Addr line)
{
    return {node, cycle, TraceEventKind::Broadcast, line};
}

TEST(FlightRecorderTest, RetainsEverythingBelowCapacity)
{
    obs::FlightRecorder rec(8);
    for (Cycle c = 0; c < 5; ++c)
        rec.event(ev(0, c, 0x1000 + c));
    EXPECT_EQ(rec.totalEvents(0), 5u);
    EXPECT_EQ(rec.retainedEvents(0), 5u);
    std::string dump = rec.dumpString();
    EXPECT_NE(dump.find("@0:"), std::string::npos);
    EXPECT_NE(dump.find("@4:"), std::string::npos);
    EXPECT_EQ(dump.find("overwritten"), std::string::npos);
}

TEST(FlightRecorderTest, WrapsAroundKeepingTheNewest)
{
    obs::FlightRecorder rec(4);
    for (Cycle c = 0; c < 10; ++c)
        rec.event(ev(0, c, 0x1000));
    EXPECT_EQ(rec.totalEvents(0), 10u);
    EXPECT_EQ(rec.retainedEvents(0), 4u);

    std::string dump = rec.dumpString();
    // Events 0..5 were overwritten; 6..9 survive, oldest first.
    EXPECT_EQ(dump.find("@5:"), std::string::npos);
    std::size_t p6 = dump.find("@6:");
    std::size_t p9 = dump.find("@9:");
    ASSERT_NE(p6, std::string::npos);
    ASSERT_NE(p9, std::string::npos);
    EXPECT_LT(p6, p9);
    EXPECT_NE(dump.find("6 overwritten"), std::string::npos);
}

TEST(FlightRecorderTest, TracksNodesIndependently)
{
    obs::FlightRecorder rec(2);
    rec.event(ev(0, 1, 0xa));
    rec.event(ev(2, 7, 0xb)); // sparse node ids are fine
    rec.event(ev(2, 8, 0xc));
    rec.event(ev(2, 9, 0xd));
    EXPECT_EQ(rec.retainedEvents(0), 1u);
    EXPECT_EQ(rec.retainedEvents(1), 0u);
    EXPECT_EQ(rec.retainedEvents(2), 2u);
    EXPECT_EQ(rec.totalEvents(2), 3u);
    std::string dump = rec.dumpString();
    EXPECT_NE(dump.find("node 0:"), std::string::npos);
    EXPECT_NE(dump.find("node 2:"), std::string::npos);
}

TEST(FlightRecorderTest, EmptyRecorderDumpsHeaderOnly)
{
    obs::FlightRecorder rec(4);
    std::string dump = rec.dumpString();
    EXPECT_NE(dump.find("flight recorder"), std::string::npos);
    EXPECT_EQ(dump.find("-- node"), std::string::npos);
}

TEST(FlightRecorderDeath, PanicDumpsRecentEvents)
{
    EXPECT_DEATH(
        {
            obs::FlightRecorder rec(16);
            rec.installPanicDump();
            rec.event(ev(1, 42, 0xbeef));
            panic("forced failure");
        },
        "forced failure.*flight recorder.*node 1 @42: broadcast");
}

TEST(FlightRecorderDeath, WatchdogPanicCarriesFlightLog)
{
    // Losing every transmission with recovery off deadlocks the
    // protocol (waiters starve, commits stop); the run-loop watchdog
    // panics, and the installed recorder must dump the dropped
    // broadcasts first.
    EXPECT_DEATH(
        {
            prog::Program p;
            Addr g = p.allocGlobal(4 * prog::pageSize);
            prog::Assembler a(p);
            a.la(s1, g);
            a.li(s0, 4 * static_cast<std::int32_t>(prog::pageSize) /
                         64);
            a.label("loop");
            a.ld(t0, s1, 0);
            a.addi(s1, s1, 64);
            a.addi(s0, s0, -1);
            a.bne(s0, zero, "loop");
            a.halt();
            a.finalize();

            core::SimConfig cfg = driver::paperConfig();
            cfg.numNodes = 2;
            cfg.watchdogCycles = 2'000;
            cfg.fault.dropProb = 1.0;
            cfg.fault.seed = 1;
            core::DataScalarSystem sys(
                p, cfg, driver::figure7PageTable(p, 2));
            obs::FlightRecorder rec;
            sys.addTraceSink(&rec);
            rec.installPanicDump();
            sys.run();
        },
        "no commit progress.*flight recorder.*fault-drop");
}

TEST(FlightRecorderTest, HookRemovedOnDestruction)
{
    {
        obs::FlightRecorder rec(4);
        rec.installPanicDump();
        rec.installPanicDump(); // idempotent
    }
    // The recorder is gone; a later panic must not touch it. The
    // death test passes only if the message prints and the process
    // aborts cleanly (a dangling hook would crash differently).
    EXPECT_DEATH(panic("after recorder destruction"),
                 "after recorder destruction");
}

} // namespace
} // namespace dscalar
