/** @file
 * Tests for the synthetic SPEC95 substitutes: every workload must
 * assemble, run to completion, produce deterministic output, and
 * exhibit the memory behaviour it was designed for.
 */

#include <gtest/gtest.h>

#include "driver/driver.hh"
#include "func/func_sim.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace workloads {
namespace {

class WorkloadTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadTest, RunsToCompletion)
{
    prog::Program p = findWorkload(GetParam()).build(1);
    func::FuncSim sim(p);
    InstSeq n = sim.run(50'000'000);
    EXPECT_TRUE(sim.halted()) << p.name << " did not halt";
    EXPECT_GT(n, 10'000u) << p.name << " too short to be meaningful";
    EXPECT_FALSE(sim.output().empty()) << p.name << " printed nothing";
}

TEST_P(WorkloadTest, DeterministicOutput)
{
    prog::Program p1 = findWorkload(GetParam()).build(1);
    prog::Program p2 = findWorkload(GetParam()).build(1);
    func::FuncSim s1(p1);
    func::FuncSim s2(p2);
    s1.run(50'000'000);
    s2.run(50'000'000);
    EXPECT_EQ(s1.output(), s2.output());
    EXPECT_EQ(s1.retired(), s2.retired());
}

TEST_P(WorkloadTest, FootprintSpansManyPages)
{
    prog::Program p = findWorkload(GetParam()).build(1);
    // Enough pages that a 4-node distribution is meaningful (li_s is
    // deliberately the smallest -- the paper replicates most of it).
    EXPECT_GE(p.touchedPages().size(), 20u) << p.name;
}

TEST_P(WorkloadTest, ScaleGrowsWork)
{
    const Workload &w = findWorkload(GetParam());
    prog::Program p1 = w.build(1);
    prog::Program p2 = w.build(2);
    func::FuncSim s1(p1);
    func::FuncSim s2(p2);
    s1.run(100'000'000);
    s2.run(100'000'000);
    EXPECT_GT(s2.retired(), s1.retired()) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadTest,
    ::testing::Values("tomcatv_s", "swim_s", "hydro2d_s", "mgrid_s",
                      "applu_s", "m88ksim_s", "turb3d_s", "gcc_s",
                      "compress_s", "li_s", "perl_s", "fpppp_s",
                      "wave5_s", "go_s"));

TEST(WorkloadRegistry, FourteenBenchmarks)
{
    EXPECT_EQ(allWorkloads().size(), 14u);
    for (const Workload &w : allWorkloads()) {
        EXPECT_NE(w.name, nullptr);
        EXPECT_NE(w.build, nullptr);
        EXPECT_TRUE(std::string(w.kind) == "int" ||
                    std::string(w.kind) == "fp");
    }
}

TEST(WorkloadRegistry, TimingSetIsSixFromThePaper)
{
    const auto &names = timingWorkloadNames();
    EXPECT_EQ(names.size(), 6u);
    for (const auto &n : names)
        EXPECT_NO_FATAL_FAILURE(findWorkload(n));
}

TEST(WorkloadRegistryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(findWorkload("nonesuch"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(WorkloadBehaviour, CompressIsStoreHeavy)
{
    // The paper's compress result hinges on stores ~= loads.
    prog::Program p = findWorkload("compress_s").build(1);
    func::FuncSim sim(p);
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    sim.setMemHook([&](Addr, unsigned, bool w) {
        if (w)
            ++stores;
        else
            ++loads;
    });
    sim.run(2'000'000);
    EXPECT_GT(stores, loads / 2) << "stores " << stores << " loads "
                                 << loads;
}

TEST(WorkloadBehaviour, FppppHasLargeText)
{
    prog::Program p = findWorkload("fpppp_s").build(1);
    // Thousands of straight-line FP ops -> multiple text pages.
    EXPECT_GE(p.pagesInSegment(prog::Segment::Text), 4u);
}

TEST(WorkloadBehaviour, LiHasSmallDataSet)
{
    prog::Program li = findWorkload("li_s").build(1);
    prog::Program turb = findWorkload("turb3d_s").build(1);
    auto data_pages = [](const prog::Program &p) {
        return p.pagesInSegment(prog::Segment::Global) +
               p.pagesInSegment(prog::Segment::Heap);
    };
    EXPECT_LT(data_pages(li), data_pages(turb) / 4);
}

TEST(WorkloadBehaviour, FpWorkloadsUseFp)
{
    for (const Workload &w : allWorkloads()) {
        if (std::string(w.kind) != "fp")
            continue;
        prog::Program p = w.build(1);
        bool has_fp = false;
        for (std::size_t i = 0; i < p.textWords(); ++i) {
            auto inst = isa::decode(p.textWord(i));
            auto cls = inst.info().opClass;
            if (cls == isa::OpClass::FpAdd ||
                cls == isa::OpClass::FpMul ||
                cls == isa::OpClass::FpDiv) {
                has_fp = true;
                break;
            }
        }
        EXPECT_TRUE(has_fp) << w.name;
    }
}

} // namespace
} // namespace workloads
} // namespace dscalar
