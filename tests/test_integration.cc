/** @file
 * Cross-system integration tests on the real workloads: the three
 * timing systems must agree architecturally and order sensibly in
 * performance.
 */

#include <gtest/gtest.h>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace {

constexpr InstSeq kBudget = 60'000;

class TimingWorkloadTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    prog::Program program_ =
        workloads::findWorkload(GetParam()).build(1);
};

TEST_P(TimingWorkloadTest, AllSystemsCommitSameInstructionCount)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    cfg.numNodes = 2;
    auto perfect = driver::runPerfect(program_, cfg);
    auto ds = driver::runDataScalar(program_, cfg);
    auto trad = driver::runTraditional(program_, cfg);
    EXPECT_EQ(perfect.instructions, ds.instructions);
    EXPECT_EQ(perfect.instructions, trad.instructions);
}

TEST_P(TimingWorkloadTest, PerfectIsAnUpperBound)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    cfg.numNodes = 2;
    auto perfect = driver::runPerfect(program_, cfg);
    auto ds = driver::runDataScalar(program_, cfg);
    auto trad = driver::runTraditional(program_, cfg);
    EXPECT_GE(perfect.ipc, ds.ipc * 0.999);
    EXPECT_GE(perfect.ipc, trad.ipc * 0.999);
}

TEST_P(TimingWorkloadTest, DataScalarProtocolSoundOnRealCode)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    for (unsigned nodes : {2u, 4u}) {
        cfg.numNodes = nodes;
        core::DataScalarSystem sys(
            program_, cfg, driver::figure7PageTable(program_, nodes));
        core::RunResult r = sys.run();
        EXPECT_EQ(r.instructions, kBudget);
        EXPECT_TRUE(sys.protocolDrained()) << GetParam() << " at "
                                           << nodes << " nodes";
        for (NodeId n = 0; n < nodes; ++n) {
            EXPECT_EQ(sys.node(n).core().committedSeq(), kBudget);
            EXPECT_EQ(sys.node(n)
                          .core()
                          .coreStats()
                          .canonicalLoadMisses,
                      sys.node(0)
                          .core()
                          .coreStats()
                          .canonicalLoadMisses);
        }
    }
}

TEST_P(TimingWorkloadTest, FourNodeTraditionalSlowerThanTwoNode)
{
    // Less on-chip memory must not speed the traditional system up.
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    cfg.numNodes = 2;
    auto t2 = driver::runTraditional(program_, cfg);
    cfg.numNodes = 4;
    auto t4 = driver::runTraditional(program_, cfg);
    EXPECT_LE(t4.ipc, t2.ipc * 1.02);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTimingSet, TimingWorkloadTest,
    ::testing::Values("applu_s", "compress_s", "go_s", "mgrid_s",
                      "turb3d_s", "wave5_s"));

TEST(HeadlineResult, DataScalarBeatsTraditionalAtFourNodes)
{
    // The paper's headline: 9%-15% faster at four nodes. Check the
    // direction on every timing benchmark. go_s needs a longer run
    // than the other tests for its (few) misses to matter.
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = 150'000;
    cfg.numNodes = 4;
    for (const auto &name : workloads::timingWorkloadNames()) {
        prog::Program p = workloads::findWorkload(name).build(1);
        auto ds = driver::runDataScalar(p, cfg);
        auto trad = driver::runTraditional(p, cfg);
        EXPECT_GT(ds.ipc, trad.ipc) << name;
    }
}

TEST(HeadlineResult, CompressGainsMostFromEsp)
{
    // Store-heavy compress benefits most (paper Section 4.3).
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    cfg.numNodes = 4;
    double best_gain = 0.0;
    std::string best;
    for (const auto &name : workloads::timingWorkloadNames()) {
        prog::Program p = workloads::findWorkload(name).build(1);
        auto ds = driver::runDataScalar(p, cfg);
        auto trad = driver::runTraditional(p, cfg);
        double gain = ds.ipc / trad.ipc;
        if (gain > best_gain) {
            best_gain = gain;
            best = name;
        }
    }
    EXPECT_GT(best_gain, 1.2);
}

TEST(Sensitivity, SlowerBusWidensTheGap)
{
    // Figure 8: "when the speed differential between the global and
    // on-chip buses grows, so does the disparity".
    prog::Program p = workloads::findWorkload("compress_s").build(1);
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    cfg.numNodes = 2;

    cfg.bus.clockDivisor = 4;
    double fast_ratio = driver::runDataScalar(p, cfg).ipc /
                        driver::runTraditional(p, cfg).ipc;
    cfg.bus.clockDivisor = 24;
    double slow_ratio = driver::runDataScalar(p, cfg).ipc /
                        driver::runTraditional(p, cfg).ipc;
    EXPECT_GT(slow_ratio, fast_ratio);
}

TEST(Sensitivity, SlowerMemoryConvergesTheSystems)
{
    // Figure 8: performance converges when bank access time
    // dominates (DataScalar reduces transmission, not access cost).
    prog::Program p = workloads::findWorkload("applu_s").build(1);
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    cfg.numNodes = 2;

    cfg.mem.accessLatency = 8;
    double fast_gap = driver::runDataScalar(p, cfg).ipc -
                      driver::runTraditional(p, cfg).ipc;
    cfg.mem.accessLatency = 256;
    double slow_gap = driver::runDataScalar(p, cfg).ipc -
                      driver::runTraditional(p, cfg).ipc;
    EXPECT_LT(slow_gap, fast_gap);
}

TEST(WritePolicy, NoAllocateBeatsAllocateUnderEsp)
{
    // Section 4.2: write-noallocate is "superior to write-allocate
    // in an ESP-based system".
    prog::Program p = workloads::findWorkload("compress_s").build(1);
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    cfg.numNodes = 2;

    auto noalloc = driver::runDataScalar(p, cfg);
    cfg.core.dcache.writeAllocate = true;
    auto alloc = driver::runDataScalar(p, cfg);
    EXPECT_GE(noalloc.ipc, alloc.ipc);
}

} // namespace
} // namespace dscalar
