/** @file
 * Property-based tests: randomly generated programs are run through
 * the DataScalar system at several node counts and the protocol
 * invariants (SPSD completion, broadcast conservation, cache
 * correspondence, drain) are asserted on every one.
 */

#include <gtest/gtest.h>

#include "check/program_gen.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"

namespace dscalar {
namespace {

using prog::Program;

/**
 * Random but always-terminating program via check::ProgramGen. The
 * default GenParams reproduce, draw for draw, the generator this
 * test historically owned, so every seed below generates the exact
 * program it always has (test_program_gen locks the equivalence).
 */
Program
randomProgram(std::uint64_t seed)
{
    return check::ProgramGen().generate(seed);
}

class RandomProgramTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomProgramTest, ProtocolInvariantsHold)
{
    Program p = randomProgram(GetParam());
    func::FuncSim ref(p);
    ref.run(20'000'000);
    ASSERT_TRUE(ref.halted());

    for (unsigned nodes : {2u, 3u, 4u}) {
        core::SimConfig cfg = driver::paperConfig();
        cfg.numNodes = nodes;
        core::DataScalarSystem sys(
            p, cfg, driver::figure7PageTable(p, nodes));
        core::RunResult r = sys.run();

        // SPSD: identical full commit everywhere, matching the
        // functional reference.
        EXPECT_EQ(r.instructions, ref.retired());
        EXPECT_EQ(sys.oracle().output(), ref.output());
        for (NodeId n = 0; n < nodes; ++n)
            EXPECT_EQ(sys.node(n).core().committedSeq(),
                      r.instructions);

        // Protocol drained: every broadcast consumed exactly once.
        EXPECT_TRUE(sys.protocolDrained())
            << "seed " << GetParam() << " nodes " << nodes;
        std::uint64_t sent = 0;
        for (NodeId n = 0; n < nodes; ++n)
            sent += sys.node(n).nodeStats().totalBroadcasts();
        for (NodeId n = 0; n < nodes; ++n) {
            const auto &bs = sys.node(n).bshr().bshrStats();
            EXPECT_EQ(bs.wokenWaiters + bs.bufferedHits + bs.squashes,
                      sent - sys.node(n).nodeStats().totalBroadcasts())
                << "seed " << GetParam() << " node " << n;
        }

        // Cache correspondence: canonical behaviour identical.
        for (NodeId n = 1; n < nodes; ++n) {
            EXPECT_EQ(
                sys.node(n).core().coreStats().canonicalLoadMisses,
                sys.node(0).core().coreStats().canonicalLoadMisses);
            EXPECT_EQ(sys.node(n).core().coreStats().dirtyWriteBacks,
                      sys.node(0).core().coreStats().dirtyWriteBacks);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(RandomProgramConfigs, StressUnusualGeometries)
{
    // Sweep awkward core geometries with one random program each:
    // protocol must hold regardless of window/cache sizing.
    struct Geometry
    {
        unsigned ruu;
        unsigned lsq;
        unsigned issue;
        std::uint64_t dcache;
    };
    const Geometry geoms[] = {
        {4, 2, 1, 1024},
        {16, 8, 2, 4096},
        {64, 32, 4, 8192},
        {256, 128, 8, 65536},
    };
    unsigned seed = 100;
    for (const Geometry &geom : geoms) {
        Program p = randomProgram(seed++);
        core::SimConfig cfg = driver::paperConfig();
        cfg.numNodes = 2;
        cfg.core.ruuEntries = geom.ruu;
        cfg.core.lsqEntries = geom.lsq;
        cfg.core.issueWidth = geom.issue;
        cfg.core.dcache.sizeBytes = geom.dcache;
        // Exercise the MSHR reserve path on the tightest geometry.
        cfg.core.maxOutstandingFills = geom.ruu <= 16 ? 1 : 0;
        core::DataScalarSystem sys(p, cfg,
                                   driver::figure7PageTable(p, 2));
        core::RunResult r = sys.run();
        EXPECT_GT(r.instructions, 0u);
        EXPECT_TRUE(sys.protocolDrained())
            << "ruu " << geom.ruu << " dcache " << geom.dcache;
    }
}

TEST(RandomProgramRing, InvariantsHoldOnRingInterconnect)
{
    for (std::uint64_t seed : {31u, 32u, 33u, 34u, 35u}) {
        Program p = randomProgram(seed);
        func::FuncSim ref(p);
        ref.run(20'000'000);
        for (unsigned nodes : {2u, 5u}) {
            core::SimConfig cfg = driver::paperConfig();
            cfg.numNodes = nodes;
            cfg.interconnect = core::InterconnectKind::Ring;
            core::DataScalarSystem sys(
                p, cfg, driver::figure7PageTable(p, nodes));
            core::RunResult r = sys.run();
            EXPECT_EQ(r.instructions, ref.retired());
            EXPECT_TRUE(sys.protocolDrained())
                << "seed " << seed << " nodes " << nodes;
        }
    }
}

TEST(RandomProgramWriteAllocate, InvariantsHoldUnderAllocatePolicy)
{
    // The write-allocate ablation exercises store-side episode
    // claims; the protocol must stay sound.
    for (std::uint64_t seed : {41u, 42u, 43u, 44u, 45u}) {
        Program p = randomProgram(seed);
        core::SimConfig cfg = driver::paperConfig();
        cfg.numNodes = 3;
        cfg.core.dcache.writeAllocate = true;
        core::DataScalarSystem sys(p, cfg,
                                   driver::figure7PageTable(p, 3));
        core::RunResult r = sys.run();
        EXPECT_GT(r.instructions, 0u);
        EXPECT_TRUE(sys.protocolDrained()) << "seed " << seed;
        for (NodeId n = 1; n < 3; ++n) {
            EXPECT_EQ(
                sys.node(n).core().coreStats().canonicalLoadMisses,
                sys.node(0).core().coreStats().canonicalLoadMisses);
            EXPECT_EQ(
                sys.node(n).core().coreStats().storeCommitMisses,
                sys.node(0).core().coreStats().storeCommitMisses);
        }
    }
}

TEST(RandomProgramSmallCaches, InvariantsHoldUnderHeavyConflicts)
{
    // Tiny direct-mapped caches maximize evictions between issue
    // and commit -- the false-hit path gets heavy exercise.
    for (std::uint64_t seed : {51u, 52u, 53u}) {
        Program p = randomProgram(seed);
        core::SimConfig cfg = driver::paperConfig();
        cfg.numNodes = 2;
        cfg.core.dcache.sizeBytes = 256; // 8 lines
        core::DataScalarSystem sys(p, cfg,
                                   driver::figure7PageTable(p, 2));
        core::RunResult r = sys.run();
        EXPECT_GT(r.instructions, 0u);
        EXPECT_TRUE(sys.protocolDrained()) << "seed " << seed;
        // With caches this small some false hits are expected;
        // repairs must balance squashes + claimed fetches.
        std::uint64_t repairs = 0;
        for (NodeId n = 0; n < 2; ++n)
            repairs +=
                sys.node(n).core().coreStats().unclaimedRepairs;
        (void)repairs; // drained() already proves conservation
    }
}

TEST(RandomProgramTruncation, DrainsUnderInstructionBudgets)
{
    for (std::uint64_t seed : {500u, 501u, 502u}) {
        Program p = randomProgram(seed);
        for (InstSeq budget : {1000u, 7777u, 30000u}) {
            core::SimConfig cfg = driver::paperConfig();
            cfg.numNodes = 3;
            cfg.maxInsts = budget;
            core::DataScalarSystem sys(
                p, cfg, driver::figure7PageTable(p, 3));
            core::RunResult r = sys.run();
            EXPECT_LE(r.instructions, budget);
            EXPECT_TRUE(sys.protocolDrained())
                << "seed " << seed << " budget " << budget;
        }
    }
}

} // namespace
} // namespace dscalar
