/** @file
 * check::ProtocolModel tests: the clean protocol is exhaustively
 * safe at the default shapes (reliable and faulty media), every
 * planted single-line mutation yields a counterexample with a
 * minimal trace, enumeration bounds degrade gracefully to
 * non-exhaustive, and the coverage fingerprint behaves.
 */

#include <gtest/gtest.h>

#include "check/coverage.hh"
#include "check/model.hh"
#include "obs/flight_recorder.hh"

namespace dscalar {
namespace {

using core::ProtocolMutation;

TEST(ProtocolModel, CleanProtocolExhaustivelySafe)
{
    check::ModelConfig cfg;
    cfg.nodes = 2;
    cfg.lines = 2;
    cfg.episodes = 3;
    check::ModelResult res = check::checkModel(cfg);
    EXPECT_TRUE(res.ok) << res.violation << "\n"
                        << check::formatCounterexample(cfg, res);
    EXPECT_TRUE(res.exhaustive);
    EXPECT_EQ(res.scriptsChecked, 8u); // 2 lines ^ 3 episodes
    EXPECT_GT(res.states, 100u);
    EXPECT_GT(res.transitions, res.states);
}

TEST(ProtocolModel, CleanProtocolSafeUnderFaults)
{
    check::ModelConfig cfg;
    cfg.nodes = 2;
    cfg.lines = 2;
    cfg.episodes = 2;
    cfg.faults = true;
    check::ModelResult res = check::checkModel(cfg);
    EXPECT_TRUE(res.ok) << res.violation << "\n"
                        << check::formatCounterexample(cfg, res);
    EXPECT_TRUE(res.exhaustive);
    EXPECT_EQ(res.scriptsChecked, 4u);
}

TEST(ProtocolModel, ThreeNodesExhaustivelySafe)
{
    check::ModelConfig cfg;
    cfg.nodes = 3;
    cfg.lines = 3;
    cfg.episodes = 2;
    check::ModelResult res = check::checkModel(cfg);
    EXPECT_TRUE(res.ok) << res.violation << "\n"
                        << check::formatCounterexample(cfg, res);
    EXPECT_TRUE(res.exhaustive);
    EXPECT_EQ(res.scriptsChecked, 9u);
}

TEST(ProtocolModel, CatchesEveryPlantedMutation)
{
    for (unsigned i = 1; i < core::numProtocolMutations; ++i) {
        auto m = static_cast<ProtocolMutation>(i);
        check::ModelConfig cfg;
        cfg.nodes = 2;
        cfg.lines = 2;
        cfg.episodes = 2;
        cfg.mutation = m;
        check::ModelResult res = check::checkModel(cfg);
        EXPECT_FALSE(res.ok)
            << "mutation " << core::protocolMutationName(m)
            << " survived exhaustive enumeration";
        EXPECT_FALSE(res.violation.empty());
        EXPECT_FALSE(res.trace.empty());
        EXPECT_EQ(res.script.size(), cfg.episodes);
        std::string cex = check::formatCounterexample(cfg, res);
        EXPECT_NE(cex.find("script:"), std::string::npos);
        EXPECT_NE(cex.find(res.violation), std::string::npos);
        EXPECT_NE(cex.find(core::protocolMutationName(m)),
                  std::string::npos);
    }
}

TEST(ProtocolModel, SquashPendingLostCounterexampleIsMinimal)
{
    // One episode, one line: the shortest possible failure is the
    // non-owner committing its false hit before the broadcast lands
    // (squash lost), then the delivery parking in the buffer — five
    // events total (two issues, two commits, one delivery). BFS must
    // find exactly that.
    check::ModelConfig cfg;
    cfg.nodes = 2;
    cfg.lines = 1;
    cfg.episodes = 1;
    cfg.mutation = ProtocolMutation::SquashPendingLost;
    check::ModelResult res = check::checkModel(cfg);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.trace.size(), 5u)
        << check::formatCounterexample(cfg, res);
    EXPECT_NE(res.violation.find("not drained"), std::string::npos)
        << res.violation;
}

TEST(ProtocolModel, DepthBoundMakesEnumerationNonExhaustive)
{
    check::ModelConfig cfg;
    cfg.nodes = 2;
    cfg.lines = 2;
    cfg.episodes = 3;
    cfg.depthBound = 3;
    check::ModelResult res = check::checkModel(cfg);
    EXPECT_TRUE(res.ok);
    EXPECT_FALSE(res.exhaustive);
    EXPECT_LE(res.maxDepth, 4u);
}

TEST(ProtocolModel, StateCapMakesEnumerationNonExhaustive)
{
    check::ModelConfig cfg;
    cfg.nodes = 2;
    cfg.lines = 2;
    cfg.episodes = 3;
    cfg.maxStates = 16;
    check::ModelResult res = check::checkModel(cfg);
    EXPECT_FALSE(res.exhaustive);
}

TEST(ProtocolModel, DepthBoundHidesDeepMutation)
{
    // The shortest SquashPendingLost counterexample is five events
    // deep; a shallower bound must miss it (ok) while reporting the
    // enumeration as non-exhaustive — the honesty contract bounded
    // runs rely on.
    check::ModelConfig cfg;
    cfg.nodes = 2;
    cfg.lines = 1;
    cfg.episodes = 1;
    cfg.depthBound = 4;
    cfg.mutation = ProtocolMutation::SquashPendingLost;
    check::ModelResult res = check::checkModel(cfg);
    EXPECT_TRUE(res.ok);
    EXPECT_FALSE(res.exhaustive);
}

TEST(ProtocolModel, TrialConfigMapsShapeAndMutation)
{
    check::ModelConfig cfg;
    cfg.nodes = 3;
    cfg.faults = true;
    cfg.mutation = ProtocolMutation::DeliverSquashBuffers;
    check::TrialConfig c = check::modelTrialConfig(cfg);
    EXPECT_EQ(c.system, driver::SystemKind::DataScalar);
    EXPECT_EQ(c.nodes, 3u);
    EXPECT_TRUE(c.faults);
    EXPECT_EQ(c.mutation, ProtocolMutation::DeliverSquashBuffers);
}

TEST(ProtocolModel, DescribeMentionsShapeAndMutation)
{
    check::ModelConfig cfg;
    cfg.mutation = ProtocolMutation::BufferedHitKeepsData;
    std::string desc = check::describeModelConfig(cfg);
    EXPECT_NE(desc.find("nodes=2"), std::string::npos);
    EXPECT_NE(desc.find("buffered-hit-keeps-data"),
              std::string::npos);
}

TEST(Coverage, NgramGainAndSaturation)
{
    check::CoverageMap map(3);
    std::vector<std::uint8_t> run = {0, 1, 2, 1};
    // Windows: 4×1-gram (3 distinct), 3×2-gram (all distinct),
    // 2×3-gram (all distinct) = 8 distinct n-grams.
    std::uint64_t gain = map.record({run});
    EXPECT_EQ(gain, 8u);
    EXPECT_EQ(map.uniqueNgrams(), 8u);
    // The identical run contributes nothing new.
    EXPECT_EQ(map.record({run}), 0u);
    // A new ordering of the same kinds adds new windows only.
    std::uint64_t gain2 = map.record({{2, 1, 0}});
    EXPECT_GT(gain2, 0u);
    EXPECT_EQ(map.runsRecorded(), 3u);
    EXPECT_EQ(map.uniqueNgrams(), 8u + gain2);
}

TEST(Coverage, NodeIdsAreFoldedOut)
{
    // The same kind sequence on different nodes is one behaviour.
    check::CoverageMap a(2), b(2);
    std::vector<std::uint8_t> seq = {3, 4, 5};
    std::uint64_t gainOne = a.record({seq});
    std::uint64_t gainTwo = b.record({seq, seq});
    EXPECT_EQ(gainOne, gainTwo);
}

TEST(Coverage, RecordsFlightRecorderHistories)
{
    obs::FlightRecorder rec(16);
    rec.event({0, 1, TraceEventKind::Broadcast, 0x40, 0});
    rec.event({1, 2, TraceEventKind::BshrWake, 0x40, 0});
    rec.event({1, 3, TraceEventKind::BshrSquash, 0x80, 0});
    EXPECT_EQ(rec.nodeCount(), 2u);
    auto hist = rec.kindHistory(1);
    ASSERT_EQ(hist.size(), 2u);
    EXPECT_EQ(hist[0],
              static_cast<std::uint8_t>(TraceEventKind::BshrWake));
    check::CoverageMap map;
    EXPECT_GT(map.record(rec), 0u);
    EXPECT_EQ(map.runsRecorded(), 1u);
}

} // namespace
} // namespace dscalar
