/**
 * @file
 * dsserve subsystem tests: in-process serve::Server + serve::Client
 * over real Unix-domain sockets. Covers the protocol ops, the
 * dsserve contract (warm replies byte-identical to cold in-process
 * runs), concurrent clients sharing one trace cache, every rejection
 * path (malformed, oversized, instruction budget, overload), and
 * shutdown draining in-flight requests.
 *
 * Socket paths are short and relative (sun_path holds ~107 bytes);
 * ctest runs these from the build tree.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/run_request.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace dscalar {
namespace {

serve::ServerConfig
testConfig(const std::string &socket)
{
    serve::ServerConfig cfg;
    cfg.socketPath = socket;
    cfg.jobs = 2;
    return cfg;
}

driver::RunRequest
smallRequest(const std::string &workload = "go_s",
             InstSeq budget = 2000)
{
    driver::RunRequest req;
    req.workload = workload;
    req.config.maxInsts = budget;
    return req;
}

serve::Client
connectTo(const std::string &socket)
{
    serve::Client client;
    std::string error;
    EXPECT_TRUE(client.connect(socket, error)) << error;
    return client;
}

TEST(DsServe, StartStopUnlinksSocket)
{
    serve::Server server(testConfig("t_dss_start.sock"));
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    EXPECT_TRUE(server.running());

    serve::Client client = connectTo("t_dss_start.sock");
    EXPECT_TRUE(client.ping().ok);

    server.stop();
    EXPECT_FALSE(server.running());
    server.stop(); // idempotent

    serve::Client again;
    EXPECT_FALSE(again.connect("t_dss_start.sock", error));
}

TEST(DsServe, RejectsOverlongSocketPath)
{
    serve::Server server(testConfig(std::string(200, 'x')));
    std::string error;
    EXPECT_FALSE(server.start(error));
    EXPECT_NE(error.find("socket path"), std::string::npos) << error;
}

TEST(DsServe, PingStatsAndUnknownOp)
{
    serve::Server server(testConfig("t_dss_ops.sock"));
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    serve::Client client = connectTo("t_dss_ops.sock");
    EXPECT_TRUE(client.ping().ok);

    serve::Reply stats = client.serverStats();
    ASSERT_TRUE(stats.ok);
    EXPECT_NE(stats.json.find("\"service\":\"dsserve\""),
              std::string::npos)
        << stats.json;
    EXPECT_NE(stats.json.find("\"connections\""), std::string::npos);

    // Unknown op over raw bytes: error reply, connection survives.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strcpy(addr.sun_path, "t_dss_ops.sock");
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_TRUE(serve::writeAll(fd, "op = teleport\n\n"));
    serve::BlockReader reader(fd);
    std::string block;
    ASSERT_EQ(reader.readBlock(block, 4096),
              serve::BlockReader::Status::Block);
    serve::Reply bad;
    ASSERT_TRUE(serve::parseReplyHeader(block, bad));
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("unknown op"), std::string::npos)
        << bad.error;

    ASSERT_TRUE(serve::writeAll(fd, "op = ping\n\n"));
    ASSERT_EQ(reader.readBlock(block, 4096),
              serve::BlockReader::Status::Block);
    ASSERT_TRUE(serve::parseReplyHeader(block, bad));
    EXPECT_TRUE(bad.ok);
    ::close(fd);

    server.stop();
}

TEST(DsServe, WarmReplyByteIdenticalToColdRun)
{
    serve::Server server(testConfig("t_dss_warm.sock"));
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    driver::RunRequest req = smallRequest("compress_s");
    serve::Client client = connectTo("t_dss_warm.sock");

    serve::Reply first = client.run(req);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.field("cache_hit"), "0");
    EXPECT_FALSE(first.field("cycles").empty());
    EXPECT_FALSE(first.field("ipc").empty());
    EXPECT_EQ(first.field("drained"), "1");

    serve::Reply warm = client.run(req);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm.field("cache_hit"), "1");
    EXPECT_EQ(warm.json, first.json);

    // The dsserve contract: the warm served reply byte-matches a
    // cold one-shot run of the same request (dsrun arms the flight
    // recorder too, so mirror it).
    driver::RunRequest cold_req = req;
    cold_req.flightRecorder = true;
    driver::RunResponse cold = driver::runOne(cold_req);
    ASSERT_TRUE(cold.ok()) << cold.error;
    EXPECT_EQ(warm.json, cold.statsJson());

    serve::ServerStats s = server.stats();
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.traceCaptures, 1u);
    EXPECT_EQ(s.traceHits, 1u);
    server.stop();
}

TEST(DsServe, MalformedRequestRejectedConnectionSurvives)
{
    serve::Server server(testConfig("t_dss_bad.sock"));
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    serve::Client client = connectTo("t_dss_bad.sock");

    driver::RunRequest bogus = smallRequest();
    bogus.workload = "no_such_workload";
    serve::Reply reply = client.run(bogus);
    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.error.find("unknown workload"), std::string::npos)
        << reply.error;

    // Framing intact: the same connection still serves.
    EXPECT_TRUE(client.ping().ok);
    EXPECT_TRUE(client.run(smallRequest()).ok);

    serve::ServerStats s = server.stats();
    EXPECT_EQ(s.failed, 1u);
    server.stop();
}

TEST(DsServe, OversizedRequestDropsConnection)
{
    serve::ServerConfig cfg = testConfig("t_dss_big.sock");
    cfg.maxRequestBytes = 128;
    serve::Server server(cfg);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    serve::Client client = connectTo("t_dss_big.sock");
    driver::RunRequest req = smallRequest();
    req.perfettoPath = std::string(512, 'p'); // inflates one line
    serve::Reply reply = client.run(req);
    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.error.find("oversized"), std::string::npos)
        << reply.error;

    // Framing is lost past the limit, so the server dropped us.
    EXPECT_FALSE(client.ping().ok);

    serve::ServerStats s = server.stats();
    EXPECT_EQ(s.rejectedOversize, 1u);
    server.stop();
}

TEST(DsServe, PerfettoRejectedWithoutOutputDir)
{
    serve::Server server(testConfig("t_dss_pft.sock"));
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    serve::Client client = connectTo("t_dss_pft.sock");
    driver::RunRequest req = smallRequest();
    req.perfettoPath = "trace.json";
    serve::Reply reply = client.run(req);
    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.error.find("perfetto"), std::string::npos)
        << reply.error;
    server.stop();
}

TEST(DsServe, InstructionBudgetEnforced)
{
    serve::ServerConfig cfg = testConfig("t_dss_budget.sock");
    cfg.maxInstBudget = 5000;
    serve::Server server(cfg);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    serve::Client client = connectTo("t_dss_budget.sock");

    serve::Reply over = client.run(smallRequest("go_s", 20000));
    EXPECT_FALSE(over.ok);
    EXPECT_NE(over.error.find("budget"), std::string::npos)
        << over.error;

    // An unbounded run (max_insts = 0) is over any finite budget.
    serve::Reply unbounded = client.run(smallRequest("go_s", 0));
    EXPECT_FALSE(unbounded.ok);

    serve::Reply within = client.run(smallRequest("go_s", 5000));
    EXPECT_TRUE(within.ok) << within.error;

    serve::ServerStats s = server.stats();
    EXPECT_EQ(s.rejectedBudget, 2u);
    EXPECT_EQ(s.completed, 1u);
    server.stop();
}

TEST(DsServe, OverloadRejectsBeyondQueueDepth)
{
    serve::ServerConfig cfg = testConfig("t_dss_load.sock");
    cfg.maxQueueDepth = 1;
    cfg.jobs = 1;
    cfg.testHoldMillis = 400; // pins the admitted run in flight
    serve::Server server(cfg);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    serve::Reply slow_reply;
    std::thread slow([&] {
        serve::Client client = connectTo("t_dss_load.sock");
        slow_reply = client.run(smallRequest());
    });

    // Wait until the slow request occupies the queue slot.
    for (int i = 0; i < 100; ++i) {
        if (server.stats().queueDepth > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GT(server.stats().queueDepth, 0u);

    serve::Client client = connectTo("t_dss_load.sock");
    serve::Reply rejected = client.run(smallRequest());
    EXPECT_FALSE(rejected.ok);
    EXPECT_NE(rejected.error.find("overloaded"), std::string::npos)
        << rejected.error;

    slow.join();
    EXPECT_TRUE(slow_reply.ok) << slow_reply.error;

    serve::ServerStats s = server.stats();
    EXPECT_EQ(s.rejectedOverload, 1u);
    EXPECT_EQ(s.queuePeak, 1u);
    server.stop();
}

TEST(DsServe, ConcurrentClientsShareOneCache)
{
    serve::Server server(testConfig("t_dss_conc.sock"));
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    constexpr unsigned kClients = 4;
    constexpr unsigned kPerClient = 5;
    std::vector<unsigned> failures(kClients, 0);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < kClients; ++c) {
        threads.emplace_back([c, &failures] {
            serve::Client client = connectTo("t_dss_conc.sock");
            for (unsigned i = 0; i < kPerClient; ++i) {
                driver::RunRequest req = smallRequest(
                    (c + i) % 2 ? "go_s" : "compress_s");
                req.system = i % 2 ? driver::SystemKind::Traditional
                                   : driver::SystemKind::DataScalar;
                if (!client.run(req).ok)
                    ++failures[c];
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (unsigned c = 0; c < kClients; ++c)
        EXPECT_EQ(failures[c], 0u) << "client " << c;

    serve::ServerStats s = server.stats();
    EXPECT_EQ(s.completed, kClients * kPerClient);
    EXPECT_EQ(s.connections, kClients);
    // Two distinct workloads at one budget: exactly two captures,
    // everything else replays from the shared cache.
    EXPECT_EQ(s.traceCaptures, 2u);
    EXPECT_EQ(s.traceHits, kClients * kPerClient - 2u);
    server.stop();
}

TEST(DsServe, ShutdownDrainsInFlightRequests)
{
    serve::ServerConfig cfg = testConfig("t_dss_drain.sock");
    cfg.testHoldMillis = 300;
    serve::Server server(cfg);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    serve::Reply slow_reply;
    std::thread slow([&] {
        serve::Client client = connectTo("t_dss_drain.sock");
        slow_reply = client.run(smallRequest());
    });
    for (int i = 0; i < 100; ++i) {
        if (server.stats().queueDepth > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GT(server.stats().queueDepth, 0u);

    serve::Client client = connectTo("t_dss_drain.sock");
    serve::Reply ack = client.shutdown();
    EXPECT_TRUE(ack.ok) << ack.error;
    EXPECT_TRUE(server.shutdownRequested());

    server.waitShutdownRequest(); // satisfied, returns immediately
    server.stop();                // must drain the held run

    slow.join();
    EXPECT_TRUE(slow_reply.ok) << slow_reply.error;
    EXPECT_FALSE(slow_reply.json.empty());
}

TEST(DsServeProtocol, BlockReaderAndReplyHeader)
{
    serve::Reply reply;
    ASSERT_TRUE(serve::parseReplyHeader(
        "status = ok\ncycles = 42\njson_bytes = 3\n", reply));
    EXPECT_TRUE(reply.ok);
    EXPECT_EQ(reply.field("cycles"), "42");
    EXPECT_EQ(reply.field("missing"), "");

    ASSERT_TRUE(
        serve::parseReplyHeader("status = error\nerror = nope\n", reply));
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, "nope");

    EXPECT_FALSE(serve::parseReplyHeader("cycles = 42\n", reply));

    EXPECT_EQ(serve::formatErrorReply("boom"),
              "status = error\nerror = boom\n\n");
}

} // namespace
} // namespace dscalar
