/** @file
 * Cycle-exact equivalence of event-driven cycle skipping.
 *
 * The event-driven run loops (core::DataScalarSystem,
 * baseline::TraditionalSystem, baseline::PerfectSystem) fast-forward
 * time to the next cycle at which anything can happen instead of
 * ticking every cycle. That is a pure performance transformation:
 * for every system type, interconnect, and node count, a skipping
 * run must report exactly the cycle count, instruction count,
 * statistics dump, and interconnect totals of the single-stepping
 * reference (config.eventDriven = false, the pre-optimization loop).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "baseline/perfect.hh"
#include "baseline/traditional.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace {

constexpr InstSeq kBudget = 20000;

core::SimConfig
testConfig(unsigned nodes, bool event_driven,
           core::InterconnectKind kind = core::InterconnectKind::Bus)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = nodes;
    cfg.maxInsts = kBudget;
    cfg.eventDriven = event_driven;
    cfg.interconnect = kind;
    return cfg;
}

struct DsObservation
{
    core::RunResult result;
    std::string stats;
    std::uint64_t busMessages, busBytes, busBusy;
    std::uint64_t ringMessages, ringBytes, ringBusy;
};

DsObservation
runDs(const prog::Program &p, unsigned nodes, bool event_driven,
      core::InterconnectKind kind)
{
    core::DataScalarSystem sys(
        p, testConfig(nodes, event_driven, kind),
        driver::figure7PageTable(p, nodes));
    DsObservation obs;
    obs.result = sys.run();
    std::ostringstream ss;
    sys.dumpStats(ss);
    obs.stats = ss.str();
    obs.busMessages = sys.bus().totalMessages();
    obs.busBytes = sys.bus().totalBytes();
    obs.busBusy = sys.bus().busyCycles();
    obs.ringMessages = sys.ring().totalMessages();
    obs.ringBytes = sys.ring().totalBytes();
    obs.ringBusy = sys.ring().linkBusyCycles();
    return obs;
}

class CycleSkipDataScalar
    : public ::testing::TestWithParam<
          std::tuple<unsigned, core::InterconnectKind>>
{
};

TEST_P(CycleSkipDataScalar, MatchesSingleStepping)
{
    auto [nodes, kind] = GetParam();
    prog::Program p =
        workloads::findWorkload("compress_s").build(1);

    DsObservation ref = runDs(p, nodes, false, kind);
    DsObservation fast = runDs(p, nodes, true, kind);

    EXPECT_EQ(fast.result.cycles, ref.result.cycles);
    EXPECT_EQ(fast.result.instructions, ref.result.instructions);
    EXPECT_DOUBLE_EQ(fast.result.ipc, ref.result.ipc);
    EXPECT_EQ(fast.stats, ref.stats);
    EXPECT_EQ(fast.busMessages, ref.busMessages);
    EXPECT_EQ(fast.busBytes, ref.busBytes);
    EXPECT_EQ(fast.busBusy, ref.busBusy);
    EXPECT_EQ(fast.ringMessages, ref.ringMessages);
    EXPECT_EQ(fast.ringBytes, ref.ringBytes);
    EXPECT_EQ(fast.ringBusy, ref.ringBusy);
    // The run must have exercised real work to mean anything.
    EXPECT_GT(ref.result.instructions, 0u);
    EXPECT_GT(ref.result.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, CycleSkipDataScalar,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(core::InterconnectKind::Bus,
                                         core::InterconnectKind::Ring)),
    [](const auto &info) {
        return std::string(std::get<1>(info.param) ==
                                   core::InterconnectKind::Bus
                               ? "bus"
                               : "ring") +
               std::to_string(std::get<0>(info.param));
    });

class CycleSkipTraditional
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CycleSkipTraditional, MatchesSingleStepping)
{
    unsigned nodes = GetParam();
    prog::Program p =
        workloads::findWorkload("compress_s").build(1);

    auto runOnce = [&](bool event_driven) {
        baseline::TraditionalSystem sys(
            p, testConfig(nodes, event_driven),
            driver::figure7PageTable(p, nodes));
        core::RunResult r = sys.run();
        return std::make_tuple(r.cycles, r.instructions,
                               sys.offChipReads(),
                               sys.offChipWrites(),
                               sys.bus().totalMessages(),
                               sys.bus().totalBytes(),
                               sys.bus().busyCycles());
    };
    EXPECT_EQ(runOnce(true), runOnce(false));
}

INSTANTIATE_TEST_SUITE_P(AllNodeCounts, CycleSkipTraditional,
                         ::testing::Values(1u, 2u, 4u));

TEST(CycleSkipPerfect, MatchesSingleStepping)
{
    prog::Program p =
        workloads::findWorkload("compress_s").build(1);

    auto runOnce = [&](bool event_driven) {
        baseline::PerfectSystem sys(p, testConfig(2, event_driven));
        return sys.run();
    };
    core::RunResult ref = runOnce(false);
    core::RunResult fast = runOnce(true);
    EXPECT_EQ(fast.cycles, ref.cycles);
    EXPECT_EQ(fast.instructions, ref.instructions);
    EXPECT_DOUBLE_EQ(fast.ipc, ref.ipc);
    EXPECT_GT(ref.instructions, 0u);
}

/** A second workload with a different memory personality (go's
 *  pointer-heavy behaviour) to widen coverage of the skip paths. */
TEST(CycleSkipDataScalarGo, MatchesSingleStepping)
{
    prog::Program p = workloads::findWorkload("go_s").build(1);
    DsObservation ref =
        runDs(p, 2, false, core::InterconnectKind::Bus);
    DsObservation fast =
        runDs(p, 2, true, core::InterconnectKind::Bus);
    EXPECT_EQ(fast.result.cycles, ref.result.cycles);
    EXPECT_EQ(fast.result.instructions, ref.result.instructions);
    EXPECT_EQ(fast.stats, ref.stats);
    EXPECT_EQ(fast.busMessages, ref.busMessages);
    EXPECT_EQ(fast.busBytes, ref.busBytes);
}

} // namespace
} // namespace dscalar
