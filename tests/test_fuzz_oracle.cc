/** @file
 * check::Oracle and repro-file tests: a clean configuration passes,
 * a deliberately broken configuration (fault injection with the
 * reliable-medium expectations left strict) is flagged, the shrinker
 * converges in at most two passes on an always-failing synthetic
 * case, and repro files round-trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/coverage.hh"
#include "check/model.hh"
#include "check/oracle.hh"
#include "check/repro.hh"
#include "core/protocol_mutation.hh"

namespace dscalar {
namespace {

TEST(FuzzOracle, CleanConfigsPass)
{
    check::Oracle oracle;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        auto failure = oracle.runTrial(seed);
        EXPECT_FALSE(failure.has_value())
            << "seed " << seed << ": "
            << check::describeConfig(failure->config) << ": "
            << failure->mismatch;
    }
    EXPECT_EQ(oracle.stats().trials, 5u);
    EXPECT_EQ(oracle.stats().configsChecked,
              5u * oracle.options().configsPerTrial);
}

TEST(FuzzOracle, CrossChecksRunExtraTimingRuns)
{
    check::Oracle oracle;
    check::ProgramGen gen(oracle.genParams());
    prog::Program p = gen.generate(11);
    check::GoldenRun golden = check::runGolden(p);

    check::TrialConfig config;
    config.crossReplay = true;
    config.crossEventDriven = true;
    EXPECT_EQ(oracle.checkConfig(p, golden, config), "");
    // One live run + one replay + one flipped-mode run.
    EXPECT_EQ(oracle.stats().timingRuns, 3u);
}

TEST(FuzzOracle, DiskReplayDifferentialPasses)
{
    check::Oracle oracle;
    check::ProgramGen gen(oracle.genParams());
    prog::Program p = gen.generate(13);
    check::GoldenRun golden = check::runGolden(p);

    check::TrialConfig config;
    config.traceDir = ::testing::TempDir() + "/fuzz_oracle_store";
    EXPECT_EQ(oracle.checkConfig(p, golden, config), "");
    // One live run + one disk-loaded replay.
    EXPECT_EQ(oracle.stats().timingRuns, 2u);
}

TEST(FuzzOracle, TraceDirSamplingKeepsStreamAligned)
{
    // Setting OracleOptions::traceDir must only add the traceDir
    // field to some sampled configs — the rest of the matrix a seed
    // explores has to stay byte-identical, or existing repro seeds
    // would silently start exercising different configs.
    check::OracleOptions with;
    with.traceDir = "store";
    check::Oracle plain;
    check::Oracle stored(with);
    Random ra(99), rb(99);
    bool sampled = false;
    for (int i = 0; i < 64; ++i) {
        check::TrialConfig ca = plain.sampleConfig(ra);
        check::TrialConfig cb = stored.sampleConfig(rb);
        EXPECT_TRUE(ca.traceDir.empty());
        if (!cb.traceDir.empty()) {
            sampled = true;
            EXPECT_EQ(cb.traceDir, "store");
        }
        cb.traceDir.clear();
        EXPECT_EQ(check::describeConfig(ca),
                  check::describeConfig(cb));
    }
    EXPECT_TRUE(sampled);
}

TEST(FuzzOracle, FlagsFaultInjectionWithoutRecovery)
{
    // The designed-in mismatch: duplicate/delay faults on the
    // interconnect while the oracle still expects a perfectly
    // reliable medium. The run completes (nothing is dropped), but
    // duplicate deliveries leave BSHR residue the strict drain
    // invariant must catch.
    check::Oracle oracle;
    check::TrialConfig config;
    config.system = driver::SystemKind::DataScalar;
    config.nodes = 3;
    config.faultsNoRecovery = true;

    bool flagged = false;
    std::string mismatch;
    for (std::uint64_t seed = 1; seed <= 5 && !flagged; ++seed) {
        mismatch = oracle.recheck(seed, oracle.genParams(), config);
        flagged = !mismatch.empty();
    }
    ASSERT_TRUE(flagged);
    EXPECT_NE(mismatch.find("not drained"), std::string::npos)
        << mismatch;
}

TEST(FuzzMutation, FuzzerAndModelEachCatchEveryPlantedBug)
{
    // The mutation-sensitivity contract: every planted single-line
    // protocol bug (core/protocol_mutation.hh) must be caught by
    // BOTH detection layers — exhaustive enumeration of the abstract
    // model AND differential fuzzing of the concrete simulator —
    // and the concrete mismatch must be the residue the bug plants.
    check::Oracle oracle;
    for (unsigned i = 1; i < core::numProtocolMutations; ++i) {
        auto m = static_cast<core::ProtocolMutation>(i);
        const char *name = core::protocolMutationName(m);

        // Abstract: a 2-node/2-line/2-episode exhaustive enumeration
        // must produce a counterexample.
        check::ModelConfig shape;
        shape.nodes = 2;
        shape.lines = 2;
        shape.episodes = 2;
        shape.mutation = m;
        check::ModelResult model = check::checkModel(shape);
        EXPECT_FALSE(model.ok)
            << name << " survived the model checker";
        EXPECT_FALSE(model.trace.empty()) << name;

        // Concrete: the oracle on a reliable medium must flag the
        // same bug within a handful of seeds.
        check::TrialConfig config;
        config.nodes = 3;
        config.mutation = m;
        bool flagged = false;
        std::string mismatch;
        for (std::uint64_t seed = 1; seed <= 10 && !flagged;
             ++seed) {
            mismatch =
                oracle.recheck(seed, oracle.genParams(), config);
            flagged = !mismatch.empty();
        }
        EXPECT_TRUE(flagged) << name << " survived the fuzzer";
        EXPECT_NE(mismatch.find("not drained"), std::string::npos)
            << name << ": " << mismatch;
        EXPECT_FALSE(oracle.lastFlightLog().empty()) << name;
    }
}

TEST(FuzzMutation, MutationRidesInConfigDescription)
{
    check::TrialConfig config;
    EXPECT_EQ(check::describeConfig(config).find("mutation"),
              std::string::npos);
    config.mutation = core::ProtocolMutation::BufferedHitKeepsData;
    EXPECT_NE(check::describeConfig(config)
                  .find("mutation=buffered-hit-keeps-data"),
              std::string::npos);
}

TEST(FuzzCoverage, OracleFeedsCoverageMap)
{
    check::CoverageMap map(3);
    check::OracleOptions oopt;
    oopt.coverage = &map;
    check::Oracle oracle(oopt);
    check::ProgramGen gen(oracle.genParams());
    prog::Program p = gen.generate(3);
    check::GoldenRun golden = check::runGolden(p);

    check::TrialConfig config; // default DataScalar run
    EXPECT_EQ(oracle.checkConfig(p, golden, config), "");
    EXPECT_GT(oracle.lastCoverageGain(), 0u);
    EXPECT_GT(map.uniqueNgrams(), 0u);
    std::uint64_t total = map.uniqueNgrams();

    // The identical run replayed contributes nothing new.
    EXPECT_EQ(oracle.checkConfig(p, golden, config), "");
    EXPECT_EQ(oracle.lastCoverageGain(), 0u);
    EXPECT_EQ(map.uniqueNgrams(), total);
}

TEST(FuzzShrink, AlwaysFailingCaseConvergesInTwoPasses)
{
    // Synthetic predicate that fails for every candidate: the
    // shrinker must pin every dimension to its floor in the first
    // pass and confirm the fixpoint in the second.
    auto always_fails = [](std::uint64_t,
                           const check::GenParams &) {
        return std::string("synthetic failure");
    };
    check::ShrinkResult res = check::shrinkParams(
        7, check::GenParams::fuzzDefault(), "synthetic failure",
        always_fails);
    EXPECT_LE(res.passes, 2u);
    EXPECT_EQ(res.mismatch, "synthetic failure");
    EXPECT_EQ(res.params.minIters, 1u);
    EXPECT_EQ(res.params.maxIters, 1u);
    EXPECT_EQ(res.params.minBlockOps, 1u);
    EXPECT_EQ(res.params.maxBlockOps, 1u);
    EXPECT_EQ(res.params.minDataPages, 1u);
    EXPECT_EQ(res.params.maxDataPages, 1u);
}

TEST(FuzzShrink, NeverFailingPredicateKeepsStartParams)
{
    auto never_fails = [](std::uint64_t, const check::GenParams &) {
        return std::string();
    };
    check::GenParams start = check::GenParams::fuzzDefault();
    check::ShrinkResult res =
        check::shrinkParams(7, start, "original", never_fails);
    EXPECT_EQ(res.passes, 1u);
    EXPECT_EQ(res.mismatch, "original");
    EXPECT_EQ(res.params.minIters, start.minIters);
    EXPECT_EQ(res.params.maxIters, start.maxIters);
}

TEST(FuzzShrink, ShrunkenFaultCaseStillFails)
{
    // End-to-end: shrink the faultsNoRecovery mismatch with the real
    // recheck predicate; whatever survives must still fail when
    // re-run from the shrunken parameters alone (the repro-replay
    // contract).
    check::Oracle oracle;
    check::TrialConfig config;
    config.nodes = 3;
    config.faultsNoRecovery = true;

    std::uint64_t failing_seed = 0;
    std::string mismatch;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        mismatch = oracle.recheck(seed, oracle.genParams(), config);
        if (!mismatch.empty()) {
            failing_seed = seed;
            break;
        }
    }
    ASSERT_NE(failing_seed, 0u);

    check::ShrinkResult res = check::shrinkParams(
        failing_seed, oracle.genParams(), mismatch,
        [&](std::uint64_t s, const check::GenParams &p) {
            return oracle.recheck(s, p, config);
        });
    EXPECT_FALSE(res.mismatch.empty());
    EXPECT_FALSE(
        oracle.recheck(failing_seed, res.params, config).empty());
}

TEST(FuzzRepro, FormatParseRoundTrip)
{
    check::ReproCase r;
    r.seed = 42;
    r.params = check::GenParams::fuzzDefault();
    r.params.minIters = r.params.maxIters = 3;
    r.config.system = driver::SystemKind::Traditional;
    r.config.nodes = 4;
    r.config.interconnect = core::InterconnectKind::Ring;
    r.config.dcacheBytes = 4096;
    r.config.dcacheAssoc = 2;
    r.config.writeAllocate = true;
    r.config.eventDriven = false;
    r.config.tickThreads = 3;
    r.config.crossTickThreads = true;
    r.config.crossReplay = true;
    r.config.faults = true;
    r.config.bshrCapacity = 16;
    r.config.maxInsts = 12345;
    r.config.faultSeed = 99;
    // A path with spaces rides on the kv quoting layer.
    r.config.traceDir = "/tmp/fuzz trace store";
    r.mismatch = "output divergence: 3 bytes vs golden 5 bytes";

    std::istringstream in(check::formatRepro(r));
    check::ReproCase back;
    std::string error;
    ASSERT_TRUE(check::parseRepro(in, back, error)) << error;
    EXPECT_EQ(back.seed, r.seed);
    EXPECT_EQ(back.params.minIters, 3u);
    EXPECT_EQ(back.params.maxIters, 3u);
    EXPECT_EQ(back.params.mix.pageCross, r.params.mix.pageCross);
    EXPECT_EQ(back.config.system, r.config.system);
    EXPECT_EQ(back.config.nodes, r.config.nodes);
    EXPECT_EQ(back.config.interconnect, r.config.interconnect);
    EXPECT_EQ(back.config.dcacheBytes, r.config.dcacheBytes);
    EXPECT_EQ(back.config.dcacheAssoc, r.config.dcacheAssoc);
    EXPECT_TRUE(back.config.writeAllocate);
    EXPECT_FALSE(back.config.eventDriven);
    EXPECT_EQ(back.config.tickThreads, 3u);
    EXPECT_TRUE(back.config.crossTickThreads);
    EXPECT_TRUE(back.config.crossReplay);
    EXPECT_TRUE(back.config.faults);
    EXPECT_EQ(back.config.bshrCapacity, 16u);
    EXPECT_EQ(back.config.maxInsts, 12345u);
    EXPECT_EQ(back.config.faultSeed, 99u);
    EXPECT_EQ(back.config.traceDir, "/tmp/fuzz trace store");
    EXPECT_EQ(back.mismatch, r.mismatch);
}

TEST(FuzzRepro, CommentedFlightLogRoundTrips)
{
    // dsfuzz appends the failing run's flight log (and, for model
    // counterexamples, the abstract event trace) to repro files as
    // '#' comment blocks. Those lines contain '=' and ':' freely and
    // must never confuse the key-value parser.
    check::ReproCase r;
    r.seed = 7;
    r.params = check::GenParams::fuzzDefault();
    r.config.mutation = core::ProtocolMutation::SquashPendingLost;
    r.mismatch = "protocol not drained: node 1 line 3";

    std::string text = check::formatRepro(r);
    EXPECT_NE(text.find("mutation = squash-pending-lost"),
              std::string::npos);
    text += "#\n"
            "# flight recorder (failing run):\n"
            "#   node 0 @128: bcast-recv line=3 from=1\n"
            "# model counterexample (2 nodes, key = value noise):\n"
            "#   1. node 1 issues episode 0 on line 3\n"
            "# not-a-key and no equals sign either\n";

    std::istringstream in(text);
    check::ReproCase back;
    std::string error;
    ASSERT_TRUE(check::parseRepro(in, back, error)) << error;
    EXPECT_EQ(back.seed, 7u);
    EXPECT_EQ(back.config.mutation,
              core::ProtocolMutation::SquashPendingLost);
    EXPECT_EQ(back.mismatch, r.mismatch);

    // A clean case must not emit the mutation key at all, so repro
    // files from ordinary campaigns keep the v1 format.
    check::ReproCase clean;
    clean.seed = 1;
    EXPECT_EQ(check::formatRepro(clean).find("mutation"),
              std::string::npos);
}

TEST(FuzzRepro, ParseRejectsMalformedInput)
{
    check::ReproCase out;
    std::string error;

    std::istringstream no_seed("nodes = 2\n");
    EXPECT_FALSE(check::parseRepro(no_seed, out, error));
    EXPECT_NE(error.find("seed"), std::string::npos);

    std::istringstream bad_key("seed = 1\nwibble = 3\n");
    EXPECT_FALSE(check::parseRepro(bad_key, out, error));
    EXPECT_NE(error.find("wibble"), std::string::npos);

    std::istringstream bad_value("seed = 1\nnodes = banana\n");
    EXPECT_FALSE(check::parseRepro(bad_value, out, error));
    EXPECT_NE(error.find("non-numeric"), std::string::npos);

    std::istringstream bad_system("seed = 1\nsystem = vliw\n");
    EXPECT_FALSE(check::parseRepro(bad_system, out, error));
    EXPECT_NE(error.find("vliw"), std::string::npos);

    std::istringstream no_equals("seed = 1\njust words\n");
    EXPECT_FALSE(check::parseRepro(no_equals, out, error));
    EXPECT_NE(error.find("missing '='"), std::string::npos);
}

TEST(FuzzRepro, SaveLoadReplayRoundTrip)
{
    // A repro captured from a real failing case must reproduce the
    // same mismatch when loaded and re-checked from scratch.
    check::Oracle oracle;
    check::TrialConfig config;
    config.nodes = 3;
    config.faultsNoRecovery = true;

    std::uint64_t failing_seed = 0;
    std::string mismatch;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        mismatch = oracle.recheck(seed, oracle.genParams(), config);
        if (!mismatch.empty()) {
            failing_seed = seed;
            break;
        }
    }
    ASSERT_NE(failing_seed, 0u);

    check::ReproCase repro{failing_seed, oracle.genParams(), config,
                           mismatch};
    std::string path =
        ::testing::TempDir() + "/fuzz_oracle_repro.txt";
    ASSERT_TRUE(check::saveRepro(path, repro));

    check::ReproCase loaded;
    std::string error;
    ASSERT_TRUE(check::loadRepro(path, loaded, error)) << error;
    EXPECT_EQ(loaded.seed, failing_seed);
    EXPECT_EQ(loaded.mismatch, mismatch);
    EXPECT_EQ(
        oracle.recheck(loaded.seed, loaded.params, loaded.config),
        mismatch);
}

TEST(FuzzRepro, LoadReportsMissingFile)
{
    check::ReproCase out;
    std::string error;
    EXPECT_FALSE(check::loadRepro("/nonexistent/dsfuzz-repro.txt",
                                  out, error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

} // namespace
} // namespace dscalar
