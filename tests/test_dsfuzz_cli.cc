/** @file
 * dsfuzz CLI contract tests: exit codes (0 = clean / time budget,
 * 1 = mismatch or model counterexample found, 2 = usage or file
 * error), the repro files it writes (flight-log and model-trace '#'
 * comments must survive a parse round-trip), and the model mode's
 * counterexample-to-repro conversion — all through the real binary,
 * the way CI and humans drive it.
 */

#include <sys/wait.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "check/repro.hh"

#ifndef DSFUZZ_BIN
#error "DSFUZZ_BIN must point at the dsfuzz executable"
#endif

namespace dscalar {
namespace {

struct CliResult
{
    int exitCode = -1;
    std::string output;
};

/** Run dsfuzz with @p args, capturing combined stdout+stderr. */
CliResult
runDsfuzz(const std::string &args)
{
    static int counter = 0;
    std::string outFile = ::testing::TempDir() + "/dsfuzz_cli_out." +
                          std::to_string(counter++);
    std::string cmd = std::string(DSFUZZ_BIN) + " " + args + " > " +
                      outFile + " 2>&1";
    int status = std::system(cmd.c_str());
    CliResult res;
    if (WIFEXITED(status))
        res.exitCode = WEXITSTATUS(status);
    std::ifstream in(outFile);
    std::ostringstream os;
    os << in.rdbuf();
    res.output = os.str();
    return res;
}

TEST(DsfuzzCli, CleanCampaignExitsZero)
{
    CliResult res = runDsfuzz("--runs=2 --seed=1 --trace-dir=");
    EXPECT_EQ(res.exitCode, 0) << res.output;
    EXPECT_NE(res.output.find("OK:"), std::string::npos)
        << res.output;
}

TEST(DsfuzzCli, TimeBudgetExitsZero)
{
    // A huge run count with a tiny budget: the campaign must stop at
    // the budget check, report it, and still exit clean.
    CliResult res = runDsfuzz(
        "--runs=1000000 --time-budget=0.05 --seed=1 --trace-dir=");
    EXPECT_EQ(res.exitCode, 0) << res.output;
    EXPECT_NE(res.output.find("time budget reached"),
              std::string::npos)
        << res.output;
}

TEST(DsfuzzCli, BadFlagExitsTwo)
{
    CliResult res = runDsfuzz("--wibble");
    EXPECT_EQ(res.exitCode, 2) << res.output;
    EXPECT_NE(res.output.find("usage:"), std::string::npos);
}

TEST(DsfuzzCli, UnknownMutationExitsTwo)
{
    CliResult res = runDsfuzz("--mutate=not-a-mutation");
    EXPECT_EQ(res.exitCode, 2) << res.output;
}

TEST(DsfuzzCli, MissingReproFileExitsTwo)
{
    CliResult res =
        runDsfuzz("--repro=/nonexistent/dsfuzz-repro.txt");
    EXPECT_EQ(res.exitCode, 2) << res.output;
}

TEST(DsfuzzCli, ModelCleanExitsZero)
{
    CliResult res = runDsfuzz(
        "--model --model-nodes=2 --model-lines=2 --model-episodes=2");
    EXPECT_EQ(res.exitCode, 0) << res.output;
    EXPECT_NE(res.output.find("model OK"), std::string::npos);
}

TEST(DsfuzzCli, MutationCampaignWritesCommentedRepro)
{
    // The planted bug must be found (exit 1), the repro must carry
    // the failing run's flight log as '#' comments, and the file
    // must still parse — comments and all — back into the exact
    // mutated config.
    std::string repro =
        ::testing::TempDir() + "/dsfuzz_cli_mutation_repro.txt";
    CliResult res = runDsfuzz(
        "--mutate=squash-pending-lost --runs=20 --seed=1 "
        "--trace-dir= --repro-out=" + repro);
    ASSERT_EQ(res.exitCode, 1) << res.output;
    EXPECT_NE(res.output.find("repro written"), std::string::npos);

    std::ifstream in(repro);
    std::ostringstream os;
    os << in.rdbuf();
    std::string text = os.str();
    EXPECT_NE(text.find("# flight recorder"), std::string::npos)
        << text;
    EXPECT_NE(text.find("mutation = squash-pending-lost"),
              std::string::npos);

    check::ReproCase loaded;
    std::string error;
    ASSERT_TRUE(check::loadRepro(repro, loaded, error)) << error;
    EXPECT_EQ(loaded.config.mutation,
              core::ProtocolMutation::SquashPendingLost);
    EXPECT_FALSE(loaded.mismatch.empty());

    // And the written file replays to the same verdict.
    CliResult replay = runDsfuzz("--repro=" + repro);
    EXPECT_EQ(replay.exitCode, 1) << replay.output;
    EXPECT_NE(replay.output.find("REPRODUCED"), std::string::npos);
}

TEST(DsfuzzCli, ModelCounterexampleConvertsToRepro)
{
    std::string repro =
        ::testing::TempDir() + "/dsfuzz_cli_model_repro.txt";
    CliResult res = runDsfuzz(
        "--model --mutate=deliver-squash-buffers --seed=1 "
        "--repro-out=" + repro);
    ASSERT_EQ(res.exitCode, 1) << res.output;
    EXPECT_NE(res.output.find("VIOLATION:"), std::string::npos);
    EXPECT_NE(res.output.find("model counterexample"),
              std::string::npos);

    // The repro carries the abstract trace as comments and replays.
    std::ifstream in(repro);
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_NE(os.str().find("# model counterexample"),
              std::string::npos);
    check::ReproCase loaded;
    std::string error;
    ASSERT_TRUE(check::loadRepro(repro, loaded, error)) << error;
    EXPECT_EQ(loaded.config.mutation,
              core::ProtocolMutation::DeliverSquashBuffers);
    CliResult replay = runDsfuzz("--repro=" + repro);
    EXPECT_EQ(replay.exitCode, 1) << replay.output;
}

} // namespace
} // namespace dscalar
