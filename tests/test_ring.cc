/** @file Unit + integration tests for the ring interconnect. */

#include <gtest/gtest.h>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "interconnect/ring.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace interconnect {
namespace {

RingParams
params(Cycle hop, unsigned width, Cycle divisor)
{
    RingParams p;
    p.hopLatency = hop;
    p.widthBytes = width;
    p.clockDivisor = divisor;
    p.headerBytes = 8;
    p.interfacePenalty = 2;
    return p;
}

TEST(Ring, DeliveriesVisitAllOtherNodesInOrder)
{
    Ring ring(4, params(4, 8, 10));
    auto ds = ring.broadcast(MsgKind::Broadcast, 32, 1, 0x1000, 0)
                  .deliveries;
    ASSERT_EQ(ds.size(), 3u);
    EXPECT_EQ(ds[0].node, 2u);
    EXPECT_EQ(ds[1].node, 3u);
    EXPECT_EQ(ds[2].node, 0u);
    // Strictly increasing arrival downstream.
    EXPECT_LT(ds[0].at, ds[1].at);
    EXPECT_LT(ds[1].at, ds[2].at);
}

TEST(Ring, FirstHopTiming)
{
    Ring ring(2, params(4, 8, 10));
    // 40 bytes / 8 per clock = 5 clocks * 10 = 50 serialization;
    // +2 interface, +4 hop.
    auto ds = ring.broadcast(MsgKind::Broadcast, 32, 0, 0x1000, 0)
                  .deliveries;
    ASSERT_EQ(ds.size(), 1u);
    EXPECT_EQ(ds[0].at, 2u + 50 + 4);
}

TEST(Ring, DisjointSegmentsOverlap)
{
    // Two-node ring: node 0 and node 1 inject simultaneously and use
    // different links, so neither waits (a bus would serialize).
    Ring ring(2, params(4, 8, 10));
    auto a = ring.broadcast(MsgKind::Broadcast, 32, 0, 0x1000, 0)
                 .deliveries;
    auto b = ring.broadcast(MsgKind::Broadcast, 32, 1, 0x2000, 0)
                 .deliveries;
    EXPECT_EQ(a[0].at, b[0].at);
}

TEST(Ring, SameLinkSerializes)
{
    Ring ring(2, params(0, 8, 10));
    auto a = ring.broadcast(MsgKind::Broadcast, 32, 0, 0x1000, 0)
                 .deliveries;
    auto b = ring.broadcast(MsgKind::Broadcast, 32, 0, 0x2000, 0)
                 .deliveries;
    EXPECT_EQ(b[0].at - a[0].at, ring.serializationCycles(40));
}

TEST(Ring, TrafficAccounting)
{
    Ring ring(4, params(4, 8, 10));
    ring.broadcast(MsgKind::Broadcast, 32, 0, 0x1000, 0);
    ring.broadcast(MsgKind::ReparativeBroadcast, 32, 2, 0x2000, 5);
    EXPECT_EQ(ring.totalMessages(), 2u);
    EXPECT_EQ(ring.totalBytes(), 80u);
    // Each message occupies 3 links for 50 cycles.
    EXPECT_EQ(ring.linkBusyCycles(), 2u * 3 * 50);
}

} // namespace
} // namespace interconnect

namespace core {
namespace {

using namespace prog::reg;

prog::Program
streamProgram(unsigned data_pages)
{
    prog::Program p;
    Addr g = p.allocGlobal(data_pages * prog::pageSize);
    for (Addr off = 0; off < data_pages * prog::pageSize; off += 8)
        p.poke64(g + off, off);
    prog::Assembler a(p);
    a.la(s1, g);
    a.li(s0,
         static_cast<std::int32_t>(data_pages * prog::pageSize / 8));
    a.label("loop");
    a.ld(t0, s1, 0);
    a.add(s2, s2, t0);
    a.addi(s1, s1, 8);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

TEST(RingDataScalar, ProtocolInvariantsHoldOnRing)
{
    prog::Program p = streamProgram(8);
    for (unsigned nodes : {2u, 4u}) {
        SimConfig cfg = driver::paperConfig();
        cfg.numNodes = nodes;
        cfg.interconnect = InterconnectKind::Ring;
        DataScalarSystem sys(p, cfg,
                             driver::figure7PageTable(p, nodes));
        RunResult r = sys.run();
        EXPECT_GT(r.instructions, 0u);
        EXPECT_TRUE(sys.protocolDrained());
        for (NodeId n = 0; n < nodes; ++n)
            EXPECT_EQ(sys.node(n).core().committedSeq(),
                      r.instructions);
        EXPECT_EQ(sys.bus().totalMessages(), 0u);
        EXPECT_GT(sys.ring().totalMessages(), 0u);
    }
}

TEST(RingDataScalar, RingBeatsBusUnderBroadcastLoad)
{
    // Aggregate ring bandwidth scales with segments; the saturated
    // stream benchmark must run at least as fast on the ring.
    prog::Program p = streamProgram(16);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 4;
    cfg.maxInsts = 30'000;

    DataScalarSystem bus_sys(p, cfg, driver::figure7PageTable(p, 4));
    RunResult bus_r = bus_sys.run();

    cfg.interconnect = InterconnectKind::Ring;
    DataScalarSystem ring_sys(p, cfg,
                              driver::figure7PageTable(p, 4));
    RunResult ring_r = ring_sys.run();

    EXPECT_LE(ring_r.cycles, bus_r.cycles * 11 / 10);
}

TEST(RingDataScalar, LocalPageCountAccounting)
{
    prog::Program p = streamProgram(8);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 4;
    DataScalarSystem sys(p, cfg, driver::figure7PageTable(p, 4));
    std::size_t total_pages = p.touchedPages().size();
    std::size_t sum_owned = 0;
    for (NodeId n = 0; n < 4; ++n) {
        // Every node holds its share plus all replicated pages.
        EXPECT_LT(sys.localPageCount(n), total_pages);
        sum_owned += sys.pageTable().ownedPageCount(n);
    }
    EXPECT_EQ(sum_owned + sys.pageTable().replicatedPageCount(),
              total_pages);
}

} // namespace
} // namespace core
} // namespace dscalar
