/** @file Tests for SPMD execution and the partitioned workload. */

#include <gtest/gtest.h>

#include "baseline/spmd.hh"
#include "driver/driver.hh"
#include "func/func_sim.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace baseline {
namespace {

TEST(StencilStrip, PartitionsRunAndPrint)
{
    for (unsigned nodes : {1u, 2u, 4u}) {
        for (unsigned n = 0; n < nodes; ++n) {
            prog::Program p =
                workloads::buildStencilStrip(n, nodes, 1);
            func::FuncSim sim(p);
            sim.run(20'000'000);
            EXPECT_TRUE(sim.halted()) << p.name;
            EXPECT_FALSE(sim.output().empty());
        }
    }
}

TEST(StencilStrip, WorkSplitsEvenly)
{
    prog::Program whole = workloads::buildStencilStrip(0, 1, 1);
    prog::Program half = workloads::buildStencilStrip(0, 2, 1);
    func::FuncSim sw(whole);
    func::FuncSim sh(half);
    sw.run(50'000'000);
    sh.run(50'000'000);
    // Half the rows => roughly half the dynamic instructions.
    EXPECT_NEAR(static_cast<double>(sh.retired()) / sw.retired(),
                0.5, 0.1);
}

TEST(Spmd, BarrierSemantics)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = 20'000;
    std::vector<prog::Program> partitions;
    for (unsigned n = 0; n < 3; ++n)
        partitions.push_back(workloads::buildStencilStrip(n, 4, 1));
    SpmdResult r = runSpmd(partitions, cfg);
    ASSERT_EQ(r.nodes.size(), 3u);
    Cycle max_cycles = 0;
    InstSeq total = 0;
    for (const auto &nr : r.nodes) {
        max_cycles = std::max(max_cycles, nr.cycles);
        total += nr.instructions;
    }
    EXPECT_EQ(r.cycles, max_cycles);
    EXPECT_EQ(r.instructions, total);
    EXPECT_GT(r.aggregateIpc, 0.0);
}

TEST(Spmd, ParallelStencilScales)
{
    core::SimConfig cfg = driver::paperConfig();
    prog::Program serial = workloads::buildStencilStrip(0, 1, 1);
    SpmdResult base = runSpmd({serial}, cfg);

    std::vector<prog::Program> strips;
    for (unsigned n = 0; n < 4; ++n)
        strips.push_back(workloads::buildStencilStrip(n, 4, 1));
    SpmdResult par = runSpmd(strips, cfg);

    double speedup = static_cast<double>(base.cycles) /
                     static_cast<double>(par.cycles);
    EXPECT_GT(speedup, 2.5) << "expected near-linear scaling";
}

TEST(Spmd, NoGlobalTraffic)
{
    // runSpmd panics internally if a partition touches the bus;
    // reaching here means the invariant held.
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = 5'000;
    SpmdResult r =
        runSpmd({workloads::buildStencilStrip(0, 2, 1),
                 workloads::buildStencilStrip(1, 2, 1)},
                cfg);
    EXPECT_GT(r.instructions, 0u);
}

} // namespace
} // namespace baseline
} // namespace dscalar
