/** @file Unit tests for the out-of-order core's timing behaviour. */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "ooo/core.hh"
#include "ooo/oracle_stream.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace ooo {
namespace {

using namespace prog::reg;
using prog::Assembler;
using prog::Program;

/** All-local memory backend (everything behind one bank array). */
class LocalBackend : public MemBackend
{
  public:
    explicit LocalBackend(const mem::MainMemoryParams &p) : mem_(p) {}

    FillResult
    startLineFetch(Addr line, Cycle now) override
    {
        ++fetches;
        return {mem_.request(line, now), false};
    }
    void onUnclaimedCanonicalMiss(Addr, Cycle) override { ++repairs; }
    void writeBack(Addr, Cycle) override { ++writeBacks; }
    void storeMiss(Addr, Cycle) override { ++storeMisses; }
    Cycle
    fetchInstLine(Addr line, Cycle now) override
    {
        ++instFetches;
        return mem_.request(line, now);
    }

    std::uint64_t fetches = 0;
    std::uint64_t repairs = 0;
    std::uint64_t writeBacks = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t instFetches = 0;

  private:
    mem::MainMemory mem_;
};

struct CoreRun
{
    Cycle cycles = 0;
    CoreStats stats;
    std::uint64_t backendFetches = 0;
    std::uint64_t backendInstFetches = 0;
    std::uint64_t backendStoreMisses = 0;
    std::uint64_t backendWriteBacks = 0;
};

CoreRun
runCore(const Program &p, const CoreParams &params,
        InstSeq max_insts = 0)
{
    func::FuncSim sim(p);
    OracleStream stream(sim, max_insts);
    LocalBackend backend{mem::MainMemoryParams{}};
    OoOCore core(params, stream, backend);
    Cycle now = 0;
    while (!core.done()) {
        core.tick(now);
        ++now;
        if (now > 10'000'000) {
            ADD_FAILURE() << "core did not finish";
            break;
        }
    }
    CoreRun r;
    r.cycles = now;
    r.stats = core.coreStats();
    r.backendFetches = backend.fetches;
    r.backendInstFetches = backend.instFetches;
    r.backendStoreMisses = backend.storeMisses;
    r.backendWriteBacks = backend.writeBacks;
    return r;
}

Program
independentAdds(int count)
{
    Program p;
    Assembler a(p);
    for (int i = 0; i < count; ++i)
        a.addi(static_cast<RegIndex>(1 + (i % 20)), zero, i & 0xff);
    a.halt();
    a.finalize();
    return p;
}

/** @p count independent adds per iteration, looped (warm I-cache). */
Program
loopedAdds(int count, int iters)
{
    Program p;
    Assembler a(p);
    a.li(s0, iters);
    a.label("loop");
    for (int i = 0; i < count; ++i) {
        // r1..r12 only: the loop counter lives in s0 (r16).
        a.addi(static_cast<RegIndex>(1 + (i % 12)), zero, i & 0xff);
    }
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

Program
serialChain(int count, int iters)
{
    Program p;
    Assembler a(p);
    a.li(t0, 1);
    a.li(s0, iters);
    a.label("loop");
    for (int i = 0; i < count; ++i)
        a.addi(t0, t0, 1);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

TEST(OoOCore, CommitsEveryInstruction)
{
    Program p = independentAdds(100);
    CoreRun r = runCore(p, CoreParams{});
    EXPECT_EQ(r.stats.committed, 101u); // 100 adds + halt
}

TEST(OoOCore, WideIssueOnIndependentCode)
{
    // Looped so the I-cache warms; 8-wide should sustain above 4.
    Program p = loopedAdds(512, 16);
    CoreRun r = runCore(p, CoreParams{});
    double ipc = static_cast<double>(r.stats.committed) / r.cycles;
    EXPECT_GT(ipc, 4.0);
}

TEST(OoOCore, SerialChainLimitsToOnePerCycle)
{
    Program p = serialChain(200, 20);
    CoreRun r = runCore(p, CoreParams{});
    double ipc = static_cast<double>(r.stats.committed) / r.cycles;
    EXPECT_LE(ipc, 1.1);
    EXPECT_GT(ipc, 0.8);
}

TEST(OoOCore, ColdStraightLineCodeIsFetchBound)
{
    // Straight-line code touches every I-line exactly once: fetch
    // stalls on the 8-cycle banks bound IPC near
    // lineInsts / (bank + transfer) regardless of issue width.
    Program p = independentAdds(2000);
    CoreRun r = runCore(p, CoreParams{});
    double ipc = static_cast<double>(r.stats.committed) / r.cycles;
    EXPECT_LT(ipc, 1.2);
    EXPECT_GT(ipc, 0.5);
}

TEST(OoOCore, NarrowIssueWidthCaps)
{
    Program p = independentAdds(2000);
    CoreParams narrow;
    narrow.issueWidth = 1;
    narrow.fetchWidth = 1;
    narrow.commitWidth = 1;
    CoreRun r = runCore(p, narrow);
    double ipc = static_cast<double>(r.stats.committed) / r.cycles;
    EXPECT_LE(ipc, 1.01);
}

TEST(OoOCore, TinyRuuStillCorrect)
{
    Program p = independentAdds(500);
    CoreParams tiny;
    tiny.ruuEntries = 2;
    tiny.lsqEntries = 1;
    CoreRun r = runCore(p, tiny);
    EXPECT_EQ(r.stats.committed, 501u);
}

TEST(OoOCore, LoadsHitAfterFill)
{
    // Repeatedly load the same line: 1 cold miss, rest hits.
    Program p;
    Addr g = p.allocGlobal(64);
    Assembler a(p);
    a.la(s1, g);
    for (int i = 0; i < 16; ++i)
        a.lw(t0, s1, (i % 8) * 4);
    a.halt();
    a.finalize();

    CoreRun r = runCore(p, CoreParams{});
    EXPECT_EQ(r.stats.loads, 16u);
    EXPECT_EQ(r.stats.loadIssueMisses, 1u);
    EXPECT_EQ(r.backendFetches, 1u);
    EXPECT_EQ(r.stats.canonicalLoadMisses, 1u);
    EXPECT_EQ(r.stats.falseHits, 0u);
    EXPECT_EQ(r.stats.falseMisses, 0u);
}

TEST(OoOCore, StoreToLoadForwarding)
{
    Program p;
    Addr g = p.allocGlobal(64);
    Assembler a(p);
    a.la(s1, g);
    a.li(t0, 42);
    a.sw(t0, s1, 0);
    a.lw(t1, s1, 0); // must forward from the store
    a.halt();
    a.finalize();

    CoreRun r = runCore(p, CoreParams{});
    EXPECT_GE(r.stats.forwardedLoads, 1u);
}

TEST(OoOCore, WriteNoAllocateStoreMissesGoToBackend)
{
    Program p;
    Addr g = p.allocGlobal(1024);
    Assembler a(p);
    a.la(s1, g);
    for (int i = 0; i < 8; ++i)
        a.sw(zero, s1, i * 64); // distinct lines, never loaded
    a.halt();
    a.finalize();

    CoreRun r = runCore(p, CoreParams{});
    EXPECT_EQ(r.stats.storeCommitMisses, 8u);
    EXPECT_EQ(r.backendStoreMisses, 8u);
    EXPECT_EQ(r.backendFetches, 0u); // no allocations
}

TEST(OoOCore, WriteAllocatePolicyFetchesOnStoreMiss)
{
    Program p;
    Addr g = p.allocGlobal(1024);
    Assembler a(p);
    a.la(s1, g);
    for (int i = 0; i < 8; ++i)
        a.sw(zero, s1, i * 64);
    a.halt();
    a.finalize();

    CoreParams params;
    params.dcache.writeAllocate = true;
    CoreRun r = runCore(p, params);
    EXPECT_EQ(r.stats.storeCommitMisses, 8u);
    EXPECT_EQ(r.backendStoreMisses, 0u);
    // Fetch-for-write traffic instead.
    EXPECT_EQ(r.stats.unclaimedRepairs, 0u);
}

TEST(OoOCore, DirtyEvictionProducesWriteBack)
{
    Program p;
    // Two lines one cache-size apart: load+store the first, then
    // load the second to evict it dirty.
    Addr g = p.allocGlobal(64 * 1024);
    Assembler a(p);
    a.la(s1, g);
    a.lw(t0, s1, 0);
    a.sw(t0, s1, 0);       // dirty the line (write hit)
    a.lw(t1, s1, 16384);   // same set in a 16 KB direct-mapped L1
    a.halt();
    a.finalize();

    CoreRun r = runCore(p, CoreParams{});
    EXPECT_EQ(r.stats.dirtyWriteBacks, 1u);
    EXPECT_EQ(r.backendWriteBacks, 1u);
}

TEST(OoOCore, ICacheMissesCounted)
{
    Program p = independentAdds(4000); // 16 KB of text
    CoreRun r = runCore(p, CoreParams{});
    EXPECT_GT(r.stats.icacheMisses, 100u);
    EXPECT_EQ(r.stats.icacheMisses, r.backendInstFetches);
}

TEST(OoOCore, PerfectDataNeverTouchesBackend)
{
    Program p;
    Addr g = p.allocGlobal(4096);
    Assembler a(p);
    a.la(s1, g);
    for (int i = 0; i < 32; ++i) {
        a.lw(t0, s1, i * 64);
        a.sw(t0, s1, i * 64);
    }
    a.halt();
    a.finalize();

    CoreParams params;
    params.perfectData = true;
    CoreRun r = runCore(p, params);
    EXPECT_EQ(r.backendFetches, 0u);
    EXPECT_EQ(r.backendStoreMisses, 0u);
    EXPECT_EQ(r.backendWriteBacks, 0u);
}

TEST(OoOCore, MshrLimitBoundsOutstandingFills)
{
    // Independent loads to distinct lines: unlimited MSHRs overlap
    // them; a single MSHR serializes the fills.
    Program p;
    Addr g = p.allocGlobal(8192);
    Assembler a(p);
    a.la(s1, g);
    for (int i = 0; i < 32; ++i)
        a.lw(static_cast<RegIndex>(1 + (i % 12)), s1, i * 64);
    a.halt();
    a.finalize();

    CoreParams unlimited;
    CoreParams one;
    one.maxOutstandingFills = 1;
    CoreRun fast = runCore(p, unlimited);
    CoreRun slow = runCore(p, one);
    EXPECT_GT(slow.cycles, fast.cycles * 2);
    EXPECT_GT(slow.stats.mshrStallEvents, 0u);
    EXPECT_EQ(slow.stats.committed, fast.stats.committed);
}

TEST(OoOCore, MshrLimitDoesNotChangeArchitecture)
{
    Program p = independentAdds(200);
    CoreParams tiny;
    tiny.maxOutstandingFills = 1;
    CoreRun r = runCore(p, tiny);
    EXPECT_EQ(r.stats.committed, 201u);
}

TEST(OoOCore, MaxInstsTruncatesRun)
{
    Program p = independentAdds(1000);
    CoreRun r = runCore(p, CoreParams{}, 50);
    EXPECT_EQ(r.stats.committed, 50u);
}

TEST(OoOCore, TruncatedRunFinishesWithSingleEntryWindow)
{
    // Regression: with a 1-entry window, the truncated stream's end
    // is only discovered by the fetch probe after the final commit;
    // the core must still report done (it used to hang).
    Program p = independentAdds(1000);
    CoreParams tiny;
    tiny.ruuEntries = 1;
    tiny.lsqEntries = 1;
    tiny.fetchWidth = 1;
    tiny.issueWidth = 1;
    tiny.commitWidth = 1;
    CoreRun r = runCore(p, tiny, 50);
    EXPECT_EQ(r.stats.committed, 50u);
}

TEST(OoOCore, FpLatenciesSlowDependentChain)
{
    // A chain of dependent fmuls should take ~fpMulLat per inst.
    Program p;
    Addr g = p.allocGlobal(16);
    Assembler a(p);
    a.la(s1, g);
    a.ld(t0, s1, 0);
    for (int i = 0; i < 200; ++i)
        a.fmul(t0, t0, t0);
    a.halt();
    a.finalize();

    CoreParams params;
    CoreRun r = runCore(p, params);
    EXPECT_GT(r.cycles, 200u * (params.fpMulLat - 1));
}

} // namespace
} // namespace ooo
} // namespace dscalar
