/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace dscalar {
namespace {

TEST(Random, DeterministicAcrossInstances)
{
    Random a(42);
    Random b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, SeedsDiffer)
{
    Random a(1);
    Random b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Random, BelowInRange)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Random r(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        std::int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, RealInUnitInterval)
{
    Random r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    // Mean of U(0,1) should be near 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ChanceExtremes)
{
    Random r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

} // namespace
} // namespace dscalar
