/** @file Unit tests for the banked main-memory timing model. */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"

namespace dscalar {
namespace mem {
namespace {

MainMemoryParams
params(Cycle lat, unsigned banks)
{
    MainMemoryParams p;
    p.accessLatency = lat;
    p.numBanks = banks;
    p.lineSize = 32;
    p.busBytesPerCycle = 32;
    return p;
}

TEST(MainMemory, SingleAccessLatency)
{
    MainMemory m(params(8, 8));
    // 8 cycles bank + 1 cycle 32B transfer on a 32B bus.
    EXPECT_EQ(m.request(0x0, 100), 109u);
    EXPECT_EQ(m.requestCount(), 1u);
}

TEST(MainMemory, SameBankSerializes)
{
    MainMemory m(params(8, 8));
    Cycle t1 = m.request(0x0, 0);
    // Same bank (same line index modulo banks): 8 banks * 32 B.
    Cycle t2 = m.request(0x0 + 8 * 32, 0);
    EXPECT_EQ(t1, 9u);
    EXPECT_EQ(t2, 17u); // starts when bank frees at 8
}

TEST(MainMemory, DifferentBanksOverlap)
{
    MainMemory m(params(8, 8));
    Cycle t1 = m.request(0 * 32, 0);
    Cycle t2 = m.request(1 * 32, 0);
    EXPECT_EQ(t1, t2); // parallel banks
}

TEST(MainMemory, TransferCyclesScaleWithBusWidth)
{
    MainMemoryParams p = params(8, 8);
    p.busBytesPerCycle = 8; // 32 B line = 4 cycles
    MainMemory m(p);
    EXPECT_EQ(m.transferCycles(), 4u);
    EXPECT_EQ(m.request(0, 0), 8u + 4u);
}

TEST(MainMemory, LateRequestStartsAtNow)
{
    MainMemory m(params(8, 2));
    m.request(0, 0);
    // Long after the bank freed: starts at now.
    EXPECT_EQ(m.request(2 * 32, 1000), 1009u);
}

TEST(MainMemory, ManyRequestsRespectBankThroughput)
{
    MainMemory m(params(8, 4));
    // 16 back-to-back requests to one bank: last completes no
    // earlier than 16 * 8 cycles of bank occupancy.
    Cycle last = 0;
    for (int i = 0; i < 16; ++i)
        last = m.request(0, 0);
    EXPECT_GE(last, 16u * 8u);
}

TEST(MainMemoryDeath, ZeroBanksIsFatal)
{
    MainMemoryParams p = params(8, 0);
    EXPECT_EXIT(MainMemory m(p), ::testing::ExitedWithCode(1), "bank");
}

} // namespace
} // namespace mem
} // namespace dscalar
