/**
 * @file
 * Replay-identity tests: a timing run that replays a captured trace
 * must report exactly what a fresh execution-driven run reports —
 * every system family, both event-driven modes, down to the full
 * stats dump. This is the contract that lets driver::TraceCache
 * substitute replay for execution everywhere (loopTicks is the one
 * diagnostic field excluded from equivalence; see core::RunResult).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "baseline/perfect.hh"
#include "baseline/traditional.hh"
#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "func/inst_trace.hh"
#include "prog/assembler.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace driver {
namespace {

constexpr InstSeq kBudget = 8000;

const prog::Program &
testProgram()
{
    static prog::Program p =
        workloads::findWorkload("compress_s").build(1);
    return p;
}

std::shared_ptr<const func::InstTrace>
testTrace()
{
    static std::shared_ptr<const func::InstTrace> trace =
        func::InstTrace::capture(testProgram(), kBudget);
    return trace;
}

core::SimConfig
testConfig(bool event_driven)
{
    core::SimConfig cfg = paperConfig();
    cfg.maxInsts = kBudget;
    cfg.numNodes = 2;
    cfg.eventDriven = event_driven;
    return cfg;
}

TEST(TraceReplay, RunResultsMatchEverySystemAndMode)
{
    const prog::Program &p = testProgram();
    auto trace = testTrace();
    for (bool ed : {true, false}) {
        core::SimConfig cfg = testConfig(ed);
        for (SystemKind kind :
             {SystemKind::Perfect, SystemKind::DataScalar,
              SystemKind::Traditional}) {
            SCOPED_TRACE(std::string(systemKindName(kind)) +
                         (ed ? " event-driven" : " cycle-stepped"));
            core::RunResult fresh = runSystem(kind, p, cfg);
            core::RunResult replay = runSystem(kind, p, cfg, 1, trace);
            EXPECT_EQ(replay.cycles, fresh.cycles);
            EXPECT_EQ(replay.instructions, fresh.instructions);
            EXPECT_EQ(replay.ipc, fresh.ipc);
        }
    }
}

TEST(TraceReplay, DataScalarDumpStatsByteIdentical)
{
    const prog::Program &p = testProgram();
    core::SimConfig cfg = testConfig(true);

    core::DataScalarSystem live(p, cfg, figure7PageTable(p, 2));
    core::DataScalarSystem replay(p, cfg, figure7PageTable(p, 2),
                                  testTrace());
    live.run();
    replay.run();

    std::ostringstream a, b;
    live.dumpStats(a);
    replay.dumpStats(b);
    EXPECT_EQ(b.str(), a.str());
    EXPECT_EQ(replay.output(), live.output());
}

TEST(TraceReplay, FaultInjectionWithRecoveryMatchesLive)
{
    // Fault decisions are a pure function of the seed and message
    // identities, not of the execution backend — so a faulty run
    // with recovery armed must replay cycle- and stats-identical to
    // its live counterpart. The fuzzer's crossReplay check on fault
    // configs rests on this corner.
    const prog::Program &p = testProgram();
    for (bool ed : {true, false}) {
        SCOPED_TRACE(ed ? "event-driven" : "cycle-stepped");
        core::SimConfig cfg = testConfig(ed);
        cfg.fault.dropProb = 0.05;
        cfg.fault.dupProb = 0.02;
        cfg.fault.delayProb = 0.1;
        cfg.fault.maxDelay = 16;
        cfg.fault.seed = 42;
        cfg.rerequestTimeout = 2000;

        core::DataScalarSystem live(p, cfg, figure7PageTable(p, 2));
        core::DataScalarSystem replay(p, cfg, figure7PageTable(p, 2),
                                      testTrace());
        core::RunResult fresh = live.run();
        core::RunResult again = replay.run();

        // The faults must actually fire for this to test anything.
        std::uint64_t rerequests = 0;
        for (NodeId n = 0; n < 2; ++n)
            rerequests += live.node(n).nodeStats().rerequestsSent;
        EXPECT_GT(rerequests, 0u);

        EXPECT_EQ(again.cycles, fresh.cycles);
        EXPECT_EQ(again.instructions, fresh.instructions);
        EXPECT_EQ(replay.output(), live.output());
        std::ostringstream a, b;
        live.dumpStats(a);
        replay.dumpStats(b);
        EXPECT_EQ(b.str(), a.str());
    }
}

TEST(TraceReplay, PerfectOutputMatchesAcrossBackends)
{
    const prog::Program &p = testProgram();
    core::SimConfig cfg = testConfig(true);
    baseline::PerfectSystem live(p, cfg);
    baseline::PerfectSystem replay(p, cfg, testTrace());
    live.run();
    replay.run();
    EXPECT_EQ(replay.output(), live.output());
}

TEST(TraceReplay, TruncatedReplayOutputMatchesLiveBudget)
{
    // A trace captured to completion, replayed at a smaller budget:
    // the reported syscall output must be what a live run stopped at
    // that budget prints, not the full captured run's output.
    using namespace prog::reg;
    prog::Program p;
    prog::Assembler a(p);
    a.li(t0, 3000);
    a.label("loop");
    a.addi(a0, t0, 0);
    a.syscall(isa::Syscall::PrintInt);
    a.addi(t0, t0, -1);
    a.bne(t0, zero, "loop");
    a.halt();
    a.finalize();

    auto trace = func::InstTrace::capture(p);
    ASSERT_TRUE(trace->programHalted());

    core::SimConfig cfg = testConfig(true);
    cfg.maxInsts = 5000; // well below the ~12000 captured records
    baseline::PerfectSystem live(p, cfg);
    baseline::PerfectSystem replay(p, cfg, trace);
    live.run();
    replay.run();
    EXPECT_FALSE(live.output().empty());
    EXPECT_EQ(replay.output(), live.output());
    EXPECT_NE(replay.output(), trace->output());
}

TEST(TraceReplay, TraditionalOutputMatchesAcrossBackends)
{
    const prog::Program &p = testProgram();
    core::SimConfig cfg = testConfig(true);
    baseline::TraditionalSystem live(p, cfg,
                                     figure7PageTable(p, 2));
    baseline::TraditionalSystem replay(p, cfg,
                                       figure7PageTable(p, 2),
                                       testTrace());
    live.run();
    replay.run();
    EXPECT_EQ(replay.output(), live.output());
}

} // namespace
} // namespace driver
} // namespace dscalar
