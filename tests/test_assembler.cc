/** @file Unit tests for the assembler DSL (labels, fixups, pseudos). */

#include <gtest/gtest.h>

#include "func/func_sim.hh"
#include "prog/assembler.hh"
#include "prog/program.hh"

namespace dscalar {
namespace prog {
namespace {

using namespace reg;

/** Run a freshly assembled program and return the sim. */
func::FuncSim
runProgram(Program &p)
{
    func::FuncSim sim(p);
    sim.run(1'000'000);
    EXPECT_TRUE(sim.halted()) << "program did not halt";
    return sim;
}

TEST(Assembler, ForwardAndBackwardBranches)
{
    Program p;
    Assembler a(p);
    a.li(t0, 5);
    a.li(t1, 0);
    a.label("loop");
    a.add(t1, t1, t0);
    a.addi(t0, t0, -1);
    a.bne(t0, zero, "loop");  // backward
    a.beq(t1, zero, "skip");  // forward, not taken
    a.addi(t1, t1, 100);
    a.label("skip");
    a.halt();
    a.finalize();

    auto sim = runProgram(p);
    EXPECT_EQ(sim.reg(t1), 5u + 4 + 3 + 2 + 1 + 100);
}

TEST(Assembler, JumpAndLink)
{
    Program p;
    Assembler a(p);
    a.li(t0, 1);
    a.jal("func");
    a.addi(t0, t0, 10); // executed after return
    a.halt();
    a.label("func");
    a.addi(t0, t0, 100);
    a.ret();
    a.finalize();

    auto sim = runProgram(p);
    EXPECT_EQ(sim.reg(t0), 111u);
}

TEST(Assembler, LoadImmediateRanges)
{
    Program p;
    Assembler a(p);
    a.li(t0, 42);
    a.li(t1, -42);
    a.li(t2, 0x12345678);
    a.li(t3, 65536);
    a.li(t4, -32768);
    a.halt();
    a.finalize();

    auto sim = runProgram(p);
    EXPECT_EQ(sim.reg(t0), 42u);
    EXPECT_EQ(static_cast<std::int64_t>(sim.reg(t1)), -42);
    EXPECT_EQ(sim.reg(t2), 0x12345678u);
    EXPECT_EQ(sim.reg(t3), 65536u);
    EXPECT_EQ(static_cast<std::int64_t>(sim.reg(t4)), -32768);
}

TEST(Assembler, LoadAddressAndMemoryOps)
{
    Program p;
    Addr g = p.allocGlobal(64);
    p.poke64(g + 8, 0x1122334455667788ULL);
    p.poke32(g + 16, 0xdeadbeef);

    Assembler a(p);
    a.la(s1, g);
    a.ld(t0, s1, 8);
    a.lw(t1, s1, 16);
    a.sd(t0, s1, 24);
    a.sw(t1, s1, 32);
    a.halt();
    a.finalize();

    auto sim = runProgram(p);
    EXPECT_EQ(sim.reg(t0), 0x1122334455667788ULL);
    EXPECT_EQ(sim.reg(t1), 0xdeadbeefULL); // lw zero-extends
    EXPECT_EQ(sim.memory().read(g + 24, 8), 0x1122334455667788ULL);
    EXPECT_EQ(sim.memory().read(g + 32, 4), 0xdeadbeefULL);
}

TEST(Assembler, GenLabelUnique)
{
    Program p;
    Assembler a(p);
    std::string l1 = a.genLabel("loop");
    std::string l2 = a.genLabel("loop");
    EXPECT_NE(l1, l2);
}

TEST(Assembler, MoveAndNop)
{
    Program p;
    Assembler a(p);
    a.li(t0, 77);
    a.nop();
    a.move(t1, t0);
    a.halt();
    a.finalize();
    auto sim = runProgram(p);
    EXPECT_EQ(sim.reg(t1), 77u);
}

TEST(AssemblerDeath, UndefinedLabelIsFatal)
{
    Program p;
    Assembler a(p);
    a.j("nowhere");
    a.halt();
    EXPECT_EXIT(a.finalize(), ::testing::ExitedWithCode(1),
                "not defined");
}

TEST(AssemblerDeath, DuplicateLabelIsFatal)
{
    Program p;
    Assembler a(p);
    a.label("x");
    EXPECT_EXIT(a.label("x"), ::testing::ExitedWithCode(1),
                "defined twice");
}

TEST(AssemblerDeath, OutOfRangeImmediateIsFatal)
{
    Program p;
    Assembler a(p);
    EXPECT_EXIT(a.addi(t0, t0, 1 << 20),
                ::testing::ExitedWithCode(1), "out of");
}

TEST(Assembler, LabelAddrMatchesBranchTarget)
{
    Program p;
    Assembler a(p);
    a.nop();
    a.nop();
    a.label("here");
    Addr here = a.labelAddr("here");
    EXPECT_EQ(here, p.textBaseAddr() + 8);
}

} // namespace
} // namespace prog
} // namespace dscalar

namespace dscalar {
namespace prog {
namespace {

TEST(AssemblerDeath, HugeLiConstantIsFatal)
{
    Program p;
    Assembler a(p);
    EXPECT_EXIT(a.li(reg::t0, 1LL << 40),
                ::testing::ExitedWithCode(1), "exceeds 32 bits");
}

TEST(AssemblerDeath, EmitAfterFinalizePanics)
{
    Program p;
    Assembler a(p);
    a.halt();
    a.finalize();
    EXPECT_DEATH(a.nop(), "after finalize");
}

} // namespace
} // namespace prog
} // namespace dscalar
