/**
 * @file
 * SpanRecorder tests: the span tree, the lap-pattern phase
 * accumulators, the `profile` stats group, and the two contracts the
 * serving path leans on — a disabled recorder costs nothing (proven
 * by counting operator new calls) and an armed recorder never
 * perturbs a run (stats JSON byte-identical with and without spans).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "driver/run_request.hh"
#include "mini_json.hh"
#include "obs/span.hh"
#include "stats/snapshot.hh"

// --- allocation counting ------------------------------------------
// Replace the global allocator with a counting passthrough so tests
// can assert a code path allocates nothing. Counts every new/new[]
// in the whole binary; tests sample the counter around the region
// under test.

static std::atomic<std::uint64_t> g_new_calls{0};

void *
operator new(std::size_t size)
{
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace dscalar {
namespace {

TEST(SpanRecorder, TreeNestingAndLookup)
{
    obs::SpanRecorder rec;
    ASSERT_TRUE(rec.enabled());

    std::size_t outer = rec.begin("request");
    std::size_t inner = rec.begin("build");
    rec.end(inner);
    std::size_t inner2 = rec.begin("run");
    rec.end(inner2);
    rec.end(outer);

    ASSERT_EQ(rec.spans().size(), 3u);
    EXPECT_STREQ(rec.spans()[0].name, "request");
    EXPECT_EQ(rec.spans()[0].depth, 0u);
    EXPECT_EQ(rec.spans()[1].depth, 1u);
    EXPECT_EQ(rec.spans()[2].depth, 1u);
    for (const auto &span : rec.spans()) {
        EXPECT_FALSE(span.open);
    }
    // The outer span brackets both inner ones.
    EXPECT_GE(rec.spans()[0].durNs,
              rec.spans()[1].durNs + rec.spans()[2].durNs);
    // spanUs finds the first closed span by name (us granularity, so
    // just check it doesn't exceed the elapsed clock).
    EXPECT_LE(rec.spanUs("request"), rec.elapsedUs() + 1);
    EXPECT_EQ(rec.spanUs("no_such_span"), 0u);
}

TEST(SpanRecorder, RenameOpenSpan)
{
    obs::SpanRecorder rec;
    std::size_t h = rec.begin("trace_capture");
    rec.setName(h, "trace_cache_hit");
    rec.end(h);
    ASSERT_EQ(rec.spans().size(), 1u);
    EXPECT_STREQ(rec.spans()[0].name, "trace_cache_hit");
}

TEST(SpanRecorder, HeaderKeysClosedTopLevelOnly)
{
    obs::SpanRecorder rec;
    std::size_t a = rec.begin("build");
    std::size_t nested = rec.begin("inner");
    rec.end(nested);
    rec.end(a);
    std::size_t b = rec.begin("sim_run");
    rec.end(b);
    rec.begin("still_open");

    std::ostringstream os;
    rec.emitHeaderKeys(os);
    std::string out = os.str();
    EXPECT_NE(out.find("span_build_us = "), std::string::npos) << out;
    EXPECT_NE(out.find("span_sim_run_us = "), std::string::npos);
    EXPECT_EQ(out.find("span_inner_us"), std::string::npos)
        << "nested spans must not reach the reply header";
    EXPECT_EQ(out.find("still_open"), std::string::npos);
}

TEST(SpanRecorder, PhaseLapAccumulation)
{
    obs::SpanRecorder rec;
    unsigned tick = rec.addPhase("tick");
    unsigned barrier = rec.addPhase("barrier");
    ASSERT_EQ(rec.phaseCount(), 2u);

    rec.lapStart();
    rec.lap(tick);
    rec.lap(barrier);
    rec.lap(tick);

    EXPECT_STREQ(rec.phaseName(tick), "tick");
    EXPECT_STREQ(rec.phaseName(barrier), "barrier");
    EXPECT_EQ(rec.phaseTotalNs(),
              rec.phaseNs(tick) + rec.phaseNs(barrier));
    // Laps are contiguous: the sum can't exceed the recorder's
    // lifetime.
    EXPECT_LE(rec.phaseTotalNs(), rec.elapsedNs());
}

TEST(SpanRecorder, DisabledIsInert)
{
    obs::SpanRecorder rec(false);
    EXPECT_FALSE(rec.enabled());
    std::size_t h = rec.begin("x");
    rec.setName(h, "y");
    rec.end(h);
    EXPECT_TRUE(rec.spans().empty());
    EXPECT_EQ(rec.addPhase("tick"), 0u);
    rec.lapStart();
    rec.lap(0);
    EXPECT_EQ(rec.phaseCount(), 0u);
    EXPECT_EQ(rec.phaseTotalNs(), 0u);
    EXPECT_EQ(rec.elapsedNs(), 0u);

    std::ostringstream os;
    rec.emitHeaderKeys(os);
    EXPECT_TRUE(os.str().empty());
}

TEST(SpanRecorder, DisabledAllocatesNothing)
{
    obs::SpanRecorder rec(false);
    std::uint64_t before = g_new_calls.load();
    std::size_t h = rec.begin("x");
    rec.setName(h, "y");
    rec.end(h);
    unsigned p = rec.addPhase("tick");
    rec.lapStart();
    rec.lap(p);
    (void)rec.elapsedNs();
    (void)rec.phaseTotalNs();
    std::uint64_t after = g_new_calls.load();
    EXPECT_EQ(after - before, 0u)
        << "a disabled recorder must not allocate";
}

TEST(SpanRecorder, EnabledLapHotPathAllocatesNothing)
{
    obs::SpanRecorder rec;
    unsigned p = rec.addPhase("tick"); // allocates, outside the loop
    rec.lapStart();
    std::uint64_t before = g_new_calls.load();
    for (int i = 0; i < 1000; ++i)
        rec.lap(p);
    std::uint64_t after = g_new_calls.load();
    EXPECT_EQ(after - before, 0u)
        << "lap() is the run-loop hot path; it must not allocate";
}

TEST(SpanScope, NullRecorderIsSafe)
{
    obs::SpanScope scope(nullptr, "anything");
    scope.setName("renamed");
    // Destructor must be a no-op too; reaching here is the test.
}

TEST(ProfileGroup, SchemaAndValues)
{
    obs::SpanRecorder rec;
    unsigned tick = rec.addPhase("tick");
    rec.lapStart();
    rec.lap(tick);

    stats::Snapshot snap;
    obs::addProfileGroup(snap, rec, 5'000'000); // 5 ms
    ASSERT_EQ(snap.groups().size(), 1u);
    const stats::Snapshot::GroupEntry &g = snap.groups().front();
    EXPECT_EQ(g.name, "profile");
    ASSERT_EQ(g.group.statList().size(), 2u);
    EXPECT_EQ(g.group.statList()[0]->name(), "phase_tick_us");
    EXPECT_EQ(g.group.statList()[1]->name(), "total_us");

    std::ostringstream os;
    snap.dump(os);
    EXPECT_NE(os.str().find("total_us"), std::string::npos);
    EXPECT_NE(os.str().find("5000"), std::string::npos);
}

// --- determinism contract -----------------------------------------

driver::RunRequest
timingRequest(unsigned tickThreads = 1)
{
    driver::RunRequest req;
    req.workload = "go_s";
    req.system = driver::SystemKind::DataScalar;
    req.config.maxInsts = 2000;
    req.config.tickThreads = tickThreads;
    req.flightRecorder = true;
    return req;
}

TEST(SpanDeterminism, ArmedSpansDontPerturbStatsJson)
{
    // The dsserve case: a recorder rides along (req.spans) but
    // profile stays off. The stats JSON — the byte-compared serving
    // payload — must be identical to a span-free run.
    driver::RunRequest plain = timingRequest();
    driver::RunResponse base = driver::runOne(plain);
    ASSERT_TRUE(base.ok()) << base.error;

    obs::SpanRecorder rec;
    driver::RunRequest armed = timingRequest();
    armed.spans = &rec;
    driver::RunResponse spanned = driver::runOne(armed);
    ASSERT_TRUE(spanned.ok()) << spanned.error;

    EXPECT_EQ(base.statsJson(), spanned.statsJson());
    EXPECT_EQ(base.output, spanned.output);
    EXPECT_FALSE(rec.spans().empty())
        << "the armed recorder must actually have recorded spans";
    EXPECT_GT(rec.spanUs("sim_run") + 1, 0u);
}

/** Structural equality over mini_json values. */
bool
jsonEq(const mini_json::Value &a, const mini_json::Value &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case mini_json::Value::Null: return true;
      case mini_json::Value::Bool: return a.boolean == b.boolean;
      case mini_json::Value::Number: return a.raw == b.raw;
      case mini_json::Value::String: return a.str == b.str;
      case mini_json::Value::Array: {
        if (a.array.size() != b.array.size())
            return false;
        for (std::size_t i = 0; i < a.array.size(); ++i)
            if (!jsonEq(a.array[i], b.array[i]))
                return false;
        return true;
      }
      case mini_json::Value::Object: {
        if (a.object.size() != b.object.size())
            return false;
        for (std::size_t i = 0; i < a.object.size(); ++i)
            if (a.object[i].first != b.object[i].first ||
                !jsonEq(a.object[i].second, b.object[i].second))
                return false;
        return true;
      }
    }
    return false;
}

TEST(SpanDeterminism, ProfileAddsOnlyProfileGroupAndMetaKey)
{
    driver::RunRequest plain = timingRequest();
    driver::RunResponse base = driver::runOne(plain);
    ASSERT_TRUE(base.ok()) << base.error;

    driver::RunRequest prof = timingRequest();
    prof.profile = true;
    driver::RunResponse profiled = driver::runOne(prof);
    ASSERT_TRUE(profiled.ok()) << profiled.error;

    EXPECT_EQ(base.result.cycles, profiled.result.cycles);
    EXPECT_EQ(base.result.instructions, profiled.result.instructions);
    EXPECT_EQ(base.output, profiled.output);

    std::string err;
    mini_json::Value a = mini_json::parse(base.statsJson(), err);
    ASSERT_TRUE(err.empty()) << err;
    mini_json::Value b = mini_json::parse(profiled.statsJson(), err);
    ASSERT_TRUE(err.empty()) << err;

    const mini_json::Value *ga = a.find("groups");
    const mini_json::Value *gb = b.find("groups");
    ASSERT_NE(ga, nullptr);
    ASSERT_NE(gb, nullptr);
    EXPECT_EQ(ga->object.size() + 1, gb->object.size());
    EXPECT_NE(gb->find("profile"), nullptr)
        << "profile run must carry the profile group";
    EXPECT_EQ(ga->find("profile"), nullptr);
    for (const auto &kv : ga->object) {
        const mini_json::Value *other = gb->find(kv.first);
        ASSERT_NE(other, nullptr) << kv.first;
        EXPECT_TRUE(jsonEq(kv.second, *other))
            << "group '" << kv.first
            << "' changed when profiling was enabled";
    }

    // run_meta: identical apart from the added "profile" key.
    const mini_json::Value *ma = a.find("run_meta");
    const mini_json::Value *mb = b.find("run_meta");
    ASSERT_NE(ma, nullptr);
    ASSERT_NE(mb, nullptr);
    EXPECT_EQ(ma->object.size() + 1, mb->object.size());
    EXPECT_NE(mb->find("profile"), nullptr);
    for (const auto &kv : ma->object) {
        const mini_json::Value *other = mb->find(kv.first);
        ASSERT_NE(other, nullptr) << kv.first;
        EXPECT_TRUE(jsonEq(kv.second, *other)) << kv.first;
    }
}

// --- phase attribution --------------------------------------------

/** Pull groups.profile out of a stats JSON and check that the
 *  phase_* counters sum to total_us within 5% (plus a small absolute
 *  slack for very fast runs where single microseconds matter). */
void
checkPhaseSum(const std::string &json, const char *what)
{
    std::string err;
    mini_json::Value doc = mini_json::parse(json, err);
    ASSERT_TRUE(err.empty()) << err;
    const mini_json::Value *groups = doc.find("groups");
    ASSERT_NE(groups, nullptr);
    const mini_json::Value *profile = groups->find("profile");
    ASSERT_NE(profile, nullptr) << what;

    double phase_sum = 0.0;
    double total = -1.0;
    for (const auto &kv : profile->object) {
        const mini_json::Value *value = kv.second.find("value");
        ASSERT_NE(value, nullptr) << kv.first;
        if (kv.first == "total_us")
            total = value->number;
        else if (kv.first.rfind("phase_", 0) == 0)
            phase_sum += value->number;
    }
    ASSERT_GE(total, 0.0) << what << ": no total_us";
    double slack = total * 0.05 + 200.0;
    EXPECT_NEAR(phase_sum, total, slack)
        << what << ": phases must contiguously partition the loop";
}

TEST(PhaseProfile, SerialPhasesSumToTotal)
{
    driver::RunRequest req = timingRequest();
    req.profile = true;
    req.config.maxInsts = 5000;
    driver::RunResponse resp = driver::runOne(req);
    ASSERT_TRUE(resp.ok()) << resp.error;
    checkPhaseSum(resp.statsJson(), "serial datascalar");
    // Serial loop phase names.
    EXPECT_NE(resp.statsJson().find("phase_tick_us"),
              std::string::npos);
    EXPECT_NE(resp.statsJson().find("phase_delivery_us"),
              std::string::npos);
}

TEST(PhaseProfile, ParallelPhasesSumToTotal)
{
    driver::RunRequest req = timingRequest(2);
    req.profile = true;
    req.config.maxInsts = 5000;
    req.config.numNodes = 4;
    driver::RunResponse resp = driver::runOne(req);
    ASSERT_TRUE(resp.ok()) << resp.error;
    checkPhaseSum(resp.statsJson(), "parallel datascalar");
    EXPECT_NE(resp.statsJson().find("phase_barrier_us"),
              std::string::npos);
    EXPECT_NE(resp.statsJson().find("phase_setup_us"),
              std::string::npos);
}

TEST(PhaseProfile, BaselinePhasesSumToTotal)
{
    driver::RunRequest req = timingRequest();
    req.system = driver::SystemKind::Traditional;
    req.profile = true;
    req.config.maxInsts = 5000;
    driver::RunResponse resp = driver::runOne(req);
    ASSERT_TRUE(resp.ok()) << resp.error;
    checkPhaseSum(resp.statsJson(), "traditional baseline");
}

} // namespace
} // namespace dscalar
