/** @file Tests for the text-assembly frontend. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "func/func_sim.hh"
#include "prog/asm_parser.hh"

namespace dscalar {
namespace prog {
namespace {

func::FuncSim
runSource(const std::string &src)
{
    Program p = assembleSource(src);
    func::FuncSim sim(p);
    sim.run(1'000'000);
    EXPECT_TRUE(sim.halted());
    return sim;
}

TEST(AsmParser, ArithmeticAndOutput)
{
    auto sim = runSource(R"(
        li   t0, 6
        li   t1, 7
        mul  a0, t0, t1
        syscall 1
        halt
    )");
    EXPECT_EQ(sim.output(), "42\n");
}

TEST(AsmParser, LabelsAndLoops)
{
    auto sim = runSource(R"(
        li   s0, 5
        li   s1, 0
loop:   add  s1, s1, s0
        addi s0, s0, -1
        bne  s0, zero, loop
        move a0, s1
        syscall 1
        halt
    )");
    EXPECT_EQ(sim.output(), "15\n");
}

TEST(AsmParser, DataDirectivesAndMemory)
{
    auto sim = runSource(R"(
        .global vec, 64
        .word   vec, 0, 11
        .word   vec, 4, 31
        .dword  vec, 8, 1000

        la   s1, vec
        lw   t0, 0(s1)
        lw   t1, 4(s1)
        ld   t2, 8(s1)
        add  a0, t0, t1
        add  a0, a0, t2
        syscall 1
        sw   a0, 16(s1)
        halt
    )");
    EXPECT_EQ(sim.output(), "1042\n");
}

TEST(AsmParser, DoubleDirectiveAndFp)
{
    auto sim = runSource(R"(
        .global c, 16
        .double c, 0, 2.5
        .double c, 8, 4.0

        la    s1, c
        ld    t0, 0(s1)
        ld    t1, 8(s1)
        fmul  t2, t0, t1
        cvtfi a0, t2
        syscall 1
        halt
    )");
    EXPECT_EQ(sim.output(), "10\n");
}

TEST(AsmParser, SymbolPlusOffsetAndHeap)
{
    auto sim = runSource(R"(
        .heap  cell, 32
        .word  cell, 12, 77
        la     s1, cell+12
        lw     a0, 0(s1)
        syscall 1
        halt
    )");
    EXPECT_EQ(sim.output(), "77\n");
}

TEST(AsmParser, CommentsAndBlankLines)
{
    auto sim = runSource(R"(
        ; full-line comment
        # another comment style

        li a0, 9   ; trailing comment
        syscall 1  # trailing comment
        halt
    )");
    EXPECT_EQ(sim.output(), "9\n");
}

TEST(AsmParser, JumpAndLink)
{
    auto sim = runSource(R"(
        li   t0, 1
        jal  fn
        addi t0, t0, 10
        move a0, t0
        syscall 1
        halt
fn:     addi t0, t0, 100
        jr   ra
    )");
    EXPECT_EQ(sim.output(), "111\n");
}

TEST(AsmParser, ByteOps)
{
    auto sim = runSource(R"(
        .global s, 16
        .word   s, 0, 0x636261   ; "abc"
        la   s1, s
        lbu  t0, 1(s1)
        sb   t0, 8(s1)
        lbu  a0, 8(s1)
        syscall 1
        halt
    )");
    EXPECT_EQ(sim.output(), "98\n"); // 'b'
}

TEST(AsmParser, MultipleLabelsOneLine)
{
    auto sim = runSource(R"(
        li a0, 3
a1: a2: syscall 1
        halt
    )");
    EXPECT_EQ(sim.output(), "3\n");
}

TEST(AsmParserDeath, UnknownMnemonic)
{
    EXPECT_EXIT(assembleSource("frobnicate t0, t1\nhalt\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(AsmParserDeath, BadRegister)
{
    EXPECT_EXIT(assembleSource("add r99, t0, t1\nhalt\n"),
                ::testing::ExitedWithCode(1), "bad register");
}

TEST(AsmParserDeath, UnknownSymbol)
{
    EXPECT_EXIT(assembleSource("la t0, nothere\nhalt\n"),
                ::testing::ExitedWithCode(1), "unknown symbol");
}

TEST(AsmParserDeath, WrongOperandCount)
{
    EXPECT_EXIT(assembleSource("add t0, t1\nhalt\n"),
                ::testing::ExitedWithCode(1), "expects 3");
}

TEST(AsmParserDeath, ErrorsCarryLineNumbers)
{
    EXPECT_EXIT(assembleSource("nop\nnop\nbogus\n"),
                ::testing::ExitedWithCode(1), "line 3");
}

TEST(AsmParser, AssembleFileRoundTrip)
{
    std::string path = ::testing::TempDir() + "/dsasm_test.s";
    {
        std::ofstream out(path);
        out << "li a0, 123\nsyscall 1\nhalt\n";
    }
    Program p = assembleFile(path);
    func::FuncSim sim(p);
    sim.run(100);
    EXPECT_EQ(sim.output(), "123\n");
    std::remove(path.c_str());
}

TEST(AsmParserDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(assembleFile("/nonexistent/nope.s"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(AsmParser, RegisterAliasesMatchNumbers)
{
    auto sim = runSource(R"(
        li   r8, 5
        move a0, t0    ; t0 == r8
        syscall 1
        halt
    )");
    EXPECT_EQ(sim.output(), "5\n");
}

} // namespace
} // namespace prog
} // namespace dscalar
