/** @file Tests for the experiment driver (Tables 1-2 machinery). */

#include <gtest/gtest.h>

#include "driver/driver.hh"
#include "prog/assembler.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace driver {
namespace {

using namespace prog::reg;
using prog::Assembler;
using prog::Program;

TEST(PaperConfig, MatchesSection42)
{
    core::SimConfig cfg = paperConfig();
    EXPECT_EQ(cfg.core.issueWidth, 8u);
    EXPECT_EQ(cfg.core.ruuEntries, 256u);
    EXPECT_EQ(cfg.core.lsqEntries, 128u);
    EXPECT_EQ(cfg.core.dcache.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.core.dcache.assoc, 1u);
    EXPECT_FALSE(cfg.core.dcache.writeAllocate);
    EXPECT_TRUE(cfg.core.icache.writeAllocate);
    EXPECT_EQ(cfg.mem.accessLatency, 8u);
    EXPECT_EQ(cfg.bus.widthBytes, 8u);
    EXPECT_EQ(cfg.bus.clockDivisor, 10u);
    EXPECT_EQ(cfg.bus.interfacePenalty, 2u);
    EXPECT_EQ(cfg.bshrCapacity, 128u);
}

TEST(ProfilePages, CountsHotPages)
{
    Program p;
    Addr hot = p.allocGlobal(prog::pageSize);
    Addr cold = p.allocGlobal(prog::pageSize);
    Assembler a(p);
    a.la(s1, hot);
    a.la(s2, cold);
    a.li(s0, 100);
    a.label("loop");
    a.lw(t0, s1, 0);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.lw(t0, s2, 0);
    a.halt();
    a.finalize();

    core::PageHeat heat = profilePages(p);
    EXPECT_GT(heat[prog::pageBase(hot)], 50u);
    EXPECT_EQ(heat[prog::pageBase(cold)], 1u);
    // Text pages counted too.
    EXPECT_GT(heat[prog::pageBase(p.textBaseAddr())], 100u);
}

TEST(TrafficResultTest, Fractions)
{
    TrafficResult t;
    t.requests = 10;
    t.requestBytes = 80;
    t.responses = 10;
    t.responseBytes = 400;
    t.writeBacks = 5;
    t.writeBackBytes = 200;
    EXPECT_DOUBLE_EQ(t.bytesEliminated(), 280.0 / 680.0);
    EXPECT_DOUBLE_EQ(t.transactionsEliminated(), 15.0 / 25.0);
}

TEST(MeasureEspTraffic, ReadOnlyStreamEliminatesHalfTransactions)
{
    // Pure read misses: request+response per miss; ESP removes the
    // requests = exactly half the transactions.
    Program p;
    Addr g = p.allocGlobal(256 * 1024);
    Assembler a(p);
    a.la(s1, g);
    a.li(s0, 4096);
    a.label("loop");
    a.lw(t0, s1, 0);
    a.addi(s1, s1, 64); // new line every access
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();

    TrafficResult t = measureEspTraffic(p);
    EXPECT_EQ(t.requests, t.responses);
    EXPECT_EQ(t.writeBacks, 0u);
    EXPECT_DOUBLE_EQ(t.transactionsEliminated(), 0.5);
    // Bytes: 8/(8+40) per pair.
    EXPECT_NEAR(t.bytesEliminated(), 8.0 / 48.0, 1e-9);
}

TEST(MeasureEspTraffic, DirtyDataRaisesElimination)
{
    // Read+write the same streaming data: write-backs add eliminated
    // traffic, so elimination exceeds the read-only case.
    Program p;
    Addr g = p.allocGlobal(512 * 1024);
    Assembler a(p);
    a.la(s1, g);
    a.li(s0, 8192);
    a.label("loop");
    a.lw(t0, s1, 0);
    a.sw(t0, s1, 4);
    a.addi(s1, s1, 64);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();

    TrafficResult t = measureEspTraffic(p);
    EXPECT_GT(t.writeBacks, 0u);
    EXPECT_GT(t.transactionsEliminated(), 0.5);
    EXPECT_GT(t.bytesEliminated(), 8.0 / 48.0);
}

TEST(RunCounterTest, MeanRunLength)
{
    RunCounter c;
    for (NodeId n : {0, 0, 0, 1, 1, 2})
        c.feed(n);
    EXPECT_EQ(c.refs(), 6u);
    EXPECT_EQ(c.runs(), 3u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunCounterTest, EmptyIsZero)
{
    RunCounter c;
    EXPECT_DOUBLE_EQ(c.mean(), 0.0);
    EXPECT_EQ(c.runs(), 0u);
}

TEST(MeasureDatathreads, SequentialStreamHasLongThreads)
{
    // Sequential misses walk pages in order: with block size 4,
    // runs should span multiple pages of consecutive misses.
    Program p;
    Addr g = p.allocGlobal(32 * prog::pageSize);
    Assembler a(p);
    a.la(s1, g);
    a.li(s0, static_cast<std::int32_t>(32 * prog::pageSize / 64));
    a.label("loop");
    a.lw(t0, s1, 0);
    a.addi(s1, s1, 64);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();

    core::DistributionConfig dist;
    dist.numNodes = 4;
    dist.blockPages = 4;
    core::ReplicationReport rep;
    mem::PageTable table =
        core::buildPageTable(p, dist, nullptr, &rep);
    DatathreadResult r = measureDatathreads(p, table, rep);

    // 4 pages x 128 misses per page per node-run.
    EXPECT_GT(r.meanData, 100.0);
    // Text is replicated: no text entries in the communicated runs.
    EXPECT_EQ(r.meanText, 0.0);
    EXPECT_GT(r.missRefs, 0u);
}

TEST(MeasureDatathreads, InterleavedStreamsShortenThreads)
{
    // a[i] + b[i] across arrays owned by different nodes.
    Program p;
    constexpr unsigned pages = 8;
    Addr x = p.allocGlobal(pages * prog::pageSize);
    // One pad page shifts y's round-robin phase so that x[i] and
    // y[i] always land on opposite owners.
    p.allocGlobal(prog::pageSize);
    Addr y = p.allocGlobal(pages * prog::pageSize);
    Assembler a(p);
    a.la(s1, x);
    a.la(s2, y);
    a.li(s0, static_cast<std::int32_t>(pages * prog::pageSize / 64));
    a.label("loop");
    a.lw(t0, s1, 0);
    a.lw(t1, s2, 0);
    a.addi(s1, s1, 64);
    a.addi(s2, s2, 64);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();

    core::DistributionConfig dist;
    dist.numNodes = 2;
    dist.blockPages = 1;
    // Round-robin with block 1: x page i and y page i land on
    // different owners whenever their page parity differs.
    core::ReplicationReport rep;
    mem::PageTable table =
        core::buildPageTable(p, dist, nullptr, &rep);
    DatathreadResult interleaved = measureDatathreads(p, table, rep);
    EXPECT_GT(interleaved.missRefs, 0u);
    EXPECT_LT(interleaved.meanData, 100.0);
}

TEST(Figure7PageTable, TextReplicatedNoDataReplication)
{
    prog::Program p = workloads::findWorkload("go_s").build(1);
    mem::PageTable table = figure7PageTable(p, 4);
    EXPECT_TRUE(table.isReplicated(p.textBaseAddr()));
    EXPECT_FALSE(table.isReplicated(prog::globalBase));
}

} // namespace
} // namespace driver
} // namespace dscalar
