/** @file Unit tests for the Broadcast Status Holding Registers. */

#include <gtest/gtest.h>

#include "core/bshr.hh"

namespace dscalar {
namespace core {
namespace {

constexpr Addr lineA = 0x1000;
constexpr Addr lineB = 0x2000;

TEST(Bshr, RequestThenDeliverWakesWaiter)
{
    Bshr b(1, 128);
    Cycle ready = 0;
    EXPECT_EQ(b.requestLine(lineA, 10, ready), Bshr::Lookup::Waiting);
    EXPECT_EQ(b.occupancy(), 1u);
    EXPECT_EQ(b.deliver(lineA, 50, ready), Bshr::Deliver::WokeWaiter);
    EXPECT_EQ(ready, 51u); // + latency
    EXPECT_EQ(b.occupancy(), 0u);
    EXPECT_TRUE(b.drained());
}

TEST(Bshr, DeliverThenRequestFindsBuffered)
{
    Bshr b(2, 128);
    Cycle ready = 0;
    EXPECT_EQ(b.deliver(lineA, 10, ready), Bshr::Deliver::Buffered);
    EXPECT_EQ(b.occupancy(), 1u);
    EXPECT_EQ(b.requestLine(lineA, 30, ready),
              Bshr::Lookup::FoundBuffered);
    EXPECT_EQ(ready, 32u);
    EXPECT_TRUE(b.drained());
    EXPECT_EQ(b.bshrStats().bufferedHits, 1u);
}

TEST(Bshr, SquashBufferedImmediately)
{
    Bshr b(1, 128);
    Cycle ready = 0;
    b.deliver(lineA, 0, ready);
    EXPECT_TRUE(b.registerSquash(lineA));
    EXPECT_EQ(b.bshrStats().squashes, 1u);
    EXPECT_TRUE(b.drained());
}

TEST(Bshr, SquashPendingDropsNextDelivery)
{
    Bshr b(1, 128);
    Cycle ready = 0;
    EXPECT_FALSE(b.registerSquash(lineA)); // nothing buffered yet
    EXPECT_FALSE(b.drained());
    EXPECT_EQ(b.deliver(lineA, 5, ready), Bshr::Deliver::Squashed);
    EXPECT_TRUE(b.drained());
}

TEST(Bshr, SquashPriorityOverWaiter)
{
    // A pending squash (committed business) consumes the next
    // delivery before a newer waiter does.
    Bshr b(1, 128);
    Cycle ready = 0;
    b.registerSquash(lineA);
    b.requestLine(lineA, 0, ready);
    EXPECT_EQ(b.deliver(lineA, 10, ready), Bshr::Deliver::Squashed);
    EXPECT_EQ(b.deliver(lineA, 20, ready), Bshr::Deliver::WokeWaiter);
    EXPECT_TRUE(b.drained());
}

TEST(Bshr, LinesAreIndependent)
{
    Bshr b(1, 128);
    Cycle ready = 0;
    b.requestLine(lineA, 0, ready);
    EXPECT_EQ(b.deliver(lineB, 5, ready), Bshr::Deliver::Buffered);
    EXPECT_EQ(b.occupancy(), 2u);
    EXPECT_EQ(b.deliver(lineA, 6, ready), Bshr::Deliver::WokeWaiter);
    EXPECT_EQ(b.requestLine(lineB, 7, ready),
              Bshr::Lookup::FoundBuffered);
    EXPECT_TRUE(b.drained());
}

TEST(Bshr, OccupancyStatsTrackPeak)
{
    Bshr b(1, 2); // tiny capacity for overflow accounting
    Cycle ready = 0;
    b.deliver(0x100, 0, ready);
    b.deliver(0x200, 0, ready);
    b.deliver(0x300, 0, ready); // above capacity
    EXPECT_EQ(b.bshrStats().maxOccupancy, 3u);
    EXPECT_GE(b.bshrStats().overflowEvents, 1u);
}

TEST(Bshr, AccessesCountBothSides)
{
    Bshr b(1, 128);
    Cycle ready = 0;
    b.requestLine(lineA, 0, ready); // waiter alloc
    b.deliver(lineA, 1, ready);     // delivery
    b.deliver(lineB, 2, ready);     // delivery (buffered)
    b.requestLine(lineB, 3, ready); // buffered hit
    EXPECT_EQ(b.bshrStats().accesses(), 4u);
}

TEST(Bshr, FifoCountsPerLine)
{
    // Two buffered deliveries of the same line serve two requests.
    Bshr b(1, 128);
    Cycle ready = 0;
    b.deliver(lineA, 0, ready);
    b.deliver(lineA, 1, ready);
    EXPECT_EQ(b.occupancy(), 2u);
    EXPECT_EQ(b.requestLine(lineA, 2, ready),
              Bshr::Lookup::FoundBuffered);
    EXPECT_EQ(b.requestLine(lineA, 3, ready),
              Bshr::Lookup::FoundBuffered);
    EXPECT_TRUE(b.drained());
}

} // namespace
} // namespace core
} // namespace dscalar
