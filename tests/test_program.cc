/** @file Unit tests for the program image and address-space layout. */

#include <gtest/gtest.h>

#include <cstring>

#include "prog/layout.hh"
#include "prog/program.hh"

namespace dscalar {
namespace prog {
namespace {

TEST(Layout, SegmentClassification)
{
    EXPECT_EQ(segmentOf(0x0), Segment::PageTable);
    EXPECT_EQ(segmentOf(textBase), Segment::Text);
    EXPECT_EQ(segmentOf(globalBase), Segment::Global);
    EXPECT_EQ(segmentOf(heapBase), Segment::Heap);
    EXPECT_EQ(segmentOf(stackTop - 8), Segment::Stack);
}

TEST(Layout, PageBase)
{
    EXPECT_EQ(pageBase(0), 0u);
    EXPECT_EQ(pageBase(pageSize - 1), 0u);
    EXPECT_EQ(pageBase(pageSize), pageSize);
    EXPECT_EQ(pageBase(pageSize + 1), pageSize);
}

TEST(Program, GlobalAllocationSequentialAndAligned)
{
    Program p;
    Addr a1 = p.allocGlobal(100, 8);
    Addr a2 = p.allocGlobal(100, 64);
    EXPECT_EQ(a1, globalBase);
    EXPECT_EQ(a2 % 64, 0u);
    EXPECT_GE(a2, a1 + 100);
}

TEST(Program, HeapAllocationSeparateFromGlobal)
{
    Program p;
    Addr g = p.allocGlobal(16);
    Addr h = p.allocHeap(16);
    EXPECT_EQ(segmentOf(g), Segment::Global);
    EXPECT_EQ(segmentOf(h), Segment::Heap);
}

TEST(Program, PokePeekRoundTrip)
{
    Program p;
    Addr g = p.allocGlobal(64);
    p.poke64(g, 0x0123456789abcdefULL);
    EXPECT_EQ(p.peek64(g), 0x0123456789abcdefULL);
    p.poke32(g + 8, 0xcafebabe);
    EXPECT_EQ(p.peek64(g + 8) & 0xffffffff, 0xcafebabeULL);
    p.pokeDouble(g + 16, 2.5);
    double d;
    std::uint64_t bits = p.peek64(g + 16);
    std::memcpy(&d, &bits, 8);
    EXPECT_DOUBLE_EQ(d, 2.5);
}

TEST(Program, TextAppendsSequentially)
{
    Program p;
    Addr a1 = p.appendText(0x11111111);
    Addr a2 = p.appendText(0x22222222);
    EXPECT_EQ(a2, a1 + 4);
    EXPECT_EQ(p.textWord(0), 0x11111111u);
    EXPECT_EQ(p.textWord(1), 0x22222222u);
    EXPECT_EQ(p.textLimit(), textBase + 8);
}

TEST(Program, TouchedPagesCoverAllSegments)
{
    Program p;
    p.appendText(0);
    p.allocGlobal(3 * pageSize);
    p.allocHeap(16);
    auto pages = p.touchedPages();

    EXPECT_GE(p.pagesInSegment(Segment::Text), 1u);
    EXPECT_GE(p.pagesInSegment(Segment::Global), 3u);
    EXPECT_GE(p.pagesInSegment(Segment::Heap), 1u);
    EXPECT_EQ(p.pagesInSegment(Segment::Stack),
              defaultStackSize / pageSize);

    // Pages are page-aligned, unique, and sorted.
    for (std::size_t i = 0; i < pages.size(); ++i) {
        EXPECT_EQ(pages[i] % pageSize, 0u);
        if (i > 0) {
            EXPECT_LT(pages[i - 1], pages[i]);
        }
    }
}

TEST(Program, StackPointerInsideStack)
{
    Program p;
    EXPECT_GT(p.initialSp(), p.stackBase());
    EXPECT_LT(p.initialSp(), stackTop);
}

} // namespace
} // namespace prog
} // namespace dscalar

namespace dscalar {
namespace prog {
namespace {

TEST(ProgramDeath, GlobalSegmentOverflowIsFatal)
{
    Program p;
    EXPECT_EXIT(p.allocGlobal(0x1000'0000ULL + pageSize),
                ::testing::ExitedWithCode(1), "overflow");
}

TEST(ProgramDeath, MisalignedAllocationIsFatal)
{
    Program p;
    EXPECT_DEATH(p.allocGlobal(64, 3), "power of two");
}

} // namespace
} // namespace prog
} // namespace dscalar
