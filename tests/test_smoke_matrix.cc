/** @file
 * Broad smoke matrix: every registered workload through every
 * timing system at a small instruction budget — the cheapest way to
 * catch regressions in corners the focused tests don't reach
 * (unusual miss mixes, indirect jumps, byte traffic, big text).
 */

#include <gtest/gtest.h>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace {

constexpr InstSeq kBudget = 15'000;

class SmokeMatrixTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    prog::Program program_ =
        workloads::findWorkload(GetParam()).build(1);
};

TEST_P(SmokeMatrixTest, PerfectSystem)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    core::RunResult r = driver::runPerfect(program_, cfg);
    EXPECT_EQ(r.instructions, kBudget);
    EXPECT_GT(r.ipc, 0.0);
}

TEST_P(SmokeMatrixTest, TraditionalSystem)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = kBudget;
    cfg.numNodes = 4;
    core::RunResult r = driver::runTraditional(program_, cfg);
    EXPECT_EQ(r.instructions, kBudget);
}

TEST_P(SmokeMatrixTest, DataScalarBusAndRing)
{
    for (auto kind : {core::InterconnectKind::Bus,
                      core::InterconnectKind::Ring}) {
        core::SimConfig cfg = driver::paperConfig();
        cfg.maxInsts = kBudget;
        cfg.numNodes = 4;
        cfg.interconnect = kind;
        core::DataScalarSystem sys(
            program_, cfg, driver::figure7PageTable(program_, 4));
        core::RunResult r = sys.run();
        EXPECT_EQ(r.instructions, kBudget);
        EXPECT_TRUE(sys.protocolDrained()) << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SmokeMatrixTest,
    ::testing::Values("tomcatv_s", "swim_s", "hydro2d_s", "mgrid_s",
                      "applu_s", "m88ksim_s", "turb3d_s", "gcc_s",
                      "compress_s", "li_s", "perl_s", "fpppp_s",
                      "wave5_s", "go_s"));

} // namespace
} // namespace dscalar
