/** @file Unit tests for the DataScalar page table. */

#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace dscalar {
namespace mem {
namespace {

TEST(PageTable, UnregisteredPagesAreReplicated)
{
    PageTable t(4);
    EXPECT_TRUE(t.isReplicated(0xdead0000));
    EXPECT_TRUE(t.isLocal(0xdead0000, 3));
}

TEST(PageTable, OwnedPageLocalOnlyToOwner)
{
    PageTable t(4);
    Addr page = 2 * prog::pageSize;
    t.setOwned(page, 2);
    EXPECT_FALSE(t.isReplicated(page));
    EXPECT_EQ(t.owner(page), 2u);
    EXPECT_TRUE(t.isLocal(page, 2));
    EXPECT_FALSE(t.isLocal(page, 0));
    EXPECT_FALSE(t.isLocal(page + 100, 1)); // same page, any offset
    EXPECT_TRUE(t.isLocal(page + 100, 2));
}

TEST(PageTable, ReplicatedPageLocalEverywhere)
{
    PageTable t(4);
    Addr page = 5 * prog::pageSize;
    t.setReplicated(page);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_TRUE(t.isLocal(page + 8, n));
}

TEST(PageTable, Reassignment)
{
    PageTable t(2);
    Addr page = prog::pageSize;
    t.setOwned(page, 0);
    t.setOwned(page, 1);
    EXPECT_EQ(t.owner(page), 1u);
    t.setReplicated(page);
    EXPECT_TRUE(t.isReplicated(page));
    EXPECT_EQ(t.entryCount(), 1u);
}

TEST(PageTable, Counts)
{
    PageTable t(2);
    t.setOwned(0 * prog::pageSize, 0);
    t.setOwned(1 * prog::pageSize, 1);
    t.setOwned(2 * prog::pageSize, 1);
    t.setReplicated(3 * prog::pageSize);
    EXPECT_EQ(t.ownedPageCount(0), 1u);
    EXPECT_EQ(t.ownedPageCount(1), 2u);
    EXPECT_EQ(t.replicatedPageCount(), 1u);
}

TEST(PageTableDeath, MisalignedPagePanics)
{
    PageTable t(2);
    EXPECT_DEATH(t.setOwned(123, 0), "not a page base");
}

TEST(PageTableDeath, BadOwnerPanics)
{
    PageTable t(2);
    EXPECT_DEATH(t.setOwned(prog::pageSize, 7), "out of range");
}

} // namespace
} // namespace mem
} // namespace dscalar
