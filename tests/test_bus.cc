/** @file Unit tests for the global bus model. */

#include <gtest/gtest.h>

#include "interconnect/bus.hh"

namespace dscalar {
namespace interconnect {
namespace {

BusParams
params(unsigned width, Cycle divisor, Cycle ni)
{
    BusParams p;
    p.widthBytes = width;
    p.clockDivisor = divisor;
    p.headerBytes = 8;
    p.interfacePenalty = ni;
    return p;
}

TEST(Bus, MessageBytesByKind)
{
    EXPECT_EQ(messageBytes(MsgKind::Request, 32, 8), 8u);
    EXPECT_EQ(messageBytes(MsgKind::Broadcast, 32, 8), 40u);
    EXPECT_EQ(messageBytes(MsgKind::Response, 32, 8), 40u);
    EXPECT_EQ(messageBytes(MsgKind::WriteBack, 32, 8), 40u);
}

TEST(Bus, OccupancyCalculation)
{
    Bus bus(params(8, 10, 2));
    // 40 bytes on an 8-byte bus = 5 bus clocks = 50 core cycles.
    EXPECT_EQ(bus.occupancyCycles(40), 50u);
    EXPECT_EQ(bus.occupancyCycles(1), 10u);
    EXPECT_EQ(bus.occupancyCycles(8), 10u);
    EXPECT_EQ(bus.occupancyCycles(9), 20u);
}

TEST(Bus, SingleBroadcastDeliveryTime)
{
    Bus bus(params(8, 10, 2));
    // Ready at 100, +2 interface, +50 transfer.
    EXPECT_EQ(bus.send(MsgKind::Broadcast, 32, 100), 152u);
}

TEST(Bus, BackToBackMessagesSerialize)
{
    Bus bus(params(8, 10, 0));
    Cycle d1 = bus.send(MsgKind::Broadcast, 32, 0);
    Cycle d2 = bus.send(MsgKind::Broadcast, 32, 0);
    EXPECT_EQ(d1, 50u);
    EXPECT_EQ(d2, 100u); // waits for the bus
    EXPECT_EQ(bus.busyCycles(), 100u);
}

TEST(Bus, IdleGapDoesNotAccumulate)
{
    Bus bus(params(8, 10, 0));
    bus.send(MsgKind::Request, 32, 0);  // 8 B header: 10 cycles
    Cycle d = bus.send(MsgKind::Request, 32, 1000);
    EXPECT_EQ(d, 1010u);
    EXPECT_EQ(bus.busyCycles(), 20u);
}

TEST(Bus, TrafficAccounting)
{
    Bus bus(params(8, 10, 2));
    bus.send(MsgKind::Broadcast, 32, 0);
    bus.send(MsgKind::Request, 32, 0);
    bus.send(MsgKind::Response, 32, 0);
    bus.send(MsgKind::WriteBack, 32, 0);
    bus.send(MsgKind::WriteBack, 32, 0);
    EXPECT_EQ(bus.totalMessages(), 5u);
    EXPECT_EQ(bus.messagesOf(MsgKind::WriteBack), 2u);
    EXPECT_EQ(bus.bytesOf(MsgKind::Request), 8u);
    EXPECT_EQ(bus.bytesOf(MsgKind::Broadcast), 40u);
    EXPECT_EQ(bus.totalBytes(), 40u + 8 + 40 + 40 + 40);
}

TEST(Bus, WiderBusIsFaster)
{
    Bus narrow(params(2, 10, 0));
    Bus wide(params(32, 10, 0));
    EXPECT_GT(narrow.send(MsgKind::Broadcast, 32, 0),
              wide.send(MsgKind::Broadcast, 32, 0));
}

TEST(Bus, MessageKindNames)
{
    EXPECT_STREQ(msgKindName(MsgKind::Broadcast), "broadcast");
    EXPECT_STREQ(msgKindName(MsgKind::ReparativeBroadcast),
                 "reparative");
    EXPECT_STREQ(msgKindName(MsgKind::Request), "request");
    EXPECT_STREQ(msgKindName(MsgKind::Response), "response");
    EXPECT_STREQ(msgKindName(MsgKind::WriteBack), "writeback");
    EXPECT_STREQ(msgKindName(MsgKind::Write), "write");
}

TEST(BusDeath, BadParamsAreFatal)
{
    EXPECT_EXIT(Bus(params(0, 10, 0)), ::testing::ExitedWithCode(1),
                "width");
    EXPECT_EXIT(Bus(params(8, 0, 0)), ::testing::ExitedWithCode(1),
                "divisor");
}

} // namespace
} // namespace interconnect
} // namespace dscalar
