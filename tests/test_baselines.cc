/** @file Tests for the traditional and perfect-cache baselines. */

#include <gtest/gtest.h>

#include "baseline/perfect.hh"
#include "baseline/traditional.hh"
#include "driver/driver.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace baseline {
namespace {

using namespace prog::reg;
using prog::Assembler;
using prog::Program;

Program
streamProgram(unsigned data_pages)
{
    Program p;
    Addr g = p.allocGlobal(data_pages * prog::pageSize);
    for (Addr off = 0; off < data_pages * prog::pageSize; off += 32)
        p.poke64(g + off, off);

    Assembler a(p);
    a.la(s1, g);
    a.li(s2, 0);
    a.li(s0, static_cast<std::int32_t>(data_pages * prog::pageSize / 8));
    a.label("loop");
    a.ld(t0, s1, 0);
    a.add(s2, s2, t0);
    a.sd(s2, s1, 0);
    a.addi(s1, s1, 8);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

TEST(Traditional, RunsToCompletion)
{
    Program p = streamProgram(8);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    TraditionalSystem sys(p, cfg, driver::figure7PageTable(p, 2));
    core::RunResult r = sys.run();
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(sys.core().committedSeq(), r.instructions);
}

TEST(Traditional, OffChipTrafficUsesRequestResponse)
{
    Program p = streamProgram(8);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    TraditionalSystem sys(p, cfg, driver::figure7PageTable(p, 2));
    sys.run();

    using interconnect::MsgKind;
    // Requests and responses pair up.
    EXPECT_EQ(sys.bus().messagesOf(MsgKind::Request),
              sys.bus().messagesOf(MsgKind::Response));
    EXPECT_GT(sys.bus().messagesOf(MsgKind::Request), 0u);
    // Never broadcasts.
    EXPECT_EQ(sys.bus().messagesOf(MsgKind::Broadcast), 0u);
    // Streaming stores beyond the cache generate off-chip writes.
    EXPECT_GT(sys.offChipWrites(), 0u);
}

TEST(Traditional, MoreMemoryOnChipIsFaster)
{
    Program p = streamProgram(8);
    core::SimConfig cfg = driver::paperConfig();
    // 1/2 on-chip vs 1/4 on-chip.
    TraditionalSystem half(p, cfg, driver::figure7PageTable(p, 2));
    TraditionalSystem quarter(p, cfg, driver::figure7PageTable(p, 4));
    core::RunResult rh = half.run();
    core::RunResult rq = quarter.run();
    EXPECT_EQ(rh.instructions, rq.instructions);
    EXPECT_LT(rh.cycles, rq.cycles);
}

TEST(Perfect, FasterThanTraditional)
{
    Program p = streamProgram(4);
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::RunResult perfect = driver::runPerfect(p, cfg);
    core::RunResult trad = driver::runTraditional(p, cfg);
    EXPECT_EQ(perfect.instructions, trad.instructions);
    EXPECT_LT(perfect.cycles, trad.cycles);
}

TEST(Perfect, IpcBoundedByWidth)
{
    Program p = streamProgram(2);
    core::SimConfig cfg = driver::paperConfig();
    core::RunResult r = driver::runPerfect(p, cfg);
    EXPECT_LE(r.ipc, cfg.core.issueWidth);
    EXPECT_GT(r.ipc, 0.5);
}

TEST(Perfect, TruncationHonoursBudget)
{
    Program p = streamProgram(4);
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = 1234;
    core::RunResult r = driver::runPerfect(p, cfg);
    EXPECT_EQ(r.instructions, 1234u);
}

} // namespace
} // namespace baseline
} // namespace dscalar
