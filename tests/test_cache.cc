/** @file Unit tests for the set-associative cache tag model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace dscalar {
namespace mem {
namespace {

CacheParams
smallCache(unsigned assoc, bool write_alloc)
{
    // 4 sets x assoc x 32 B lines.
    return CacheParams{static_cast<std::uint64_t>(4 * assoc * 32), assoc,
                       32, write_alloc};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache(1, true));
    EXPECT_FALSE(c.probe(0x100));
    auto r = c.access(0x100, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.allocated);
    EXPECT_FALSE(r.evicted);
    EXPECT_TRUE(c.probe(0x100));
    EXPECT_TRUE(c.access(0x100, false).hit);
    // Same line, different offset.
    EXPECT_TRUE(c.access(0x11f, false).hit);
    // Next line misses.
    EXPECT_FALSE(c.access(0x120, false).hit);
}

TEST(Cache, DirectMappedConflictEviction)
{
    Cache c(smallCache(1, true)); // 4 sets * 32 B
    c.access(0x000, false);
    // 0x080 maps to the same set (4 sets x 32 B = 128 B period).
    auto r = c.access(0x080, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victimAddr, 0x000u);
    EXPECT_FALSE(r.victimDirty);
    EXPECT_FALSE(c.probe(0x000));
}

TEST(Cache, DirtyVictimReported)
{
    Cache c(smallCache(1, true));
    c.access(0x000, true); // write-allocate makes it dirty
    auto r = c.access(0x080, false);
    EXPECT_TRUE(r.evicted);
    EXPECT_TRUE(r.victimDirty);
    EXPECT_EQ(r.victimAddr, 0x000u);
}

TEST(Cache, WriteNoAllocateBypassesOnMiss)
{
    Cache c(smallCache(1, false));
    auto r = c.access(0x100, true);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.allocated);
    EXPECT_FALSE(c.probe(0x100));
    // A write *hit* still dirties the line.
    c.access(0x100, false);
    c.access(0x100, true);
    EXPECT_TRUE(c.probeDirty(0x100));
}

TEST(Cache, LruReplacementInSet)
{
    Cache c(smallCache(2, true)); // 2-way
    // Three lines mapping to set 0 (period = 4 sets * 32 B = 128 B).
    c.access(0x000, false);
    c.access(0x100, false);
    c.access(0x000, false); // touch to make 0x100 the LRU
    auto r = c.access(0x200, false);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victimAddr, 0x100u);
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_TRUE(c.probe(0x200));
}

TEST(Cache, ProbeDoesNotDisturbLru)
{
    Cache c(smallCache(2, true));
    c.access(0x000, false);
    c.access(0x100, false);
    // Probing 0x000 must NOT make it MRU.
    EXPECT_TRUE(c.probe(0x000));
    auto r = c.access(0x200, false);
    EXPECT_EQ(r.victimAddr, 0x000u);
}

TEST(Cache, InvalidateAndFlush)
{
    Cache c(smallCache(2, true));
    c.access(0x000, true);
    EXPECT_TRUE(c.invalidate(0x000));
    EXPECT_FALSE(c.invalidate(0x000));
    EXPECT_FALSE(c.probe(0x000));
    c.access(0x100, false);
    c.access(0x200, false);
    EXPECT_EQ(c.validLineCount(), 2u);
    c.flush();
    EXPECT_EQ(c.validLineCount(), 0u);
}

TEST(Cache, LineAlign)
{
    Cache c(smallCache(1, true));
    EXPECT_EQ(c.lineAlign(0x11f), 0x100u);
    EXPECT_EQ(c.lineAlign(0x120), 0x120u);
}

TEST(CacheDeath, BadGeometryIsFatal)
{
    EXPECT_EXIT(Cache(CacheParams{100, 1, 32, true}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(Cache(CacheParams{128, 0, 32, true}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(Cache(CacheParams{128, 1, 33, true}),
                ::testing::ExitedWithCode(1), "");
}

/** Property: valid line count never exceeds capacity, victims only
 *  reported when the cache is full at that set. */
class CacheSweepTest
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>>
{
};

TEST_P(CacheSweepTest, OccupancyBounded)
{
    auto [assoc, wa] = GetParam();
    Cache c(CacheParams{8u * assoc * 32u, assoc, 32, wa});
    std::uint64_t x = 12345;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        Addr addr = (x >> 16) & 0xffff;
        bool wr = (x & 1) != 0;
        c.access(addr, wr);
        ASSERT_LE(c.validLineCount(), 8u * assoc);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweepTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Bool()));

} // namespace
} // namespace mem
} // namespace dscalar
