/** @file Tests for the structured stats export (stats::JsonWriter). */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "prog/assembler.hh"
#include "stats/json_writer.hh"
#include "stats/snapshot.hh"

#include "mini_json.hh"

namespace dscalar {
namespace {

using namespace prog::reg;

mini_json::Value
parseOrDie(const std::string &text)
{
    std::string error;
    mini_json::Value v = mini_json::parse(text, error);
    EXPECT_EQ(error, "") << text;
    return v;
}

prog::Program
loopProgram()
{
    prog::Program p;
    Addr g = p.allocGlobal(4 * prog::pageSize);
    prog::Assembler a(p);
    a.la(s1, g);
    a.li(s0, 4 * static_cast<std::int32_t>(prog::pageSize) / 64);
    a.label("loop");
    a.ld(t0, s1, 0);
    a.addi(s1, s1, 64);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

TEST(JsonEscape, ControlAndQuoteCharacters)
{
    EXPECT_EQ(stats::jsonEscape("plain"), "plain");
    EXPECT_EQ(stats::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(stats::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(stats::jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(stats::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, SchemaGolden)
{
    stats::Snapshot snap;
    auto &g = snap.addGroup("system", "---- Golden ----");
    snap.addCounter(g, "cycles", 123, "total cycles");
    snap.addScalar(g, "ipc", 1.5, "instructions per cycle");

    stats::RunMeta meta;
    meta.add("system", "datascalar");
    meta.add("nodes", std::uint64_t(2));

    std::ostringstream os;
    stats::JsonWriter::write(os, meta, snap);
    EXPECT_EQ(os.str(),
              "{\"run_meta\":{\"system\":\"datascalar\","
              "\"nodes\":2},"
              "\"groups\":{\"system\":{"
              "\"cycles\":{\"value\":123},"
              "\"ipc\":{\"value\":1.5}}}}\n");
}

TEST(JsonWriterTest, RoundTripAllStatKinds)
{
    stats::Snapshot snap;
    auto &g = snap.addGroup("grp", "grp:");
    snap.addCounter(g, "count", 7, "a counter");
    snap.addScalar(g, "gauge", 0.25, "a scalar");
    // Average and Histogram enter snapshots through StatGroup
    // registration; build them directly against the group.
    stats::Average avg(&g.group, "avg", "an average");
    avg.sample(2.0);
    avg.sample(4.0);
    stats::Histogram h(&g.group, "hist", "a histogram", 10, 2);
    h.sample(5);
    h.sample(15);
    h.sample(999);

    stats::RunMeta meta;
    meta.add("weird", "a\"b\\c\nd");

    std::ostringstream os;
    stats::JsonWriter::write(os, meta, snap);
    mini_json::Value doc = parseOrDie(os.str());

    const mini_json::Value *weird =
        doc.find("run_meta")->find("weird");
    ASSERT_NE(weird, nullptr);
    EXPECT_EQ(weird->str, "a\"b\\c\nd");

    const mini_json::Value *grp = doc.find("groups")->find("grp");
    ASSERT_NE(grp, nullptr);
    EXPECT_EQ(grp->find("count")->find("value")->number, 7);
    EXPECT_EQ(grp->find("gauge")->find("value")->number, 0.25);
    EXPECT_EQ(grp->find("avg")->find("mean")->number, 3.0);
    EXPECT_EQ(grp->find("avg")->find("count")->number, 2);
    const mini_json::Value *hist = grp->find("hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("count")->number, 3);
    EXPECT_EQ(hist->find("bucket_width")->number, 10);
    ASSERT_EQ(hist->find("buckets")->array.size(), 2u);
    EXPECT_EQ(hist->find("buckets")->array[0].number, 1);
    EXPECT_EQ(hist->find("buckets")->array[1].number, 1);
    EXPECT_EQ(hist->find("overflow")->number, 1);
}

/** name -> value text, per group, parsed from the legacy dump. */
std::map<std::string, std::map<std::string, std::string>>
parseTextDump(const std::string &dump, const stats::Snapshot &snap)
{
    std::map<std::string, std::map<std::string, std::string>> out;
    std::istringstream lines(dump);
    std::string line;
    auto group = snap.groups().end();
    while (std::getline(lines, line)) {
        bool isTitle = false;
        for (auto it = snap.groups().begin();
             it != snap.groups().end(); ++it) {
            if (line == it->title) {
                group = it;
                isTitle = true;
                break;
            }
        }
        if (isTitle || group == snap.groups().end())
            continue;
        // "  name<pad>value  # desc"
        std::istringstream fields(line);
        std::string name, value;
        if (fields >> name >> value)
            out[group->name][name] = value;
    }
    return out;
}

TEST(JsonWriterTest, ScalarValuesByteMatchTextDump)
{
    prog::Program p = loopProgram();
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    sys.run();

    auto snap = sys.snapshotStats();
    std::ostringstream text;
    snap->dump(text);
    auto expected = parseTextDump(text.str(), *snap);

    std::ostringstream js;
    stats::JsonWriter::write(js, {}, *snap);
    mini_json::Value doc = parseOrDie(js.str());

    const mini_json::Value *groups = doc.find("groups");
    ASSERT_NE(groups, nullptr);
    unsigned compared = 0;
    for (const auto &kv : groups->object) {
        const auto git = expected.find(kv.first);
        ASSERT_NE(git, expected.end()) << kv.first;
        for (const auto &stat : kv.second.object) {
            const mini_json::Value *value =
                stat.second.find("value");
            if (!value)
                continue; // averages/histograms have no text twin
            auto sit = git->second.find(stat.first);
            ASSERT_NE(sit, git->second.end())
                << kv.first << "." << stat.first;
            // Byte-for-byte: the JSON number token must equal the
            // text-dump value field.
            EXPECT_EQ(value->raw, sit->second)
                << kv.first << "." << stat.first;
            ++compared;
        }
    }
    EXPECT_GT(compared, 20u);
}

TEST(JsonWriterTest, TimelineHookEmitsExtraKey)
{
    stats::Snapshot snap;
    auto &g = snap.addGroup("g", "g:");
    snap.addCounter(g, "c", 1, "");
    std::ostringstream os;
    stats::JsonWriter::write(os, {}, snap, [](std::ostream &o) {
        o << "{\"interval\":5}";
    });
    mini_json::Value doc = parseOrDie(os.str());
    const mini_json::Value *timeline = doc.find("timeline");
    ASSERT_NE(timeline, nullptr);
    EXPECT_EQ(timeline->find("interval")->number, 5);
}

TEST(RunResultStats, SweepPointsCarrySnapshots)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.maxInsts = 5'000;
    driver::SweepPoint point{"compress_s",
                             driver::SystemKind::DataScalar, cfg, 1,
                             1};
    auto results = driver::runSweep({point, point}, 2);
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        ASSERT_NE(r.stats, nullptr);
        std::ostringstream os;
        r.stats->dump(os);
        EXPECT_NE(os.str().find("cycles"), std::string::npos);
        EXPECT_NE(os.str().find("node1:"), std::string::npos);
    }
    // Identical points must produce identical snapshots.
    std::ostringstream a, b;
    results[0].stats->dump(a);
    results[1].stats->dump(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(RunResultStats, RunSystemMatchesDirectRun)
{
    prog::Program p = loopProgram();
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    core::RunResult r = driver::runSystem(
        driver::SystemKind::DataScalar, p, cfg);
    ASSERT_NE(r.stats, nullptr);

    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    sys.run();
    std::ostringstream direct, viaDriver;
    sys.dumpStats(direct);
    r.stats->dump(viaDriver);
    EXPECT_EQ(direct.str(), viaDriver.str());
}

} // namespace
} // namespace dscalar
