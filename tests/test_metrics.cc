/**
 * @file
 * Live-metrics tests: the Prometheus text exposition (golden text
 * against a hand-built ServerStats), the ServerStats coherence
 * contract under concurrent load (completed + failed <= requests and
 * latency-histogram count == completed in EVERY snapshot), the
 * `op = metrics` wire path, the span_* reply-header keys, and
 * Snapshot::addHistogram's deep-copy semantics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "driver/run_request.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "stats/snapshot.hh"
#include "stats/stats.hh"

namespace dscalar {
namespace {

TEST(MetricsText, GoldenExposition)
{
    serve::ServerStats s;
    s.connections = 3;
    s.requests = 7;
    s.completed = 5;
    s.failed = 1;
    s.rejectedParse = 1;
    s.queuePeak = 2;
    s.traceHits = 4;
    s.traceCaptures = 1;
    s.traceBytes = 4096;
    s.phaseUs["build"] = 42;
    s.phaseUs["sim_run"] = 9001;
    // 1 ms buckets: 500 -> le=1000, 1500 -> le=2000, 250000 ->
    // overflow (range ends at 200000), visible only in +Inf/_count.
    s.latencyUs.sample(500);
    s.latencyUs.sample(1500);
    s.latencyUs.sample(250000);

    const std::string expected =
        "# HELP dsserve_connections_total Accepted connections.\n"
        "# TYPE dsserve_connections_total counter\n"
        "dsserve_connections_total 3\n"
        "# HELP dsserve_requests_total Request blocks received.\n"
        "# TYPE dsserve_requests_total counter\n"
        "dsserve_requests_total 7\n"
        "# HELP dsserve_completed_total Runs finished successfully.\n"
        "# TYPE dsserve_completed_total counter\n"
        "dsserve_completed_total 5\n"
        "# HELP dsserve_failed_total Admitted runs that errored.\n"
        "# TYPE dsserve_failed_total counter\n"
        "dsserve_failed_total 1\n"
        "# HELP dsserve_rejected_total Requests rejected before "
        "admission, by reason.\n"
        "# TYPE dsserve_rejected_total counter\n"
        "dsserve_rejected_total{reason=\"parse\"} 1\n"
        "dsserve_rejected_total{reason=\"budget\"} 0\n"
        "dsserve_rejected_total{reason=\"overload\"} 0\n"
        "dsserve_rejected_total{reason=\"oversize\"} 0\n"
        "# HELP dsserve_queue_depth Runs in flight now.\n"
        "# TYPE dsserve_queue_depth gauge\n"
        "dsserve_queue_depth 0\n"
        "# HELP dsserve_queue_peak Max runs ever in flight.\n"
        "# TYPE dsserve_queue_peak gauge\n"
        "dsserve_queue_peak 2\n"
        "# HELP dsserve_trace_captures_total Functional captures "
        "executed.\n"
        "# TYPE dsserve_trace_captures_total counter\n"
        "dsserve_trace_captures_total 1\n"
        "# HELP dsserve_trace_hits_total Trace acquires served from "
        "cache.\n"
        "# TYPE dsserve_trace_hits_total counter\n"
        "dsserve_trace_hits_total 4\n"
        "# HELP dsserve_trace_bytes Bytes held across cached traces.\n"
        "# TYPE dsserve_trace_bytes gauge\n"
        "dsserve_trace_bytes 4096\n"
        "# HELP dsserve_trace_disk_hits_total Cache misses served "
        "from the trace store.\n"
        "# TYPE dsserve_trace_disk_hits_total counter\n"
        "dsserve_trace_disk_hits_total 0\n"
        "# HELP dsserve_trace_disk_writes_total Trace files written "
        "to the store.\n"
        "# TYPE dsserve_trace_disk_writes_total counter\n"
        "dsserve_trace_disk_writes_total 0\n"
        "# HELP dsserve_phase_us_total Cumulative wall microseconds "
        "by request phase.\n"
        "# TYPE dsserve_phase_us_total counter\n"
        "dsserve_phase_us_total{phase=\"build\"} 42\n"
        "dsserve_phase_us_total{phase=\"sim_run\"} 9001\n"
        "# HELP dsserve_request_latency_us End-to-end request latency "
        "(completed runs), microseconds.\n"
        "# TYPE dsserve_request_latency_us histogram\n"
        "dsserve_request_latency_us_bucket{le=\"1000\"} 1\n"
        "dsserve_request_latency_us_bucket{le=\"2000\"} 2\n"
        "dsserve_request_latency_us_bucket{le=\"+Inf\"} 3\n"
        "dsserve_request_latency_us_sum 252000\n"
        "dsserve_request_latency_us_count 3\n"
        "# HELP dsserve_queue_wait_us Pool queue wait (completed "
        "runs), microseconds.\n"
        "# TYPE dsserve_queue_wait_us histogram\n"
        "dsserve_queue_wait_us_bucket{le=\"+Inf\"} 0\n"
        "dsserve_queue_wait_us_sum 0\n"
        "dsserve_queue_wait_us_count 0\n"
        "# HELP dsserve_run_us Timing-run wall time (completed runs), "
        "microseconds.\n"
        "# TYPE dsserve_run_us histogram\n"
        "dsserve_run_us_bucket{le=\"+Inf\"} 0\n"
        "dsserve_run_us_sum 0\n"
        "dsserve_run_us_count 0\n";

    EXPECT_EQ(serve::renderMetricsText(s), expected);
}

TEST(MetricsText, EmptyPhasesElideThePhaseFamily)
{
    serve::ServerStats s;
    std::string text = serve::renderMetricsText(s);
    EXPECT_EQ(text.find("dsserve_phase_us_total"), std::string::npos);
    // Zero histograms still emit the +Inf/sum/count frame.
    EXPECT_NE(text.find("dsserve_request_latency_us_count 0"),
              std::string::npos);
}

TEST(SnapshotHistogram, AddHistogramDeepCopies)
{
    stats::Histogram live(nullptr, "h", "live", 10, 4);
    live.sample(5);
    live.sample(15);

    stats::Snapshot snap;
    stats::Snapshot::GroupEntry &g = snap.addGroup("g", "g:");
    stats::Histogram &copy = snap.addHistogram(g, "h", live, "copied");
    EXPECT_EQ(copy.count(), 2u);
    EXPECT_EQ(copy.bucket(0), 1u);
    EXPECT_EQ(copy.bucket(1), 1u);

    live.sample(25); // must not bleed into the snapshot
    EXPECT_EQ(copy.count(), 2u);
    EXPECT_EQ(live.count(), 3u);
}

// --- server-side ---------------------------------------------------

serve::ServerConfig
testConfig(const std::string &socket)
{
    serve::ServerConfig cfg;
    cfg.socketPath = socket;
    cfg.jobs = 2;
    return cfg;
}

driver::RunRequest
smallRequest()
{
    driver::RunRequest req;
    req.workload = "go_s";
    req.config.maxInsts = 2000;
    return req;
}

TEST(MetricsOp, WirePathAndSpanHeaderKeys)
{
    serve::Server server(testConfig("t_met_wire.sock"));
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect("t_met_wire.sock", error)) << error;

    serve::Reply run = client.run(smallRequest());
    ASSERT_TRUE(run.ok) << run.error;
    // Every run reply carries its span tree in the header.
    EXPECT_FALSE(run.field("span_total_us").empty());
    EXPECT_FALSE(run.field("span_sim_run_us").empty());
    EXPECT_FALSE(run.field("span_queue_wait_us").empty());
    // Spans never leak into the byte-compared JSON body.
    EXPECT_EQ(run.json.find("span_"), std::string::npos);

    serve::Reply metrics = client.metrics();
    ASSERT_TRUE(metrics.ok) << metrics.error;
    EXPECT_NE(metrics.json.find(
                  "# TYPE dsserve_requests_total counter"),
              std::string::npos)
        << metrics.json;
    EXPECT_NE(metrics.json.find("dsserve_completed_total 1"),
              std::string::npos)
        << metrics.json;
    EXPECT_NE(metrics.json.find(
                  "dsserve_request_latency_us_count 1"),
              std::string::npos)
        << metrics.json;

    server.stop();
}

TEST(MetricsCoherence, SnapshotsNeverTearUnderLoad)
{
    serve::Server server(testConfig("t_met_coh.sock"));
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    constexpr unsigned kClients = 3;
    constexpr unsigned kPerClient = 6;
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> violations{0};

    // Poll snapshots as fast as possible while runs flow; every one
    // must satisfy the coherence contract.
    std::thread poller([&] {
        while (!done.load()) {
            serve::ServerStats s = server.stats();
            if (s.completed + s.failed > s.requests)
                violations.fetch_add(1);
            if (s.latencyUs.count() != s.completed)
                violations.fetch_add(1);
            if (s.queueWaitUs.count() != s.completed ||
                s.runUs.count() != s.completed)
                violations.fetch_add(1);
        }
    });

    std::vector<std::thread> clients;
    for (unsigned c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
            serve::Client client;
            std::string err;
            ASSERT_TRUE(client.connect("t_met_coh.sock", err)) << err;
            for (unsigned i = 0; i < kPerClient; ++i) {
                serve::Reply reply = client.run(smallRequest());
                EXPECT_TRUE(reply.ok) << reply.error;
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    done.store(true);
    poller.join();

    EXPECT_EQ(violations.load(), 0u);
    serve::ServerStats s = server.stats();
    EXPECT_EQ(s.completed, kClients * kPerClient);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.latencyUs.count(), s.completed);
    // Phase totals accumulated for every top-level span plus the
    // reply writes the connection thread accounts.
    EXPECT_NE(s.phaseUs.find("sim_run"), s.phaseUs.end());
    EXPECT_NE(s.phaseUs.find("reply_write"), s.phaseUs.end());

    server.stop();
}

} // namespace
} // namespace dscalar
