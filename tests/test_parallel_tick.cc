/** @file
 * Byte-identity of the conservative-window parallel run loop.
 *
 * SimConfig::tickThreads > 1 ticks all nodes concurrently in windows
 * bounded by the minimum cross-node delivery latency, exchanging
 * interconnect messages only at window barriers. That is a pure
 * performance transformation: for every system type, interconnect,
 * run-loop mode, and fault setting, a parallel run must report
 * exactly the cycle count, instruction count, statistics dump,
 * retirement output, trace-event stream, and sampler timeline of the
 * serial loop (tickThreads = 1). Modeled on tests/test_cycle_skip.cc.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "baseline/perfect.hh"
#include "baseline/traditional.hh"
#include "common/trace.hh"
#include "core/datascalar.hh"
#include "core/parallel_tick.hh"
#include "driver/driver.hh"
#include "obs/sampler.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace {

constexpr InstSeq kBudget = 20000;

core::SimConfig
testConfig(unsigned nodes, bool event_driven,
           core::InterconnectKind kind, bool faults,
           unsigned tick_threads)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = nodes;
    cfg.maxInsts = kBudget;
    cfg.eventDriven = event_driven;
    cfg.interconnect = kind;
    cfg.tickThreads = tick_threads;
    if (faults) {
        // The fuzz oracle's faulty-medium settings (check::toSimConfig):
        // drops force re-request recovery, duplicates and jitter
        // stress the BSHR paths.
        cfg.fault.dropProb = 0.02;
        cfg.fault.dupProb = 0.02;
        cfg.fault.delayProb = 0.1;
        cfg.fault.maxDelay = 24;
        cfg.fault.seed = 17;
        cfg.rerequestTimeout = 2'000;
    }
    return cfg;
}

struct DsObservation
{
    core::RunResult result;
    std::string stats;
    std::string output;
    std::string trace;    ///< full TextTraceSink event stream
    std::string timeline; ///< obs::Sampler JSON
    std::uint64_t busMessages, busBytes, busBusy;
    std::uint64_t ringMessages, ringBytes, ringBusy;
};

DsObservation
runDs(const prog::Program &p, unsigned nodes, bool event_driven,
      core::InterconnectKind kind, bool faults, unsigned tick_threads,
      Cycle sample_interval = 37)
{
    core::DataScalarSystem sys(
        p, testConfig(nodes, event_driven, kind, faults, tick_threads),
        driver::figure7PageTable(p, nodes));
    std::ostringstream tr;
    TextTraceSink text(tr);
    sys.addTraceSink(&text);
    obs::Sampler sampler(sample_interval);
    sys.setSampler(&sampler);

    DsObservation obs;
    obs.result = sys.run();
    std::ostringstream ss;
    sys.dumpStats(ss);
    obs.stats = ss.str();
    obs.output = sys.output();
    obs.trace = tr.str();
    std::ostringstream tl;
    sampler.writeJson(tl);
    obs.timeline = tl.str();
    obs.busMessages = sys.bus().totalMessages();
    obs.busBytes = sys.bus().totalBytes();
    obs.busBusy = sys.bus().busyCycles();
    obs.ringMessages = sys.ring().totalMessages();
    obs.ringBytes = sys.ring().totalBytes();
    obs.ringBusy = sys.ring().linkBusyCycles();
    return obs;
}

void
expectIdentical(const DsObservation &par, const DsObservation &ref,
                unsigned threads)
{
    SCOPED_TRACE("tickThreads=" + std::to_string(threads));
    EXPECT_EQ(par.result.cycles, ref.result.cycles);
    EXPECT_EQ(par.result.instructions, ref.result.instructions);
    EXPECT_DOUBLE_EQ(par.result.ipc, ref.result.ipc);
    EXPECT_EQ(par.stats, ref.stats);
    EXPECT_EQ(par.output, ref.output);
    EXPECT_EQ(par.trace, ref.trace);
    EXPECT_EQ(par.timeline, ref.timeline);
    EXPECT_EQ(par.busMessages, ref.busMessages);
    EXPECT_EQ(par.busBytes, ref.busBytes);
    EXPECT_EQ(par.busBusy, ref.busBusy);
    EXPECT_EQ(par.ringMessages, ref.ringMessages);
    EXPECT_EQ(par.ringBytes, ref.ringBytes);
    EXPECT_EQ(par.ringBusy, ref.ringBusy);
}

/** (interconnect, eventDriven, faults) at 4 nodes, threads 1/2/4. */
class ParallelTickDataScalar
    : public ::testing::TestWithParam<
          std::tuple<core::InterconnectKind, bool, bool>>
{
};

TEST_P(ParallelTickDataScalar, MatchesSerialLoop)
{
    auto [kind, event_driven, faults] = GetParam();
    prog::Program p =
        workloads::findWorkload("compress_s").build(1);

    DsObservation ref = runDs(p, 4, event_driven, kind, faults, 1);
    EXPECT_GT(ref.result.instructions, 0u);
    EXPECT_GT(ref.result.cycles, 0u);
    for (unsigned threads : {2u, 4u}) {
        DsObservation par =
            runDs(p, 4, event_driven, kind, faults, threads);
        expectIdentical(par, ref, threads);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ParallelTickDataScalar,
    ::testing::Combine(
        ::testing::Values(core::InterconnectKind::Bus,
                          core::InterconnectKind::Ring),
        ::testing::Bool(), ::testing::Bool()),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) ==
                                   core::InterconnectKind::Bus
                               ? "bus"
                               : "ring";
        name += std::get<1>(info.param) ? "_skip" : "_step";
        name += std::get<2>(info.param) ? "_faults" : "_reliable";
        return name;
    });

/** Odd node count: threads that do not divide the node count. */
TEST(ParallelTickDataScalarOddNodes, MatchesSerialLoop)
{
    prog::Program p =
        workloads::findWorkload("compress_s").build(1);
    DsObservation ref =
        runDs(p, 3, true, core::InterconnectKind::Bus, false, 1);
    for (unsigned threads : {2u, 4u}) {
        DsObservation par =
            runDs(p, 3, true, core::InterconnectKind::Bus, false,
                  threads);
        expectIdentical(par, ref, threads);
    }
}

/** A different memory personality, plus the degenerate
 *  sample-interval=1 case (every window collapses to one cycle). */
TEST(ParallelTickDataScalarGo, MatchesSerialLoop)
{
    prog::Program p = workloads::findWorkload("go_s").build(1);
    DsObservation ref =
        runDs(p, 2, true, core::InterconnectKind::Bus, false, 1, 1);
    DsObservation par =
        runDs(p, 2, true, core::InterconnectKind::Bus, false, 2, 1);
    expectIdentical(par, ref, 2);
}

/** tickThreads=0 resolves to hardware concurrency clamped to the
 *  node count — and still matches the serial loop. */
TEST(ParallelTickDataScalarAuto, ZeroThreadsMatchesSerialLoop)
{
    prog::Program p =
        workloads::findWorkload("compress_s").build(1);
    DsObservation ref =
        runDs(p, 2, true, core::InterconnectKind::Ring, false, 1);
    DsObservation par =
        runDs(p, 2, true, core::InterconnectKind::Ring, false, 0);
    expectIdentical(par, ref, 0);
}

/** Single-core systems resolve any tickThreads request to the serial
 *  loop; results must be unaffected. */
TEST(ParallelTickTraditional, ThreadCountIsIrrelevant)
{
    prog::Program p =
        workloads::findWorkload("compress_s").build(1);
    auto runOnce = [&](unsigned threads) {
        baseline::TraditionalSystem sys(
            p,
            testConfig(2, true, core::InterconnectKind::Bus, false,
                       threads),
            driver::figure7PageTable(p, 2));
        core::RunResult r = sys.run();
        return std::make_tuple(r.cycles, r.instructions, sys.output(),
                               sys.offChipReads(),
                               sys.offChipWrites(),
                               sys.bus().totalMessages());
    };
    auto ref = runOnce(1);
    EXPECT_EQ(runOnce(2), ref);
    EXPECT_EQ(runOnce(4), ref);
    EXPECT_EQ(runOnce(0), ref);
}

TEST(ParallelTickPerfect, ThreadCountIsIrrelevant)
{
    prog::Program p =
        workloads::findWorkload("compress_s").build(1);
    auto runOnce = [&](unsigned threads) {
        baseline::PerfectSystem sys(
            p, testConfig(2, true, core::InterconnectKind::Bus, false,
                          threads));
        core::RunResult r = sys.run();
        return std::make_tuple(r.cycles, r.instructions,
                               sys.output());
    };
    auto ref = runOnce(1);
    EXPECT_EQ(runOnce(2), ref);
    EXPECT_EQ(runOnce(4), ref);
}

// -------------------------------------------------------------------
// Helper units
// -------------------------------------------------------------------

TEST(ResolveTickThreads, ClampsAndResolvesZero)
{
    EXPECT_EQ(core::resolveTickThreads(1, 8), 1u);
    EXPECT_EQ(core::resolveTickThreads(4, 8), 4u);
    EXPECT_EQ(core::resolveTickThreads(16, 4), 4u);
    EXPECT_EQ(core::resolveTickThreads(3, 1), 1u);
    // 0 = hardware concurrency, still clamped to the node count.
    EXPECT_EQ(core::resolveTickThreads(0, 1), 1u);
    EXPECT_GE(core::resolveTickThreads(0, 1024), 1u);
    EXPECT_LE(core::resolveTickThreads(0, 2), 2u);
}

TEST(MinCrossNodeLatencyDeath, RejectsZeroLatencyConfigs)
{
    // A medium that could deliver in the send cycle admits no
    // conservative window; the run must refuse, not livelock.
    core::SimConfig cfg = driver::paperConfig();
    cfg.bus.interfacePenalty = 0;
    cfg.bus.headerBytes = 0;
    cfg.rerequestTimeout = 2'000; // header-only Rerequest: 0 bytes
    EXPECT_DEATH(core::minCrossNodeLatency(cfg),
                 "minimum cross-node delivery latency");
}

TEST(MinCrossNodeLatency, MatchesInterconnectModels)
{
    core::SimConfig cfg = driver::paperConfig();
    // Bus: interfacePenalty + ceil((header+line)/width) bus clocks.
    // Paper defaults: 2 + ceil((8+32)/8)*10 = 52.
    EXPECT_EQ(core::minCrossNodeLatency(cfg), Cycle(52));

    // Recovery enabled: a header-only Rerequest is the smallest
    // emittable message — 2 + ceil(8/8)*10 = 12.
    cfg.rerequestTimeout = 2'000;
    EXPECT_EQ(core::minCrossNodeLatency(cfg), Cycle(12));

    // Ring first hop: penalty + serialization + hopLatency.
    // Defaults: 2 + ceil((8+32)/8)*2 + 4 = 16; rerequest 2 + 2 + 4.
    cfg.interconnect = core::InterconnectKind::Ring;
    EXPECT_EQ(core::minCrossNodeLatency(cfg), Cycle(8));
    cfg.rerequestTimeout = 0;
    EXPECT_EQ(core::minCrossNodeLatency(cfg), Cycle(16));
}

} // namespace
} // namespace dscalar
