/** @file
 * Golden-model property test: the production Cache must agree with
 * an obviously correct reference implementation (per-set LRU lists)
 * on long random access streams, across geometries and policies.
 */

#include <gtest/gtest.h>

#include <list>
#include <vector>

#include "common/random.hh"
#include "mem/cache.hh"

namespace dscalar {
namespace mem {
namespace {

/** Straightforward reference cache: per-set std::list, MRU front. */
class RefCache
{
  public:
    explicit RefCache(const CacheParams &p) : p_(p)
    {
        sets_.resize(p.sizeBytes / (p.lineSize * p.assoc));
    }

    struct Line
    {
        Addr tag;
        bool dirty;
    };

    CacheAccessResult
    access(Addr addr, bool is_write)
    {
        CacheAccessResult r;
        auto &set = sets_[setIndex(addr)];
        Addr tag = tagOf(addr);
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->tag == tag) {
                r.hit = true;
                if (is_write)
                    it->dirty = true;
                set.splice(set.begin(), set, it); // MRU
                return r;
            }
        }
        if (is_write && !p_.writeAllocate)
            return r;
        if (set.size() == p_.assoc) {
            r.evicted = true;
            r.victimDirty = set.back().dirty;
            r.victimAddr = (set.back().tag * sets_.size() +
                            setIndex(addr)) *
                           p_.lineSize;
            set.pop_back();
        }
        set.push_front(Line{tag, is_write});
        r.allocated = true;
        return r;
    }

    bool
    probe(Addr addr) const
    {
        const auto &set = sets_[setIndex(addr)];
        for (const Line &l : set)
            if (l.tag == tagOf(addr))
                return true;
        return false;
    }

  private:
    std::size_t
    setIndex(Addr addr) const
    {
        return (addr / p_.lineSize) % sets_.size();
    }
    Addr
    tagOf(Addr addr) const
    {
        return addr / p_.lineSize / sets_.size();
    }

    CacheParams p_;
    std::vector<std::list<Line>> sets_;
};

class CacheModelTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, unsigned, bool>>
{
};

TEST_P(CacheModelTest, AgreesWithReference)
{
    auto [size, assoc, write_alloc] = GetParam();
    CacheParams p{size, assoc, 32, write_alloc};
    Cache dut(p);
    RefCache ref(p);

    Random rng(size * 31 + assoc * 7 + (write_alloc ? 1 : 0));
    for (int i = 0; i < 20'000; ++i) {
        // Mix of clustered and scattered addresses.
        Addr addr = rng.chance(0.7)
                        ? rng.below(4 * size)
                        : rng.below(1 << 22);
        addr &= ~Addr(3);
        bool is_write = rng.chance(0.3);

        if (rng.chance(0.1)) {
            // Interleave read-only probes.
            ASSERT_EQ(dut.probe(addr), ref.probe(addr))
                << "probe divergence at op " << i;
            continue;
        }

        CacheAccessResult a = dut.access(addr, is_write);
        CacheAccessResult b = ref.access(addr, is_write);
        ASSERT_EQ(a.hit, b.hit) << "op " << i;
        ASSERT_EQ(a.allocated, b.allocated) << "op " << i;
        ASSERT_EQ(a.evicted, b.evicted) << "op " << i;
        if (a.evicted) {
            ASSERT_EQ(a.victimAddr, b.victimAddr) << "op " << i;
            ASSERT_EQ(a.victimDirty, b.victimDirty) << "op " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelTest,
    ::testing::Combine(::testing::Values(1024u, 4096u, 16384u),
                       ::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Bool()));

} // namespace
} // namespace mem
} // namespace dscalar
