/**
 * @file
 * RunRequest API tests: kv helper semantics, parse/format exactness
 * (format ∘ parse ∘ format is the identity on the serializable
 * subset), key-level error reporting, the recovery-default finalize
 * rule, the optional-returning name parsers, and equivalence of the
 * legacy driver entry points (runSystem, runSweep) with the
 * runOne/runMany core they now wrap.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/kv.hh"
#include "driver/driver.hh"
#include "driver/trace_cache.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace {

namespace kv = common::kv;

TEST(Kv, TrimStripsNewlines)
{
    // Protocol code trims raw lines that still carry their
    // terminator; repro parsing trims getline output without one.
    EXPECT_EQ(kv::trim("op = ping\n"), "op = ping");
    EXPECT_EQ(kv::trim(" \t x \r\n"), "x");
    EXPECT_EQ(kv::trim("\n"), "");
    EXPECT_EQ(kv::trim(""), "");
}

TEST(Kv, ParseU64Strict)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(kv::parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(kv::parseU64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
    EXPECT_FALSE(kv::parseU64("", v));
    EXPECT_FALSE(kv::parseU64("12x", v));
    EXPECT_FALSE(kv::parseU64("-1", v));
    EXPECT_FALSE(kv::parseU64("18446744073709551616", v)); // overflow
}

TEST(Kv, FormatF64RoundTrips)
{
    for (double v : {0.0, 0.05, 1.0 / 3.0, 2000.0, 1e-9, 123.456}) {
        double back = 0.0;
        ASSERT_TRUE(kv::parseF64(kv::formatF64(v), back));
        EXPECT_EQ(back, v) << kv::formatF64(v);
    }
}

driver::RunRequest
nonDefaultRequest()
{
    driver::RunRequest req;
    req.workload = "go_s";
    req.scale = 2;
    req.system = driver::SystemKind::Traditional;
    req.config.numNodes = 4;
    req.config.interconnect = core::InterconnectKind::Ring;
    req.config.maxInsts = 5000;
    req.config.eventDriven = false;
    req.config.tickThreads = 2;
    req.config.fault.dropProb = 0.05;
    req.config.fault.dupProb = 0.25;
    req.config.fault.delayProb = 0.125;
    req.config.fault.maxDelay = 7;
    req.config.fault.seed = 99;
    req.config.rerequestTimeout = 1234;
    req.rerequestTimeoutSet = true;
    req.config.bshrHardCapacity = true;
    req.config.bshrCapacity = 16;
    req.blockPages = 2;
    req.traceReuse = false;
    req.sampleInterval = 500;
    req.profile = true;
    req.perfettoPath = "trace.json";
    req.traceDir = "traces";
    return req;
}

TEST(RunRequestFormat, ParseIsExactInverse)
{
    driver::RunRequest req = nonDefaultRequest();
    std::string text = driver::formatRunRequest(req);

    std::istringstream in(text);
    driver::RunRequest parsed;
    std::string error;
    ASSERT_TRUE(driver::parseRunRequest(in, parsed, error)) << error;
    EXPECT_EQ(driver::formatRunRequest(parsed), text);

    EXPECT_EQ(parsed.workload, "go_s");
    EXPECT_EQ(parsed.scale, 2u);
    EXPECT_EQ(parsed.system, driver::SystemKind::Traditional);
    EXPECT_EQ(parsed.config.numNodes, 4u);
    EXPECT_EQ(parsed.config.interconnect, core::InterconnectKind::Ring);
    EXPECT_EQ(parsed.config.maxInsts, 5000u);
    EXPECT_FALSE(parsed.config.eventDriven);
    EXPECT_EQ(parsed.config.tickThreads, 2u);
    EXPECT_EQ(parsed.config.fault.dropProb, 0.05);
    EXPECT_EQ(parsed.config.fault.maxDelay, 7u);
    EXPECT_EQ(parsed.config.rerequestTimeout, 1234u);
    EXPECT_TRUE(parsed.config.bshrHardCapacity);
    EXPECT_EQ(parsed.config.bshrCapacity, 16u);
    EXPECT_EQ(parsed.blockPages, 2u);
    EXPECT_FALSE(parsed.traceReuse);
    EXPECT_EQ(parsed.sampleInterval, 500u);
    EXPECT_TRUE(parsed.profile);
    EXPECT_EQ(parsed.perfettoPath, "trace.json");
    EXPECT_EQ(parsed.traceDir, "traces");
}

TEST(RunRequestFormat, PathValuesRideTheQuotingLayer)
{
    // Paths with spaces — including leading/trailing ones that plain
    // `key = value` trimming would eat — must survive the round trip
    // via kv quoting.
    driver::RunRequest req;
    req.workload = "go_s";
    req.perfettoPath = " out dir/trace.json ";
    req.traceDir = "/var/cache/ds traces/";
    std::string text = driver::formatRunRequest(req);

    std::istringstream in(text);
    driver::RunRequest parsed;
    std::string error;
    ASSERT_TRUE(driver::parseRunRequest(in, parsed, error)) << error;
    EXPECT_EQ(parsed.perfettoPath, " out dir/trace.json ");
    EXPECT_EQ(parsed.traceDir, "/var/cache/ds traces/");
    EXPECT_EQ(driver::formatRunRequest(parsed), text);
}

TEST(RunRequestFormat, DefaultRequestRoundTrips)
{
    driver::RunRequest req;
    req.workload = "compress_s";
    std::string text = driver::formatRunRequest(req);

    std::istringstream in(text);
    driver::RunRequest parsed;
    std::string error;
    ASSERT_TRUE(driver::parseRunRequest(in, parsed, error)) << error;
    EXPECT_EQ(driver::formatRunRequest(parsed), text);
}

TEST(RunRequestParse, CommentsAndBlankPrefix)
{
    std::istringstream in(
        "\n# a comment\n\nworkload = go_s\nmax_insts = 100\n\n"
        "this text is in the next block and never read\n");
    driver::RunRequest req;
    std::string error;
    ASSERT_TRUE(driver::parseRunRequest(in, req, error)) << error;
    EXPECT_EQ(req.workload, "go_s");
    EXPECT_EQ(req.config.maxInsts, 100u);
}

TEST(RunRequestParse, Errors)
{
    driver::RunRequest req;
    std::string error;

    std::istringstream empty("\n\n");
    EXPECT_FALSE(driver::parseRunRequest(empty, req, error));
    EXPECT_NE(error.find("empty request"), std::string::npos) << error;

    std::istringstream unknown("workload = go_s\nbogus = 1\n\n");
    EXPECT_FALSE(driver::parseRunRequest(unknown, req, error));
    EXPECT_NE(error.find("unknown key 'bogus'"), std::string::npos)
        << error;

    std::istringstream badsys("system = vector\n\n");
    EXPECT_FALSE(driver::parseRunRequest(badsys, req, error));
    EXPECT_NE(error.find("unknown system 'vector'"), std::string::npos)
        << error;

    std::istringstream badval("nodes = 0\n\n");
    EXPECT_FALSE(driver::parseRunRequest(badval, req, error));
    EXPECT_NE(error.find("bad value '0' for 'nodes'"),
              std::string::npos)
        << error;

    std::istringstream badprob("fault_drop = 1.5\n\n");
    EXPECT_FALSE(driver::parseRunRequest(badprob, req, error));
    EXPECT_NE(error.find("fault_drop"), std::string::npos) << error;
}

TEST(RunRequestParse, KeyErrorLeavesRequestUnchanged)
{
    driver::RunRequest req;
    std::string error;
    EXPECT_FALSE(
        driver::applyRunRequestKey(req, "nodes", "4096", error));
    EXPECT_EQ(req.config.numNodes, driver::paperConfig().numNodes);
}

TEST(RunRequestParse, FinalizeArmsRecoveryDefault)
{
    // Drop faults without an explicit rerequest_timeout arm the
    // 2000-cycle recovery default; an explicit value is kept.
    std::istringstream in("workload = go_s\nfault_drop = 0.5\n\n");
    driver::RunRequest req;
    std::string error;
    ASSERT_TRUE(driver::parseRunRequest(in, req, error)) << error;
    EXPECT_EQ(req.config.rerequestTimeout, 2000u);

    std::istringstream in2(
        "workload = go_s\nfault_drop = 0.5\n"
        "rerequest_timeout = 77\n\n");
    driver::RunRequest req2;
    ASSERT_TRUE(driver::parseRunRequest(in2, req2, error)) << error;
    EXPECT_EQ(req2.config.rerequestTimeout, 77u);
}

TEST(KindParsers, OptionalOverloads)
{
    auto sys = driver::parseSystemKind("perfect");
    ASSERT_TRUE(sys.has_value());
    EXPECT_EQ(*sys, driver::SystemKind::Perfect);
    EXPECT_FALSE(driver::parseSystemKind("vector").has_value());

    auto net = driver::parseInterconnectKind("ring");
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(*net, core::InterconnectKind::Ring);
    EXPECT_FALSE(driver::parseInterconnectKind("mesh").has_value());

    // The bool-out wrappers leave the out-param untouched on failure.
    driver::SystemKind kind = driver::SystemKind::Traditional;
    EXPECT_FALSE(driver::parseSystemKind("vector", kind));
    EXPECT_EQ(kind, driver::SystemKind::Traditional);
}

TEST(RunOne, UnknownWorkloadIsAnError)
{
    driver::RunRequest req;
    req.workload = "no_such_workload";
    driver::RunResponse resp = driver::runOne(req);
    EXPECT_FALSE(resp.ok());
    EXPECT_NE(resp.error.find("unknown workload"), std::string::npos)
        << resp.error;
}

TEST(RunOne, MatchesLegacyRunSystem)
{
    prog::Program program = workloads::findWorkload("go_s").build(1);
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = 3000;

    core::RunResult legacy = driver::runSystem(
        driver::SystemKind::DataScalar, program, cfg);

    driver::RunRequest req;
    req.workload = "go_s";
    req.system = driver::SystemKind::DataScalar;
    req.config = cfg;
    driver::RunResponse resp = driver::runOne(req);

    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.result.cycles, legacy.cycles);
    EXPECT_EQ(resp.result.instructions, legacy.instructions);
    EXPECT_EQ(resp.result.ipc, legacy.ipc);
}

TEST(RunMany, MatchesLegacyRunSweep)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.maxInsts = 3000;
    std::vector<driver::SweepPoint> points;
    for (driver::SystemKind system :
         {driver::SystemKind::Perfect, driver::SystemKind::DataScalar,
          driver::SystemKind::Traditional}) {
        driver::SweepPoint pt;
        pt.workload = "compress_s";
        pt.system = system;
        pt.config = cfg;
        points.push_back(pt);
    }

    std::vector<core::RunResult> legacy = driver::runSweep(points);

    std::vector<driver::RunRequest> requests;
    for (const driver::SweepPoint &pt : points)
        requests.push_back(driver::toRunRequest(pt));
    driver::TraceCache cache;
    std::vector<driver::RunResponse> responses =
        driver::runMany(requests, cache);

    ASSERT_EQ(responses.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        ASSERT_TRUE(responses[i].ok()) << responses[i].error;
        EXPECT_EQ(responses[i].result.cycles, legacy[i].cycles);
        EXPECT_EQ(responses[i].result.ipc, legacy[i].ipc);
    }
}

TEST(RunOne, WarmCacheStatsJsonByteIdentical)
{
    driver::RunRequest req;
    req.workload = "li_s";
    req.config.maxInsts = 2000;

    // Cold: no cache at all (fresh build + live execution).
    driver::RunResponse cold = driver::runOne(req);
    ASSERT_TRUE(cold.ok()) << cold.error;
    EXPECT_FALSE(cold.cacheHit);

    // Warm: second acquire of the same (workload, scale, budget)
    // replays the cached trace. SPSD: byte-identical stats.
    driver::TraceCache cache;
    driver::RunResponse first = driver::runOne(req, &cache);
    driver::RunResponse warm = driver::runOne(req, &cache);
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_FALSE(first.cacheHit);
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(cold.statsJson(), first.statsJson());
    EXPECT_EQ(cold.statsJson(), warm.statsJson());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.captures(), 1u);
}

} // namespace
} // namespace dscalar
