/** @file Unit tests for instruction encoding/decoding/metadata. */

#include <gtest/gtest.h>

#include "isa/instruction.hh"

namespace dscalar {
namespace isa {
namespace {

Instruction
make(Opcode op, RegIndex rd, RegIndex rs, RegIndex rt, std::int32_t imm)
{
    Instruction i;
    i.op = op;
    switch (opInfo(op).format) {
      case Format::RRR:
        i.rd = rd;
        i.rs = rs;
        i.rt = rt;
        break;
      case Format::RRI:
        i.rd = rd;
        i.rs = rs;
        i.imm = imm;
        break;
      case Format::RI:
        i.rd = rd;
        i.imm = imm & 0xffff;
        break;
      case Format::Mem:
        if (i.isLoad())
            i.rd = rd;
        else
            i.rt = rt;
        i.rs = rs;
        i.imm = imm;
        break;
      case Format::Branch:
        i.rs = rs;
        i.rt = rt;
        i.imm = imm;
        break;
      case Format::Jump:
        i.imm = imm & 0x03ffffff;
        break;
      case Format::JumpReg:
        i.rs = rs;
        break;
      case Format::Sys:
        i.imm = imm & 0xffff;
        break;
      default:
        break;
    }
    return i;
}

/** Round-trip every opcode through encode/decode. */
class RoundTripTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RoundTripTest, EncodeDecodeIdentity)
{
    auto op = static_cast<Opcode>(GetParam());
    // Logical immediates are zero-extended; use a positive value for
    // them and a negative one elsewhere to cover sign extension.
    bool zext = op == Opcode::ANDI || op == Opcode::ORI ||
                op == Opcode::XORI || op == Opcode::LUI ||
                op == Opcode::SYSCALL;
    std::int32_t imm = zext ? 0xabc : -42;
    Instruction original = make(op, 5, 17, 29, imm);
    Instruction decoded = decode(encode(original));
    EXPECT_EQ(original, decoded)
        << "opcode " << opInfo(op).mnemonic << ": "
        << disassemble(original) << " != " << disassemble(decoded);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, RoundTripTest,
    ::testing::Range(0, static_cast<int>(Opcode::NUM_OPCODES)));

TEST(Isa, ImmediateSignRoundTrip)
{
    for (std::int32_t imm : {-32768, -1, 0, 1, 32767}) {
        Instruction i = make(Opcode::ADDI, 3, 4, 0, imm);
        EXPECT_EQ(decode(encode(i)).imm, imm) << "imm " << imm;
    }
}

TEST(Isa, JumpImmediate26Bits)
{
    Instruction i = make(Opcode::J, 0, 0, 0, 0x03ffffff);
    EXPECT_EQ(decode(encode(i)).imm, 0x03ffffff);
}

TEST(Isa, Classification)
{
    EXPECT_TRUE(make(Opcode::LW, 1, 2, 0, 0).isLoad());
    EXPECT_TRUE(make(Opcode::LD, 1, 2, 0, 0).isLoad());
    EXPECT_TRUE(make(Opcode::SW, 0, 2, 1, 0).isStore());
    EXPECT_TRUE(make(Opcode::SD, 0, 2, 1, 0).isStore());
    EXPECT_FALSE(make(Opcode::ADD, 1, 2, 3, 0).isMem());
    EXPECT_TRUE(make(Opcode::BEQ, 0, 1, 2, 4).isBranch());
    EXPECT_TRUE(make(Opcode::J, 0, 0, 0, 16).isCtrl());
    EXPECT_FALSE(make(Opcode::J, 0, 0, 0, 16).isBranch());
    EXPECT_EQ(make(Opcode::LW, 1, 2, 0, 0).memSize(), 4u);
    EXPECT_EQ(make(Opcode::SD, 0, 2, 1, 0).memSize(), 8u);
}

TEST(Isa, DestRegisters)
{
    EXPECT_EQ(make(Opcode::ADD, 7, 1, 2, 0).destReg(), 7);
    EXPECT_EQ(make(Opcode::ADD, 0, 1, 2, 0).destReg(), -1); // r0 sink
    EXPECT_EQ(make(Opcode::LW, 9, 2, 0, 0).destReg(), 9);
    EXPECT_EQ(make(Opcode::SW, 0, 2, 9, 0).destReg(), -1);
    EXPECT_EQ(make(Opcode::JAL, 0, 0, 0, 100).destReg(), 31);
    EXPECT_EQ(make(Opcode::BEQ, 0, 1, 2, 4).destReg(), -1);
}

TEST(Isa, SourceRegisters)
{
    RegIndex srcs[2];
    EXPECT_EQ(make(Opcode::ADD, 7, 1, 2, 0).srcRegs(srcs), 2);
    EXPECT_EQ(srcs[0], 1);
    EXPECT_EQ(srcs[1], 2);

    // r0 sources are dropped (always ready).
    EXPECT_EQ(make(Opcode::ADD, 7, 0, 2, 0).srcRegs(srcs), 1);
    EXPECT_EQ(srcs[0], 2);

    EXPECT_EQ(make(Opcode::LW, 9, 4, 0, 0).srcRegs(srcs), 1);
    EXPECT_EQ(srcs[0], 4);

    // Stores read both the base and the value.
    EXPECT_EQ(make(Opcode::SW, 0, 4, 9, 0).srcRegs(srcs), 2);

    EXPECT_EQ(make(Opcode::J, 0, 0, 0, 4).srcRegs(srcs), 0);
    EXPECT_EQ(make(Opcode::JR, 0, 31, 0, 0).srcRegs(srcs), 1);
}

TEST(Isa, Disassemble)
{
    EXPECT_EQ(disassemble(make(Opcode::ADDI, 4, 4, 0, 8)),
              "addi r4, r4, 8");
    EXPECT_EQ(disassemble(make(Opcode::LW, 5, 4, 0, -16)),
              "lw r5, -16(r4)");
    EXPECT_EQ(disassemble(make(Opcode::SW, 0, 4, 5, 12)),
              "sw r5, 12(r4)");
    EXPECT_EQ(disassemble(Instruction{}), "nop");
}

TEST(Isa, DisassembleEveryOpcodeNonEmpty)
{
    for (int i = 0; i < static_cast<int>(Opcode::NUM_OPCODES); ++i) {
        auto op = static_cast<Opcode>(i);
        Instruction inst = make(op, 1, 2, 3, 4);
        std::string text = disassemble(inst);
        EXPECT_FALSE(text.empty());
        EXPECT_EQ(text.rfind(opInfo(op).mnemonic, 0), 0u)
            << "disassembly must start with the mnemonic: " << text;
    }
}

TEST(Isa, DecodeIsTotalOverValidOpcodes)
{
    // Fuzz: any word with a valid opcode field decodes, and decode
    // is a fixpoint of decode(encode(.)).
    std::uint64_t x = 0x243f6a8885a308d3ULL;
    for (int i = 0; i < 20'000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        auto word = static_cast<std::uint32_t>(x >> 16);
        std::uint32_t opfield =
            (x >> 48) % static_cast<std::uint32_t>(
                            Opcode::NUM_OPCODES);
        word = (word & 0x03ffffffu) | (opfield << 26);
        Instruction d1 = decode(word);
        Instruction d2 = decode(encode(d1));
        ASSERT_EQ(d1, d2) << "word " << std::hex << word;
    }
}

TEST(IsaDeath, BadOpcodeFieldPanics)
{
    std::uint32_t bad =
        static_cast<std::uint32_t>(Opcode::NUM_OPCODES) << 26;
    EXPECT_DEATH(decode(bad | 0x1234), "bad opcode");
}

TEST(Isa, OpClassesForTiming)
{
    EXPECT_EQ(opInfo(Opcode::MUL).opClass, OpClass::IntMul);
    EXPECT_EQ(opInfo(Opcode::DIV).opClass, OpClass::IntDiv);
    EXPECT_EQ(opInfo(Opcode::FADD).opClass, OpClass::FpAdd);
    EXPECT_EQ(opInfo(Opcode::FMUL).opClass, OpClass::FpMul);
    EXPECT_EQ(opInfo(Opcode::FDIV).opClass, OpClass::FpDiv);
    EXPECT_EQ(opInfo(Opcode::LW).opClass, OpClass::MemRead);
    EXPECT_EQ(opInfo(Opcode::SD).opClass, OpClass::MemWrite);
    EXPECT_EQ(opInfo(Opcode::BNE).opClass, OpClass::Ctrl);
}

} // namespace
} // namespace isa
} // namespace dscalar
