/** @file
 * Tests of the fixed-size thread pool and of the determinism
 * guarantee the parallel experiment sweeps rely on: a sweep's output
 * is a pure function of its points, independent of job count and
 * scheduling.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/thread_pool.hh"
#include "driver/driver.hh"

namespace dscalar {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> count{0};
    {
        common::ThreadPool pool(4);
        EXPECT_EQ(pool.numThreads(), 4u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 100);
        // Reusable after wait().
        pool.submit([&count] { ++count; });
        pool.wait();
    }
    EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        common::ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must still run everything.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 3u, 8u}) {
        std::vector<int> hits(257, 0);
        common::parallelFor(jobs, hits.size(),
                            [&](std::size_t i) { ++hits[i]; });
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257)
            << "jobs=" << jobs;
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "jobs=" << jobs << " i=" << i;
    }
}

TEST(ParallelFor, ZeroJobsMeansHardwareConcurrency)
{
    std::vector<int> hits(16, 0);
    common::parallelFor(0, hits.size(),
                        [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(MemberParallelFor, CoversEveryIndexExactlyOnce)
{
    common::ThreadPool pool(4);
    for (int rep = 0; rep < 3; ++rep) {
        std::vector<int> hits(131, 0);
        pool.parallelFor(hits.size(),
                         [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "rep=" << rep << " i=" << i;
    }
}

TEST(MemberParallelFor, DegenerateShapesRunInline)
{
    common::ThreadPool pool(1);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    // n == 1 and single-thread pools run on the calling thread.
    pool.parallelFor(5, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 5);

    common::ThreadPool wide(8);
    std::atomic<int> par{0};
    wide.parallelFor(1, [&](std::size_t) { ++par; });
    EXPECT_EQ(par.load(), 1);
}

TEST(MemberParallelFor, ActsAsBarrier)
{
    common::ThreadPool pool(4);
    std::vector<int> data(64, 0);
    // Each round reads the previous round's writes: the return of
    // parallelFor must establish happens-before for all iterations.
    for (int round = 1; round <= 5; ++round) {
        pool.parallelFor(data.size(), [&](std::size_t i) {
            EXPECT_EQ(data[i], round - 1);
            data[i] = round;
        });
    }
    for (int v : data)
        EXPECT_EQ(v, 5);
}

/** The satellite requirement: a parallel Figure 7 sweep must be
 *  byte-identical to the serial one, run after run. */
TEST(SweepDeterminism, ParallelMatchesSerialByteForByte)
{
    const std::vector<std::string> names{"compress_s", "go_s"};
    constexpr InstSeq kBudget = 8000;

    auto render = [&](unsigned jobs) {
        std::ostringstream ss;
        driver::fig7IpcTable(names, kBudget, jobs).print(ss);
        return ss.str();
    };

    std::string serial = render(1);
    EXPECT_FALSE(serial.empty());
    for (int rep = 0; rep < 3; ++rep)
        EXPECT_EQ(render(4), serial) << "repeat " << rep;
}

} // namespace
} // namespace dscalar
