/** @file Tests for the address-translation (TLB) timing model. */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "ooo/core.hh"
#include "ooo/oracle_stream.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace ooo {
namespace {

using namespace prog::reg;

class LocalBackend : public MemBackend
{
  public:
    LocalBackend() : mem_(mem::MainMemoryParams{}) {}
    FillResult
    startLineFetch(Addr line, Cycle now) override
    {
        return {mem_.request(line, now), false};
    }
    void onUnclaimedCanonicalMiss(Addr, Cycle) override {}
    void writeBack(Addr, Cycle) override {}
    void storeMiss(Addr, Cycle) override {}
    Cycle
    fetchInstLine(Addr line, Cycle now) override
    {
        return mem_.request(line, now);
    }

  private:
    mem::MainMemory mem_;
};

struct CoreRunOut
{
    Cycle cycles;
    CoreStats stats;
};

CoreRunOut
run(const prog::Program &p, const CoreParams &params)
{
    func::FuncSim sim(p);
    OracleStream stream(sim);
    LocalBackend backend;
    OoOCore core(params, stream, backend);
    Cycle now = 0;
    while (!core.done() && now < 10'000'000) {
        core.tick(now);
        ++now;
    }
    EXPECT_TRUE(core.done());
    return CoreRunOut{now, core.coreStats()};
}

/**
 * Dependent pointer chase hopping across @p pages distinct pages
 * (each page's first word points at the next page), so translation
 * latency lands on the critical path.
 */
prog::Program
pageHopper(unsigned pages, unsigned rounds)
{
    prog::Program p;
    Addr g = p.allocGlobal(pages * prog::pageSize);
    for (unsigned i = 0; i < pages; ++i) {
        Addr next = g + ((i + 1) % pages) * prog::pageSize;
        p.poke64(g + i * prog::pageSize, next);
    }
    prog::Assembler a(p);
    a.la(s1, g);
    a.li(s0, static_cast<std::int32_t>(rounds * pages));
    a.label("hop");
    a.ld(s1, s1, 0);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "hop");
    a.halt();
    a.finalize();
    return p;
}

TEST(Tlb, MissesCountedOncePerResidentPage)
{
    // 8 pages fit in a 64-entry dTLB: only cold misses.
    prog::Program p = pageHopper(8, 20);
    CoreParams params;
    CoreRunOut r = run(p, params);
    EXPECT_EQ(r.stats.dtlbMisses, 8u);
}

TEST(Tlb, ThrashingWhenFootprintExceedsTlb)
{
    // 12 pages through a 4-entry dTLB: a miss per hop, every round.
    prog::Program p = pageHopper(12, 20);
    CoreParams params;
    params.dtlbEntries = 4;
    CoreRunOut r = run(p, params);
    EXPECT_GT(r.stats.dtlbMisses, 200u);
}

TEST(Tlb, WalkLatencySlowsThrashingRuns)
{
    prog::Program p = pageHopper(12, 50);
    CoreParams small;
    small.dtlbEntries = 4;
    small.tlbWalkCycles = 12;
    CoreParams big;
    big.dtlbEntries = 64;
    big.tlbWalkCycles = 12;
    CoreRunOut slow = run(p, small);
    CoreRunOut fast = run(p, big);
    EXPECT_GT(slow.cycles, fast.cycles);
    EXPECT_EQ(slow.stats.committed, fast.stats.committed);
}

TEST(Tlb, DisabledModelHasNoMissesOrCost)
{
    prog::Program p = pageHopper(12, 50);
    CoreParams off;
    off.dtlbEntries = 0;
    off.itlbEntries = 0;
    CoreRunOut r = run(p, off);
    EXPECT_EQ(r.stats.dtlbMisses, 0u);
    EXPECT_EQ(r.stats.itlbMisses, 0u);

    CoreParams thrash;
    thrash.dtlbEntries = 4;
    EXPECT_LE(r.cycles, run(p, thrash).cycles);
}

TEST(Tlb, InstructionSideCountsTextPages)
{
    // ~3 pages of straight-line code.
    prog::Program p;
    prog::Assembler a(p);
    for (int i = 0; i < 6000; ++i)
        a.addi(t0, zero, i & 0xff);
    a.halt();
    a.finalize();

    CoreParams params;
    CoreRunOut r = run(p, params);
    EXPECT_GE(r.stats.itlbMisses, 3u);
    EXPECT_LE(r.stats.itlbMisses, 4u);
}

TEST(Tlb, PerfectDataCacheSkipsDataTranslation)
{
    prog::Program p = pageHopper(12, 10);
    CoreParams params;
    params.perfectData = true;
    CoreRunOut r = run(p, params);
    EXPECT_EQ(r.stats.dtlbMisses, 0u);
}

} // namespace
} // namespace ooo
} // namespace dscalar
