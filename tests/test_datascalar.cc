/** @file
 * Integration tests for the DataScalar system: SPSD execution,
 * ESP protocol invariants, and cache correspondence.
 */

#include <gtest/gtest.h>

#include "core/datascalar.hh"
#include "core/distribution.hh"
#include "driver/driver.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace core {
namespace {

using namespace prog::reg;
using prog::Assembler;
using prog::Program;

/** Streaming kernel over several pages of data with a checksum. */
Program
streamProgram(unsigned data_pages)
{
    Program p;
    p.name = "stream";
    Addr g = p.allocGlobal(data_pages * prog::pageSize);
    for (Addr off = 0; off < data_pages * prog::pageSize; off += 8)
        p.poke64(g + off, off * 3 + 1);

    Assembler a(p);
    a.la(s1, g);
    a.li(s2, 0);
    a.li(s0, static_cast<std::int32_t>(data_pages * prog::pageSize / 8));
    a.label("loop");
    a.ld(t0, s1, 0);
    a.add(s2, s2, t0);
    a.sd(s2, s1, 0);
    a.addi(s1, s1, 8);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.li(t0, 0xffff);
    a.and_(a0, s2, t0);
    a.syscall(isa::Syscall::PrintInt);
    a.syscall(isa::Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

/** Pointer-chase kernel (dependent addresses, Section 3.2). */
Program
chaseProgram(unsigned cells, unsigned hops)
{
    Program p;
    p.name = "chase";
    Addr heap = p.allocHeap(cells * 8);
    // A shuffled cycle through all cells.
    std::vector<std::uint32_t> order(cells);
    for (std::uint32_t i = 0; i < cells; ++i)
        order[i] = i;
    std::uint64_t x = 99;
    for (std::uint32_t i = cells - 1; i > 0; --i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        std::swap(order[i], order[(x >> 33) % (i + 1)]);
    }
    for (std::uint32_t i = 0; i < cells; ++i) {
        Addr from = heap + 8ull * order[i];
        Addr to = heap + 8ull * order[(i + 1) % cells];
        p.poke64(from, to);
    }

    Assembler a(p);
    a.la(s1, heap + 8ull * order[0]);
    a.li(s0, static_cast<std::int32_t>(hops));
    a.label("loop");
    a.ld(s1, s1, 0);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.add(a0, s1, zero);
    a.syscall(isa::Syscall::PrintInt);
    a.syscall(isa::Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

class DataScalarNodesTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DataScalarNodesTest, CompletesAndDrains)
{
    unsigned nodes = GetParam();
    Program p = streamProgram(8);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = nodes;
    DataScalarSystem sys(p, cfg,
                         driver::figure7PageTable(p, nodes));
    RunResult r = sys.run();

    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_TRUE(sys.protocolDrained());

    // SPSD: every node committed the entire stream.
    for (NodeId n = 0; n < nodes; ++n)
        EXPECT_EQ(sys.node(n).core().committedSeq(), r.instructions);
}

TEST_P(DataScalarNodesTest, BroadcastConservation)
{
    unsigned nodes = GetParam();
    Program p = streamProgram(8);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = nodes;
    DataScalarSystem sys(p, cfg,
                         driver::figure7PageTable(p, nodes));
    sys.run();

    // Every broadcast sent is consumed exactly once at every other
    // node: waiter wake + buffered hit + squash = total broadcasts
    // from all other nodes.
    std::uint64_t sent_total = 0;
    for (NodeId n = 0; n < nodes; ++n)
        sent_total += sys.node(n).nodeStats().totalBroadcasts();

    for (NodeId n = 0; n < nodes; ++n) {
        const auto &bs = sys.node(n).bshr().bshrStats();
        std::uint64_t consumed =
            bs.wokenWaiters + bs.bufferedHits + bs.squashes;
        std::uint64_t from_others =
            sent_total - sys.node(n).nodeStats().totalBroadcasts();
        EXPECT_EQ(consumed, from_others) << "node " << n;
        EXPECT_EQ(bs.deliveries, from_others) << "node " << n;
    }
}

TEST_P(DataScalarNodesTest, CacheCorrespondence)
{
    // The commit-updated tag arrays must be identical across nodes:
    // canonical miss counts per node are equal.
    unsigned nodes = GetParam();
    Program p = streamProgram(8);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = nodes;
    DataScalarSystem sys(p, cfg,
                         driver::figure7PageTable(p, nodes));
    sys.run();

    const auto &ref = sys.node(0).core().coreStats();
    for (NodeId n = 1; n < nodes; ++n) {
        const auto &s = sys.node(n).core().coreStats();
        EXPECT_EQ(s.committed, ref.committed);
        EXPECT_EQ(s.canonicalLoadMisses, ref.canonicalLoadMisses);
        EXPECT_EQ(s.storeCommitMisses, ref.storeCommitMisses);
        EXPECT_EQ(s.dirtyWriteBacks, ref.dirtyWriteBacks);
    }
}

TEST_P(DataScalarNodesTest, EspSendsNoRequestsOrWrites)
{
    unsigned nodes = GetParam();
    Program p = streamProgram(8);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = nodes;
    DataScalarSystem sys(p, cfg,
                         driver::figure7PageTable(p, nodes));
    sys.run();

    using interconnect::MsgKind;
    EXPECT_EQ(sys.bus().messagesOf(MsgKind::Request), 0u);
    EXPECT_EQ(sys.bus().messagesOf(MsgKind::Response), 0u);
    EXPECT_EQ(sys.bus().messagesOf(MsgKind::WriteBack), 0u);
    EXPECT_EQ(sys.bus().messagesOf(MsgKind::Write), 0u);
    if (nodes > 1)
        EXPECT_GT(sys.bus().messagesOf(MsgKind::Broadcast), 0u);
    else
        EXPECT_EQ(sys.bus().totalMessages(), 0u);
}

TEST_P(DataScalarNodesTest, OwnerBroadcastsMatchRemoteCanonicalMisses)
{
    unsigned nodes = GetParam();
    Program p = streamProgram(8);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = nodes;
    DataScalarSystem sys(p, cfg,
                         driver::figure7PageTable(p, nodes));
    sys.run();

    // Total broadcasts == canonical misses to communicated lines
    // (identical at all nodes; take node 0's count of remote fetches
    // + its own broadcasts as the cross-check).
    std::uint64_t sent = 0;
    for (NodeId n = 0; n < nodes; ++n)
        sent += sys.node(n).nodeStats().totalBroadcasts();
    const auto &n0 = sys.node(0);
    const auto &bs = n0.bshr().bshrStats();
    std::uint64_t n0_consumed =
        bs.wokenWaiters + bs.bufferedHits + bs.squashes;
    EXPECT_EQ(n0.nodeStats().totalBroadcasts() + n0_consumed, sent);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, DataScalarNodesTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(DataScalar, PointerChaseMatchesFunctional)
{
    Program p = chaseProgram(512, 3000);
    func::FuncSim ref(p);
    ref.run();

    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 4;
    DataScalarSystem sys(p, cfg, driver::figure7PageTable(p, 4));
    RunResult r = sys.run();
    EXPECT_EQ(r.instructions, ref.retired());
    EXPECT_TRUE(sys.protocolDrained());
    EXPECT_EQ(sys.oracle().output(), ref.output());
}

TEST(DataScalar, SingleNodeHasNoBusTraffic)
{
    Program p = streamProgram(4);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 1;
    DataScalarSystem sys(p, cfg, driver::figure7PageTable(p, 1));
    sys.run();
    EXPECT_EQ(sys.bus().totalMessages(), 0u);
}

TEST(DataScalar, MaxInstsTruncationStillDrains)
{
    Program p = streamProgram(16);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    cfg.maxInsts = 5000;
    DataScalarSystem sys(p, cfg, driver::figure7PageTable(p, 2));
    RunResult r = sys.run();
    EXPECT_EQ(r.instructions, 5000u);
    EXPECT_TRUE(sys.protocolDrained());
}

TEST(DataScalar, ReplicatedDataGeneratesNoBroadcasts)
{
    Program p = streamProgram(4);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    // Replicate everything: page table with no owned pages.
    mem::PageTable table(2);
    for (Addr page : p.touchedPages())
        table.setReplicated(page);
    DataScalarSystem sys(p, cfg, std::move(table));
    sys.run();
    EXPECT_EQ(sys.bus().totalMessages(), 0u);
}

TEST(DataScalar, CapacityCheckAcceptsFittingConfig)
{
    Program p = streamProgram(8);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 4;
    cfg.maxInsts = 1000;
    mem::PageTable table = driver::figure7PageTable(p, 4);
    // Generous capacity: everything fits.
    cfg.memCapacityPages = p.touchedPages().size();
    DataScalarSystem sys(p, cfg, std::move(table));
    EXPECT_GT(sys.run().instructions, 0u);
}

TEST(DataScalarDeath, CapacityCheckRejectsOverflow)
{
    Program p = streamProgram(8);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    // Fewer pages than even the replicated text requires.
    cfg.memCapacityPages = 1;
    EXPECT_EXIT(DataScalarSystem(p, cfg,
                                 driver::figure7PageTable(p, 2)),
                ::testing::ExitedWithCode(1), "capacity");
}

TEST(DataScalar, BlockDistributionAffectsOwnershipNotResult)
{
    Program p = streamProgram(12);
    SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 4;
    DataScalarSystem s1(p, cfg, driver::figure7PageTable(p, 4, 1));
    DataScalarSystem s2(p, cfg, driver::figure7PageTable(p, 4, 4));
    RunResult r1 = s1.run();
    RunResult r2 = s2.run();
    EXPECT_EQ(r1.instructions, r2.instructions);
    EXPECT_TRUE(s1.protocolDrained());
    EXPECT_TRUE(s2.protocolDrained());
}

} // namespace
} // namespace core
} // namespace dscalar
