/** @file Unit tests for the sparse physical memory. */

#include <gtest/gtest.h>

#include "mem/phys_mem.hh"
#include "prog/assembler.hh"
#include "prog/program.hh"

namespace dscalar {
namespace mem {
namespace {

TEST(PhysMem, UnbackedReadsZero)
{
    PhysMem m;
    EXPECT_EQ(m.read(0x12345678, 8), 0u);
    EXPECT_EQ(m.backedPages(), 0u);
}

TEST(PhysMem, ReadWriteRoundTrip)
{
    PhysMem m;
    m.write(0x1000, 8, 0xfedcba9876543210ULL);
    EXPECT_EQ(m.read(0x1000, 8), 0xfedcba9876543210ULL);
    // Little-endian sub-reads.
    EXPECT_EQ(m.read(0x1000, 4), 0x76543210ULL);
    EXPECT_EQ(m.read(0x1004, 4), 0xfedcba98ULL);
    EXPECT_EQ(m.read(0x1000, 1), 0x10ULL);
}

TEST(PhysMem, WritesAreIsolatedBetweenPages)
{
    PhysMem m;
    m.write(prog::pageSize - 8, 8, ~0ULL);
    m.write(prog::pageSize, 8, 0x42);
    EXPECT_EQ(m.read(prog::pageSize - 8, 8), ~0ULL);
    EXPECT_EQ(m.read(prog::pageSize, 8), 0x42u);
    EXPECT_EQ(m.backedPages(), 2u);
}

TEST(PhysMem, PartialWriteKeepsNeighbours)
{
    PhysMem m;
    m.write(0x2000, 8, ~0ULL);
    m.write(0x2002, 1, 0);
    // Byte 2 (bits [23:16]) cleared, neighbours intact.
    EXPECT_EQ(m.read(0x2000, 8), 0xffffffffff00ffffULL);
}

TEST(PhysMem, LoadProgramPlacesTextAndData)
{
    prog::Program p;
    prog::Assembler a(p);
    a.nop();
    a.halt();
    a.finalize();
    Addr g = p.allocGlobal(16);
    p.poke64(g, 0x1234);

    PhysMem m;
    m.loadProgram(p);
    EXPECT_EQ(m.read(p.textBaseAddr(), 4),
              static_cast<std::uint64_t>(p.textWord(0)));
    EXPECT_EQ(m.read(g, 8), 0x1234u);
    // Stack pages are backed.
    EXPECT_GE(m.backedPages(),
              2u + p.stackSize / prog::pageSize);
}

TEST(PhysMemDeath, PageCrossingAccessPanics)
{
    PhysMem m;
    EXPECT_DEATH(m.read(prog::pageSize - 4, 8), "crosses a page");
    EXPECT_DEATH(m.write(prog::pageSize - 1, 4, 0), "crosses a page");
}

TEST(PhysMemDeath, BadSizePanics)
{
    PhysMem m;
    EXPECT_DEATH(m.read(0, 3), "unsupported access size");
}

} // namespace
} // namespace mem
} // namespace dscalar
