/** @file Unit tests for the shared dynamic-instruction stream. */

#include <gtest/gtest.h>

#include "ooo/oracle_stream.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace ooo {
namespace {

using namespace prog::reg;

prog::Program
countdownProgram(int n)
{
    prog::Program p;
    prog::Assembler a(p);
    a.li(t0, n);
    a.label("loop");
    a.addi(t0, t0, -1);
    a.bne(t0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

TEST(OracleStream, ProducesCompleteStream)
{
    prog::Program p = countdownProgram(3);
    func::FuncSim sim(p);
    OracleStream stream(sim);

    // li, (addi, bne) x3, halt = 8 records.
    EXPECT_TRUE(stream.available(7));
    EXPECT_FALSE(stream.available(8));
    EXPECT_TRUE(stream.ended());
    EXPECT_EQ(stream.endSeq(), 8u);
    EXPECT_EQ(stream.get(7).inst.op, isa::Opcode::HALT);
}

TEST(OracleStream, SequentialSeqNumbers)
{
    prog::Program p = countdownProgram(5);
    func::FuncSim sim(p);
    OracleStream stream(sim);
    for (InstSeq s = 0; stream.available(s); ++s)
        EXPECT_EQ(stream.get(s).seq, s);
}

TEST(OracleStream, MultipleConsumersSeeSameRecords)
{
    prog::Program p = countdownProgram(10);
    func::FuncSim sim(p);
    OracleStream stream(sim);

    // Consumer A runs ahead; consumer B re-reads older entries.
    ASSERT_TRUE(stream.available(15));
    auto pc15 = stream.get(15).pc;
    auto pc3 = stream.get(3).pc;
    ASSERT_TRUE(stream.available(3));
    EXPECT_EQ(stream.get(3).pc, pc3);
    EXPECT_EQ(stream.get(15).pc, pc15);
}

TEST(OracleStream, TrimReleasesWholeChunksOnly)
{
    // li + (addi, bne) x3000 + halt = 6002 records: two chunks.
    prog::Program p = countdownProgram(3000);
    func::FuncSim sim(p);
    OracleStream stream(sim);
    ASSERT_TRUE(stream.available(6001));
    std::size_t before = stream.bufferedCount();
    ASSERT_EQ(before, 6002u);

    // Trimming inside the first chunk releases nothing...
    stream.trim(5);
    EXPECT_EQ(stream.bufferedCount(), before);
    EXPECT_EQ(stream.get(5).seq, 5u); // still accessible

    // ...and records just below a consumed chunk boundary keep the
    // chunk alive.
    stream.trim(OracleStream::kChunkRecords - 1);
    EXPECT_EQ(stream.bufferedCount(), before);

    // Once every record of the first chunk is passed, it goes at
    // once.
    stream.trim(OracleStream::kChunkRecords + 1);
    EXPECT_EQ(stream.bufferedCount(),
              before - OracleStream::kChunkRecords);
    EXPECT_EQ(stream.get(OracleStream::kChunkRecords + 1).seq,
              OracleStream::kChunkRecords + 1);
}

TEST(OracleStream, MaxInstsTruncates)
{
    prog::Program p = countdownProgram(1000);
    func::FuncSim sim(p);
    OracleStream stream(sim, 50);
    EXPECT_TRUE(stream.available(49));
    EXPECT_FALSE(stream.available(50));
    EXPECT_TRUE(stream.ended());
    EXPECT_EQ(stream.endSeq(), 50u);
}

TEST(OracleStreamDeath, TrimmedAccessPanics)
{
    prog::Program p = countdownProgram(3000);
    func::FuncSim sim(p);
    OracleStream stream(sim);
    ASSERT_TRUE(stream.available(6001));
    stream.trim(OracleStream::kChunkRecords);
    // get() itself only asserts in debug builds; the probe is the
    // guaranteed diagnostic in every build type.
    EXPECT_DEATH(stream.available(2), "trimmed");
}

} // namespace
} // namespace ooo
} // namespace dscalar
