/** @file Unit tests for captured instruction traces and replay. */

#include <gtest/gtest.h>

#include "core/distribution.hh"
#include "driver/driver.hh"
#include "func/inst_trace.hh"
#include "ooo/oracle_stream.hh"
#include "prog/assembler.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace func {
namespace {

using namespace prog::reg;

prog::Program
countdownProgram(int n)
{
    prog::Program p;
    prog::Assembler a(p);
    a.li(t0, n);
    a.label("loop");
    a.addi(t0, t0, -1);
    a.bne(t0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

prog::Program
compressProgram()
{
    return workloads::findWorkload("compress_s").build(1);
}

prog::Program
printingCountdownProgram(int n)
{
    // li + (mv, syscall, addi, bne) x n + halt: prints n..1, one
    // PrintInt per loop iteration.
    prog::Program p;
    prog::Assembler a(p);
    a.li(t0, n);
    a.label("loop");
    a.addi(a0, t0, 0);
    a.syscall(isa::Syscall::PrintInt);
    a.addi(t0, t0, -1);
    a.bne(t0, zero, "loop");
    a.halt();
    a.finalize();
    return p;
}

TEST(InstTrace, CaptureMatchesLiveExecution)
{
    prog::Program p = compressProgram();
    constexpr InstSeq budget = 8000;
    auto trace = InstTrace::capture(p, budget);
    ASSERT_EQ(trace->length(), budget);

    // Every captured record must round-trip to exactly what a fresh
    // functional run produces, field by field.
    FuncSim sim(p);
    for (InstSeq seq = 0; seq < trace->length(); ++seq) {
        DynInst live;
        ASSERT_TRUE(sim.step(&live));
        DynInst replayed;
        trace->expand(seq, replayed);
        ASSERT_EQ(replayed.seq, live.seq);
        ASSERT_EQ(replayed.pc, live.pc);
        ASSERT_EQ(isa::encode(replayed.inst), isa::encode(live.inst));
        ASSERT_EQ(replayed.effAddr, live.effAddr);
        ASSERT_EQ(replayed.memSize, live.memSize);
        ASSERT_EQ(replayed.nextPc, live.nextPc);
    }
}

TEST(InstTrace, RecordsHaltAndLength)
{
    // li + (addi, bne) x10 + halt = 22 records, run to completion.
    prog::Program p = countdownProgram(10);
    auto full = InstTrace::capture(p);
    EXPECT_EQ(full->length(), 22u);
    EXPECT_TRUE(full->programHalted());

    // A budget below the program length is a prefix, not a halt.
    auto prefix = InstTrace::capture(p, 10);
    EXPECT_EQ(prefix->length(), 10u);
    EXPECT_FALSE(prefix->programHalted());
}

TEST(InstTrace, KeepsSyscallOutput)
{
    prog::Program p = compressProgram();
    constexpr InstSeq budget = 50000;
    auto trace = InstTrace::capture(p, budget);

    FuncSim sim(p);
    sim.run(budget);
    EXPECT_EQ(trace->output(), sim.output());
}

TEST(InstTrace, OutputPrefixMatchesTruncatedLiveRun)
{
    prog::Program p = printingCountdownProgram(50); // 202 records
    auto trace = InstTrace::capture(p);
    ASSERT_TRUE(trace->programHalted());
    EXPECT_EQ(trace->outputPrefix(0), trace->output());

    // At every truncation point the prefix must be exactly what a
    // live run stopped at that budget prints — replaying a trace at
    // a smaller budget must not leak output from beyond it.
    for (InstSeq budget : {1, 2, 3, 41, 100, 201, 202, 500}) {
        FuncSim sim(p);
        sim.run(budget);
        EXPECT_EQ(trace->outputPrefix(budget), sim.output())
            << "budget " << budget;
    }
}

TEST(InstTrace, ReplayRejectsUnderCoveringTrace)
{
    prog::Program p = compressProgram();
    auto prefix = InstTrace::capture(p, 1000);
    ASSERT_FALSE(prefix->programHalted());
    // Budgets the capture covers replay fine...
    ooo::OracleStream ok(prefix, 1000);
    EXPECT_TRUE(ok.available(999));
    // ...but a run-to-completion or larger budget would silently
    // simulate fewer instructions than a live run; it must die.
    EXPECT_DEATH(ooo::OracleStream(prefix, 0), "cannot cover");
    EXPECT_DEATH(ooo::OracleStream(prefix, 1001), "cannot cover");
}

TEST(InstTrace, ReplayStreamMatchesLiveStream)
{
    prog::Program p = compressProgram();
    constexpr InstSeq budget = 6000; // spans two chunks
    auto trace = InstTrace::capture(p, budget);

    FuncSim sim(p);
    ooo::OracleStream live(sim, budget);
    ooo::OracleStream replay(trace, budget);
    EXPECT_FALSE(live.replaying());
    EXPECT_TRUE(replay.replaying());

    for (InstSeq seq = 0;; ++seq) {
        bool has = live.available(seq);
        ASSERT_EQ(replay.available(seq), has);
        if (!has)
            break;
        const DynInst &a = live.get(seq);
        const DynInst &b = replay.get(seq);
        ASSERT_EQ(b.seq, a.seq);
        ASSERT_EQ(b.pc, a.pc);
        ASSERT_EQ(isa::encode(b.inst), isa::encode(a.inst));
        ASSERT_EQ(b.effAddr, a.effAddr);
        ASSERT_EQ(b.memSize, a.memSize);
        ASSERT_EQ(b.nextPc, a.nextPc);
    }
    EXPECT_EQ(live.ended(), replay.ended());
    EXPECT_EQ(live.endSeq(), replay.endSeq());
}

TEST(InstTrace, ReplayTruncatesBelowTraceLength)
{
    prog::Program p = compressProgram();
    auto trace = InstTrace::capture(p, 6000);
    ooo::OracleStream stream(trace, 1000);
    EXPECT_TRUE(stream.available(999));
    EXPECT_FALSE(stream.available(1000));
    EXPECT_TRUE(stream.ended());
    EXPECT_EQ(stream.endSeq(), 1000u);
}

TEST(InstTrace, TrimDropsChunkReferences)
{
    // li + (addi, bne) x3000 + halt = 6002 records: two chunks.
    prog::Program p = countdownProgram(3000);
    auto trace = InstTrace::capture(p);
    ASSERT_EQ(trace->numChunks(), 2u);
    long base = trace->chunk(0).use_count();

    {
        ooo::OracleStream stream(trace, 0);
        EXPECT_EQ(trace->chunk(0).use_count(), base + 1);
        ASSERT_TRUE(stream.available(6001));

        // Advancing past the first chunk releases the stream's
        // reference into the shared trace; the trace itself still
        // holds the chunk.
        stream.trim(ooo::OracleStream::kChunkRecords);
        EXPECT_EQ(trace->chunk(0).use_count(), base);
        EXPECT_EQ(trace->chunk(1).use_count(), base + 1);
    }
    EXPECT_EQ(trace->chunk(1).use_count(), base);
}

TEST(InstTrace, AnalysesMatchFunctionalRun)
{
    prog::Program p = compressProgram();
    constexpr InstSeq budget = 10000;
    auto trace = InstTrace::capture(p, budget);

    // Page heat, Table 1 traffic, and Table 2 datathreads rederived
    // from the trace must equal the execution-driven versions
    // exactly — same accesses, same order, same cache state.
    core::PageHeat heat_live = driver::profilePages(p, budget);
    core::PageHeat heat_trace = driver::profilePages(*trace);
    EXPECT_EQ(heat_trace, heat_live);

    driver::TrafficResult t_live = driver::measureEspTraffic(p, budget);
    driver::TrafficResult t_trace = driver::measureEspTraffic(*trace);
    EXPECT_EQ(t_trace.requestBytes, t_live.requestBytes);
    EXPECT_EQ(t_trace.responseBytes, t_live.responseBytes);
    EXPECT_EQ(t_trace.writeBackBytes, t_live.writeBackBytes);
    EXPECT_EQ(t_trace.requests, t_live.requests);
    EXPECT_EQ(t_trace.responses, t_live.responses);
    EXPECT_EQ(t_trace.writeBacks, t_live.writeBacks);

    core::DistributionConfig dist;
    dist.numNodes = 4;
    dist.replicateText = false;
    dist.replicatedDataPages = p.touchedPages().size() / 4;
    core::ReplicationReport rep;
    mem::PageTable ptable =
        core::buildPageTable(p, dist, &heat_live, &rep);
    driver::DatathreadResult d_live =
        driver::measureDatathreads(p, ptable, rep, budget);
    driver::DatathreadResult d_trace =
        driver::measureDatathreads(*trace, ptable, rep);
    EXPECT_EQ(d_trace.meanAll, d_live.meanAll);
    EXPECT_EQ(d_trace.meanText, d_live.meanText);
    EXPECT_EQ(d_trace.meanData, d_live.meanData);
    EXPECT_EQ(d_trace.meanRepl, d_live.meanRepl);
    EXPECT_EQ(d_trace.missRefs, d_live.missRefs);
}

} // namespace
} // namespace func
} // namespace dscalar
