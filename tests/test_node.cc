/** @file
 * Unit tests for DataScalarNode's protocol glue, using a mock
 * broadcast port — the Figure 2 semantics (replicated vs
 * communicated loads and stores) verified path by path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/node.hh"
#include "core/sim_config.hh"
#include "driver/driver.hh"
#include "func/func_sim.hh"
#include "ooo/oracle_stream.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace core {
namespace {

struct SentMsg
{
    NodeId src;
    Addr line;
    interconnect::MsgKind kind;
    Cycle ready;
};

class MockPort : public BroadcastPort
{
  public:
    void
    broadcast(NodeId src, Addr line, interconnect::MsgKind kind,
              Cycle ready) override
    {
        sent.push_back(SentMsg{src, line, kind, ready});
    }
    std::vector<SentMsg> sent;
};

/** Fixture: a 2-node page table with one owned page per node plus
 *  a replicated page; node under test is node 0. */
class NodeTest : public ::testing::Test
{
  protected:
    NodeTest()
        : table_(2), program_(), oracle_((prepare(), program_)),
          stream_(oracle_), cfg_(driver::paperConfig()),
          node_(0, cfg_, table_, stream_, port_)
    {
    }

    void
    prepare()
    {
        prog::Assembler a(program_);
        a.halt();
        a.finalize();
        table_.setReplicated(replPage);
        table_.setOwned(ownPage, 0);
        table_.setOwned(remotePage, 1);
    }

    static constexpr Addr replPage = 0x10 * prog::pageSize;
    static constexpr Addr ownPage = 0x20 * prog::pageSize;
    static constexpr Addr remotePage = 0x30 * prog::pageSize;

    mem::PageTable table_;
    prog::Program program_;
    func::FuncSim oracle_;
    ooo::OracleStream stream_;
    SimConfig cfg_;
    MockPort port_;
    DataScalarNode node_{0, cfg_, table_, stream_, port_};
};

TEST_F(NodeTest, OwnedLoadFetchesLocallyAndBroadcasts)
{
    ooo::FillResult r = node_.startLineFetch(ownPage, 100);
    EXPECT_NE(r.readyAt, cycleMax);
    EXPECT_FALSE(r.foundWaiting);
    ASSERT_EQ(port_.sent.size(), 1u);
    EXPECT_EQ(port_.sent[0].line, ownPage);
    EXPECT_EQ(port_.sent[0].kind,
              interconnect::MsgKind::Broadcast);
    // Broadcast leaves after the local fill completes.
    EXPECT_GE(port_.sent[0].ready, 100u);
    EXPECT_EQ(node_.nodeStats().ownerBroadcasts, 1u);
}

TEST_F(NodeTest, ReplicatedLoadIsLocalAndSilent)
{
    ooo::FillResult r = node_.startLineFetch(replPage, 100);
    EXPECT_NE(r.readyAt, cycleMax);
    EXPECT_TRUE(port_.sent.empty());
}

TEST_F(NodeTest, RemoteLoadWaitsOnBshr)
{
    ooo::FillResult r = node_.startLineFetch(remotePage, 100);
    EXPECT_EQ(r.readyAt, cycleMax); // deferred
    EXPECT_TRUE(port_.sent.empty());
    EXPECT_EQ(node_.bshr().bshrStats().waiterAllocs, 1u);
    EXPECT_EQ(node_.nodeStats().remoteFetches, 1u);
}

TEST_F(NodeTest, RemoteLoadFindsBufferedBroadcast)
{
    node_.deliverBroadcast(remotePage, 50);
    ooo::FillResult r = node_.startLineFetch(remotePage, 100);
    EXPECT_TRUE(r.foundWaiting);
    EXPECT_EQ(r.readyAt, 100u + cfg_.bshrLatency);
    EXPECT_EQ(node_.bshr().bshrStats().bufferedHits, 1u);
}

TEST_F(NodeTest, UnclaimedMissAtOwnerSendsReparative)
{
    node_.onUnclaimedCanonicalMiss(ownPage, 200);
    ASSERT_EQ(port_.sent.size(), 1u);
    EXPECT_EQ(port_.sent[0].kind,
              interconnect::MsgKind::ReparativeBroadcast);
    EXPECT_EQ(node_.nodeStats().reparativeBroadcasts, 1u);
}

TEST_F(NodeTest, UnclaimedMissAtNonOwnerSquashes)
{
    node_.onUnclaimedCanonicalMiss(remotePage, 200);
    EXPECT_TRUE(port_.sent.empty());
    // The squash consumes the broadcast when it arrives.
    node_.deliverBroadcast(remotePage, 250);
    EXPECT_EQ(node_.bshr().bshrStats().squashes, 1u);
    EXPECT_TRUE(node_.bshr().drained());
}

TEST_F(NodeTest, UnclaimedMissOnReplicatedIsLocal)
{
    node_.onUnclaimedCanonicalMiss(replPage, 200);
    EXPECT_TRUE(port_.sent.empty());
    EXPECT_TRUE(node_.bshr().drained());
}

TEST_F(NodeTest, WriteBackCompletesOnlyWhereLocal)
{
    node_.writeBack(ownPage, 10);
    node_.writeBack(replPage, 10);
    node_.writeBack(remotePage, 10);
    EXPECT_EQ(node_.nodeStats().localWriteBacks, 2u);
    EXPECT_EQ(node_.nodeStats().droppedWriteBacks, 1u);
    EXPECT_TRUE(port_.sent.empty()); // never any bus traffic
}

TEST_F(NodeTest, StoreMissCompletesOnlyWhereLocal)
{
    node_.storeMiss(ownPage, 10);
    node_.storeMiss(remotePage, 10);
    EXPECT_EQ(node_.nodeStats().localStoreWrites, 1u);
    EXPECT_EQ(node_.nodeStats().droppedStoreWrites, 1u);
    EXPECT_TRUE(port_.sent.empty());
}

TEST_F(NodeTest, InstructionFetchIsLocal)
{
    Cycle done = node_.fetchInstLine(replPage, 5);
    EXPECT_GT(done, 5u);
    EXPECT_TRUE(port_.sent.empty());
}

TEST_F(NodeTest, RemoteInstructionFetchIsFatal)
{
    EXPECT_EXIT(node_.fetchInstLine(remotePage, 5),
                ::testing::ExitedWithCode(1), "replicated");
}

} // namespace
} // namespace core
} // namespace dscalar
