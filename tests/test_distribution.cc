/** @file Unit tests for static page replication and distribution. */

#include <gtest/gtest.h>

#include "core/distribution.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace core {
namespace {

prog::Program
programWithPages(std::size_t text_words, std::size_t data_pages)
{
    prog::Program p;
    prog::Assembler a(p);
    for (std::size_t i = 0; i < text_words; ++i)
        a.nop();
    a.halt();
    a.finalize();
    p.allocGlobal(data_pages * prog::pageSize);
    return p;
}

TEST(Distribution, TextReplicatedDataDistributed)
{
    prog::Program p = programWithPages(10, 8);
    DistributionConfig cfg;
    cfg.numNodes = 4;
    ReplicationReport rep;
    mem::PageTable table = buildPageTable(p, cfg, nullptr, &rep);

    EXPECT_GE(rep.text, 1u);
    EXPECT_EQ(rep.global, 0u);
    EXPECT_TRUE(table.isReplicated(p.textBaseAddr()));

    // Every data page has exactly one owner; coverage is balanced.
    std::size_t owned[4] = {};
    for (Addr page : p.touchedPages()) {
        if (prog::segmentOf(page) == prog::Segment::Text)
            continue;
        EXPECT_FALSE(table.isReplicated(page));
        ++owned[table.owner(page)];
    }
    std::size_t total = owned[0] + owned[1] + owned[2] + owned[3];
    for (int n = 0; n < 4; ++n) {
        EXPECT_GT(owned[n], 0u);
        EXPECT_LE(owned[n], total / 4 + 1);
    }
}

TEST(Distribution, RoundRobinBlockGranularity)
{
    prog::Program p = programWithPages(2, 12);
    DistributionConfig cfg;
    cfg.numNodes = 2;
    cfg.blockPages = 3;
    mem::PageTable table = buildPageTable(p, cfg);

    // Walk the data pages: ownership must change only at block
    // boundaries of 3 consecutive pages.
    NodeId expect = 0;
    unsigned in_block = 0;
    for (Addr page : p.touchedPages()) {
        if (prog::segmentOf(page) == prog::Segment::Text)
            continue;
        EXPECT_EQ(table.owner(page), expect);
        if (++in_block == 3) {
            in_block = 0;
            expect = (expect + 1) % 2;
        }
    }
}

TEST(Distribution, HotPagesReplicatedByHeat)
{
    prog::Program p = programWithPages(2, 6);
    Addr data0 = prog::globalBase;

    PageHeat heat;
    heat[data0 + 2 * prog::pageSize] = 1000; // hottest
    heat[data0 + 4 * prog::pageSize] = 500;
    heat[data0] = 1;

    DistributionConfig cfg;
    cfg.numNodes = 2;
    cfg.replicatedDataPages = 2;
    ReplicationReport rep;
    mem::PageTable table = buildPageTable(p, cfg, &heat, &rep);

    EXPECT_TRUE(table.isReplicated(data0 + 2 * prog::pageSize));
    EXPECT_TRUE(table.isReplicated(data0 + 4 * prog::pageSize));
    EXPECT_FALSE(table.isReplicated(data0));
    EXPECT_EQ(rep.global, 2u);
}

TEST(Distribution, TextCanBeDistributedForStudies)
{
    prog::Program p = programWithPages(3000, 4); // >1 text page
    DistributionConfig cfg;
    cfg.numNodes = 2;
    cfg.replicateText = false;
    mem::PageTable table = buildPageTable(p, cfg);
    EXPECT_FALSE(table.isReplicated(p.textBaseAddr()));
}

TEST(Distribution, StackPagesAreDistributedToo)
{
    prog::Program p = programWithPages(2, 2);
    DistributionConfig cfg;
    cfg.numNodes = 2;
    mem::PageTable table = buildPageTable(p, cfg);
    EXPECT_FALSE(table.isReplicated(p.stackBase()));
}

TEST(Distribution, DeterministicOnTies)
{
    prog::Program p = programWithPages(2, 6);
    PageHeat heat; // all zero => ties broken by address
    DistributionConfig cfg;
    cfg.numNodes = 2;
    cfg.replicatedDataPages = 3;
    mem::PageTable t1 = buildPageTable(p, cfg, &heat);
    mem::PageTable t2 = buildPageTable(p, cfg, &heat);
    for (Addr page : p.touchedPages()) {
        EXPECT_EQ(t1.isReplicated(page), t2.isReplicated(page));
        if (!t1.isReplicated(page)) {
            EXPECT_EQ(t1.owner(page), t2.owner(page));
        }
    }
}

TEST(DistributionDeath, HeatRequiredForHotReplication)
{
    prog::Program p = programWithPages(2, 2);
    DistributionConfig cfg;
    cfg.replicatedDataPages = 1;
    EXPECT_EXIT(buildPageTable(p, cfg), ::testing::ExitedWithCode(1),
                "heat");
}

} // namespace
} // namespace core
} // namespace dscalar
