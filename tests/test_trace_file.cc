/**
 * @file
 * Persistent trace store tests: raw and compressed files round-trip
 * every record byte-identically, a disk-loaded trace replays to the
 * same results as the live capture on all three system families,
 * every corruption class (bad magic, foreign version, truncation,
 * flipped payload byte, wrong key, stale digest) is rejected before
 * a record is trusted, non-sequential streams refuse to serialize,
 * and the TraceCache disk path survives corrupt files and concurrent
 * writers racing the same key. Carries the trace-store label so the
 * mmap/validation paths also run under the sanitizer presets.
 */

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/run_request.hh"
#include "driver/trace_cache.hh"
#include "func/inst_trace.hh"
#include "func/trace_file.hh"
#include "isa/instruction.hh"

namespace dscalar {
namespace {

constexpr InstSeq kBudget = 6000; // > 1 chunk (4096 records)
constexpr char kKey[] = "compress_s/s1/m6000";

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

std::string
tempDir(const std::string &leaf)
{
    // Pid-suffixed so a rerun never starts with a warm store left
    // behind by a previous test process.
    std::string dir = ::testing::TempDir() + leaf + "." +
                      std::to_string(::getpid());
    ::mkdir(dir.c_str(), 0777);
    return dir;
}

/** A captured trace plus the digest a store stamps it with. */
struct Captured
{
    std::shared_ptr<const prog::Program> program;
    std::shared_ptr<const func::InstTrace> trace;
    std::uint64_t digest = 0;
};

Captured
captureCompress()
{
    driver::TraceCache cache;
    Captured c;
    c.program = cache.program("compress_s", 1);
    c.trace = func::InstTrace::capture(*c.program, kBudget);
    c.digest = c.program->imageDigest();
    return c;
}

void
expectTracesIdentical(const func::InstTrace &a, const func::InstTrace &b)
{
    ASSERT_EQ(a.length(), b.length());
    EXPECT_EQ(a.programHalted(), b.programHalted());
    EXPECT_EQ(a.output(), b.output());
    ASSERT_EQ(a.outputMarks().size(), b.outputMarks().size());
    for (std::size_t i = 0; i < a.outputMarks().size(); ++i) {
        EXPECT_EQ(a.outputMarks()[i].seq, b.outputMarks()[i].seq);
        EXPECT_EQ(a.outputMarks()[i].bytes, b.outputMarks()[i].bytes);
    }
    func::DynInst ra, rb;
    for (InstSeq s = 0; s < a.length(); ++s) {
        a.expand(s, ra);
        b.expand(s, rb);
        ASSERT_EQ(ra.pc, rb.pc) << "record " << s;
        ASSERT_EQ(isa::encode(ra.inst), isa::encode(rb.inst))
            << "record " << s;
        ASSERT_EQ(ra.effAddr, rb.effAddr) << "record " << s;
        ASSERT_EQ(ra.memSize, rb.memSize) << "record " << s;
        ASSERT_EQ(ra.nextPc, rb.nextPc) << "record " << s;
    }
}

/** Overwrite @p count bytes of @p path at @p offset. */
void
patchFile(const std::string &path, std::uint64_t offset,
          const void *bytes, std::size_t count)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(static_cast<const char *>(bytes),
            static_cast<std::streamsize>(count));
    ASSERT_TRUE(f.good());
}

std::uint64_t
fileSize(const std::string &path)
{
    struct stat st{};
    EXPECT_EQ(::stat(path.c_str(), &st), 0);
    return static_cast<std::uint64_t>(st.st_size);
}

class TraceFileRoundTrip : public ::testing::TestWithParam<bool>
{};

TEST_P(TraceFileRoundTrip, PreservesEveryRecord)
{
    const bool compressed = GetParam();
    Captured c = captureCompress();
    ASSERT_EQ(c.trace->length(), kBudget);
    ASSERT_GT(c.trace->numChunks(), 1u);

    std::string path = tempPath(compressed ? "rt_compressed.dstrace"
                                           : "rt_raw.dstrace");
    func::TraceSaveOptions opts;
    opts.compressed = compressed;
    std::string error;
    ASSERT_TRUE(
        func::saveTraceFile(path, *c.trace, kKey, c.digest, error, opts))
        << error;

    func::TraceFileInfo info;
    auto loaded = func::loadTraceFile(path, kKey, c.digest, error, &info);
    ASSERT_NE(loaded, nullptr) << error;
    expectTracesIdentical(*c.trace, *loaded);

    EXPECT_EQ(info.version, func::kTraceFileVersion);
    EXPECT_EQ(info.compressed, compressed);
    EXPECT_EQ(info.records, kBudget);
    EXPECT_EQ(info.imageDigest, c.digest);
    EXPECT_EQ(info.key, kKey);
    EXPECT_EQ(info.fileBytes, fileSize(path));
    EXPECT_GT(info.payloadBytes, 0u);

    // Loaded chunks borrow from the mapping (raw columns point into
    // the file; even compressed chunks keep word/memSize borrowed).
    for (std::size_t i = 0; i < loaded->numChunks(); ++i)
        EXPECT_TRUE(loaded->chunk(i)->borrowed()) << "chunk " << i;

    func::TraceFileInfo probe;
    ASSERT_TRUE(func::probeTraceFile(path, probe, error)) << error;
    EXPECT_EQ(probe.records, info.records);
    EXPECT_EQ(probe.compressed, compressed);
    EXPECT_EQ(probe.fileBytes, info.fileBytes);
    EXPECT_EQ(probe.key, kKey);
    ASSERT_EQ(::unlink(path.c_str()), 0);
}

INSTANTIATE_TEST_SUITE_P(RawAndCompressed, TraceFileRoundTrip,
                         ::testing::Values(false, true),
                         [](const auto &p) {
                             return p.param ? "compressed" : "raw";
                         });

TEST(TraceFile, ReplayedLoadMatchesLiveRunOnEverySystem)
{
    // The acceptance bar for the store: a disk-loaded trace must
    // drive all three system families to results byte-identical to
    // replaying the in-memory capture.
    Captured c = captureCompress();
    std::string path = tempPath("replay.dstrace");
    std::string error;
    ASSERT_TRUE(
        func::saveTraceFile(path, *c.trace, kKey, c.digest, error))
        << error;
    auto loaded = func::loadTraceFile(path, kKey, c.digest, error);
    ASSERT_NE(loaded, nullptr) << error;

    for (driver::SystemKind kind : {driver::SystemKind::Perfect,
                                    driver::SystemKind::DataScalar,
                                    driver::SystemKind::Traditional}) {
        SCOPED_TRACE(driver::systemKindName(kind));
        driver::RunRequest req;
        req.workload = "compress_s";
        req.system = kind;
        req.config.maxInsts = kBudget;
        req.config.numNodes = 2;

        req.trace = c.trace;
        driver::RunResponse live = driver::runOne(req);
        ASSERT_TRUE(live.ok()) << live.error;

        req.trace = loaded;
        driver::RunResponse disk = driver::runOne(req);
        ASSERT_TRUE(disk.ok()) << disk.error;

        EXPECT_EQ(disk.statsJson(), live.statsJson());
        EXPECT_EQ(disk.output, live.output);
    }
    ASSERT_EQ(::unlink(path.c_str()), 0);
}

TEST(TraceFile, EmptyExpectKeySkipsIdentityChecks)
{
    Captured c = captureCompress();
    std::string path = tempPath("anykey.dstrace");
    std::string error;
    ASSERT_TRUE(
        func::saveTraceFile(path, *c.trace, kKey, c.digest, error))
        << error;
    // Inspection tools pass an empty key: the file must load without
    // knowing what program it belongs to.
    auto loaded = func::loadTraceFile(path, "", 0, error);
    ASSERT_NE(loaded, nullptr) << error;
    EXPECT_EQ(loaded->length(), kBudget);
    ASSERT_EQ(::unlink(path.c_str()), 0);
}

TEST(TraceFile, RejectsEveryCorruptionClass)
{
    Captured c = captureCompress();
    std::string good = tempPath("good.dstrace");
    std::string error;
    ASSERT_TRUE(
        func::saveTraceFile(good, *c.trace, kKey, c.digest, error))
        << error;
    std::uint64_t bytes = fileSize(good);

    auto freshCopy = [&](const char *leaf) {
        std::string path = tempPath(leaf);
        std::ifstream in(good, std::ios::binary);
        std::ofstream out(path, std::ios::binary);
        out << in.rdbuf();
        return path;
    };

    { // Bad magic: first byte flipped.
        std::string path = freshCopy("badmagic.dstrace");
        char zero = 0;
        patchFile(path, 0, &zero, 1);
        EXPECT_EQ(func::loadTraceFile(path, kKey, c.digest, error),
                  nullptr);
        EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
    }
    { // Foreign format version (u32 at offset 8).
        std::string path = freshCopy("badversion.dstrace");
        std::uint32_t version = 999;
        patchFile(path, 8, &version, sizeof(version));
        EXPECT_EQ(func::loadTraceFile(path, kKey, c.digest, error),
                  nullptr);
        EXPECT_NE(error.find("unsupported version"), std::string::npos)
            << error;
    }
    { // Truncated mid-payload.
        std::string path = freshCopy("short.dstrace");
        ASSERT_EQ(::truncate(path.c_str(),
                             static_cast<off_t>(bytes - 64)),
                  0);
        EXPECT_EQ(func::loadTraceFile(path, kKey, c.digest, error),
                  nullptr);
        EXPECT_NE(error.find("truncated"), std::string::npos) << error;
    }
    { // One flipped payload byte must fail the checksum.
        std::string path = freshCopy("flipped.dstrace");
        std::uint64_t offset = bytes / 2;
        std::ifstream in(path, std::ios::binary);
        in.seekg(static_cast<std::streamoff>(offset));
        char byte = 0;
        in.read(&byte, 1);
        in.close();
        byte = static_cast<char>(byte ^ 0x40);
        patchFile(path, offset, &byte, 1);
        EXPECT_EQ(func::loadTraceFile(path, kKey, c.digest, error),
                  nullptr);
        EXPECT_NE(error.find("checksum"), std::string::npos) << error;
    }
    { // A different workload's file.
        EXPECT_EQ(func::loadTraceFile(good, "go_s/s1/m6000", c.digest,
                                      error),
                  nullptr);
        EXPECT_NE(error.find("key mismatch"), std::string::npos)
            << error;
    }
    { // Same key, recompiled program (stale digest).
        EXPECT_EQ(func::loadTraceFile(good, kKey, c.digest + 1, error),
                  nullptr);
        EXPECT_NE(error.find("digest"), std::string::npos) << error;
    }
    { // Missing file.
        EXPECT_EQ(func::loadTraceFile(tempPath("absent.dstrace"), kKey,
                                      c.digest, error),
                  nullptr);
        EXPECT_FALSE(error.empty());
    }
    // The pristine file still loads after all of the above.
    auto loaded = func::loadTraceFile(good, kKey, c.digest, error);
    ASSERT_NE(loaded, nullptr) << error;
    ASSERT_EQ(::unlink(good.c_str()), 0);
}

TEST(TraceFile, SaveRejectsNonSequentialStream)
{
    // The format shares one pc column between pc and nextPc, which is
    // only sound while record i+1 executes at record i's nextPc. A
    // hand-built stream violating that must refuse to serialize
    // rather than silently rewrite its control flow.
    auto chunk = std::make_shared<func::InstTrace::Chunk>();
    chunk->pcStore = {0x1000, 0x1004};
    chunk->wordStore = {0, 0};
    chunk->effAddrStore = {invalidAddr, invalidAddr};
    chunk->memSizeStore = {0, 0};
    chunk->nextPcStore = {0x2000, 0x1008}; // 0x2000 != pc[1]
    chunk->seal();

    func::InstTrace::Parts parts;
    parts.chunks.push_back(chunk);
    parts.length = 2;
    parts.halted = true;
    auto trace = func::InstTrace::fromParts(std::move(parts));

    std::string path = tempPath("nonseq.dstrace");
    std::string error;
    EXPECT_FALSE(func::saveTraceFile(path, *trace, "synthetic", 1,
                                     error));
    EXPECT_NE(error.find("not sequential"), std::string::npos) << error;
    struct stat st{};
    EXPECT_NE(::stat(path.c_str(), &st), 0)
        << "failed save must not leave a file behind";
}

TEST(TraceStore, SecondCacheWarmsFromDiskByteIdentically)
{
    std::string dir = tempDir("store_warm");

    driver::TraceCache cold;
    cold.setTraceDir(dir);
    auto captured = cold.acquire("compress_s", 1, kBudget);
    ASSERT_NE(captured, nullptr);
    EXPECT_EQ(cold.captures(), 1u);
    EXPECT_EQ(cold.diskHits(), 0u);
    EXPECT_EQ(cold.diskWrites(), 1u);

    // A fresh cache over the same directory — the restarted-process
    // case — must serve the key from disk without any capture.
    driver::TraceCache warm;
    warm.setTraceDir(dir);
    auto loaded = warm.acquire("compress_s", 1, kBudget);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(warm.captures(), 0u);
    EXPECT_EQ(warm.diskHits(), 1u);
    EXPECT_EQ(warm.diskWrites(), 0u);
    expectTracesIdentical(*captured, *loaded);
}

TEST(TraceStore, CorruptStoredFileFallsBackToCapture)
{
    std::string dir = tempDir("store_corrupt");
    std::uint64_t digest = 0;
    {
        driver::TraceCache cache;
        cache.setTraceDir(dir);
        cache.acquire("compress_s", 1, kBudget);
        digest = cache.program("compress_s", 1)->imageDigest();
    }
    std::string path =
        dir + "/" +
        driver::TraceCache::traceFileName("compress_s", 1, kBudget,
                                          digest);
    std::uint64_t offset = fileSize(path) / 2;
    char byte = 0x7f;
    patchFile(path, offset, &byte, 1);

    driver::TraceCache cache;
    cache.setTraceDir(dir);
    auto trace = cache.acquire("compress_s", 1, kBudget);
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->length(), kBudget);
    EXPECT_EQ(cache.captures(), 1u) << "corrupt file must re-capture";
    EXPECT_EQ(cache.diskHits(), 0u);
    // The re-capture rewrote a valid file over the corrupt one.
    EXPECT_EQ(cache.diskWrites(), 1u);
    std::string error;
    EXPECT_NE(func::loadTraceFile(path, "", 0, error), nullptr)
        << error;
}

TEST(TraceStore, ConcurrentWritersPublishOneCompleteFile)
{
    // Separate caches (distinct processes in miniature) racing the
    // same key: atomic tmp+rename publication means whoever wins, the
    // stored file is complete and every racer gets a valid trace.
    std::string dir = tempDir("store_race");
    constexpr unsigned kWriters = 6;
    std::vector<std::shared_ptr<const func::InstTrace>> got(kWriters);
    std::vector<std::thread> writers;
    for (unsigned i = 0; i < kWriters; ++i) {
        writers.emplace_back([&dir, &got, i] {
            driver::TraceCache cache;
            cache.setTraceDir(dir);
            got[i] = cache.acquire("compress_s", 1, kBudget);
        });
    }
    for (auto &w : writers)
        w.join();

    for (unsigned i = 0; i < kWriters; ++i) {
        ASSERT_NE(got[i], nullptr) << "writer " << i;
        expectTracesIdentical(*got[0], *got[i]);
    }

    driver::TraceCache reader;
    reader.setTraceDir(dir);
    auto loaded = reader.acquire("compress_s", 1, kBudget);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(reader.captures(), 0u);
    EXPECT_EQ(reader.diskHits(), 1u);
    expectTracesIdentical(*got[0], *loaded);
}

TEST(TraceStore, RunOneTraceDirWarmsAcrossCacheLessCalls)
{
    // The dsrun path: no shared TraceCache, just `trace_dir` on the
    // request. The first call captures and stores; the second —
    // a brand-new private cache — must replay from disk with the
    // same stats document.
    std::string dir = tempDir("store_runone");
    driver::RunRequest req;
    req.workload = "compress_s";
    req.system = driver::SystemKind::DataScalar;
    req.config.maxInsts = kBudget;
    req.config.numNodes = 2;
    req.traceDir = dir;

    driver::RunResponse cold = driver::runOne(req);
    ASSERT_TRUE(cold.ok()) << cold.error;
    EXPECT_FALSE(cold.cacheHit);

    driver::RunResponse warm = driver::runOne(req);
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_TRUE(warm.cacheHit) << "second run must warm from disk";
    EXPECT_EQ(warm.statsJson(), cold.statsJson());
    EXPECT_EQ(warm.output, cold.output);
}

} // namespace
} // namespace dscalar
