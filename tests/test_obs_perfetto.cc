/** @file Tests for obs::PerfettoTraceSink (trace-event export). */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/datascalar.hh"
#include "driver/driver.hh"
#include "obs/perfetto.hh"
#include "prog/assembler.hh"

#include "mini_json.hh"

namespace dscalar {
namespace {

using namespace prog::reg;

mini_json::Value
parseOrDie(const std::string &text)
{
    std::string error;
    mini_json::Value v = mini_json::parse(text, error);
    EXPECT_EQ(error, "") << text;
    return v;
}

/** First event with @p name, or nullptr. */
const mini_json::Value *
findEvent(const mini_json::Value &doc, const std::string &name)
{
    for (const auto &ev : doc.find("traceEvents")->array)
        if (const auto *n = ev.find("name"))
            if (n->str == name)
                return &ev;
    return nullptr;
}

TEST(PerfettoTest, InstantEventOnNodeTrack)
{
    std::ostringstream os;
    obs::PerfettoTraceSink sink(os);
    sink.event({1, 25, TraceEventKind::Broadcast, 0x4000});
    sink.finish();

    mini_json::Value doc = parseOrDie(os.str());
    const mini_json::Value *ev = findEvent(doc, "broadcast");
    ASSERT_NE(ev, nullptr);
    EXPECT_EQ(ev->find("ph")->str, "i");
    EXPECT_EQ(ev->find("ts")->number, 25);
    EXPECT_EQ(ev->find("tid")->number, 2); // node 1 -> tid 2
    EXPECT_EQ(ev->find("s")->str, "t");
    EXPECT_EQ(ev->find("args")->find("line")->str, "0x4000");

    // The node track was announced by a thread_name record.
    bool named = false;
    for (const auto &e : doc.find("traceEvents")->array) {
        const mini_json::Value *tid = e.find("tid");
        if (e.find("ph")->str == "M" &&
            e.find("name")->str == "thread_name" && tid &&
            tid->number == 2)
            named = e.find("args")->find("name")->str == "node 1";
    }
    EXPECT_TRUE(named);
    EXPECT_EQ(sink.eventCount(), 1u);
}

TEST(PerfettoTest, FaultEventsLandOnInterconnectTrack)
{
    std::ostringstream os;
    obs::PerfettoTraceSink sink(os);
    sink.event({0, 10, TraceEventKind::FaultDrop, 0x80});
    sink.event({1, 20, TraceEventKind::FaultDelay, 0x80, 7});
    sink.finish();

    mini_json::Value doc = parseOrDie(os.str());
    const mini_json::Value *drop = findEvent(doc, "fault-drop");
    ASSERT_NE(drop, nullptr);
    EXPECT_EQ(drop->find("tid")->number, 0);

    // FaultDelay renders as a duration slice of the injected delay.
    const mini_json::Value *delay = findEvent(doc, "fault-delay");
    ASSERT_NE(delay, nullptr);
    EXPECT_EQ(delay->find("ph")->str, "X");
    EXPECT_EQ(delay->find("tid")->number, 0);
    EXPECT_EQ(delay->find("ts")->number, 20);
    EXPECT_EQ(delay->find("dur")->number, 7);
}

TEST(PerfettoTest, RerequestToWakeBecomesRecoverySlice)
{
    std::ostringstream os;
    obs::PerfettoTraceSink sink(os);
    sink.event({0, 100, TraceEventKind::Rerequest, 0x1000});
    sink.event({0, 160, TraceEventKind::BshrWake, 0x1000});
    sink.finish();

    mini_json::Value doc = parseOrDie(os.str());
    const mini_json::Value *rec = findEvent(doc, "recovery");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->find("ph")->str, "X");
    EXPECT_EQ(rec->find("ts")->number, 100);
    EXPECT_EQ(rec->find("dur")->number, 60);
    EXPECT_EQ(rec->find("tid")->number, 1); // node 0's track
}

TEST(PerfettoTest, UnresolvedWindowClosedAtFinish)
{
    std::ostringstream os;
    obs::PerfettoTraceSink sink(os);
    sink.event({0, 100, TraceEventKind::Rerequest, 0x1000});
    sink.finish();
    sink.finish(); // idempotent

    mini_json::Value doc = parseOrDie(os.str());
    const mini_json::Value *rec =
        findEvent(doc, "recovery (unresolved)");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->find("dur")->number, 0);
}

TEST(PerfettoTest, DestructorFinishesTheJson)
{
    std::ostringstream os;
    {
        obs::PerfettoTraceSink sink(os);
        sink.event({0, 1, TraceEventKind::Broadcast, 0x40});
    }
    parseOrDie(os.str()); // complete document without explicit finish
}

TEST(PerfettoTest, FullRunProducesParseableTrace)
{
    prog::Program p;
    Addr g = p.allocGlobal(6 * prog::pageSize);
    for (Addr off = 0; off < 6 * prog::pageSize; off += 8)
        p.poke64(g + off, off);
    prog::Assembler a(p);
    a.la(s1, g);
    a.li(s0, 6 * static_cast<std::int32_t>(prog::pageSize) / 64);
    a.label("loop");
    a.ld(t0, s1, 0);
    a.addi(s1, s1, 64);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "loop");
    a.halt();
    a.finalize();

    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = 2;
    std::ostringstream os;
    obs::PerfettoTraceSink sink(os);
    core::DataScalarSystem sys(p, cfg,
                               driver::figure7PageTable(p, 2));
    sys.addTraceSink(&sink);
    sys.run();
    sink.finish();

    mini_json::Value doc = parseOrDie(os.str());
    EXPECT_GT(doc.find("traceEvents")->array.size(), 10u);
    EXPECT_GT(sink.eventCount(), 0u);
    // Both node tracks must be present on a 2-node run.
    bool node0 = false, node1 = false;
    for (const auto &e : doc.find("traceEvents")->array) {
        if (e.find("ph")->str != "M")
            continue;
        const auto *n = e.find("args")->find("name");
        node0 |= n->str == "node 0";
        node1 |= n->str == "node 1";
    }
    EXPECT_TRUE(node0);
    EXPECT_TRUE(node1);
}

} // namespace
} // namespace dscalar
