#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace dscalar {
namespace isa {

namespace detail {

const OpInfo opTable[static_cast<std::size_t>(
    Opcode::NUM_OPCODES)] = {
    {"nop",     Format::None,    OpClass::Misc},

    {"add",     Format::RRR,     OpClass::IntAlu},
    {"sub",     Format::RRR,     OpClass::IntAlu},
    {"mul",     Format::RRR,     OpClass::IntMul},
    {"div",     Format::RRR,     OpClass::IntDiv},
    {"rem",     Format::RRR,     OpClass::IntDiv},
    {"and",     Format::RRR,     OpClass::IntAlu},
    {"or",      Format::RRR,     OpClass::IntAlu},
    {"xor",     Format::RRR,     OpClass::IntAlu},
    {"sll",     Format::RRR,     OpClass::IntAlu},
    {"srl",     Format::RRR,     OpClass::IntAlu},
    {"sra",     Format::RRR,     OpClass::IntAlu},
    {"slt",     Format::RRR,     OpClass::IntAlu},
    {"sltu",    Format::RRR,     OpClass::IntAlu},

    {"addi",    Format::RRI,     OpClass::IntAlu},
    {"andi",    Format::RRI,     OpClass::IntAlu},
    {"ori",     Format::RRI,     OpClass::IntAlu},
    {"xori",    Format::RRI,     OpClass::IntAlu},
    {"slli",    Format::RRI,     OpClass::IntAlu},
    {"srli",    Format::RRI,     OpClass::IntAlu},
    {"srai",    Format::RRI,     OpClass::IntAlu},
    {"slti",    Format::RRI,     OpClass::IntAlu},
    {"lui",     Format::RI,      OpClass::IntAlu},

    {"fadd",    Format::RRR,     OpClass::FpAdd},
    {"fsub",    Format::RRR,     OpClass::FpAdd},
    {"fmul",    Format::RRR,     OpClass::FpMul},
    {"fdiv",    Format::RRR,     OpClass::FpDiv},
    {"fslt",    Format::RRR,     OpClass::FpAdd},
    {"cvtif",   Format::RRI,     OpClass::FpAdd},
    {"cvtfi",   Format::RRI,     OpClass::FpAdd},

    {"lw",      Format::Mem,     OpClass::MemRead},
    {"sw",      Format::Mem,     OpClass::MemWrite},
    {"ld",      Format::Mem,     OpClass::MemRead},
    {"sd",      Format::Mem,     OpClass::MemWrite},
    {"lbu",     Format::Mem,     OpClass::MemRead},
    {"sb",      Format::Mem,     OpClass::MemWrite},

    {"beq",     Format::Branch,  OpClass::Ctrl},
    {"bne",     Format::Branch,  OpClass::Ctrl},
    {"blt",     Format::Branch,  OpClass::Ctrl},
    {"bge",     Format::Branch,  OpClass::Ctrl},
    {"j",       Format::Jump,    OpClass::Ctrl},
    {"jal",     Format::Jump,    OpClass::Ctrl},
    {"jr",      Format::JumpReg, OpClass::Ctrl},

    {"syscall", Format::Sys,     OpClass::Misc},
    {"halt",    Format::None,    OpClass::Misc},
};

void
badOpcode(std::size_t idx)
{
    panic("bad opcode %zu", idx);
}

} // namespace detail

} // namespace isa
} // namespace dscalar
