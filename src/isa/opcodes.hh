/**
 * @file
 * Opcode space of the simulated ISA.
 *
 * The ISA is a small MIPS-like load/store machine: 32 general
 * registers of 64 bits each (r0 hardwired to zero), 32-bit fixed
 * instruction words, integer and double-precision FP operations on
 * the same register file, word (4 B) and doubleword (8 B) memory
 * accesses, compare-and-branch, jumps, and a SYSCALL escape. This is
 * the SimpleScalar-PISA role in the original paper: just enough ISA
 * to run real (synthetic) programs execution-driven.
 */

#ifndef DSCALAR_ISA_OPCODES_HH
#define DSCALAR_ISA_OPCODES_HH

#include <cstddef>
#include <cstdint>

namespace dscalar {
namespace isa {

/** Primary opcode; every operation has a distinct 6-bit code. */
enum class Opcode : std::uint8_t {
    NOP = 0,

    // Integer register-register ALU.
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR,
    SLL, SRL, SRA,
    SLT, SLTU,

    // Integer register-immediate ALU.
    ADDI, ANDI, ORI, XORI,
    SLLI, SRLI, SRAI,
    SLTI, LUI,

    // Floating point (IEEE double carried in the 64-bit registers).
    FADD, FSUB, FMUL, FDIV,
    FSLT,          ///< rd = (double)rs < (double)rt ? 1 : 0
    CVTIF,         ///< rd = (double)(int64)rs
    CVTFI,         ///< rd = (int64)(double)rs

    // Memory.
    LW,            ///< rd = zext32(mem4[rs + imm])
    SW,            ///< mem4[rs + imm] = rt
    LD,            ///< rd = mem8[rs + imm]
    SD,            ///< mem8[rs + imm] = rt
    LBU,           ///< rd = zext8(mem1[rs + imm])
    SB,            ///< mem1[rs + imm] = rt

    // Control.
    BEQ, BNE, BLT, BGE,
    J, JAL, JR,

    // System.
    SYSCALL,       ///< service selected by imm, args in r4..r7
    HALT,

    NUM_OPCODES
};

/** Instruction operand layout. */
enum class Format : std::uint8_t {
    None,      ///< NOP, HALT
    RRR,       ///< rd, rs, rt
    RRI,       ///< rd, rs, imm
    RI,        ///< rd, imm (LUI)
    Mem,       ///< load: rd, imm(rs); store: rt, imm(rs)
    Branch,    ///< rs, rt, imm (word offset)
    Jump,      ///< imm (absolute word target)
    JumpReg,   ///< rs
    Sys        ///< imm = syscall number
};

/** Functional-unit class used by the timing model. */
enum class OpClass : std::uint8_t {
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    MemRead,
    MemWrite,
    Ctrl,
    Misc
};

/** Static per-opcode metadata. */
struct OpInfo
{
    const char *mnemonic;
    Format format;
    OpClass opClass;
};

namespace detail {
extern const OpInfo opTable[static_cast<std::size_t>(
    Opcode::NUM_OPCODES)];
void badOpcode(std::size_t idx);
} // namespace detail

/** @return metadata for @p op; panics on an out-of-range value. */
inline const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    if (idx >= static_cast<std::size_t>(Opcode::NUM_OPCODES))
        detail::badOpcode(idx);
    return detail::opTable[idx];
}

/** Syscall service numbers (carried in the imm field of SYSCALL). */
enum class Syscall : std::int32_t {
    Exit = 0,
    PrintInt = 1,
    PrintChar = 2,
    PrintFp = 3
};

} // namespace isa
} // namespace dscalar

#endif // DSCALAR_ISA_OPCODES_HH
