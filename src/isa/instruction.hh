/**
 * @file
 * Decoded instruction representation, binary encoding, and
 * disassembly.
 *
 * Binary layout of a 32-bit instruction word:
 *
 *   [31:26] opcode
 *   [25:21] field A   [20:16] field B   [15:11] field C
 *   [15:0]  imm16 (overlaps C)          [25:0]  imm26 (jumps)
 *
 * Field assignment per Format is documented next to decode().
 */

#ifndef DSCALAR_ISA_INSTRUCTION_HH
#define DSCALAR_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace dscalar {
namespace isa {

/** A fully decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIndex rd = 0;      ///< destination register
    RegIndex rs = 0;      ///< first source register
    RegIndex rt = 0;      ///< second source register
    std::int32_t imm = 0; ///< immediate / offset / syscall number

    const OpInfo &info() const { return opInfo(op); }

    bool
    isLoad() const
    {
        return op == Opcode::LW || op == Opcode::LD ||
               op == Opcode::LBU;
    }
    bool
    isStore() const
    {
        return op == Opcode::SW || op == Opcode::SD ||
               op == Opcode::SB;
    }
    bool isMem() const { return isLoad() || isStore(); }
    bool
    isCtrl() const
    {
        return info().opClass == OpClass::Ctrl;
    }
    bool
    isBranch() const
    {
        return op == Opcode::BEQ || op == Opcode::BNE ||
               op == Opcode::BLT || op == Opcode::BGE;
    }
    bool isSyscall() const { return op == Opcode::SYSCALL; }
    bool isHalt() const { return op == Opcode::HALT; }

    /** Access width in bytes for memory operations. */
    unsigned
    memSize() const
    {
        if (op == Opcode::LD || op == Opcode::SD)
            return 8;
        if (op == Opcode::LBU || op == Opcode::SB)
            return 1;
        return 4;
    }

    /**
     * Destination register for dependence tracking, or -1 when the
     * instruction writes no register.
     */
    int
    destReg() const
    {
        switch (info().format) {
          case Format::RRR:
          case Format::RRI:
          case Format::RI:
            return rd == 0 ? -1 : rd;
          case Format::Mem:
            return isLoad() && rd != 0 ? rd : -1;
          case Format::Jump:
            return op == Opcode::JAL ? 31 : -1;
          case Format::Sys:
            return 2; // result register by convention
          default:
            return -1;
        }
    }

    /**
     * Source registers for dependence tracking.
     * @param srcs out-array of at least 2 entries.
     * @return number of sources written (0..2).
     */
    int
    srcRegs(RegIndex srcs[2]) const
    {
        int n = 0;
        auto add = [&](RegIndex r) {
            if (r != 0)
                srcs[n++] = r;
        };
        switch (info().format) {
          case Format::RRR:
            add(rs);
            add(rt);
            break;
          case Format::RRI:
            add(rs);
            break;
          case Format::Mem:
            add(rs);
            if (isStore())
                add(rt);
            break;
          case Format::Branch:
            add(rs);
            add(rt);
            break;
          case Format::JumpReg:
            add(rs);
            break;
          case Format::Sys:
            // Syscalls read r4/r5 by convention; modelled as two
            // sources.
            srcs[n++] = 4;
            srcs[n++] = 5;
            break;
          default:
            break;
        }
        return n;
    }

    bool operator==(const Instruction &other) const = default;
};

/** Encode @p inst into a 32-bit instruction word. */
std::uint32_t encode(const Instruction &inst);

/** Decode a 32-bit instruction word; panics on a bad opcode field. */
Instruction decode(std::uint32_t word);

/** Human-readable rendering, e.g.\ "addi r4, r4, 8". */
std::string disassemble(const Instruction &inst);

} // namespace isa
} // namespace dscalar

#endif // DSCALAR_ISA_INSTRUCTION_HH
