#include "isa/instruction.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dscalar {
namespace isa {

namespace {

constexpr std::uint32_t
field(std::uint32_t v, unsigned shift, unsigned width)
{
    return (v & ((1u << width) - 1)) << shift;
}

} // namespace

std::uint32_t
encode(const Instruction &inst)
{
    std::uint32_t w = field(static_cast<std::uint32_t>(inst.op), 26, 6);
    auto imm16 = static_cast<std::uint32_t>(inst.imm) & 0xffffu;
    switch (inst.info().format) {
      case Format::None:
        break;
      case Format::RRR:
        w |= field(inst.rd, 21, 5) | field(inst.rs, 16, 5) |
             field(inst.rt, 11, 5);
        break;
      case Format::RRI:
        w |= field(inst.rd, 21, 5) | field(inst.rs, 16, 5) | imm16;
        break;
      case Format::RI:
        w |= field(inst.rd, 21, 5) | imm16;
        break;
      case Format::Mem:
        // Loads carry the destination in A; stores the value reg.
        w |= field(inst.isLoad() ? inst.rd : inst.rt, 21, 5) |
             field(inst.rs, 16, 5) | imm16;
        break;
      case Format::Branch:
        w |= field(inst.rs, 21, 5) | field(inst.rt, 16, 5) | imm16;
        break;
      case Format::Jump:
        w |= static_cast<std::uint32_t>(inst.imm) & 0x03ffffffu;
        break;
      case Format::JumpReg:
        w |= field(inst.rs, 21, 5);
        break;
      case Format::Sys:
        w |= imm16;
        break;
    }
    return w;
}

Instruction
decode(std::uint32_t word)
{
    auto opval = bits(word, 31, 26);
    panic_if(opval >= static_cast<std::uint64_t>(Opcode::NUM_OPCODES),
             "decode: bad opcode field %llu in %08x",
             static_cast<unsigned long long>(opval), word);

    Instruction inst;
    inst.op = static_cast<Opcode>(opval);
    auto a = static_cast<RegIndex>(bits(word, 25, 21));
    auto b = static_cast<RegIndex>(bits(word, 20, 16));
    auto c = static_cast<RegIndex>(bits(word, 15, 11));
    auto imm16s = static_cast<std::int32_t>(sext(bits(word, 15, 0), 16));
    auto imm16u = static_cast<std::int32_t>(bits(word, 15, 0));

    switch (inst.info().format) {
      case Format::None:
        break;
      case Format::RRR:
        inst.rd = a;
        inst.rs = b;
        inst.rt = c;
        break;
      case Format::RRI:
        inst.rd = a;
        inst.rs = b;
        // Logical immediates are zero-extended, arithmetic ones
        // sign-extended (MIPS convention).
        inst.imm = (inst.op == Opcode::ANDI || inst.op == Opcode::ORI ||
                    inst.op == Opcode::XORI)
                       ? imm16u
                       : imm16s;
        break;
      case Format::RI:
        inst.rd = a;
        inst.imm = imm16u;
        break;
      case Format::Mem:
        if (inst.isLoad())
            inst.rd = a;
        else
            inst.rt = a;
        inst.rs = b;
        inst.imm = imm16s;
        break;
      case Format::Branch:
        inst.rs = a;
        inst.rt = b;
        inst.imm = imm16s;
        break;
      case Format::Jump:
        inst.imm = static_cast<std::int32_t>(bits(word, 25, 0));
        break;
      case Format::JumpReg:
        inst.rs = a;
        break;
      case Format::Sys:
        inst.imm = imm16u;
        break;
    }
    return inst;
}

std::string
disassemble(const Instruction &inst)
{
    const OpInfo &oi = inst.info();
    switch (oi.format) {
      case Format::None:
        return oi.mnemonic;
      case Format::RRR:
        return csprintf("%s r%u, r%u, r%u", oi.mnemonic, inst.rd, inst.rs,
                        inst.rt);
      case Format::RRI:
        return csprintf("%s r%u, r%u, %d", oi.mnemonic, inst.rd, inst.rs,
                        inst.imm);
      case Format::RI:
        return csprintf("%s r%u, %d", oi.mnemonic, inst.rd, inst.imm);
      case Format::Mem:
        return csprintf("%s r%u, %d(r%u)", oi.mnemonic,
                        inst.isLoad() ? inst.rd : inst.rt, inst.imm,
                        inst.rs);
      case Format::Branch:
        return csprintf("%s r%u, r%u, %d", oi.mnemonic, inst.rs, inst.rt,
                        inst.imm);
      case Format::Jump:
        return csprintf("%s 0x%x", oi.mnemonic,
                        static_cast<unsigned>(inst.imm) * 4);
      case Format::JumpReg:
        return csprintf("%s r%u", oi.mnemonic, inst.rs);
      case Format::Sys:
        return csprintf("%s %d", oi.mnemonic, inst.imm);
    }
    return "<bad>";
}

} // namespace isa
} // namespace dscalar
