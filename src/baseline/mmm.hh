/**
 * @file
 * The synchronous Massive Memory Machine's ESP execution model
 * (Section 2, Figure 1): minicomputers in lock-step, one lead
 * processor broadcasting its owned operands; a reference to an
 * operand the lead does not own causes a lead change, stalling all
 * processors until the new lead catches up.
 */

#ifndef DSCALAR_BASELINE_MMM_HH
#define DSCALAR_BASELINE_MMM_HH

#include <vector>

#include "common/types.hh"

namespace dscalar {
namespace baseline {

/** Timing knobs of the lock-step ESP model. */
struct MmmConfig
{
    /** Cycles from one broadcast to the next by the same lead. */
    Cycle pipelinedStep = 1;
    /** Stall when the lead changes (new lead catches up, one
     *  serialized off-chip delay). */
    Cycle leadChangePenalty = 3;
};

/** Timeline of one synchronous ESP run. */
struct MmmResult
{
    /** Cycle at which each reference's word reaches all processors. */
    std::vector<Cycle> receiveTime;
    /** Lead processor while each reference was broadcast. */
    std::vector<NodeId> leader;
    unsigned leadChanges = 0;
    Cycle totalCycles = 0;
    /** Lengths of consecutive same-owner runs ("datathreads"). */
    std::vector<unsigned> threadLengths;
};

/**
 * Run the lock-step model over a reference string.
 * @param owners owner processor of each referenced word, in order.
 */
MmmResult runMmmEsp(const std::vector<NodeId> &owners,
                    const MmmConfig &config = MmmConfig{});

/**
 * Count serialized off-chip crossings for a *dependent* access chain
 * (each address depends on the previous value), as in Figure 3.
 *
 * @param owners owner of each operand along the chain.
 * @return {DataScalar crossings (pipelined broadcasts: one per
 *          owner transition, plus the final broadcast), traditional
 *          crossings (request+response per operand not held by the
 *          requesting chip, which is chip 0)}.
 */
struct ChainCrossings
{
    unsigned dataScalar = 0;
    unsigned traditional = 0;
};
ChainCrossings chainCrossings(const std::vector<NodeId> &owners);

} // namespace baseline
} // namespace dscalar

#endif // DSCALAR_BASELINE_MMM_HH
