#include "baseline/traditional.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dscalar {
namespace baseline {

using interconnect::MsgKind;

TraditionalSystem::TraditionalSystem(
    const prog::Program &program, const core::SimConfig &config,
    mem::PageTable ptable,
    std::shared_ptr<const func::InstTrace> trace)
    : config_(config), oracle_(ooo::makeOracle(program, trace)),
      replayOutput_(trace ? trace->outputPrefix(config.maxInsts)
                          : std::string()),
      stream_(ooo::makeStream(oracle_.get(), std::move(trace),
                              config.maxInsts)),
      ptable_(std::move(ptable)),
      bus_(config.bus), onChipMem_(config.mem), offChipMem_(config.mem),
      core_(config.core, stream_, *this)
{
}

Cycle
TraditionalSystem::offChipLineRead(Addr line, Cycle now)
{
    // Two serialized bus crossings per operand: the request out, the
    // response back, with the memory access in between (Figure 3b).
    unsigned line_size = config_.core.dcache.lineSize;
    Cycle req_arrive = bus_.send(MsgKind::Request, line_size, now);
    Cycle mem_done = offChipMem_.request(line, req_arrive);
    return bus_.send(MsgKind::Response, line_size, mem_done);
}

ooo::FillResult
TraditionalSystem::startLineFetch(Addr line, Cycle now)
{
    if (onChip(line))
        return {onChipMem_.request(line, now), false};
    ++offChipReads_;
    return {offChipLineRead(line, now), false};
}

void
TraditionalSystem::onUnclaimedCanonicalMiss(Addr line, Cycle now)
{
    // The canonical fill needs the line even though the issue-time
    // access was served by a stale copy; perform the (non-blocking)
    // fetch traffic.
    if (onChip(line)) {
        onChipMem_.request(line, now);
    } else {
        ++offChipReads_;
        offChipLineRead(line, now);
    }
}

void
TraditionalSystem::writeBack(Addr line, Cycle now)
{
    if (onChip(line)) {
        onChipMem_.request(line, now);
    } else {
        ++offChipWrites_;
        Cycle arrive =
            bus_.send(MsgKind::WriteBack, config_.core.dcache.lineSize,
                      now);
        offChipMem_.request(line, arrive);
    }
}

void
TraditionalSystem::storeMiss(Addr line, Cycle now)
{
    if (onChip(line)) {
        onChipMem_.request(line, now);
    } else {
        ++offChipWrites_;
        Cycle arrive = bus_.send(MsgKind::Write, 8, now);
        offChipMem_.request(line, arrive);
    }
}

Cycle
TraditionalSystem::fetchInstLine(Addr line, Cycle now)
{
    if (onChip(line))
        return onChipMem_.request(line, now);
    ++offChipReads_;
    return offChipLineRead(line, now);
}

core::RunResult
TraditionalSystem::run()
{
    panic_if(ran_, "TraditionalSystem::run called twice");
    ran_ = true;

    Cycle now = 0;
    Cycle last_progress = 0;
    InstSeq last_commit = 0;
    while (!core_.done()) {
        core_.tick(now);
        if (core_.committedSeq() > last_commit) {
            last_commit = core_.committedSeq();
            last_progress = now;
            stream_.trim(last_commit);
        } else if (now - last_progress > config_.watchdogCycles) {
            panic("traditional system: no commit progress for %llu "
                  "cycles", (unsigned long long)config_.watchdogCycles);
        }
        ++now;
        if (config_.eventDriven && !core_.done()) {
            // Skip cycles where the core cannot act; a hung core
            // still reaches the watchdog cycle and panics there.
            Cycle deadline =
                last_progress + config_.watchdogCycles + 1;
            now = std::max(
                now,
                std::min(core_.nextEventCycle(now - 1), deadline));
        }
    }

    core::RunResult result;
    result.cycles = now;
    result.instructions = stream_.endSeq();
    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.cycles);
    return result;
}

} // namespace baseline
} // namespace dscalar
