#include "baseline/traditional.hh"

#include <algorithm>

#include "baseline/stats_util.hh"
#include "common/logging.hh"
#include "core/parallel_tick.hh"

namespace dscalar {
namespace baseline {

using interconnect::MsgKind;

TraditionalSystem::TraditionalSystem(
    const prog::Program &program, const core::SimConfig &config,
    mem::PageTable ptable,
    std::shared_ptr<const func::InstTrace> trace)
    : config_(config), oracle_(ooo::makeOracle(program, trace)),
      replayOutput_(trace ? trace->outputPrefix(config.maxInsts)
                          : std::string()),
      stream_(ooo::makeStream(oracle_.get(), std::move(trace),
                              config.maxInsts)),
      ptable_(std::move(ptable)),
      bus_(config.bus), onChipMem_(config.mem), offChipMem_(config.mem),
      core_(config.core, stream_, *this)
{
}

Cycle
TraditionalSystem::offChipLineRead(Addr line, Cycle now)
{
    // Two serialized bus crossings per operand: the request out, the
    // response back, with the memory access in between (Figure 3b).
    unsigned line_size = config_.core.dcache.lineSize;
    Cycle req_arrive = bus_.send(MsgKind::Request, line_size, now);
    Cycle mem_done = offChipMem_.request(line, req_arrive);
    return bus_.send(MsgKind::Response, line_size, mem_done);
}

ooo::FillResult
TraditionalSystem::startLineFetch(Addr line, Cycle now)
{
    if (onChip(line))
        return {onChipMem_.request(line, now), false};
    ++offChipReads_;
    return {offChipLineRead(line, now), false};
}

void
TraditionalSystem::onUnclaimedCanonicalMiss(Addr line, Cycle now)
{
    // The canonical fill needs the line even though the issue-time
    // access was served by a stale copy; perform the (non-blocking)
    // fetch traffic.
    if (onChip(line)) {
        onChipMem_.request(line, now);
    } else {
        ++offChipReads_;
        offChipLineRead(line, now);
    }
}

void
TraditionalSystem::writeBack(Addr line, Cycle now)
{
    if (onChip(line)) {
        onChipMem_.request(line, now);
    } else {
        ++offChipWrites_;
        Cycle arrive =
            bus_.send(MsgKind::WriteBack, config_.core.dcache.lineSize,
                      now);
        offChipMem_.request(line, arrive);
    }
}

void
TraditionalSystem::storeMiss(Addr line, Cycle now)
{
    if (onChip(line)) {
        onChipMem_.request(line, now);
    } else {
        ++offChipWrites_;
        Cycle arrive = bus_.send(MsgKind::Write, 8, now);
        offChipMem_.request(line, arrive);
    }
}

Cycle
TraditionalSystem::fetchInstLine(Addr line, Cycle now)
{
    if (onChip(line))
        return onChipMem_.request(line, now);
    ++offChipReads_;
    return offChipLineRead(line, now);
}

core::RunResult
TraditionalSystem::run()
{
    panic_if(ran_, "TraditionalSystem::run called twice");
    ran_ = true;
    // The traditional baseline is a single core: parallel node
    // ticking has exactly one node to tick, so any tickThreads
    // request resolves to the serial loop. Resolved here (rather
    // than ignored) so --tick-threads validation behaves uniformly
    // across systems.
    core::resolveTickThreads(config_.tickThreads, 1);

    unsigned ph_tick = 0;
    if (prof_) {
        ph_tick = prof_->addPhase("tick");
        profStartNs_ = prof_->elapsedNs();
        prof_->lapStart();
    }

    Cycle now = 0;
    Cycle last_progress = 0;
    InstSeq last_commit = 0;
    while (!core_.done()) {
        core_.tick(now);
        if (core_.committedSeq() > last_commit) {
            last_commit = core_.committedSeq();
            last_progress = now;
            stream_.trim(last_commit);
        } else if (now - last_progress > config_.watchdogCycles) {
            panic("traditional system: no commit progress for %llu "
                  "cycles", (unsigned long long)config_.watchdogCycles);
        }
        ++now;
        if (config_.eventDriven && !core_.done()) {
            // Skip cycles where the core cannot act; a hung core
            // still reaches the watchdog cycle and panics there.
            Cycle deadline =
                last_progress + config_.watchdogCycles + 1;
            now = std::max(
                now,
                std::min(core_.nextEventCycle(now - 1), deadline));
        }
        // Cycles through now-1 are final (skipped ones are no-ops).
        if (sampler_)
            sampler_->advance(now - 1);
    }
    if (prof_) {
        prof_->lap(ph_tick);
        profEndNs_ = prof_->elapsedNs();
    }

    core::RunResult result;
    result.cycles = now;
    result.instructions = stream_.endSeq();
    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.cycles);
    lastResult_ = result;
    result.stats = snapshotStats();
    lastResult_.stats = result.stats;
    return result;
}

void
TraditionalSystem::setTraceSink(TraceSink *sink)
{
    tee_.clear();
    if (sink)
        tee_.add(sink);
    applyTraceSinks();
}

void
TraditionalSystem::addTraceSink(TraceSink *sink)
{
    if (sink)
        tee_.add(sink);
    applyTraceSinks();
}

void
TraditionalSystem::applyTraceSinks()
{
    core_.setTraceSink(tee_.empty() ? nullptr : &tee_, 0);
}

void
TraditionalSystem::setSampler(obs::Sampler *sampler)
{
    sampler_ = sampler;
    if (!sampler)
        return;
    sampler->addColumn("commit_rate", obs::Sampler::Mode::Delta,
                       [this] {
                           return static_cast<std::uint64_t>(
                               core_.committedSeq());
                       });
    sampler->addColumn("dcub_depth", obs::Sampler::Mode::Level,
                       [this] {
                           return static_cast<std::uint64_t>(
                               core_.dcubOccupancy());
                       });
    sampler->addColumn("bus_messages", obs::Sampler::Mode::Delta,
                       [this] { return bus_.totalMessages(); });
    sampler->addColumn("bus_busy_cycles", obs::Sampler::Mode::Delta,
                       [this] { return bus_.busyCycles(); });
    sampler->addColumn("offchip_reads", obs::Sampler::Mode::Delta,
                       [this] { return offChipReads_; });
    sampler->addColumn("offchip_writes", obs::Sampler::Mode::Delta,
                       [this] { return offChipWrites_; });
}

std::shared_ptr<const stats::Snapshot>
TraditionalSystem::snapshotStats() const
{
    auto snap = std::make_shared<stats::Snapshot>();
    stats::Snapshot::GroupEntry &sys =
        snap->addGroup("system", "---- TraditionalSystem ----");
    buildRunStats(*snap, sys, lastResult_);
    snap->addCounter(sys, "bus_messages", bus_.totalMessages(),
                     "global-bus transactions");
    snap->addCounter(sys, "bus_bytes", bus_.totalBytes(),
                     "global-bus payload+header bytes");
    snap->addCounter(sys, "bus_busy_cycles", bus_.busyCycles(),
                     "cycles the bus was occupied");
    snap->addCounter(sys, "offchip_reads", offChipReads_,
                     "off-chip line reads");
    snap->addCounter(sys, "offchip_writes", offChipWrites_,
                     "off-chip writes and write-backs");
    buildCoreStats(*snap, core_.coreStats());
    if (prof_)
        obs::addProfileGroup(*snap, *prof_,
                             profEndNs_ - profStartNs_);
    return snap;
}

void
TraditionalSystem::dumpStats(std::ostream &os) const
{
    snapshotStats()->dump(os);
}

} // namespace baseline
} // namespace dscalar
