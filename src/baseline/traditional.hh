/**
 * @file
 * The paper's "more traditional" comparison system (Section 4.3,
 * Figure 6a): the same out-of-order core and commit-time cache
 * update, with 1/N of main memory on-chip and the remainder on dumb
 * memory chips across the same global bus, reached with explicit
 * request/response transactions and off-chip write-backs.
 */

#ifndef DSCALAR_BASELINE_TRADITIONAL_HH
#define DSCALAR_BASELINE_TRADITIONAL_HH

#include <memory>
#include <ostream>
#include <string>

#include "common/logging.hh"
#include "common/trace.hh"
#include "core/sim_config.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "stats/snapshot.hh"
#include "func/func_sim.hh"
#include "func/inst_trace.hh"
#include "interconnect/bus.hh"
#include "mem/main_memory.hh"
#include "mem/page_table.hh"
#include "ooo/core.hh"
#include "ooo/mem_backend.hh"
#include "ooo/oracle_stream.hh"
#include "prog/program.hh"

namespace dscalar {
namespace baseline {

/**
 * Single-processor system with a partitioned (on-chip/off-chip)
 * memory. The supplied page table's node-0 local set (replicated
 * pages plus pages owned by node 0) defines the on-chip fraction,
 * matching "the same amount of on-chip memory as does one chip in
 * each DataScalar experiment".
 */
class TraditionalSystem : private ooo::MemBackend
{
  public:
    /** A non-null @p trace replays a captured stream instead of
     *  executing the program functionally (see driver::TraceCache). */
    TraditionalSystem(const prog::Program &program,
                      const core::SimConfig &config,
                      mem::PageTable ptable,
                      std::shared_ptr<const func::InstTrace> trace =
                          nullptr);

    /** Run to completion (or the configured instruction budget). */
    core::RunResult run();

    const ooo::OoOCore &core() const { return core_; }
    const interconnect::Bus &bus() const { return bus_; }
    /** The live functional oracle; only valid when not replaying. */
    const func::FuncSim &
    oracle() const
    {
        panic_if(!oracle_, "trace-replay run has no live oracle");
        return *oracle_;
    }
    /** Program output of the executed prefix, either backend. */
    const std::string &
    output() const
    {
        return oracle_ ? oracle_->output() : replayOutput_;
    }

    std::uint64_t offChipReads() const { return offChipReads_; }
    std::uint64_t offChipWrites() const { return offChipWrites_; }

    /** Emit core disparity events to exactly @p sink, replacing any
     *  earlier sinks; use addTraceSink to fan out instead. */
    void setTraceSink(TraceSink *sink);
    /** Attach @p sink in addition to any already attached. */
    void addTraceSink(TraceSink *sink);

    /** Register timeline columns (commit rate, DCUB depth, bus
     *  occupancy, off-chip traffic) with @p sampler and advance it
     *  from the run loop; nullptr detaches. */
    void setSampler(obs::Sampler *sampler);

    /** Attach a wall-clock phase profiler (see
     *  core::DataScalarSystem::setProfiler); the single-core loop
     *  reports one coarse "tick" phase. Never perturbs results. */
    void setProfiler(obs::SpanRecorder *prof) { prof_ = prof; }

    /** Write a gem5-style stats dump (rendered from the snapshot). */
    void dumpStats(std::ostream &os) const;
    /** Build the stat snapshot (groups "system" and "core"). */
    std::shared_ptr<const stats::Snapshot> snapshotStats() const;

  private:
    bool onChip(Addr line) const { return ptable_.isLocal(line, 0); }

    // MemBackend ------------------------------------------------------
    ooo::FillResult startLineFetch(Addr line, Cycle now) override;
    void onUnclaimedCanonicalMiss(Addr line, Cycle now) override;
    void writeBack(Addr line, Cycle now) override;
    void storeMiss(Addr line, Cycle now) override;
    Cycle fetchInstLine(Addr line, Cycle now) override;

    /** Request/response round trip for an off-chip line. */
    Cycle offChipLineRead(Addr line, Cycle now);

    core::SimConfig config_;
    std::unique_ptr<func::FuncSim> oracle_; ///< null when replaying
    std::string replayOutput_;
    ooo::OracleStream stream_;
    mem::PageTable ptable_;
    interconnect::Bus bus_;
    mem::MainMemory onChipMem_;
    mem::MainMemory offChipMem_;
    ooo::OoOCore core_;
    std::uint64_t offChipReads_ = 0;
    std::uint64_t offChipWrites_ = 0;
    bool ran_ = false;
    core::RunResult lastResult_;
    TeeTraceSink tee_;
    obs::Sampler *sampler_ = nullptr;
    obs::SpanRecorder *prof_ = nullptr;
    std::uint64_t profStartNs_ = 0;
    std::uint64_t profEndNs_ = 0;

    void applyTraceSinks();
};

} // namespace baseline
} // namespace dscalar

#endif // DSCALAR_BASELINE_TRADITIONAL_HH
