#include "baseline/spmd.hh"

#include <algorithm>

#include "baseline/traditional.hh"
#include "common/logging.hh"

namespace dscalar {
namespace baseline {

SpmdResult
runSpmd(const std::vector<prog::Program> &programs,
        const core::SimConfig &config)
{
    fatal_if(programs.empty(), "SPMD needs at least one program");

    SpmdResult result;
    for (const prog::Program &p : programs) {
        // Every page local: an empty one-node page table treats all
        // pages as replicated, i.e.\ on-chip.
        TraditionalSystem node(p, config, mem::PageTable(1));
        core::RunResult r = node.run();
        panic_if(node.bus().totalMessages() != 0,
                 "SPMD partition generated global traffic");
        result.cycles = std::max(result.cycles, r.cycles);
        result.instructions += r.instructions;
        result.nodes.push_back(r);
    }
    result.aggregateIpc =
        result.cycles ? static_cast<double>(result.instructions) /
                            static_cast<double>(result.cycles)
                      : 0.0;
    return result;
}

} // namespace baseline
} // namespace dscalar
