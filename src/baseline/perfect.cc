#include "baseline/perfect.hh"

#include <algorithm>

#include "baseline/stats_util.hh"
#include "common/logging.hh"
#include "core/parallel_tick.hh"

namespace dscalar {
namespace baseline {

PerfectSystem::PerfectSystem(
    const prog::Program &program, const core::SimConfig &config,
    std::shared_ptr<const func::InstTrace> trace)
    : config_(config), oracle_(ooo::makeOracle(program, trace)),
      replayOutput_(trace ? trace->outputPrefix(config.maxInsts)
                          : std::string()),
      stream_(ooo::makeStream(oracle_.get(), std::move(trace),
                              config.maxInsts)),
      localMem_(config.mem),
      core_([&config] {
          ooo::CoreParams p = config.core;
          p.perfectData = true;
          return p;
      }(), stream_, *this)
{
}

ooo::FillResult
PerfectSystem::startLineFetch(Addr line, Cycle now)
{
    (void)line;
    (void)now;
    panic("perfect data cache should never fetch a data line");
}

void
PerfectSystem::onUnclaimedCanonicalMiss(Addr, Cycle)
{
    panic("perfect data cache has no canonical misses");
}

void
PerfectSystem::writeBack(Addr, Cycle)
{
    panic("perfect data cache has no write-backs");
}

void
PerfectSystem::storeMiss(Addr, Cycle)
{
    panic("perfect data cache has no store misses");
}

Cycle
PerfectSystem::fetchInstLine(Addr line, Cycle now)
{
    return localMem_.request(line, now);
}

core::RunResult
PerfectSystem::run()
{
    panic_if(ran_, "PerfectSystem::run called twice");
    ran_ = true;
    // Single core: tickThreads resolves to the serial loop (see
    // TraditionalSystem::run).
    core::resolveTickThreads(config_.tickThreads, 1);

    unsigned ph_tick = 0;
    if (prof_) {
        ph_tick = prof_->addPhase("tick");
        profStartNs_ = prof_->elapsedNs();
        prof_->lapStart();
    }

    Cycle now = 0;
    Cycle last_progress = 0;
    InstSeq last_commit = 0;
    while (!core_.done()) {
        core_.tick(now);
        if (core_.committedSeq() > last_commit) {
            last_commit = core_.committedSeq();
            last_progress = now;
            stream_.trim(last_commit);
        } else if (now - last_progress > config_.watchdogCycles) {
            panic("perfect system: no commit progress for %llu cycles",
                  (unsigned long long)config_.watchdogCycles);
        }
        ++now;
        if (config_.eventDriven && !core_.done()) {
            // Skip cycles where the core cannot act; a hung core
            // still reaches the watchdog cycle and panics there.
            Cycle deadline =
                last_progress + config_.watchdogCycles + 1;
            now = std::max(
                now,
                std::min(core_.nextEventCycle(now - 1), deadline));
        }
        // Cycles through now-1 are final (skipped ones are no-ops).
        if (sampler_)
            sampler_->advance(now - 1);
    }
    if (prof_) {
        prof_->lap(ph_tick);
        profEndNs_ = prof_->elapsedNs();
    }

    core::RunResult result;
    result.cycles = now;
    result.instructions = stream_.endSeq();
    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.cycles);
    lastResult_ = result;
    result.stats = snapshotStats();
    lastResult_.stats = result.stats;
    return result;
}

void
PerfectSystem::setTraceSink(TraceSink *sink)
{
    tee_.clear();
    if (sink)
        tee_.add(sink);
    applyTraceSinks();
}

void
PerfectSystem::addTraceSink(TraceSink *sink)
{
    if (sink)
        tee_.add(sink);
    applyTraceSinks();
}

void
PerfectSystem::applyTraceSinks()
{
    core_.setTraceSink(tee_.empty() ? nullptr : &tee_, 0);
}

void
PerfectSystem::setSampler(obs::Sampler *sampler)
{
    sampler_ = sampler;
    if (!sampler)
        return;
    sampler->addColumn("commit_rate", obs::Sampler::Mode::Delta,
                       [this] {
                           return static_cast<std::uint64_t>(
                               core_.committedSeq());
                       });
    sampler->addColumn("dcub_depth", obs::Sampler::Mode::Level,
                       [this] {
                           return static_cast<std::uint64_t>(
                               core_.dcubOccupancy());
                       });
}

std::shared_ptr<const stats::Snapshot>
PerfectSystem::snapshotStats() const
{
    auto snap = std::make_shared<stats::Snapshot>();
    stats::Snapshot::GroupEntry &sys =
        snap->addGroup("system", "---- PerfectSystem ----");
    buildRunStats(*snap, sys, lastResult_);
    buildCoreStats(*snap, core_.coreStats());
    if (prof_)
        obs::addProfileGroup(*snap, *prof_,
                             profEndNs_ - profStartNs_);
    return snap;
}

void
PerfectSystem::dumpStats(std::ostream &os) const
{
    snapshotStats()->dump(os);
}

} // namespace baseline
} // namespace dscalar
