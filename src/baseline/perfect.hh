/**
 * @file
 * The paper's upper bound: an identical processor with a perfect
 * data cache — single-cycle access to any operand (Section 4.3).
 * Instruction fetch still goes through a real I-cache backed by
 * local memory.
 */

#ifndef DSCALAR_BASELINE_PERFECT_HH
#define DSCALAR_BASELINE_PERFECT_HH

#include <memory>
#include <string>

#include "common/logging.hh"
#include "core/sim_config.hh"
#include "func/func_sim.hh"
#include "func/inst_trace.hh"
#include "mem/main_memory.hh"
#include "ooo/core.hh"
#include "ooo/mem_backend.hh"
#include "ooo/oracle_stream.hh"
#include "prog/program.hh"

namespace dscalar {
namespace baseline {

/** Single-processor system with a perfect data cache. */
class PerfectSystem : private ooo::MemBackend
{
  public:
    /** A non-null @p trace replays a captured stream instead of
     *  executing the program functionally (see driver::TraceCache). */
    PerfectSystem(const prog::Program &program,
                  const core::SimConfig &config,
                  std::shared_ptr<const func::InstTrace> trace =
                      nullptr);

    core::RunResult run();

    const ooo::OoOCore &core() const { return core_; }
    /** The live functional oracle; only valid when not replaying. */
    const func::FuncSim &
    oracle() const
    {
        panic_if(!oracle_, "trace-replay run has no live oracle");
        return *oracle_;
    }
    /** Program output of the executed prefix, either backend. */
    const std::string &
    output() const
    {
        return oracle_ ? oracle_->output() : replayOutput_;
    }

  private:
    ooo::FillResult startLineFetch(Addr line, Cycle now) override;
    void onUnclaimedCanonicalMiss(Addr line, Cycle now) override;
    void writeBack(Addr line, Cycle now) override;
    void storeMiss(Addr line, Cycle now) override;
    Cycle fetchInstLine(Addr line, Cycle now) override;

    core::SimConfig config_;
    std::unique_ptr<func::FuncSim> oracle_; ///< null when replaying
    std::string replayOutput_;
    ooo::OracleStream stream_;
    mem::MainMemory localMem_;
    ooo::OoOCore core_;
    bool ran_ = false;
};

} // namespace baseline
} // namespace dscalar

#endif // DSCALAR_BASELINE_PERFECT_HH
