/**
 * @file
 * The paper's upper bound: an identical processor with a perfect
 * data cache — single-cycle access to any operand (Section 4.3).
 * Instruction fetch still goes through a real I-cache backed by
 * local memory.
 */

#ifndef DSCALAR_BASELINE_PERFECT_HH
#define DSCALAR_BASELINE_PERFECT_HH

#include <memory>
#include <ostream>
#include <string>

#include "common/logging.hh"
#include "common/trace.hh"
#include "core/sim_config.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "stats/snapshot.hh"
#include "func/func_sim.hh"
#include "func/inst_trace.hh"
#include "mem/main_memory.hh"
#include "ooo/core.hh"
#include "ooo/mem_backend.hh"
#include "ooo/oracle_stream.hh"
#include "prog/program.hh"

namespace dscalar {
namespace baseline {

/** Single-processor system with a perfect data cache. */
class PerfectSystem : private ooo::MemBackend
{
  public:
    /** A non-null @p trace replays a captured stream instead of
     *  executing the program functionally (see driver::TraceCache). */
    PerfectSystem(const prog::Program &program,
                  const core::SimConfig &config,
                  std::shared_ptr<const func::InstTrace> trace =
                      nullptr);

    core::RunResult run();

    const ooo::OoOCore &core() const { return core_; }
    /** The live functional oracle; only valid when not replaying. */
    const func::FuncSim &
    oracle() const
    {
        panic_if(!oracle_, "trace-replay run has no live oracle");
        return *oracle_;
    }
    /** Program output of the executed prefix, either backend. */
    const std::string &
    output() const
    {
        return oracle_ ? oracle_->output() : replayOutput_;
    }

    /** Emit core disparity events to exactly @p sink, replacing any
     *  earlier sinks; use addTraceSink to fan out instead. */
    void setTraceSink(TraceSink *sink);
    /** Attach @p sink in addition to any already attached. */
    void addTraceSink(TraceSink *sink);

    /** Register timeline columns (commit rate, DCUB depth) with
     *  @p sampler and advance it from the run loop; nullptr
     *  detaches. Sampling never perturbs the simulation. */
    void setSampler(obs::Sampler *sampler);

    /** Attach a wall-clock phase profiler (see
     *  core::DataScalarSystem::setProfiler); the single-core loop
     *  reports one coarse "tick" phase. Never perturbs results. */
    void setProfiler(obs::SpanRecorder *prof) { prof_ = prof; }

    /** Write a gem5-style stats dump (rendered from the snapshot). */
    void dumpStats(std::ostream &os) const;
    /** Build the stat snapshot (groups "system" and "core"). */
    std::shared_ptr<const stats::Snapshot> snapshotStats() const;

  private:
    ooo::FillResult startLineFetch(Addr line, Cycle now) override;
    void onUnclaimedCanonicalMiss(Addr line, Cycle now) override;
    void writeBack(Addr line, Cycle now) override;
    void storeMiss(Addr line, Cycle now) override;
    Cycle fetchInstLine(Addr line, Cycle now) override;

    core::SimConfig config_;
    std::unique_ptr<func::FuncSim> oracle_; ///< null when replaying
    std::string replayOutput_;
    ooo::OracleStream stream_;
    mem::MainMemory localMem_;
    ooo::OoOCore core_;
    bool ran_ = false;
    core::RunResult lastResult_;
    TeeTraceSink tee_;
    obs::Sampler *sampler_ = nullptr;
    obs::SpanRecorder *prof_ = nullptr;
    std::uint64_t profStartNs_ = 0;
    std::uint64_t profEndNs_ = 0;

    void applyTraceSinks();
};

} // namespace baseline
} // namespace dscalar

#endif // DSCALAR_BASELINE_PERFECT_HH
