/**
 * @file
 * The paper's upper bound: an identical processor with a perfect
 * data cache — single-cycle access to any operand (Section 4.3).
 * Instruction fetch still goes through a real I-cache backed by
 * local memory.
 */

#ifndef DSCALAR_BASELINE_PERFECT_HH
#define DSCALAR_BASELINE_PERFECT_HH

#include "core/sim_config.hh"
#include "func/func_sim.hh"
#include "mem/main_memory.hh"
#include "ooo/core.hh"
#include "ooo/mem_backend.hh"
#include "ooo/oracle_stream.hh"
#include "prog/program.hh"

namespace dscalar {
namespace baseline {

/** Single-processor system with a perfect data cache. */
class PerfectSystem : private ooo::MemBackend
{
  public:
    PerfectSystem(const prog::Program &program,
                  const core::SimConfig &config);

    core::RunResult run();

    const ooo::OoOCore &core() const { return core_; }
    const func::FuncSim &oracle() const { return oracle_; }

  private:
    ooo::FillResult startLineFetch(Addr line, Cycle now) override;
    void onUnclaimedCanonicalMiss(Addr line, Cycle now) override;
    void writeBack(Addr line, Cycle now) override;
    void storeMiss(Addr line, Cycle now) override;
    Cycle fetchInstLine(Addr line, Cycle now) override;

    core::SimConfig config_;
    func::FuncSim oracle_;
    ooo::OracleStream stream_;
    mem::MainMemory localMem_;
    ooo::OoOCore core_;
    bool ran_ = false;
};

} // namespace baseline
} // namespace dscalar

#endif // DSCALAR_BASELINE_PERFECT_HH
