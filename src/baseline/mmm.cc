#include "baseline/mmm.hh"

namespace dscalar {
namespace baseline {

MmmResult
runMmmEsp(const std::vector<NodeId> &owners, const MmmConfig &config)
{
    MmmResult result;
    result.receiveTime.reserve(owners.size());
    result.leader.reserve(owners.size());

    Cycle t = 0;
    unsigned run_len = 0;
    for (std::size_t i = 0; i < owners.size(); ++i) {
        bool lead_change = (i == 0) || owners[i] != owners[i - 1];
        if (lead_change && i != 0) {
            ++result.leadChanges;
            result.threadLengths.push_back(run_len);
            run_len = 0;
            t += config.leadChangePenalty;
        } else {
            t += config.pipelinedStep;
        }
        ++run_len;
        result.receiveTime.push_back(t);
        result.leader.push_back(owners[i]);
    }
    if (run_len > 0)
        result.threadLengths.push_back(run_len);
    result.totalCycles = t;
    return result;
}

ChainCrossings
chainCrossings(const std::vector<NodeId> &owners)
{
    ChainCrossings c;
    if (owners.empty())
        return c;
    // DataScalar: broadcasts within one owner's run are pipelined and
    // cost a single serialized crossing; each owner transition
    // (datathread migration) serializes one more.
    c.dataScalar = 1;
    for (std::size_t i = 1; i < owners.size(); ++i)
        if (owners[i] != owners[i - 1])
            ++c.dataScalar;
    // Traditional: a request and a response per operand that does not
    // reside on the requesting chip (chip 0).
    for (NodeId owner : owners)
        if (owner != 0)
            c.traditional += 2;
    return c;
}

} // namespace baseline
} // namespace dscalar
