/**
 * @file
 * SPMD execution (paper Section 5.2).
 *
 * "The DataScalar execution model is a memory system optimization,
 * not a substitute for parallel processing. When coarse-grain
 * parallelism exists and is obtainable, the system should be run as
 * a parallel processor (since a majority of the needed hardware is
 * already present)."
 *
 * This model runs one *different* program per node — each node's
 * partition of a data-parallel job — entirely out of local memory,
 * with a final barrier. Together with the DataScalar system it lets
 * the hybrid question be asked quantitatively: which execution model
 * should a given code run under on the same hardware?
 */

#ifndef DSCALAR_BASELINE_SPMD_HH
#define DSCALAR_BASELINE_SPMD_HH

#include <vector>

#include "core/sim_config.hh"
#include "prog/program.hh"

namespace dscalar {
namespace baseline {

/** Result of one SPMD run. */
struct SpmdResult
{
    /** Barrier time: the slowest node. */
    Cycle cycles = 0;
    /** Total instructions across all nodes. */
    InstSeq instructions = 0;
    /** Aggregate instructions per cycle. */
    double aggregateIpc = 0.0;
    /** Per-node results. */
    std::vector<core::RunResult> nodes;
};

/**
 * Run @p programs (one per node) in parallel, each against its own
 * local memory (no global traffic — the partitions must be
 * independent, i.e.\ embarrassingly parallel).
 */
SpmdResult runSpmd(const std::vector<prog::Program> &programs,
                   const core::SimConfig &config);

} // namespace baseline
} // namespace dscalar

#endif // DSCALAR_BASELINE_SPMD_HH
