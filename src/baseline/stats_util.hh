/**
 * @file
 * Shared snapshot-building helpers for the baseline systems.
 */

#ifndef DSCALAR_BASELINE_STATS_UTIL_HH
#define DSCALAR_BASELINE_STATS_UTIL_HH

#include "core/sim_config.hh"
#include "ooo/core.hh"
#include "stats/snapshot.hh"

namespace dscalar {
namespace baseline {

/** Append the single core's counters as group "core". */
inline void
buildCoreStats(stats::Snapshot &snap, const ooo::CoreStats &cs)
{
    stats::Snapshot::GroupEntry &g = snap.addGroup("core", "core:");
    snap.addCounter(g, "committed", cs.committed,
                    "instructions committed");
    snap.addCounter(g, "loads", cs.loads, "loads committed");
    snap.addCounter(g, "stores", cs.stores, "stores committed");
    snap.addCounter(g, "load_issue_misses", cs.loadIssueMisses,
                    "issue-time L1D misses (DCUB fetches)");
    snap.addCounter(g, "canonical_load_misses", cs.canonicalLoadMisses,
                    "commit-time (canonical) load misses");
    snap.addCounter(g, "false_hits", cs.falseHits,
                    "issue hit but canonical miss");
    snap.addCounter(g, "false_misses", cs.falseMisses,
                    "issue miss but canonical hit");
    snap.addCounter(g, "store_commit_misses", cs.storeCommitMisses,
                    "stores missing at commit");
    snap.addCounter(g, "dirty_writebacks", cs.dirtyWriteBacks,
                    "dirty victims evicted");
    snap.addCounter(g, "icache_misses", cs.icacheMisses,
                    "instruction-line fills");
}

/** Append cycles/instructions/ipc to an existing system group. */
inline void
buildRunStats(stats::Snapshot &snap, stats::Snapshot::GroupEntry &sys,
              const core::RunResult &r)
{
    snap.addCounter(sys, "cycles", r.cycles, "simulated cycles");
    snap.addCounter(sys, "instructions", r.instructions,
                    "instructions committed");
    snap.addScalar(sys, "ipc", r.ipc, "instructions per cycle");
}

} // namespace baseline
} // namespace dscalar

#endif // DSCALAR_BASELINE_STATS_UTIL_HH
