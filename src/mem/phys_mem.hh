/**
 * @file
 * Sparse byte-addressable physical memory holding architectural data
 * values. Timing is modelled elsewhere (MainMemory, Cache); this is
 * the value store shared by the functional oracle.
 */

#ifndef DSCALAR_MEM_PHYS_MEM_HH
#define DSCALAR_MEM_PHYS_MEM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "prog/layout.hh"

namespace dscalar {

namespace prog {
class Program;
} // namespace prog

namespace mem {

/** Sparse page-granular backing store. */
class PhysMem
{
  public:
    /** Read @p size (1/4/8) bytes, little-endian, zero where unbacked. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write @p size (1/4/8) bytes, little-endian. */
    void write(Addr addr, unsigned size, std::uint64_t value);

    /** Copy a program image (text + initialized data) into memory. */
    void loadProgram(const prog::Program &program);

    /** Number of distinct pages ever written. */
    std::size_t backedPages() const { return pages_.size(); }

  private:
    std::vector<std::uint8_t> *findPage(Addr addr) const;
    std::vector<std::uint8_t> &getPage(Addr addr);

    std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
};

} // namespace mem
} // namespace dscalar

#endif // DSCALAR_MEM_PHYS_MEM_HH
