/**
 * @file
 * Timing model of one node's on-chip main memory: line-interleaved
 * DRAM banks behind a wide on-chip bus clocked at core frequency
 * (Section 4.2: 8 ns banks, 256-bit bus at the processor clock).
 */

#ifndef DSCALAR_MEM_MAIN_MEMORY_HH
#define DSCALAR_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dscalar {
namespace mem {

/** Parameters of one on-chip memory system. */
struct MainMemoryParams
{
    Cycle accessLatency = 8;     ///< bank access time in core cycles
    unsigned numBanks = 8;       ///< line-interleaved banks
    unsigned lineSize = 32;      ///< transfer unit in bytes
    unsigned busBytesPerCycle = 32; ///< 256-bit on-chip bus
};

/** Bank-occupancy timing model (values live in PhysMem). */
class MainMemory
{
  public:
    explicit MainMemory(const MainMemoryParams &params);

    const MainMemoryParams &params() const { return params_; }

    /**
     * Schedule a line read or write beginning no earlier than @p now.
     * @return cycle at which the line transfer completes.
     */
    Cycle request(Addr addr, Cycle now);

    /** Cycles a line spends on the on-chip bus. */
    Cycle
    transferCycles() const
    {
        return (params_.lineSize + params_.busBytesPerCycle - 1) /
               params_.busBytesPerCycle;
    }

    /** Total requests serviced (for stats). */
    std::uint64_t requestCount() const { return requestCount_; }

  private:
    unsigned bankOf(Addr addr) const;

    MainMemoryParams params_;
    std::vector<Cycle> bankFreeAt_;
    std::uint64_t requestCount_ = 0;
};

} // namespace mem
} // namespace dscalar

#endif // DSCALAR_MEM_MAIN_MEMORY_HH
