#include "mem/cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace dscalar {
namespace mem {

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    fatal_if(!isPowerOf2(params_.lineSize), "line size must be 2^n");
    fatal_if(params_.assoc == 0, "associativity must be nonzero");
    fatal_if(params_.sizeBytes % (params_.lineSize * params_.assoc) != 0,
             "cache size not divisible by way size");
    numSets_ = params_.sizeBytes / (params_.lineSize * params_.assoc);
    fatal_if(!isPowerOf2(numSets_), "set count must be 2^n");
    lineMask_ = params_.lineSize - 1;
    lines_.resize(numSets_ * params_.assoc);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / params_.lineSize) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / params_.lineSize / numSets_;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    std::size_t set = setIndex(addr);
    Addr tag = tagOf(addr);
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::probeDirty(Addr addr) const
{
    const Line *line = findLine(addr);
    return line && line->dirty;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write)
{
    CacheAccessResult result;
    ++lruClock_;

    if (Line *line = findLine(addr)) {
        result.hit = true;
        line->lruStamp = lruClock_;
        if (is_write)
            line->dirty = true;
        return result;
    }

    // Miss. Write-noallocate writes bypass the cache entirely.
    if (is_write && !params_.writeAllocate)
        return result;

    std::size_t set = setIndex(addr);
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &cand = lines_[set * params_.assoc + w];
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (!victim || cand.lruStamp < victim->lruStamp)
            victim = &cand;
    }

    if (victim->valid) {
        result.evicted = true;
        result.victimDirty = victim->dirty;
        result.victimAddr =
            (victim->tag * numSets_ + set) * params_.lineSize;
    }

    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tagOf(addr);
    victim->lruStamp = lruClock_;
    result.allocated = true;
    return result;
}

bool
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->valid = false;
        line->dirty = false;
        return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines_)
        line = Line{};
}

std::size_t
Cache::validLineCount() const
{
    std::size_t n = 0;
    for (const Line &line : lines_)
        if (line.valid)
            ++n;
    return n;
}

} // namespace mem
} // namespace dscalar
