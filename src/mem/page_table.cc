#include "mem/page_table.hh"

#include "common/logging.hh"

namespace dscalar {
namespace mem {

void
PageTable::setReplicated(Addr page)
{
    panic_if(page != prog::pageBase(page), "not a page base: 0x%llx",
             (unsigned long long)page);
    entries_[page] = PageEntry{true, 0};
}

void
PageTable::setOwned(Addr page, NodeId owner)
{
    panic_if(page != prog::pageBase(page), "not a page base: 0x%llx",
             (unsigned long long)page);
    panic_if(owner >= numNodes_, "owner %u out of range", owner);
    entries_[page] = PageEntry{false, owner};
}

PageEntry
PageTable::lookup(Addr addr) const
{
    auto it = entries_.find(prog::pageBase(addr));
    if (it == entries_.end())
        return PageEntry{}; // unregistered => replicated
    return it->second;
}

std::size_t
PageTable::ownedPageCount(NodeId node) const
{
    std::size_t n = 0;
    for (const auto &[page, e] : entries_)
        if (!e.replicated && e.owner == node)
            ++n;
    return n;
}

std::size_t
PageTable::replicatedPageCount() const
{
    std::size_t n = 0;
    for (const auto &[page, e] : entries_)
        if (e.replicated)
            ++n;
    return n;
}

} // namespace mem
} // namespace dscalar
