#include "mem/phys_mem.hh"

#include "common/logging.hh"
#include "prog/program.hh"

namespace dscalar {
namespace mem {

std::vector<std::uint8_t> *
PhysMem::findPage(Addr addr) const
{
    auto it = pages_.find(prog::pageBase(addr));
    if (it == pages_.end())
        return nullptr;
    return const_cast<std::vector<std::uint8_t> *>(&it->second);
}

std::vector<std::uint8_t> &
PhysMem::getPage(Addr addr)
{
    Addr base = prog::pageBase(addr);
    auto it = pages_.find(base);
    if (it == pages_.end())
        it = pages_.emplace(base,
                            std::vector<std::uint8_t>(prog::pageSize, 0))
                 .first;
    return it->second;
}

std::uint64_t
PhysMem::read(Addr addr, unsigned size) const
{
    panic_if(size != 1 && size != 4 && size != 8,
             "unsupported access size %u", size);
    panic_if(prog::pageBase(addr) != prog::pageBase(addr + size - 1),
             "access at 0x%llx size %u crosses a page",
             (unsigned long long)addr, size);
    const auto *page = findPage(addr);
    if (!page)
        return 0;
    Addr off = addr & (prog::pageSize - 1);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>((*page)[off + i]) << (8 * i);
    return v;
}

void
PhysMem::write(Addr addr, unsigned size, std::uint64_t value)
{
    panic_if(size != 1 && size != 4 && size != 8,
             "unsupported access size %u", size);
    panic_if(prog::pageBase(addr) != prog::pageBase(addr + size - 1),
             "access at 0x%llx size %u crosses a page",
             (unsigned long long)addr, size);
    auto &page = getPage(addr);
    Addr off = addr & (prog::pageSize - 1);
    for (unsigned i = 0; i < size; ++i)
        page[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void
PhysMem::loadProgram(const prog::Program &program)
{
    for (std::size_t i = 0; i < program.textWords(); ++i)
        write(program.textBaseAddr() + 4 * i, 4, program.textWord(i));
    for (const auto &[base, bytes] : program.dataPages()) {
        auto &page = getPage(base);
        page = bytes;
    }
    // Reserve stack pages so they count as backed memory.
    for (Addr a = program.stackBase(); a < prog::stackTop;
         a += prog::pageSize) {
        getPage(a);
    }
}

} // namespace mem
} // namespace dscalar
