/**
 * @file
 * Single-level page table with the two DataScalar bits the paper
 * describes (Section 4.2): a replicated/communicated bit, and an
 * ownership bit identifying which node's local memory holds a
 * communicated page.
 */

#ifndef DSCALAR_MEM_PAGE_TABLE_HH
#define DSCALAR_MEM_PAGE_TABLE_HH

#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "prog/layout.hh"

namespace dscalar {
namespace mem {

/** Per-page DataScalar placement state. */
struct PageEntry
{
    bool replicated = true; ///< present in every node's local memory
    NodeId owner = 0;       ///< owner when communicated
};

/**
 * Maps pages to replicated/owned state. Pages never registered are
 * treated as replicated (the page table itself lives in such a
 * region, locked low in physical memory at every node).
 */
class PageTable
{
  public:
    explicit PageTable(unsigned num_nodes = 1) : numNodes_(num_nodes) {}

    unsigned numNodes() const { return numNodes_; }

    /** Mark a page replicated at all nodes. */
    void setReplicated(Addr page);

    /** Mark a page communicated, owned by @p owner. */
    void setOwned(Addr page, NodeId owner);

    /** @return the entry for the page containing @p addr. */
    PageEntry lookup(Addr addr) const;

    bool isReplicated(Addr addr) const { return lookup(addr).replicated; }

    /** True when @p node services loads for @p addr locally. */
    bool
    isLocal(Addr addr, NodeId node) const
    {
        PageEntry e = lookup(addr);
        return e.replicated || e.owner == node;
    }

    /** Owner of a communicated address (meaningless if replicated). */
    NodeId owner(Addr addr) const { return lookup(addr).owner; }

    /** Number of registered communicated pages owned by @p node. */
    std::size_t ownedPageCount(NodeId node) const;

    /** Number of registered replicated pages. */
    std::size_t replicatedPageCount() const;

    std::size_t entryCount() const { return entries_.size(); }

  private:
    unsigned numNodes_;
    std::unordered_map<Addr, PageEntry> entries_;
};

} // namespace mem
} // namespace dscalar

#endif // DSCALAR_MEM_PAGE_TABLE_HH
