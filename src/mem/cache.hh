/**
 * @file
 * Set-associative cache tag model.
 *
 * Only tags and state live here; architectural data values are held
 * by the functional oracle. The timing cores drive this model at
 * instruction *commit* (canonical, in program order — the cache
 * correspondence requirement of Section 4.1), probing it read-only at
 * issue time.
 */

#ifndef DSCALAR_MEM_CACHE_HH
#define DSCALAR_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dscalar {
namespace mem {

/** Geometry and policy parameters of one cache. */
struct CacheParams
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned assoc = 1;
    unsigned lineSize = 32;
    /** Allocate a line on a write miss? The paper's DataScalar L1D is
     *  write-noallocate ("with a write-allocate protocol, a write miss
     *  requires sending an inter-processor message, only to overwrite
     *  the received data"); the Table 1 study cache is write-allocate. */
    bool writeAllocate = false;
};

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A line was filled (miss that allocates). */
    bool allocated = false;
    /** A valid victim was evicted. */
    bool evicted = false;
    bool victimDirty = false;
    Addr victimAddr = invalidAddr;
};

/** Write-back set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    const CacheParams &params() const { return params_; }

    Addr lineAlign(Addr a) const { return a & ~lineMask_; }
    std::size_t numSets() const { return numSets_; }

    /** Read-only presence check (no LRU or state update). */
    bool probe(Addr addr) const;

    /** Read-only dirty check; false when not present. */
    bool probeDirty(Addr addr) const;

    /**
     * Perform an access with full policy effects (fill, eviction,
     * LRU update, dirty marking).
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** Drop a line if present; @return true when it was present. */
    bool invalidate(Addr addr);

    /** Reset every line to invalid. */
    void flush();

    /** Count of currently valid lines (for tests). */
    std::size_t validLineCount() const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    CacheParams params_;
    std::size_t numSets_;
    Addr lineMask_;
    std::vector<Line> lines_; // numSets_ * assoc, set-major
    std::uint64_t lruClock_ = 0;
};

} // namespace mem
} // namespace dscalar

#endif // DSCALAR_MEM_CACHE_HH
