#include "mem/main_memory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dscalar {
namespace mem {

MainMemory::MainMemory(const MainMemoryParams &params)
    : params_(params), bankFreeAt_(params.numBanks, 0)
{
    fatal_if(params_.numBanks == 0, "need at least one memory bank");
    fatal_if(params_.busBytesPerCycle == 0, "bus width must be nonzero");
}

unsigned
MainMemory::bankOf(Addr addr) const
{
    return static_cast<unsigned>((addr / params_.lineSize) %
                                 params_.numBanks);
}

Cycle
MainMemory::request(Addr addr, Cycle now)
{
    unsigned bank = bankOf(addr);
    Cycle start = std::max(now, bankFreeAt_[bank]);
    Cycle bank_done = start + params_.accessLatency;
    bankFreeAt_[bank] = bank_done;
    ++requestCount_;
    return bank_done + transferCycles();
}

} // namespace mem
} // namespace dscalar
