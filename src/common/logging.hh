/**
 * @file
 * Error- and status-reporting helpers in the gem5 idiom.
 *
 * panic()  - an internal simulator invariant broke (a bug); aborts.
 * fatal()  - the user supplied an impossible configuration; exits(1).
 * warn()   - something works but imperfectly.
 * inform() - neutral status output.
 */

#ifndef DSCALAR_COMMON_LOGGING_HH
#define DSCALAR_COMMON_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

namespace dscalar {

/**
 * Register a hook run by panicImpl after printing the panic message
 * and before abort(). Used by diagnostic dumpers (the obs flight
 * recorder) to flush context when an invariant breaks. Hooks run in
 * registration order; a panic raised while hooks are running skips
 * them (no recursion). @return an id for removePanicHook.
 */
std::uint64_t addPanicHook(std::function<void()> hook);

/** Unregister a hook returned by addPanicHook (no-op if unknown). */
void removePanicHook(std::uint64_t id);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace dscalar

#define panic(...) \
    ::dscalar::panicImpl(__FILE__, __LINE__, ::dscalar::csprintf(__VA_ARGS__))

#define fatal(...) \
    ::dscalar::fatalImpl(__FILE__, __LINE__, ::dscalar::csprintf(__VA_ARGS__))

#define warn(...) \
    ::dscalar::warnImpl(::dscalar::csprintf(__VA_ARGS__))

#define inform(...) \
    ::dscalar::informImpl(::dscalar::csprintf(__VA_ARGS__))

/** panic() unless an invariant holds. */
#define panic_if(cond, ...)           \
    do {                              \
        if (cond) {                   \
            panic(__VA_ARGS__);       \
        }                             \
    } while (0)

/** fatal() unless a user-facing precondition holds. */
#define fatal_if(cond, ...)           \
    do {                              \
        if (cond) {                   \
            fatal(__VA_ARGS__);       \
        }                             \
    } while (0)

#endif // DSCALAR_COMMON_LOGGING_HH
