#include "common/logging.hh"

#include <cstdarg>
#include <mutex>
#include <utility>
#include <vector>

namespace dscalar {

namespace {

std::mutex &
panicHookMutex()
{
    static std::mutex m;
    return m;
}

struct PanicHook
{
    std::uint64_t id;
    std::function<void()> fn;
};

std::vector<PanicHook> &
panicHooks()
{
    static std::vector<PanicHook> hooks;
    return hooks;
}

/** True while hooks run, so a panic inside a hook skips them. */
thread_local bool in_panic_hooks = false;

void
runPanicHooks()
{
    if (in_panic_hooks)
        return;
    in_panic_hooks = true;
    // Copy under the lock so a hook may (un)register without
    // deadlocking; run outside it.
    std::vector<PanicHook> hooks;
    {
        std::lock_guard<std::mutex> lock(panicHookMutex());
        hooks = panicHooks();
    }
    for (const PanicHook &hook : hooks)
        hook.fn();
    in_panic_hooks = false;
}

} // namespace

std::uint64_t
addPanicHook(std::function<void()> hook)
{
    static std::uint64_t next_id = 1;
    std::lock_guard<std::mutex> lock(panicHookMutex());
    std::uint64_t id = next_id++;
    panicHooks().push_back({id, std::move(hook)});
    return id;
}

void
removePanicHook(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(panicHookMutex());
    auto &hooks = panicHooks();
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->id == id) {
            hooks.erase(it);
            return;
        }
    }
}

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    runPanicHooks();
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace dscalar
