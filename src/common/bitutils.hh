/**
 * @file
 * Small bit-manipulation helpers used by the memory and ISA models.
 */

#ifndef DSCALAR_COMMON_BITUTILS_HH
#define DSCALAR_COMMON_BITUTILS_HH

#include <cstdint>

#include "common/types.hh"

namespace dscalar {

/** @return true when @p v is a power of two (zero is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Extract bits [lo, hi] (inclusive) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((hi - lo == 63) ? ~0ULL
                                        : ((1ULL << (hi - lo + 1)) - 1));
}

/** Sign-extend the low @p width bits of @p v to 64 bits. */
constexpr std::int64_t
sext(std::uint64_t v, unsigned width)
{
    unsigned shift = 64 - width;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

} // namespace dscalar

#endif // DSCALAR_COMMON_BITUTILS_HH
