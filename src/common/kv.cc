#include "common/kv.hh"

#include <cstdio>
#include <cstdlib>

namespace dscalar {
namespace common {
namespace kv {

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

namespace {

/** True when @p v would not survive a trim()+literal round trip. */
bool
needsQuoting(const std::string &v)
{
    if (v.empty())
        return false;
    if (v != trim(v))
        return true;
    if (v.front() == '"' || v.front() == '#')
        return true;
    for (char c : v)
        if (c == '\n' || c == '\r')
            return true;
    return false;
}

std::string
quoteValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size() + 2);
    out += '"';
    for (char c : v) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    out += '"';
    return out;
}

/** Decode a trimmed `"..."` token in place.
 *  @return false when the quoting is malformed (no closing quote,
 *  trailing junk, or a dangling escape). */
bool
unquoteValue(std::string &value)
{
    std::string out;
    out.reserve(value.size());
    std::size_t i = 1; // past the opening quote
    while (i < value.size()) {
        char c = value[i++];
        if (c == '"') {
            if (i != value.size())
                return false; // junk after the closing quote
            value = out;
            return true;
        }
        if (c == '\\') {
            if (i == value.size())
                return false;
            char e = value[i++];
            switch (e) {
              case '\\': out += '\\'; break;
              case '"': out += '"'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              default: return false;
            }
        } else {
            out += c;
        }
    }
    return false; // never saw the closing quote
}

} // namespace

bool
splitLine(const std::string &line, std::string &key,
          std::string &value)
{
    std::size_t eq = line.find('=');
    if (eq == std::string::npos)
        return false;
    key = trim(line.substr(0, eq));
    value = trim(line.substr(eq + 1));
    if (!value.empty() && value.front() == '"')
        return unquoteValue(value);
    return true;
}

bool
parseU64(const std::string &value, std::uint64_t &out)
{
    if (value.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t next =
            v * 10 + static_cast<std::uint64_t>(c - '0');
        if (next < v)
            return false; // overflow
        v = next;
    }
    out = v;
    return true;
}

bool
parseF64(const std::string &value, double &out)
{
    if (value.empty())
        return false;
    const char *begin = value.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end != begin + value.size())
        return false;
    out = v;
    return true;
}

std::string
formatF64(double v)
{
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        if (parseF64(buf, back) && back == v)
            return buf;
    }
    return buf; // %.17g is always exact for finite doubles
}

void
emit(std::ostream &os, const char *key, std::uint64_t value)
{
    os << key << " = " << value << "\n";
}

void
emit(std::ostream &os, const char *key, const char *value)
{
    emit(os, key, std::string(value));
}

void
emit(std::ostream &os, const char *key, const std::string &value)
{
    os << key << " = "
       << (needsQuoting(value) ? quoteValue(value) : value) << "\n";
}

void
emit(std::ostream &os, const char *key, double value)
{
    os << key << " = " << formatF64(value) << "\n";
}

} // namespace kv
} // namespace common
} // namespace dscalar
