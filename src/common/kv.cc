#include "common/kv.hh"

#include <cstdio>
#include <cstdlib>

namespace dscalar {
namespace common {
namespace kv {

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

bool
splitLine(const std::string &line, std::string &key,
          std::string &value)
{
    std::size_t eq = line.find('=');
    if (eq == std::string::npos)
        return false;
    key = trim(line.substr(0, eq));
    value = trim(line.substr(eq + 1));
    return true;
}

bool
parseU64(const std::string &value, std::uint64_t &out)
{
    if (value.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : value) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t next =
            v * 10 + static_cast<std::uint64_t>(c - '0');
        if (next < v)
            return false; // overflow
        v = next;
    }
    out = v;
    return true;
}

bool
parseF64(const std::string &value, double &out)
{
    if (value.empty())
        return false;
    const char *begin = value.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end != begin + value.size())
        return false;
    out = v;
    return true;
}

std::string
formatF64(double v)
{
    char buf[64];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        if (parseF64(buf, back) && back == v)
            return buf;
    }
    return buf; // %.17g is always exact for finite doubles
}

void
emit(std::ostream &os, const char *key, std::uint64_t value)
{
    os << key << " = " << value << "\n";
}

void
emit(std::ostream &os, const char *key, const char *value)
{
    os << key << " = " << value << "\n";
}

void
emit(std::ostream &os, const char *key, const std::string &value)
{
    os << key << " = " << value << "\n";
}

void
emit(std::ostream &os, const char *key, double value)
{
    os << key << " = " << formatF64(value) << "\n";
}

} // namespace kv
} // namespace common
} // namespace dscalar
