#include "common/trace.hh"

#include "common/logging.hh"

namespace dscalar {

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Broadcast:
        return "broadcast";
      case TraceEventKind::ReparativeBroadcast:
        return "reparative-broadcast";
      case TraceEventKind::RecoveryBroadcast:
        return "recovery-broadcast";
      case TraceEventKind::Rerequest:
        return "rerequest";
      case TraceEventKind::BshrWake:
        return "bshr-wake";
      case TraceEventKind::BshrBuffer:
        return "bshr-buffer";
      case TraceEventKind::BshrSquash:
        return "bshr-squash";
      case TraceEventKind::BshrDropFull:
        return "bshr-drop-full";
      case TraceEventKind::FalseHit:
        return "false-hit";
      case TraceEventKind::FalseMiss:
        return "false-miss";
      case TraceEventKind::FaultDrop:
        return "fault-drop";
      case TraceEventKind::FaultDuplicate:
        return "fault-dup";
      case TraceEventKind::FaultDelay:
        return "fault-delay";
    }
    panic("unknown TraceEventKind %d", static_cast<int>(kind));
}

void
TextTraceSink::event(const ProtocolEvent &ev)
{
    os_ << "node " << ev.node << " @" << ev.cycle << ": "
        << traceEventKindName(ev.kind) << " 0x" << std::hex << ev.line
        << std::dec << '\n';
}

} // namespace dscalar
