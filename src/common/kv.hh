/**
 * @file
 * Line-oriented `key = value` text helpers shared by every format
 * that uses the convention: dsfuzz repro files (check/repro.cc), the
 * driver's RunRequest serialization (driver/run_request.cc), and the
 * dsserve wire protocol (serve/protocol.cc). One implementation of
 * trimming, splitting, and strict numeric parsing keeps the three
 * formats from drifting apart.
 */

#ifndef DSCALAR_COMMON_KV_HH
#define DSCALAR_COMMON_KV_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace dscalar {
namespace common {
namespace kv {

/** @return @p s without leading/trailing spaces, tabs, CRs, or
 *  newlines (callers pass both getline output and raw lines that
 *  still carry their terminator). */
std::string trim(const std::string &s);

/**
 * Split one `key = value` line (either side of '=' trimmed). A value
 * wrapped in double quotes is unescaped (see emit: `\\` `\"` `\n`
 * `\r` `\t`), so path-valued keys survive leading/trailing
 * whitespace exactly; unquoted values are taken literally.
 * @return false when @p line contains no '=' or carries a malformed
 * quoted value.
 */
bool splitLine(const std::string &line, std::string &key,
               std::string &value);

/**
 * Strict decimal unsigned parse: digits only, overflow-checked.
 * @return false on empty, non-digit, or overflowing input.
 */
bool parseU64(const std::string &value, std::uint64_t &out);

/** Strict double parse (strtod over the whole token).
 *  @return false on empty input or trailing junk. */
bool parseF64(const std::string &value, double &out);

/** Shortest decimal rendering of @p v that parses back to exactly
 *  the same double (so formatted requests round-trip bit-for-bit). */
std::string formatF64(double v);

/** Emit one `key = value` line. String values that trimming or
 *  comment/quote detection would mangle (leading/trailing
 *  whitespace, embedded newlines, a leading '"' or '#') are emitted
 *  quoted and escaped so splitLine restores them byte-exactly;
 *  everything else stays plain text. */
void emit(std::ostream &os, const char *key, std::uint64_t value);
void emit(std::ostream &os, const char *key, const char *value);
void emit(std::ostream &os, const char *key, const std::string &value);
/** Doubles render via formatF64. */
void emit(std::ostream &os, const char *key, double value);
/** Smaller non-negative integer types route to the u64 overload
 *  (otherwise the double overload makes the call ambiguous). */
inline void
emit(std::ostream &os, const char *key, unsigned value)
{
    emit(os, key, static_cast<std::uint64_t>(value));
}
inline void
emit(std::ostream &os, const char *key, int value)
{
    emit(os, key, static_cast<std::uint64_t>(value));
}

} // namespace kv
} // namespace common
} // namespace dscalar

#endif // DSCALAR_COMMON_KV_HH
