#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"

namespace dscalar {
namespace common {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stop_ = true;
    }
    taskReady_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    panic_if(!task, "ThreadPool::submit with empty task");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        panic_if(stop_, "ThreadPool::submit after shutdown");
        tasks_.push(std::move(task));
        ++inFlight_;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &f)
{
    if (n == 0)
        return;
    if (n == 1 || numThreads() <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            f(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::size_t fanout = std::min<std::size_t>(numThreads(), n);
    for (std::size_t t = 0; t < fanout; ++t) {
        submit([&next, &f, n] {
            for (;;) {
                std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                f(i);
            }
        });
    }
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(
                lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ set and queue drained
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --inFlight_;
        }
        allDone_.notify_all();
    }
}

void
parallelFor(unsigned jobs, std::size_t n,
            const std::function<void(std::size_t)> &f)
{
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            f(i);
        return;
    }
    ThreadPool pool(
        static_cast<unsigned>(std::min<std::size_t>(jobs, n)));
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&f, i] { f(i); });
    pool.wait();
}

} // namespace common
} // namespace dscalar
