/**
 * @file
 * Typed protocol-event tracing.
 *
 * Simulation components emit ProtocolEvent records to an abstract
 * TraceSink instead of formatting text themselves: tools that want
 * the human-readable log attach a TextTraceSink (whose output is the
 * legacy `setTrace` format, line for line), while tests that want to
 * count events without string matching attach a CountingTraceSink.
 */

#ifndef DSCALAR_COMMON_TRACE_HH
#define DSCALAR_COMMON_TRACE_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hh"

namespace dscalar {

/** Protocol event classes observable through a TraceSink. */
enum class TraceEventKind : std::uint8_t {
    Broadcast,           ///< owner pushed a line (ESP data push)
    ReparativeBroadcast, ///< late broadcast repairing a false hit
    RecoveryBroadcast,   ///< owner re-broadcast answering a re-request
    Rerequest,           ///< waiter timed out and asked the owner again
    BshrWake,            ///< broadcast woke a waiting BSHR entry
    BshrBuffer,          ///< broadcast buffered for a future consumer
    BshrSquash,          ///< broadcast consumed by a pending squash
    BshrDropFull,        ///< hard-capacity BSHR refused to buffer
    FalseHit,            ///< issue-time hit, canonical miss
    FalseMiss,           ///< issue-time miss, canonical hit
    FaultDrop,           ///< fault model lost a transmission
    FaultDuplicate,      ///< fault model duplicated a transmission
    FaultDelay           ///< fault model jittered a delivery
};

/** Number of TraceEventKind values (counter array sizes). */
inline constexpr std::size_t numTraceEventKinds = 13;

/** @return printable name of @p kind (stable; used by the text log). */
const char *traceEventKindName(TraceEventKind kind);

/** One typed protocol event. */
struct ProtocolEvent
{
    NodeId node = 0;
    Cycle cycle = 0;
    TraceEventKind kind = TraceEventKind::Broadcast;
    Addr line = invalidAddr;
    /** Kind-specific payload; FaultDelay carries the delay in cycles. */
    std::uint64_t arg = 0;
};

/** Receiver of typed protocol events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void event(const ProtocolEvent &ev) = 0;
};

/**
 * Formats events in the legacy text-trace format:
 * `node <id> @<cycle>: <event-name> 0x<line>`.
 */
class TextTraceSink final : public TraceSink
{
  public:
    explicit TextTraceSink(std::ostream &os) : os_(os) {}
    void event(const ProtocolEvent &ev) override;

  private:
    std::ostream &os_;
};

/** Counts events per kind; no formatting. */
class CountingTraceSink final : public TraceSink
{
  public:
    void
    event(const ProtocolEvent &ev) override
    {
        ++counts_[static_cast<std::size_t>(ev.kind)];
    }

    std::uint64_t
    count(TraceEventKind kind) const
    {
        return counts_[static_cast<std::size_t>(kind)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (auto c : counts_)
            sum += c;
        return sum;
    }

  private:
    std::array<std::uint64_t, numTraceEventKinds> counts_{};
};

/**
 * Fans every event out to any number of downstream sinks, so a text
 * log, a counting sink, a Perfetto exporter, and a flight recorder
 * can all observe the same run. Does not own the sinks; null sinks
 * are ignored on add.
 */
class TeeTraceSink final : public TraceSink
{
  public:
    void
    event(const ProtocolEvent &ev) override
    {
        for (TraceSink *sink : sinks_)
            sink->event(ev);
    }

    /** Attach @p sink (no-op when null or already attached). */
    void
    add(TraceSink *sink)
    {
        if (!sink || sink == this)
            return;
        for (TraceSink *s : sinks_)
            if (s == sink)
                return;
        sinks_.push_back(sink);
    }

    void clear() { sinks_.clear(); }
    bool empty() const { return sinks_.empty(); }
    std::size_t size() const { return sinks_.size(); }

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace dscalar

#endif // DSCALAR_COMMON_TRACE_HH
