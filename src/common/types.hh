/**
 * @file
 * Fundamental scalar types shared by every DataScalar subsystem.
 */

#ifndef DSCALAR_COMMON_TYPES_HH
#define DSCALAR_COMMON_TYPES_HH

#include <cstdint>

namespace dscalar {

/** Byte address in the simulated (flat, paged) physical address space. */
using Addr = std::uint64_t;

/** Simulated processor-clock cycle count. */
using Cycle = std::uint64_t;

/** Dynamic-instruction sequence number (program order, from zero). */
using InstSeq = std::uint64_t;

/** Identifier of a processor/memory node in a DataScalar system. */
using NodeId = std::uint32_t;

/** Architectural register index. */
using RegIndex = std::uint8_t;

/** An address that is never produced by a real access. */
inline constexpr Addr invalidAddr = ~static_cast<Addr>(0);

/** A cycle later than any reachable simulation time. */
inline constexpr Cycle cycleMax = ~static_cast<Cycle>(0);

} // namespace dscalar

#endif // DSCALAR_COMMON_TYPES_HH
