/**
 * @file
 * Fixed-size worker pool draining one shared FIFO task queue (no
 * work stealing). Built for the experiment drivers: independent
 * (workload × nodes × config) simulation points are submitted as
 * tasks and results are written into pre-assigned slots, so output
 * order never depends on scheduling order.
 *
 * Tasks must not throw: the simulators report fatal conditions via
 * panic()/fatal(), which abort the process, and an exception leaving
 * a worker thread would std::terminate anyway.
 */

#ifndef DSCALAR_COMMON_THREAD_POOL_HH
#define DSCALAR_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dscalar {
namespace common {

/** Fixed pool of worker threads executing queued tasks FIFO. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has run to completion. */
    void wait();

    /**
     * Run f(0), ..., f(n-1) on this pool's workers and block until
     * all complete (wait() doubles as the barrier). Indices are
     * handed out through a shared atomic counter, so at most
     * min(numThreads(), n) tasks are queued regardless of n. Unlike
     * the free parallelFor(), no threads are created per call —
     * this is the primitive for per-window fan-out inside a single
     * simulation, where the call happens millions of times.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &f);

    unsigned
    numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    std::queue<std::function<void()>> tasks_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0; ///< queued + currently executing
    bool stop_ = false;
};

/**
 * Run f(0), ..., f(n-1) across up to @p jobs workers and block until
 * all complete. jobs <= 1 runs inline in index order, making the
 * serial case the bit-exact reference for the parallel one (each
 * f(i) must touch only its own slot of any shared output).
 */
void parallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)> &f);

} // namespace common
} // namespace dscalar

#endif // DSCALAR_COMMON_THREAD_POOL_HH
