/**
 * @file
 * Deterministic pseudo-random source for workload generation and
 * property tests. xoshiro256** keeps runs reproducible across hosts,
 * unlike std::mt19937 seeded from the environment.
 */

#ifndef DSCALAR_COMMON_RANDOM_HH
#define DSCALAR_COMMON_RANDOM_HH

#include <cstdint>

namespace dscalar {

/** Reproducible 64-bit PRNG (xoshiro256**). */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 expansion of the seed into the full state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return real() < p; }

  private:
    std::uint64_t state_[4];
};

} // namespace dscalar

#endif // DSCALAR_COMMON_RANDOM_HH
