/**
 * @file
 * Minimal statistics package: named counters, running averages and
 * histograms that register themselves with a StatGroup so whole
 * subsystems can be dumped uniformly.
 */

#ifndef DSCALAR_STATS_STATS_HH
#define DSCALAR_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace dscalar {
namespace stats {

/**
 * Shared floating-point rendering used by both the text dump and the
 * JSON export, so the two are byte-identical for any given value
 * (default ostream `operator<<` formatting; always valid JSON).
 */
std::string formatDouble(double v);

class StatGroup;
class Counter;
class Scalar;
class Average;
class Histogram;

/**
 * Typed double-dispatch over the concrete stat classes. Structured
 * exporters (stats::JsonWriter) implement this instead of parsing the
 * text dump.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;
    virtual void visitCounter(const Counter &c) = 0;
    virtual void visitScalar(const Scalar &s) = 0;
    virtual void visitAverage(const Average &a) = 0;
    virtual void visitHistogram(const Histogram &h) = 0;
};

/** Base class for anything dumpable by a StatGroup. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write "name value # desc" lines to @p os. */
    virtual void dump(std::ostream &os) const = 0;
    /** Return the stat to its initial state. */
    virtual void reset() = 0;
    /** Double-dispatch to the matching StatVisitor method. */
    virtual void visit(StatVisitor &v) const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic event counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }

    std::uint64_t value() const { return value_; }

    void dump(std::ostream &os) const override;
    void reset() override { value_ = 0; }
    void visit(StatVisitor &v) const override { v.visitCounter(*this); }

  private:
    std::uint64_t value_ = 0;
};

/** A point-in-time gauge (derived values such as IPC). */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    void set(double v) { value_ = v; }
    double value() const { return value_; }

    void dump(std::ostream &os) const override;
    void reset() override { value_ = 0.0; }
    void visit(StatVisitor &v) const override { v.visitScalar(*this); }

  private:
    double value_ = 0.0;
};

/** Running arithmetic mean of submitted samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    void dump(std::ostream &os) const override;
    void reset() override { sum_ = 0.0; count_ = 0; }
    void visit(StatVisitor &v) const override { v.visitAverage(*this); }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, bucketCount * bucketWidth). */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup *parent, std::string name, std::string desc,
              std::uint64_t bucket_width, std::size_t bucket_count);

    void sample(std::uint64_t v);

    /** Add @p other's samples into this histogram; panics unless the
     *  bucket layouts (width and count) match exactly. Used to copy
     *  live histograms into owning Snapshots. */
    void merge(const Histogram &other);

    /**
     * Upper bound of the bucket where the cumulative count first
     * reaches quantile @p q in [0,1] — a conservative percentile
     * estimate, at most one bucket width above the true value.
     * Overflow samples report the histogram's upper range. 0 when
     * empty.
     */
    std::uint64_t percentileUpperBound(double q) const;

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t bucketWidth() const { return bucketWidth_; }
    std::size_t bucketCount() const { return buckets_.size(); }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t overflow() const { return overflow_; }

    void dump(std::ostream &os) const override;
    void reset() override;
    void visit(StatVisitor &v) const override { v.visitHistogram(*this); }

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of stats; subsystems own one and expose it so
 * drivers can dump or reset everything at once.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Add @p stat; panics if the group already holds the name. */
    void registerStat(StatBase *stat);

    const std::string &name() const { return name_; }
    const std::vector<StatBase *> &statList() const { return stats_; }

    void dump(std::ostream &os) const;
    void resetAll();

  private:
    std::string name_;
    std::vector<StatBase *> stats_;
};

} // namespace stats
} // namespace dscalar

#endif // DSCALAR_STATS_STATS_HH
