#include "stats/snapshot.hh"

namespace dscalar {
namespace stats {

Snapshot::GroupEntry &
Snapshot::addGroup(std::string name, std::string title)
{
    groups_.emplace_back(std::move(name), std::move(title));
    return groups_.back();
}

Counter &
Snapshot::addCounter(GroupEntry &g, std::string name,
                     std::uint64_t value, std::string desc)
{
    auto c = std::make_unique<Counter>(&g.group, std::move(name),
                                       std::move(desc));
    Counter &ref = *c;
    ref += value;
    stats_.push_back(std::move(c));
    return ref;
}

Scalar &
Snapshot::addScalar(GroupEntry &g, std::string name, double value,
                    std::string desc)
{
    auto s = std::make_unique<Scalar>(&g.group, std::move(name),
                                      std::move(desc));
    Scalar &ref = *s;
    ref.set(value);
    stats_.push_back(std::move(s));
    return ref;
}

Histogram &
Snapshot::addHistogram(GroupEntry &g, std::string name,
                       const Histogram &src, std::string desc)
{
    auto h = std::make_unique<Histogram>(&g.group, std::move(name),
                                         std::move(desc),
                                         src.bucketWidth(),
                                         src.bucketCount());
    Histogram &ref = *h;
    ref.merge(src);
    stats_.push_back(std::move(h));
    return ref;
}

namespace {

/** Renders one stat in the historical dumpStats line format. */
class LegacyLineVisitor final : public StatVisitor
{
  public:
    explicit LegacyLineVisitor(std::ostream &os) : os_(os) {}

    void
    visitCounter(const Counter &c) override
    {
        line(c.name());
        os_ << c.value() << "  # " << c.desc() << '\n';
    }

    void
    visitScalar(const Scalar &s) override
    {
        line(s.name());
        os_ << formatDouble(s.value()) << "  # " << s.desc() << '\n';
    }

    void
    visitAverage(const Average &a) override { a.dump(os_); }

    void
    visitHistogram(const Histogram &h) override { h.dump(os_); }

  private:
    void
    line(const std::string &name)
    {
        os_ << "  " << name;
        for (std::size_t i = name.size(); i < 34; ++i)
            os_ << ' ';
    }

    std::ostream &os_;
};

} // namespace

void
Snapshot::dump(std::ostream &os) const
{
    LegacyLineVisitor v(os);
    for (const GroupEntry &g : groups_) {
        os << g.title << '\n';
        for (const StatBase *s : g.group.statList())
            s->visit(v);
    }
}

} // namespace stats
} // namespace dscalar
