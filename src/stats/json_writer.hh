/**
 * @file
 * Machine-readable stats export.
 *
 * JsonWriter renders a stats::Snapshot as JSON with a stable schema:
 *
 *   {
 *     "run_meta":  { "workload": "...", "nodes": 2, ... },
 *     "groups": {
 *       "system": { "cycles": {"value": N}, "ipc": {"value": X}, ... },
 *       "node0":  { "committed": {"value": N}, ... }
 *     },
 *     "timeline": { ... }          // optional (obs::Sampler)
 *   }
 *
 * Per-stat objects by kind: counter/scalar -> {"value": v},
 * average -> {"mean": m, "count": n}, histogram -> {"mean": m,
 * "count": n, "bucket_width": w, "buckets": [...], "overflow": o}.
 * Numeric values render through the same code paths as the text dump
 * (integers verbatim, doubles via stats::formatDouble), so scalar
 * values byte-match the `dumpStats` text output. Diff two files with
 * `tools/benchdiff.py`; schema reference in docs/OBSERVABILITY.md.
 */

#ifndef DSCALAR_STATS_JSON_WRITER_HH
#define DSCALAR_STATS_JSON_WRITER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "stats/snapshot.hh"

namespace dscalar {
namespace stats {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** Ordered run metadata; values are pre-rendered, @p quoted selects
 *  string vs. bare-number emission. */
class RunMeta
{
  public:
    void
    add(std::string key, std::string value, bool quoted)
    {
        entries_.push_back({std::move(key), std::move(value), quoted});
    }

    void add(std::string key, std::uint64_t value)
    {
        add(std::move(key), std::to_string(value), false);
    }

    void add(std::string key, const std::string &value)
    {
        add(std::move(key), value, true);
    }

    void add(std::string key, const char *value)
    {
        add(std::move(key), std::string(value), true);
    }

    struct Entry
    {
        std::string key;
        std::string value;
        bool quoted;
    };

    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::vector<Entry> entries_;
};

class JsonWriter
{
  public:
    /** Hook that writes the value of an extra top-level "timeline"
     *  key (must emit one complete JSON value). */
    using ExtraWriter = std::function<void(std::ostream &)>;

    /** Write one complete JSON document for @p snap. */
    static void write(std::ostream &os, const RunMeta &meta,
                      const Snapshot &snap,
                      const ExtraWriter &timeline = nullptr);
};

} // namespace stats
} // namespace dscalar

#endif // DSCALAR_STATS_JSON_WRITER_HH
