#include "stats/json_writer.hh"

#include <cstdio>

namespace dscalar {
namespace stats {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Emits the per-stat JSON object for each concrete stat kind. */
class JsonStatVisitor final : public StatVisitor
{
  public:
    explicit JsonStatVisitor(std::ostream &os) : os_(os) {}

    void
    visitCounter(const Counter &c) override
    {
        os_ << "{\"value\":" << c.value() << "}";
    }

    void
    visitScalar(const Scalar &s) override
    {
        os_ << "{\"value\":" << formatDouble(s.value()) << "}";
    }

    void
    visitAverage(const Average &a) override
    {
        os_ << "{\"mean\":" << formatDouble(a.mean())
            << ",\"count\":" << a.count() << "}";
    }

    void
    visitHistogram(const Histogram &h) override
    {
        os_ << "{\"mean\":" << formatDouble(h.mean())
            << ",\"count\":" << h.count()
            << ",\"bucket_width\":" << h.bucketWidth()
            << ",\"buckets\":[";
        for (std::size_t i = 0; i < h.bucketCount(); ++i) {
            if (i)
                os_ << ',';
            os_ << h.bucket(i);
        }
        os_ << "],\"overflow\":" << h.overflow() << "}";
    }

  private:
    std::ostream &os_;
};

} // namespace

void
JsonWriter::write(std::ostream &os, const RunMeta &meta,
                  const Snapshot &snap, const ExtraWriter &timeline)
{
    os << "{\"run_meta\":{";
    bool first = true;
    for (const RunMeta::Entry &e : meta.entries()) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(e.key) << "\":";
        if (e.quoted)
            os << '"' << jsonEscape(e.value) << '"';
        else
            os << e.value;
    }
    os << "},\"groups\":{";
    JsonStatVisitor v(os);
    bool first_group = true;
    for (const Snapshot::GroupEntry &g : snap.groups()) {
        if (!first_group)
            os << ',';
        first_group = false;
        os << '"' << jsonEscape(g.name) << "\":{";
        bool first_stat = true;
        for (const StatBase *s : g.group.statList()) {
            if (!first_stat)
                os << ',';
            first_stat = false;
            os << '"' << jsonEscape(s->name()) << "\":";
            s->visit(v);
        }
        os << '}';
    }
    os << '}';
    if (timeline) {
        os << ",\"timeline\":";
        timeline(os);
    }
    os << "}\n";
}

} // namespace stats
} // namespace dscalar
