/**
 * @file
 * Owning end-of-run stat snapshots.
 *
 * A Snapshot is a self-contained copy of a system's statistics,
 * organised as named StatGroups of owned stat objects. Systems build
 * one in snapshotStats() and render BOTH the legacy text dump and the
 * JSON export from it, so the two can never disagree; RunResult
 * carries it (shared_ptr) so every sweep point keeps its full stats.
 */

#ifndef DSCALAR_STATS_SNAPSHOT_HH
#define DSCALAR_STATS_SNAPSHOT_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "stats/stats.hh"

namespace dscalar {
namespace stats {

class Snapshot
{
  public:
    /** One named group; @p title is the verbatim text-dump heading
     *  (e.g. "---- DataScalarSystem (2 nodes) ----" or "node0:"). */
    struct GroupEntry
    {
        std::string name;  ///< stable JSON key
        std::string title; ///< text-dump heading line
        StatGroup group;

        GroupEntry(std::string n, std::string t)
            : name(std::move(n)), title(std::move(t)),
              group(name) {}
    };

    /** Append a group; the reference stays valid for the lifetime of
     *  the snapshot (deque storage). */
    GroupEntry &addGroup(std::string name, std::string title);

    Counter &addCounter(GroupEntry &g, std::string name,
                        std::uint64_t value, std::string desc);
    Scalar &addScalar(GroupEntry &g, std::string name, double value,
                      std::string desc);
    /** Deep-copy @p src (layout and contents) into the snapshot. */
    Histogram &addHistogram(GroupEntry &g, std::string name,
                            const Histogram &src, std::string desc);

    const std::deque<GroupEntry> &groups() const { return groups_; }

    /**
     * Render the legacy text format: each group's title line followed
     * by "  name" padded to 34 columns, the value, and "  # desc".
     * Byte-identical to the historical hand-rolled dumpStats output.
     */
    void dump(std::ostream &os) const;

  private:
    std::deque<GroupEntry> groups_;
    std::vector<std::unique_ptr<StatBase>> stats_;
};

} // namespace stats
} // namespace dscalar

#endif // DSCALAR_STATS_SNAPSHOT_HH
