#include "stats/stats.hh"

#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace dscalar {
namespace stats {

std::string
formatDouble(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (parent)
        parent->registerStat(this);
}

void
Counter::dump(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << ' '
       << std::right << std::setw(16) << value_
       << "  # " << desc() << '\n';
}

void
Scalar::dump(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << ' '
       << std::right << std::setw(16) << formatDouble(value_)
       << "  # " << desc() << '\n';
}

void
Average::dump(std::ostream &os) const
{
    os << std::left << std::setw(40) << name() << ' '
       << std::right << std::setw(16) << std::fixed
       << std::setprecision(4) << mean()
       << "  # " << desc() << " (n=" << count_ << ")\n";
}

Histogram::Histogram(StatGroup *parent, std::string name, std::string desc,
                     std::uint64_t bucket_width, std::size_t bucket_count)
    : StatBase(parent, std::move(name), std::move(desc)),
      bucketWidth_(bucket_width), buckets_(bucket_count, 0)
{
}

void
Histogram::sample(std::uint64_t v)
{
    std::size_t idx = v / bucketWidth_;
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
    ++count_;
    sum_ += static_cast<double>(v);
}

void
Histogram::merge(const Histogram &other)
{
    panic_if(other.bucketWidth_ != bucketWidth_ ||
                 other.buckets_.size() != buckets_.size(),
             "histogram merge '%s': layout mismatch "
             "(%llu x %zu vs %llu x %zu)",
             name().c_str(), (unsigned long long)bucketWidth_,
             buckets_.size(), (unsigned long long)other.bucketWidth_,
             other.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    count_ += other.count_;
    sum_ += other.sum_;
}

std::uint64_t
Histogram::percentileUpperBound(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * count_);
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return (i + 1) * bucketWidth_;
    }
    // The quantile landed in the overflow bucket: all we know is "at
    // least the histogram range".
    return buckets_.size() * bucketWidth_;
}

void
Histogram::dump(std::ostream &os) const
{
    os << std::left << std::setw(40) << name()
       << " mean=" << std::fixed << std::setprecision(3) << mean()
       << " n=" << count_ << "  # " << desc() << '\n';
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << "  [" << i * bucketWidth_ << ',' << (i + 1) * bucketWidth_
           << ") " << buckets_[i] << '\n';
    }
    os << "  overflow " << overflow_ << '\n';
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
}

void
StatGroup::registerStat(StatBase *stat)
{
    for (const StatBase *s : stats_) {
        panic_if(s->name() == stat->name(),
                 "duplicate stat '%s' in group '%s'",
                 stat->name().c_str(), name_.c_str());
    }
    stats_.push_back(stat);
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "---- " << name_ << " ----\n";
    for (const StatBase *s : stats_)
        s->dump(os);
}

void
StatGroup::resetAll()
{
    for (StatBase *s : stats_)
        s->reset();
}

} // namespace stats
} // namespace dscalar
