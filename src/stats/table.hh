/**
 * @file
 * Plain-text table formatter used by the bench binaries to print
 * rows/columns shaped like the paper's tables.
 */

#ifndef DSCALAR_STATS_TABLE_HH
#define DSCALAR_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace dscalar {
namespace stats {

/** Column-aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p prec digits after the decimal point. */
    static std::string num(double v, int prec = 2);
    /** Format a value as a percentage string, e.g.\ "37%". */
    static std::string pct(double fraction, int prec = 0);

    void print(std::ostream &os) const;

    /** Machine-readable output (cells quoted when they contain a
     *  comma or quote). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace stats
} // namespace dscalar

#endif // DSCALAR_STATS_TABLE_HH
