#include "stats/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace dscalar {
namespace stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "table row has %zu cells, expected %zu",
             cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
Table::pct(double fraction, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, fraction * 100.0);
    return buf;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << row[c];
            for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad)
                os << ' ';
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            const std::string &cell = row[c];
            if (cell.find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : cell) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cell;
            }
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace stats
} // namespace dscalar
