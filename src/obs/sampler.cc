#include "obs/sampler.hh"

#include "common/logging.hh"

namespace dscalar {
namespace obs {

Sampler::Sampler(Cycle interval) : interval_(interval)
{
    fatal_if(interval == 0, "sample interval must be positive");
}

void
Sampler::addColumn(std::string name, Mode mode,
                   std::function<std::uint64_t()> pull)
{
    panic_if(started_,
             "cannot add sampler column '%s' after sampling started",
             name.c_str());
    for (const Column &c : columns_)
        panic_if(c.name == name, "duplicate sampler column '%s'",
                 name.c_str());
    columns_.push_back({std::move(name), mode, std::move(pull), 0, {}});
}

void
Sampler::clear()
{
    started_ = false;
    lastEmitted_ = 0;
    cycles_.clear();
    columns_.clear();
}

void
Sampler::advance(Cycle upto)
{
    // First due nominal cycle: 0 before anything was emitted, else
    // the next multiple of the interval after the last emission.
    Cycle next = started_ ? lastEmitted_ + interval_ : 0;
    if (next > upto)
        return;

    // One pull per advance: state is constant over [next, upto], so
    // the current value is the value at every due nominal cycle.
    for (Column &c : columns_) {
        std::uint64_t raw = c.pull();
        bool first = true;
        for (Cycle at = next; at <= upto; at += interval_) {
            if (c.mode == Mode::Level) {
                c.values.push_back(raw);
            } else {
                c.values.push_back(first ? raw - c.prevRaw : 0);
                first = false;
            }
        }
        c.prevRaw = raw;
    }
    for (Cycle at = next; at <= upto; at += interval_) {
        cycles_.push_back(at);
        lastEmitted_ = at;
    }
    started_ = true;
}

void
Sampler::writeJson(std::ostream &os) const
{
    os << "{\"interval\":" << interval_ << ",\"cycles\":[";
    for (std::size_t i = 0; i < cycles_.size(); ++i) {
        if (i)
            os << ',';
        os << cycles_[i];
    }
    os << "],\"columns\":{";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        if (c)
            os << ',';
        os << '"' << columns_[c].name << "\":[";
        const auto &vals = columns_[c].values;
        for (std::size_t i = 0; i < vals.size(); ++i) {
            if (i)
                os << ',';
            os << vals[i];
        }
        os << ']';
    }
    os << "}}";
}

} // namespace obs
} // namespace dscalar
