#include "obs/perfetto.hh"

#include "obs/span.hh"

namespace dscalar {
namespace obs {

PerfettoTraceSink::PerfettoTraceSink(std::ostream &os) : os_(os)
{
    os_ << "{\"traceEvents\":[";
    // Process metadata so the UI shows a named process.
    os_ << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
           "\"args\":{\"name\":\"dscalar\"}}";
    first_ = false;
}

PerfettoTraceSink::~PerfettoTraceSink()
{
    finish();
}

void
PerfettoTraceSink::beginRecord()
{
    if (!first_)
        os_ << ',';
    first_ = false;
}

void
PerfettoTraceSink::ensureTrack(std::uint32_t tid)
{
    if (tracks_.count(tid))
        return;
    tracks_.insert(tid);
    beginRecord();
    os_ << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (tid == 0)
        os_ << "interconnect";
    else
        os_ << "node " << (tid - 1);
    os_ << "\"}}";
}

void
PerfettoTraceSink::emitInstant(const ProtocolEvent &ev,
                               std::uint32_t tid)
{
    beginRecord();
    os_ << "{\"name\":\"" << traceEventKindName(ev.kind)
        << "\",\"ph\":\"i\",\"ts\":" << ev.cycle
        << ",\"pid\":1,\"tid\":" << tid
        << ",\"s\":\"t\",\"args\":{\"line\":\"0x" << std::hex
        << ev.line << std::dec << "\"}}";
    ++emitted_;
}

void
PerfettoTraceSink::emitDuration(const char *name, std::uint32_t tid,
                                Cycle start, Cycle dur, Addr line)
{
    beginRecord();
    os_ << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"ts\":" << start
        << ",\"dur\":" << dur << ",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"line\":\"0x" << std::hex << line << std::dec
        << "\"}}";
    ++emitted_;
}

void
PerfettoTraceSink::event(const ProtocolEvent &ev)
{
    if (finished_)
        return;

    bool fault = ev.kind == TraceEventKind::FaultDrop ||
                 ev.kind == TraceEventKind::FaultDuplicate ||
                 ev.kind == TraceEventKind::FaultDelay;
    std::uint32_t tid = fault ? 0 : nodeTid(ev.node);
    ensureTrack(tid);

    if (ev.kind == TraceEventKind::FaultDelay) {
        // The injected jitter (arg cycles) as a slice on the
        // interconnect track.
        emitDuration("fault-delay", tid, ev.cycle, ev.arg, ev.line);
        return;
    }

    emitInstant(ev, tid);

    if (ev.kind == TraceEventKind::Rerequest) {
        // Open (or keep the earlier) recovery window for this line.
        openWindows_.emplace(std::make_pair(ev.node, ev.line),
                             ev.cycle);
    } else if (ev.kind == TraceEventKind::BshrWake) {
        auto it = openWindows_.find({ev.node, ev.line});
        if (it != openWindows_.end()) {
            emitDuration("recovery", nodeTid(ev.node), it->second,
                         ev.cycle - it->second, ev.line);
            openWindows_.erase(it);
        }
    }
}

void
PerfettoTraceSink::appendWallSpans(const SpanRecorder &rec)
{
    if (finished_)
        return;
    // Second process so the wall-time axis (microseconds of real
    // time) never mixes with the simulated-cycle tracks under pid 1.
    beginRecord();
    os_ << "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
           "\"args\":{\"name\":\"wall-clock\"}}";
    beginRecord();
    os_ << "{\"ph\":\"M\",\"pid\":2,\"tid\":0,"
           "\"name\":\"thread_name\",\"args\":{\"name\":\"request\"}}";
    for (const SpanRecorder::Span &span : rec.spans()) {
        if (span.open)
            continue;
        beginRecord();
        os_ << "{\"name\":\"" << span.name
            << "\",\"ph\":\"X\",\"ts\":" << span.startNs / 1000
            << ",\"dur\":" << span.durNs / 1000
            << ",\"pid\":2,\"tid\":0,\"args\":{\"depth\":"
            << span.depth << "}}";
        ++emitted_;
    }
}

void
PerfettoTraceSink::finish()
{
    if (finished_)
        return;
    // A window with no recovery by end of run still shows up, as a
    // zero-length slice at its start.
    for (const auto &[key, start] : openWindows_)
        emitDuration("recovery (unresolved)", nodeTid(key.first),
                     start, 0, key.second);
    openWindows_.clear();
    os_ << "]}\n";
    os_.flush();
    finished_ = true;
}

} // namespace obs
} // namespace dscalar
