/**
 * @file
 * Always-on crash flight recorder for protocol events.
 *
 * FlightRecorder is a TraceSink holding the last `capacity` protocol
 * events per node in fixed-size lock-free rings (one write cursor per
 * node, no allocation after warm-up, no locks — attachable to any
 * run at negligible cost). dump() replays each node's surviving
 * events oldest-first in the text-trace format.
 *
 * installPanicDump() registers the recorder with the logging panic
 * hooks so a panic() — including the run-loop watchdog's deadlock
 * panic — automatically prints the recent event history to stderr
 * before aborting. The hook is removed on destruction (RAII), so
 * recorders on the stack are safe.
 */

#ifndef DSCALAR_OBS_FLIGHT_RECORDER_HH
#define DSCALAR_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/trace.hh"

namespace dscalar {
namespace obs {

class FlightRecorder final : public TraceSink
{
  public:
    static constexpr std::size_t defaultCapacity = 4096;

    explicit FlightRecorder(std::size_t capacity = defaultCapacity);
    ~FlightRecorder() override;

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    void
    event(const ProtocolEvent &ev) override
    {
        if (ev.node >= rings_.size())
            rings_.resize(ev.node + 1);
        Ring &ring = rings_[ev.node];
        if (ring.events.size() < capacity_) {
            ring.events.push_back(ev);
        } else {
            ring.events[ring.next] = ev;
            ring.next = (ring.next + 1) % capacity_;
            ++ring.overwritten;
        }
        ++ring.total;
    }

    /** Total events ever seen for @p node (including overwritten). */
    std::uint64_t totalEvents(NodeId node) const;
    /** Events currently retained for @p node. */
    std::size_t retainedEvents(NodeId node) const;
    std::size_t capacity() const { return capacity_; }

    /** Nodes that have a ring (highest node id seen + 1). */
    std::size_t nodeCount() const { return rings_.size(); }
    /** The retained event-kind sequence of @p node, oldest first —
     *  the raw material for coverage fingerprints (check/coverage). */
    std::vector<std::uint8_t> kindHistory(NodeId node) const;

    /** Print every node's retained events, oldest first. */
    void dump(std::ostream &os) const;
    std::string dumpString() const;

    /** Dump to stderr from any subsequent panic() (idempotent;
     *  removed automatically on destruction). */
    void installPanicDump();

  private:
    struct Ring
    {
        std::vector<ProtocolEvent> events;
        std::size_t next = 0;        ///< oldest slot once full
        std::uint64_t total = 0;     ///< lifetime event count
        std::uint64_t overwritten = 0;
    };

    std::size_t capacity_;
    std::vector<Ring> rings_;
    std::uint64_t panicHookId_ = 0; ///< 0 = not installed
};

} // namespace obs
} // namespace dscalar

#endif // DSCALAR_OBS_FLIGHT_RECORDER_HH
