#include "obs/span.hh"

#include <cstring>
#include <string>

#include "common/kv.hh"
#include "stats/snapshot.hh"

namespace dscalar {
namespace obs {

namespace {

std::uint64_t
nsBetween(SpanRecorder::Clock::time_point a,
          SpanRecorder::Clock::time_point b)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
            .count());
}

} // namespace

std::size_t
SpanRecorder::begin(const char *name)
{
    if (!enabled_)
        return 0;
    std::size_t handle = spans_.size();
    spans_.push_back(Span{name,
                          static_cast<unsigned>(openStack_.size()),
                          nsBetween(epoch_, Clock::now()), 0, true});
    openStack_.push_back(handle);
    return handle;
}

void
SpanRecorder::end(std::size_t handle)
{
    if (!enabled_)
        return;
    Span &span = spans_.at(handle);
    if (!span.open)
        return;
    span.durNs = nsBetween(epoch_, Clock::now()) - span.startNs;
    span.open = false;
    // Spans close LIFO in practice; tolerate out-of-order ends by
    // dropping everything above the closed span.
    while (!openStack_.empty() && openStack_.back() >= handle)
        openStack_.pop_back();
}

void
SpanRecorder::setName(std::size_t handle, const char *name)
{
    if (!enabled_)
        return;
    spans_.at(handle).name = name;
}

std::uint64_t
SpanRecorder::spanUs(const char *name) const
{
    for (const Span &span : spans_)
        if (!span.open && std::strcmp(span.name, name) == 0)
            return span.durNs / 1000;
    return 0;
}

std::uint64_t
SpanRecorder::elapsedNs() const
{
    if (!enabled_)
        return 0;
    return nsBetween(epoch_, Clock::now());
}

void
SpanRecorder::emitHeaderKeys(std::ostream &os) const
{
    for (const Span &span : spans_) {
        if (span.open || span.depth != 0)
            continue;
        std::string key = std::string("span_") + span.name + "_us";
        common::kv::emit(os, key.c_str(), span.durNs / 1000);
    }
}

unsigned
SpanRecorder::addPhase(const char *name)
{
    if (!enabled_)
        return 0;
    phaseNames_.push_back(name);
    phaseNs_.push_back(0);
    return static_cast<unsigned>(phaseNames_.size() - 1);
}

void
SpanRecorder::lapStart()
{
    if (!enabled_)
        return;
    lastLap_ = Clock::now();
}

std::uint64_t
SpanRecorder::phaseTotalNs() const
{
    std::uint64_t total = 0;
    for (std::uint64_t ns : phaseNs_)
        total += ns;
    return total;
}

void
addProfileGroup(stats::Snapshot &snap, const SpanRecorder &rec,
                std::uint64_t totalNs)
{
    stats::Snapshot::GroupEntry &g =
        snap.addGroup("profile", "---- wall-clock profile ----");
    for (unsigned i = 0; i < rec.phaseCount(); ++i) {
        snap.addCounter(g,
                        std::string("phase_") + rec.phaseName(i) + "_us",
                        rec.phaseUs(i),
                        std::string("wall microseconds in the ") +
                            rec.phaseName(i) + " phase");
    }
    snap.addCounter(g, "total_us", totalNs / 1000,
                    "wall microseconds across the instrumented loop");
}

} // namespace obs
} // namespace dscalar
