/**
 * @file
 * Time-series sampling of simulator counters.
 *
 * A Sampler snapshots a set of registered columns (pull callbacks)
 * every `interval` simulated cycles into a columnar buffer. Systems
 * register their columns in setSampler() (per-node commit rate, BSHR
 * occupancy, DCUB depth, bus occupancy, leading-node id) and call
 * advance() from the run loop.
 *
 * Event-driven awareness: run loops that fast-forward over provably
 * idle cycles call advance(upto) with the last cycle whose state is
 * already final. Because skipped cycles change no state, every
 * nominal sample cycle inside the skipped window observes exactly the
 * current values — so the emitted timeline is byte-identical between
 * event-driven and single-stepped runs (locked by
 * tests/test_obs_sampler.cc). Sampling only reads; it never perturbs
 * simulation state or cycle counts.
 */

#ifndef DSCALAR_OBS_SAMPLER_HH
#define DSCALAR_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dscalar {
namespace obs {

class Sampler
{
  public:
    /** How a column's pulled value is recorded. */
    enum class Mode {
        Level, ///< record the instantaneous value
        Delta  ///< record the change since the previous sample
    };

    explicit Sampler(Cycle interval);

    /** Register a column; @p pull reads the instantaneous value. */
    void addColumn(std::string name, Mode mode,
                   std::function<std::uint64_t()> pull);

    /** Forget all columns and samples (systems re-register on
     *  setSampler; lets one Sampler be reused across runs). */
    void clear();

    /**
     * State is final through simulated cycle @p upto: emit one sample
     * row for every nominal cycle k*interval in (lastEmitted, upto].
     * Values are pulled once; when several nominal cycles collapse
     * into one advance (skip window wider than the interval), Level
     * columns repeat the value and Delta columns attribute the whole
     * change to the first row and 0 to the rest.
     */
    void advance(Cycle upto);

    Cycle interval() const { return interval_; }

    /** Earliest cycle whose advance() would emit a row. Windowed run
     *  loops cap their window just past this so a nominal sample
     *  cycle never falls strictly inside a window — keeping the
     *  partition of rows into advance() calls, and therefore every
     *  Delta column, identical to the serial loop's. */
    Cycle
    nextSampleCycle() const
    {
        return started_ ? lastEmitted_ + interval_ : 0;
    }

    std::size_t sampleCount() const { return cycles_.size(); }
    const std::vector<Cycle> &cycles() const { return cycles_; }

    /** Column values by registration order (tests). */
    const std::vector<std::uint64_t> &column(std::size_t i) const
    {
        return columns_.at(i).values;
    }
    const std::string &columnName(std::size_t i) const
    {
        return columns_.at(i).name;
    }
    std::size_t columnCount() const { return columns_.size(); }

    /**
     * Emit the timeline as one JSON value:
     * {"interval":N,"cycles":[...],"columns":{"name":[...],...}}.
     */
    void writeJson(std::ostream &os) const;

  private:
    struct Column
    {
        std::string name;
        Mode mode;
        std::function<std::uint64_t()> pull;
        std::uint64_t prevRaw = 0;
        std::vector<std::uint64_t> values;
    };

    Cycle interval_;
    bool started_ = false; ///< true once any sample was emitted
    Cycle lastEmitted_ = 0;
    std::vector<Cycle> cycles_;
    std::vector<Column> columns_;
};

} // namespace obs
} // namespace dscalar

#endif // DSCALAR_OBS_SAMPLER_HH
