#include "obs/flight_recorder.hh"

#include <iostream>
#include <sstream>

#include "common/logging.hh"

namespace dscalar {
namespace obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity ? capacity : defaultCapacity)
{
}

FlightRecorder::~FlightRecorder()
{
    if (panicHookId_)
        removePanicHook(panicHookId_);
}

std::uint64_t
FlightRecorder::totalEvents(NodeId node) const
{
    return node < rings_.size() ? rings_[node].total : 0;
}

std::size_t
FlightRecorder::retainedEvents(NodeId node) const
{
    return node < rings_.size() ? rings_[node].events.size() : 0;
}

std::vector<std::uint8_t>
FlightRecorder::kindHistory(NodeId node) const
{
    std::vector<std::uint8_t> out;
    if (node >= rings_.size())
        return out;
    const Ring &ring = rings_[node];
    std::size_t n = ring.events.size();
    out.reserve(n);
    std::size_t start = n < capacity_ ? 0 : ring.next;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(static_cast<std::uint8_t>(
            ring.events[(start + i) % n].kind));
    return out;
}

void
FlightRecorder::dump(std::ostream &os) const
{
    os << "==== flight recorder (last " << capacity_
       << " events per node) ====\n";
    TextTraceSink text(os);
    for (std::size_t node = 0; node < rings_.size(); ++node) {
        const Ring &ring = rings_[node];
        if (ring.events.empty())
            continue;
        os << "-- node " << node << ": " << ring.events.size()
           << " retained of " << ring.total << " events";
        if (ring.overwritten)
            os << " (" << ring.overwritten << " overwritten)";
        os << "\n";
        // ring.next is the oldest slot once the ring has wrapped.
        std::size_t n = ring.events.size();
        std::size_t start = n < capacity_ ? 0 : ring.next;
        for (std::size_t i = 0; i < n; ++i)
            text.event(ring.events[(start + i) % n]);
    }
}

std::string
FlightRecorder::dumpString() const
{
    std::ostringstream os;
    dump(os);
    return os.str();
}

void
FlightRecorder::installPanicDump()
{
    if (panicHookId_)
        return;
    panicHookId_ = addPanicHook([this] { dump(std::cerr); });
}

} // namespace obs
} // namespace dscalar
