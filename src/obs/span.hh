/**
 * @file
 * Wall-clock request spans and phase accumulators (the serving-grade
 * telemetry layer, PR 10).
 *
 * A SpanRecorder measures where *wall time* goes, never simulated
 * time, and never perturbs a run: attaching one changes no cycle
 * count, stat, trace event, or sampler row (locked by
 * tests/test_obs_span.cc). It offers two complementary shapes:
 *
 *  - a **span tree** (begin/end or SpanScope RAII) for the coarse
 *    request phases — program build, trace capture / disk load /
 *    cache hit, the timing run, snapshot render, reply write — that
 *    driver::runOne and serve::Server thread through every request
 *    and serialize into reply headers as `span_<name>_us` keys;
 *  - **phase accumulators** driven by the lap() pattern for hot run
 *    loops: one steady-clock read per phase transition attributes
 *    the whole loop contiguously (delivery vs. tick vs. barrier
 *    vs. oracle-extend), so the per-phase totals sum to the loop's
 *    wall time by construction. Systems expose them as the `profile`
 *    stats group (core::DataScalarSystem::setProfiler and friends).
 *
 * A disabled recorder (or a null pointer, the run-loop convention)
 * is free: every operation returns immediately and allocates
 * nothing, proven by an operator-new-counting test. Names must be
 * string literals (stored as const char*), which also keeps the
 * enabled hot path allocation-free.
 *
 * The recorder is single-writer: the serving path hands it between
 * threads (connection thread -> pool worker -> connection thread)
 * but never touches it concurrently.
 */

#ifndef DSCALAR_OBS_SPAN_HH
#define DSCALAR_OBS_SPAN_HH

#include <chrono>
#include <cstdint>
#include <ostream>
#include <vector>

namespace dscalar {

namespace stats { class Snapshot; }

namespace obs {

class SpanRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    /** One recorded (possibly still open) span. */
    struct Span
    {
        const char *name;       ///< string literal supplied by begin()
        unsigned depth;         ///< nesting depth (0 = top level)
        std::uint64_t startNs;  ///< offset from the recorder epoch
        std::uint64_t durNs;    ///< 0 until end() closes the span
        bool open;
    };

    explicit SpanRecorder(bool enabled = true)
        : enabled_(enabled), epoch_(Clock::now()), lastLap_(epoch_)
    {
    }

    bool enabled() const { return enabled_; }

    // --- span tree ------------------------------------------------

    /** Open a span; @p name must outlive the recorder (use a string
     *  literal). @return a handle for end(); 0 when disabled. */
    std::size_t begin(const char *name);

    /** Close the span @p handle opened. No-op when disabled. */
    void end(std::size_t handle);

    /** Rename an open span — the trace-acquisition path only learns
     *  whether it hit the cache, loaded from disk, or captured after
     *  the fact. */
    void setName(std::size_t handle, const char *name);

    const std::vector<Span> &spans() const { return spans_; }

    /** Duration of the first *closed* span named @p name, in
     *  microseconds; 0 when absent. */
    std::uint64_t spanUs(const char *name) const;

    /** Nanoseconds from the recorder epoch to now (the request's
     *  running wall clock). */
    std::uint64_t elapsedNs() const;
    std::uint64_t elapsedUs() const { return elapsedNs() / 1000; }

    /** Emit one `span_<name>_us = N` kv line per closed top-level
     *  span, in record order (the reply-header serialization). */
    void emitHeaderKeys(std::ostream &os) const;

    // --- phase accumulators (lap pattern) -------------------------

    /** Register a phase before the loop (allocates; not hot-path).
     *  @return its index for lap(). 0 when disabled. */
    unsigned addPhase(const char *name);

    /** Restart the lap clock without attributing the time since the
     *  last lap to any phase (call at loop entry). */
    void lapStart();

    /** Attribute all wall time since the previous lap()/lapStart()
     *  to @p phase and restart the lap clock. One clock read. */
    void
    lap(unsigned phase)
    {
        if (!enabled_)
            return;
        Clock::time_point now = Clock::now();
        phaseNs_[phase] += std::chrono::duration_cast<
                               std::chrono::nanoseconds>(now - lastLap_)
                               .count();
        lastLap_ = now;
    }

    std::size_t phaseCount() const { return phaseNames_.size(); }
    const char *phaseName(unsigned i) const { return phaseNames_[i]; }
    std::uint64_t phaseNs(unsigned i) const { return phaseNs_[i]; }
    std::uint64_t phaseUs(unsigned i) const { return phaseNs_[i] / 1000; }

    /** Sum of all phase accumulators, in nanoseconds. */
    std::uint64_t phaseTotalNs() const;

  private:
    bool enabled_;
    Clock::time_point epoch_;
    Clock::time_point lastLap_;
    std::vector<Span> spans_;
    std::vector<std::size_t> openStack_;
    std::vector<const char *> phaseNames_;
    std::vector<std::uint64_t> phaseNs_;
};

/**
 * Append the `profile` stats group to @p snap: one `phase_<name>_us`
 * counter per registered phase of @p rec plus `total_us`, the
 * independently measured wall time of the instrumented loop
 * (@p totalNs, stamped by the system around the loop — the lap
 * pattern guarantees the phases sum to it up to microsecond
 * rounding). Shared by all three system types so benchdiff and the
 * dsrun --profile summary see one schema.
 */
void addProfileGroup(stats::Snapshot &snap, const SpanRecorder &rec,
                     std::uint64_t totalNs);

/** RAII span over a *nullable* recorder — the call sites' convention
 *  is "null pointer = telemetry off". */
class SpanScope
{
  public:
    SpanScope(SpanRecorder *rec, const char *name)
        : rec_(rec), handle_(rec ? rec->begin(name) : 0)
    {
    }
    ~SpanScope()
    {
        if (rec_)
            rec_->end(handle_);
    }
    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    /** Rename the underlying span (see SpanRecorder::setName). */
    void
    setName(const char *name)
    {
        if (rec_)
            rec_->setName(handle_, name);
    }

  private:
    SpanRecorder *rec_;
    std::size_t handle_;
};

} // namespace obs
} // namespace dscalar

#endif // DSCALAR_OBS_SPAN_HH
