/**
 * @file
 * Chrome trace-event / Perfetto export of the protocol event stream.
 *
 * PerfettoTraceSink is a TraceSink that renders every ProtocolEvent
 * into trace-event JSON ({"traceEvents":[...]}) openable directly in
 * ui.perfetto.dev or chrome://tracing. Track layout: one "thread" per
 * node (tid = node+1) plus one for the interconnect fault model
 * (tid 0), all under pid 1. Simulated cycles map 1:1 to microsecond
 * timestamps.
 *
 * Event mapping:
 *  - most kinds (broadcasts, reparatives, squashes, ...) become
 *    instant events ("ph":"i") on the emitting node's track;
 *  - a Rerequest opens a recovery window keyed (node, line) that the
 *    next BshrWake on that node+line closes, emitted as a duration
 *    event ("ph":"X") so re-request->recovery latency is visible as a
 *    slice;
 *  - FaultDelay becomes a duration event on the interconnect track
 *    whose length is the injected delay (ProtocolEvent::arg).
 *
 * appendWallSpans() adds a second process ("wall-clock", pid 2)
 * carrying an obs::SpanRecorder's request spans as duration slices
 * with *microsecond wall-time* timestamps, so where the wall time of
 * a request went (build, trace acquisition, the timing run) renders
 * next to the simulated-cycle tracks in one file. Call it after the
 * run, before finish().
 *
 * finish() (or destruction) closes still-open recovery windows as
 * zero-length slices and terminates the JSON. Output is validated in
 * CI by tools/perfetto_check.py; how-to in docs/OBSERVABILITY.md.
 */

#ifndef DSCALAR_OBS_PERFETTO_HH
#define DSCALAR_OBS_PERFETTO_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "common/trace.hh"

namespace dscalar {
namespace obs {

class SpanRecorder;

class PerfettoTraceSink final : public TraceSink
{
  public:
    explicit PerfettoTraceSink(std::ostream &os);
    ~PerfettoTraceSink() override;

    void event(const ProtocolEvent &ev) override;

    /** Append @p rec's closed spans as a wall-clock process (pid 2)
     *  — one slice per span, ts/dur in wall microseconds since the
     *  recorder epoch. Must precede finish(); no-op afterwards. */
    void appendWallSpans(const SpanRecorder &rec);

    /** Close open windows and terminate the JSON (idempotent). */
    void finish();

    std::uint64_t eventCount() const { return emitted_; }

  private:
    /** tid for a node track (0 is the interconnect track). */
    static std::uint32_t nodeTid(NodeId node) { return node + 1; }

    void ensureTrack(std::uint32_t tid);
    void beginRecord();
    void emitInstant(const ProtocolEvent &ev, std::uint32_t tid);
    void emitDuration(const char *name, std::uint32_t tid, Cycle start,
                      Cycle dur, Addr line);

    std::ostream &os_;
    bool finished_ = false;
    bool first_ = true;
    std::uint64_t emitted_ = 0;
    std::set<std::uint32_t> tracks_;
    /** Open re-request->recovery windows: (node, line) -> start. */
    std::map<std::pair<NodeId, Addr>, Cycle> openWindows_;
};

} // namespace obs
} // namespace dscalar

#endif // DSCALAR_OBS_PERFETTO_HH
