#include "func/func_sim.hh"

#include <cmath>
#include <cstring>

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace func {

using isa::Instruction;
using isa::Opcode;

namespace {

double
asDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

} // namespace

FuncSim::FuncSim(const prog::Program &program)
    : pc_(program.entry)
{
    mem_.loadProgram(program);
    regs_[prog::reg::sp] = program.initialSp();
}

void
FuncSim::writeReg(RegIndex index, std::uint64_t value)
{
    if (index != 0)
        regs_[index] = value;
}

void
FuncSim::doSyscall(std::int32_t code)
{
    using isa::Syscall;
    std::uint64_t a0 = regs_[prog::reg::a0];
    switch (static_cast<Syscall>(code)) {
      case Syscall::Exit:
        halted_ = true;
        writeReg(prog::reg::v0, 0);
        break;
      case Syscall::PrintInt:
        output_ += csprintf("%lld\n",
                            (long long)static_cast<std::int64_t>(a0));
        writeReg(prog::reg::v0, 0);
        break;
      case Syscall::PrintChar:
        output_ += static_cast<char>(a0 & 0xff);
        writeReg(prog::reg::v0, 0);
        break;
      case Syscall::PrintFp:
        output_ += csprintf("%.6g\n", asDouble(a0));
        writeReg(prog::reg::v0, 0);
        break;
      default:
        fatal("unknown syscall %d at pc 0x%llx", code,
              (unsigned long long)pc_);
    }
}

const Instruction &
FuncSim::fetchDecode(Addr pc)
{
    DecodeSlot &slot = decodeCache_[(pc >> 2) & (kDecodeSlots - 1)];
    if (slot.pc != pc) {
        auto word = static_cast<std::uint32_t>(mem_.read(pc, 4));
        slot.inst = isa::decode(word);
        slot.pc = pc;
    }
    return slot.inst;
}

void
FuncSim::invalidateDecode(Addr addr, unsigned size)
{
    // Any 4-byte instruction word starting in [addr - 3, addr + size)
    // overlaps the store.
    Addr first = (addr >= 3 ? addr - 3 : 0) & ~static_cast<Addr>(3);
    for (Addr pc = first; pc < addr + size; pc += 4) {
        DecodeSlot &slot =
            decodeCache_[(pc >> 2) & (kDecodeSlots - 1)];
        if (slot.pc >= first && slot.pc < addr + size)
            slot.pc = invalidAddr;
    }
}

bool
FuncSim::step(DynInst *out)
{
    return hooksEnabled_ ? stepImpl<true>(out) : stepImpl<false>(out);
}

template <bool kHooked>
bool
FuncSim::stepImpl(DynInst *out)
{
    if (halted_)
        return false;

    if (kHooked && fetchHook_)
        fetchHook_(pc_);
    const Instruction &inst = fetchDecode(pc_);

    Addr cur_pc = pc_;
    Addr next_pc = pc_ + 4;
    Addr eff_addr = invalidAddr;
    unsigned mem_size = 0;

    auto s = static_cast<std::int64_t>(readReg(inst.rs));
    auto t = static_cast<std::int64_t>(readReg(inst.rt));
    auto us = readReg(inst.rs);
    auto ut = readReg(inst.rt);

    switch (inst.op) {
      case Opcode::NOP:
        break;

      case Opcode::ADD: writeReg(inst.rd, us + ut); break;
      case Opcode::SUB: writeReg(inst.rd, us - ut); break;
      case Opcode::MUL: writeReg(inst.rd, us * ut); break;
      case Opcode::DIV:
        writeReg(inst.rd, t == 0 ? 0 : static_cast<std::uint64_t>(s / t));
        break;
      case Opcode::REM:
        writeReg(inst.rd, t == 0 ? 0 : static_cast<std::uint64_t>(s % t));
        break;
      case Opcode::AND: writeReg(inst.rd, us & ut); break;
      case Opcode::OR: writeReg(inst.rd, us | ut); break;
      case Opcode::XOR: writeReg(inst.rd, us ^ ut); break;
      case Opcode::SLL: writeReg(inst.rd, us << (ut & 63)); break;
      case Opcode::SRL: writeReg(inst.rd, us >> (ut & 63)); break;
      case Opcode::SRA:
        writeReg(inst.rd, static_cast<std::uint64_t>(s >> (ut & 63)));
        break;
      case Opcode::SLT: writeReg(inst.rd, s < t ? 1 : 0); break;
      case Opcode::SLTU: writeReg(inst.rd, us < ut ? 1 : 0); break;

      case Opcode::ADDI:
        writeReg(inst.rd, us + static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(inst.imm)));
        break;
      case Opcode::ANDI:
        writeReg(inst.rd, us & static_cast<std::uint32_t>(inst.imm));
        break;
      case Opcode::ORI:
        writeReg(inst.rd, us | static_cast<std::uint32_t>(inst.imm));
        break;
      case Opcode::XORI:
        writeReg(inst.rd, us ^ static_cast<std::uint32_t>(inst.imm));
        break;
      case Opcode::SLLI: writeReg(inst.rd, us << (inst.imm & 63)); break;
      case Opcode::SRLI: writeReg(inst.rd, us >> (inst.imm & 63)); break;
      case Opcode::SRAI:
        writeReg(inst.rd,
                 static_cast<std::uint64_t>(s >> (inst.imm & 63)));
        break;
      case Opcode::SLTI:
        writeReg(inst.rd, s < inst.imm ? 1 : 0);
        break;
      case Opcode::LUI:
        writeReg(inst.rd,
                 static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(inst.imm) << 16));
        break;

      case Opcode::FADD:
        writeReg(inst.rd, asBits(asDouble(us) + asDouble(ut)));
        break;
      case Opcode::FSUB:
        writeReg(inst.rd, asBits(asDouble(us) - asDouble(ut)));
        break;
      case Opcode::FMUL:
        writeReg(inst.rd, asBits(asDouble(us) * asDouble(ut)));
        break;
      case Opcode::FDIV:
        writeReg(inst.rd, asBits(asDouble(us) / asDouble(ut)));
        break;
      case Opcode::FSLT:
        writeReg(inst.rd, asDouble(us) < asDouble(ut) ? 1 : 0);
        break;
      case Opcode::CVTIF:
        writeReg(inst.rd, asBits(static_cast<double>(s)));
        break;
      case Opcode::CVTFI: {
        double d = asDouble(us);
        // Out-of-range conversions (NaN/inf/huge) are defined as 0,
        // keeping workload checksums deterministic.
        std::int64_t v = (d >= -9.0e18 && d <= 9.0e18)
                             ? static_cast<std::int64_t>(d)
                             : 0;
        writeReg(inst.rd, static_cast<std::uint64_t>(v));
        break;
      }

      case Opcode::LW:
      case Opcode::LD:
      case Opcode::LBU: {
        eff_addr = us + static_cast<std::int64_t>(inst.imm);
        mem_size = inst.memSize();
        if (kHooked && memHook_)
            memHook_(eff_addr, mem_size, false);
        writeReg(inst.rd, mem_.read(eff_addr, mem_size));
        break;
      }
      case Opcode::SW:
      case Opcode::SD:
      case Opcode::SB: {
        eff_addr = us + static_cast<std::int64_t>(inst.imm);
        mem_size = inst.memSize();
        if (kHooked && memHook_)
            memHook_(eff_addr, mem_size, true);
        mem_.write(eff_addr, mem_size, ut);
        invalidateDecode(eff_addr, mem_size);
        break;
      }

      case Opcode::BEQ:
        if (s == t)
            next_pc = cur_pc + 4 + 4 * inst.imm;
        break;
      case Opcode::BNE:
        if (s != t)
            next_pc = cur_pc + 4 + 4 * inst.imm;
        break;
      case Opcode::BLT:
        if (s < t)
            next_pc = cur_pc + 4 + 4 * inst.imm;
        break;
      case Opcode::BGE:
        if (s >= t)
            next_pc = cur_pc + 4 + 4 * inst.imm;
        break;
      case Opcode::J:
        next_pc = static_cast<Addr>(inst.imm) * 4;
        break;
      case Opcode::JAL:
        writeReg(31, cur_pc + 4);
        next_pc = static_cast<Addr>(inst.imm) * 4;
        break;
      case Opcode::JR:
        next_pc = us;
        break;

      case Opcode::SYSCALL:
        doSyscall(inst.imm);
        break;
      case Opcode::HALT:
        halted_ = true;
        break;

      default:
        panic("unimplemented opcode %u at pc 0x%llx",
              static_cast<unsigned>(inst.op),
              (unsigned long long)cur_pc);
    }

    if (out) {
        out->seq = retired_;
        out->pc = cur_pc;
        out->inst = inst;
        out->effAddr = eff_addr;
        out->memSize = mem_size;
        out->nextPc = next_pc;
    }

    pc_ = next_pc;
    ++retired_;
    return true;
}

InstSeq
FuncSim::run(InstSeq max_insts)
{
    // Pick the interpreter variant once for the whole run.
    InstSeq n = 0;
    if (hooksEnabled_) {
        while (n < max_insts && stepImpl<true>(nullptr))
            ++n;
    } else {
        while (n < max_insts && stepImpl<false>(nullptr))
            ++n;
    }
    return n;
}

} // namespace func
} // namespace dscalar
