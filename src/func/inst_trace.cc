#include "func/inst_trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dscalar {
namespace func {

std::size_t
InstTrace::Chunk::bytes() const
{
    return pcStore.capacity() * sizeof(Addr) +
           wordStore.capacity() * sizeof(std::uint32_t) +
           effAddrStore.capacity() * sizeof(Addr) +
           memSizeStore.capacity() * sizeof(std::uint8_t) +
           nextPcStore.capacity() * sizeof(Addr);
}

void
InstTrace::Chunk::seal()
{
    if (!pc)
        pc = pcStore.data();
    if (!word)
        word = wordStore.data();
    if (!effAddr)
        effAddr = effAddrStore.data();
    if (!memSize)
        memSize = memSizeStore.data();
    if (!nextPc)
        nextPc = nextPcStore.data();
    // A loader that borrows every column sets count itself; owned
    // chunks derive it from their longest store.
    count = std::max({count, pcStore.size(), wordStore.size(),
                      effAddrStore.size(), memSizeStore.size(),
                      nextPcStore.size()});
}

std::size_t
InstTrace::memoryBytes() const
{
    std::size_t total = output_.capacity() +
                        outputMarks_.capacity() * sizeof(OutputMark);
    for (const auto &c : chunks_)
        total += sizeof(Chunk) + c->bytes();
    return total;
}

std::string
InstTrace::outputPrefix(InstSeq max_insts) const
{
    if (max_insts == 0 || max_insts >= length_)
        return output_;
    // The last mark from a record below max_insts gives the bytes
    // printed by records [0, max_insts).
    auto it = std::lower_bound(
        outputMarks_.begin(), outputMarks_.end(), max_insts,
        [](const OutputMark &m, InstSeq n) { return m.seq < n; });
    std::size_t len =
        it == outputMarks_.begin()
            ? 0
            : static_cast<std::size_t>(std::prev(it)->bytes);
    return output_.substr(0, len);
}

std::shared_ptr<const InstTrace>
InstTrace::fromParts(Parts &&parts)
{
    auto trace = std::shared_ptr<InstTrace>(new InstTrace());
    InstSeq total = 0;
    for (const auto &c : parts.chunks) {
        panic_if(!c || !c->pc || c->count == 0,
                 "InstTrace::fromParts: unsealed or empty chunk");
        total += c->count;
    }
    panic_if(total != parts.length,
             "InstTrace::fromParts: chunks cover %llu records, "
             "expected %llu",
             static_cast<unsigned long long>(total),
             static_cast<unsigned long long>(parts.length));
    trace->chunks_ = std::move(parts.chunks);
    trace->length_ = parts.length;
    trace->halted_ = parts.halted;
    trace->output_ = std::move(parts.output);
    trace->outputMarks_ = std::move(parts.outputMarks);
    return trace;
}

std::shared_ptr<const InstTrace>
InstTrace::capture(const prog::Program &program, InstSeq max_insts)
{
    FuncSim sim(program);
    auto trace = std::shared_ptr<InstTrace>(new InstTrace());

    std::shared_ptr<Chunk> cur;
    DynInst rec;
    InstSeq n = 0;
    std::size_t out_len = 0;
    InstSeq budget = max_insts ? max_insts : ~static_cast<InstSeq>(0);
    while (n < budget && sim.step(&rec)) {
        if (!cur || cur->pcStore.size() == kChunkRecords) {
            if (cur) {
                cur->seal();
                trace->chunks_.push_back(std::move(cur));
            }
            cur = std::make_shared<Chunk>();
            std::size_t reserve = static_cast<std::size_t>(
                std::min(budget - n, kChunkRecords));
            cur->pcStore.reserve(reserve);
            cur->wordStore.reserve(reserve);
            cur->effAddrStore.reserve(reserve);
            cur->memSizeStore.reserve(reserve);
            cur->nextPcStore.reserve(reserve);
        }
        cur->pcStore.push_back(rec.pc);
        // encode() round-trips through decode(), so the stored word
        // reproduces the retired instruction exactly.
        cur->wordStore.push_back(isa::encode(rec.inst));
        cur->effAddrStore.push_back(rec.effAddr);
        cur->memSizeStore.push_back(
            static_cast<std::uint8_t>(rec.memSize));
        cur->nextPcStore.push_back(rec.nextPc);
        if (sim.output().size() != out_len) {
            out_len = sim.output().size();
            trace->outputMarks_.push_back(
                OutputMark{n, static_cast<std::uint64_t>(out_len)});
        }
        ++n;
    }
    if (cur) {
        cur->seal();
        trace->chunks_.push_back(std::move(cur));
    }
    trace->length_ = n;
    trace->halted_ = sim.halted();
    trace->output_ = sim.output();
    return trace;
}

} // namespace func
} // namespace dscalar
