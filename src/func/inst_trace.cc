#include "func/inst_trace.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dscalar {
namespace func {

std::size_t
InstTrace::Chunk::bytes() const
{
    return pc.capacity() * sizeof(Addr) +
           word.capacity() * sizeof(std::uint32_t) +
           effAddr.capacity() * sizeof(Addr) +
           memSize.capacity() * sizeof(std::uint8_t) +
           nextPc.capacity() * sizeof(Addr);
}

std::size_t
InstTrace::memoryBytes() const
{
    std::size_t total = output_.capacity() +
                        outputMarks_.capacity() * sizeof(OutputMark);
    for (const auto &c : chunks_)
        total += sizeof(Chunk) + c->bytes();
    return total;
}

std::string
InstTrace::outputPrefix(InstSeq max_insts) const
{
    if (max_insts == 0 || max_insts >= length_)
        return output_;
    // The last mark from a record below max_insts gives the bytes
    // printed by records [0, max_insts).
    auto it = std::lower_bound(
        outputMarks_.begin(), outputMarks_.end(), max_insts,
        [](const OutputMark &m, InstSeq n) { return m.seq < n; });
    std::size_t len =
        it == outputMarks_.begin()
            ? 0
            : static_cast<std::size_t>(std::prev(it)->bytes);
    return output_.substr(0, len);
}

std::shared_ptr<const InstTrace>
InstTrace::capture(const prog::Program &program, InstSeq max_insts)
{
    FuncSim sim(program);
    auto trace = std::shared_ptr<InstTrace>(new InstTrace());

    std::shared_ptr<Chunk> cur;
    DynInst rec;
    InstSeq n = 0;
    std::size_t out_len = 0;
    InstSeq budget = max_insts ? max_insts : ~static_cast<InstSeq>(0);
    while (n < budget && sim.step(&rec)) {
        if (!cur || cur->size() == kChunkRecords) {
            if (cur)
                trace->chunks_.push_back(std::move(cur));
            cur = std::make_shared<Chunk>();
            std::size_t reserve = static_cast<std::size_t>(
                std::min(budget - n, kChunkRecords));
            cur->pc.reserve(reserve);
            cur->word.reserve(reserve);
            cur->effAddr.reserve(reserve);
            cur->memSize.reserve(reserve);
            cur->nextPc.reserve(reserve);
        }
        cur->pc.push_back(rec.pc);
        // encode() round-trips through decode(), so the stored word
        // reproduces the retired instruction exactly.
        cur->word.push_back(isa::encode(rec.inst));
        cur->effAddr.push_back(rec.effAddr);
        cur->memSize.push_back(static_cast<std::uint8_t>(rec.memSize));
        cur->nextPc.push_back(rec.nextPc);
        if (sim.output().size() != out_len) {
            out_len = sim.output().size();
            trace->outputMarks_.push_back(
                OutputMark{n, static_cast<std::uint64_t>(out_len)});
        }
        ++n;
    }
    if (cur)
        trace->chunks_.push_back(std::move(cur));
    trace->length_ = n;
    trace->halted_ = sim.halted();
    trace->output_ = sim.output();
    return trace;
}

} // namespace func
} // namespace dscalar
