/**
 * @file
 * Immutable capture of one workload's dynamic instruction stream.
 *
 * The paper's SPSD property (Section 2) means every DataScalar node
 * — and every sweep point over the same workload — consumes the
 * *identical* dynamic stream. An InstTrace is that stream computed
 * once: a chunked structure-of-arrays record (pc, raw instruction
 * word, effective address, access size, resolved next pc; the
 * sequence number is the record's position) produced by a single
 * FuncSim run and then shared read-only between any number of
 * consumers, on any thread, via std::shared_ptr.
 *
 * Chunks are individually reference counted so a consumer that has
 * advanced past a chunk can drop its reference and let the memory go
 * as soon as every other holder has too — the same
 * compute-once-and-broadcast shape the paper applies to operands.
 *
 * Each chunk exposes its columns as raw read-only pointer views.
 * A chunk produced by capture() (or a decompressing load) *owns* its
 * columns in the *Store vectors; a chunk loaded from an on-disk trace
 * file (func/trace_file.hh) may instead *borrow* them straight out of
 * a read-only file mapping, with `backing` keeping the mapping alive
 * until the last borrowed chunk is released — so loading a multi-GB
 * trace costs O(pages touched), never a copy.
 */

#ifndef DSCALAR_FUNC_INST_TRACE_HH
#define DSCALAR_FUNC_INST_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "func/func_sim.hh"
#include "isa/instruction.hh"
#include "prog/program.hh"

namespace dscalar {
namespace func {

/** One captured, immutable dynamic instruction stream. */
class InstTrace
{
  public:
    /** Records per chunk (power of two so record -> chunk is a
     *  shift). 4096 records ≈ 116 KB of SoA payload per chunk. */
    static constexpr unsigned kChunkShift = 12;
    static constexpr InstSeq kChunkRecords = InstSeq(1) << kChunkShift;
    static constexpr InstSeq kChunkMask = kChunkRecords - 1;

    /**
     * Structure-of-arrays block of consecutive dynamic instructions.
     * Element i of every column view describes record firstSeq + i;
     * the raw word re-decodes to the retired instruction.
     *
     * The pointer views are the read interface. Columns filled into
     * the *Store vectors are published through them by seal();
     * columns borrowed from a file mapping point into `backing`.
     * A sealed chunk is immutable.
     */
    struct Chunk
    {
        const Addr *pc = nullptr;
        const std::uint32_t *word = nullptr; ///< encoded instruction
        const Addr *effAddr = nullptr;       ///< invalidAddr if not mem
        const std::uint8_t *memSize = nullptr; ///< bytes, 0 if not mem
        const Addr *nextPc = nullptr;
        std::size_t count = 0;

        std::size_t size() const { return count; }
        /** Owned heap payload; borrowed columns cost no heap. */
        std::size_t bytes() const;
        /** True when any column lives in a file mapping. */
        bool borrowed() const { return backing != nullptr; }

        /** Expand record @p i of this chunk (sequence @p seq) into
         *  the DynInst a live FuncSim step would have produced. */
        void
        expand(std::size_t i, InstSeq seq, DynInst &out) const
        {
            out.seq = seq;
            out.pc = pc[i];
            out.inst = isa::decode(word[i]);
            out.effAddr = effAddr[i];
            out.memSize = memSize[i];
            out.nextPc = nextPc[i];
        }

        /** Point every null view at its *Store vector and set count
         *  (all owned columns must have equal length). Views already
         *  aimed at borrowed storage are left alone. */
        void seal();

        // Owned column storage (capture, or decompressed load).
        std::vector<Addr> pcStore;
        std::vector<std::uint32_t> wordStore;
        std::vector<Addr> effAddrStore;
        std::vector<std::uint8_t> memSizeStore;
        std::vector<Addr> nextPcStore;
        /** Keep-alive for columns borrowed from a file mapping. */
        std::shared_ptr<const void> backing;
    };

    /** Output length watermark: after record seq retired, output()
     *  held bytes bytes. Only records that printed get a mark. */
    struct OutputMark
    {
        InstSeq seq;
        std::uint64_t bytes;
    };

    /**
     * Capture @p program's dynamic stream with one functional run,
     * executing @p max_insts instructions or to completion
     * (max_insts == 0). The trace also keeps the run's syscall
     * output so replayed systems can report it without re-executing.
     */
    static std::shared_ptr<const InstTrace>
    capture(const prog::Program &program, InstSeq max_insts = 0);

    /** Everything a loader must supply to rebuild a trace. */
    struct Parts
    {
        std::vector<std::shared_ptr<const Chunk>> chunks;
        InstSeq length = 0;
        bool halted = false;
        std::string output;
        std::vector<OutputMark> outputMarks; ///< ascending seq
    };

    /** Reassemble a trace from loader-built parts (trace_file.cc).
     *  Chunks must be sealed and sum to @p parts.length records. */
    static std::shared_ptr<const InstTrace> fromParts(Parts &&parts);

    /** Number of captured records. */
    InstSeq length() const { return length_; }

    /** True when the program halted inside the captured window (the
     *  trace covers the whole run, not a max_insts prefix). */
    bool programHalted() const { return halted_; }

    /** Bytes written by Print* syscalls during the captured prefix. */
    const std::string &output() const { return output_; }

    /** Watermarks backing outputPrefix(), in ascending seq order. */
    const std::vector<OutputMark> &
    outputMarks() const
    {
        return outputMarks_;
    }

    /**
     * Bytes written by the first @p max_insts captured records
     * (0 = the whole capture), so a replay truncated below the
     * capture budget reports exactly what a live run at that budget
     * would have printed.
     */
    std::string outputPrefix(InstSeq max_insts) const;

    std::size_t numChunks() const { return chunks_.size(); }
    const std::shared_ptr<const Chunk> &
    chunk(std::size_t index) const
    {
        return chunks_[index];
    }

    /** Approximate heap footprint of the SoA payload in bytes
     *  (borrowed chunks count only their bookkeeping — their pages
     *  belong to the shared file mapping). */
    std::size_t memoryBytes() const;

    /** Expand record @p seq (must be < length()). */
    void
    expand(InstSeq seq, DynInst &out) const
    {
        chunks_[seq >> kChunkShift]->expand(seq & kChunkMask, seq,
                                            out);
    }

    /**
     * One in-order pass over every record:
     * fn(pc, inst, effAddr, memSize) with the hook-equivalent
     * ordering (each record's fetch precedes its data access).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        InstSeq seq = 0;
        for (const auto &c : chunks_) {
            for (std::size_t i = 0; i < c->size(); ++i, ++seq) {
                fn(c->pc[i], isa::decode(c->word[i]), c->effAddr[i],
                   static_cast<unsigned>(c->memSize[i]));
            }
        }
    }

  private:
    InstTrace() = default;

    std::vector<std::shared_ptr<const Chunk>> chunks_;
    InstSeq length_ = 0;
    bool halted_ = false;
    std::string output_;
    std::vector<OutputMark> outputMarks_;
};

} // namespace func
} // namespace dscalar

#endif // DSCALAR_FUNC_INST_TRACE_HH
