/**
 * @file
 * Immutable capture of one workload's dynamic instruction stream.
 *
 * The paper's SPSD property (Section 2) means every DataScalar node
 * — and every sweep point over the same workload — consumes the
 * *identical* dynamic stream. An InstTrace is that stream computed
 * once: a chunked structure-of-arrays record (pc, raw instruction
 * word, effective address, access size, resolved next pc; the
 * sequence number is the record's position) produced by a single
 * FuncSim run and then shared read-only between any number of
 * consumers, on any thread, via std::shared_ptr.
 *
 * Chunks are individually reference counted so a consumer that has
 * advanced past a chunk can drop its reference and let the memory go
 * as soon as every other holder has too — the same
 * compute-once-and-broadcast shape the paper applies to operands.
 */

#ifndef DSCALAR_FUNC_INST_TRACE_HH
#define DSCALAR_FUNC_INST_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "func/func_sim.hh"
#include "isa/instruction.hh"
#include "prog/program.hh"

namespace dscalar {
namespace func {

/** One captured, immutable dynamic instruction stream. */
class InstTrace
{
  public:
    /** Records per chunk (power of two so record -> chunk is a
     *  shift). 4096 records ≈ 116 KB of SoA payload per chunk. */
    static constexpr unsigned kChunkShift = 12;
    static constexpr InstSeq kChunkRecords = InstSeq(1) << kChunkShift;
    static constexpr InstSeq kChunkMask = kChunkRecords - 1;

    /**
     * Structure-of-arrays block of consecutive dynamic instructions.
     * Element i of every column describes record firstSeq + i; the
     * raw word re-decodes to the retired instruction.
     */
    struct Chunk
    {
        std::vector<Addr> pc;
        std::vector<std::uint32_t> word;  ///< encoded instruction
        std::vector<Addr> effAddr;        ///< invalidAddr if not mem
        std::vector<std::uint8_t> memSize; ///< bytes, 0 if not mem
        std::vector<Addr> nextPc;

        std::size_t size() const { return pc.size(); }
        std::size_t bytes() const;

        /** Expand record @p i of this chunk (sequence @p seq) into
         *  the DynInst a live FuncSim step would have produced. */
        void
        expand(std::size_t i, InstSeq seq, DynInst &out) const
        {
            out.seq = seq;
            out.pc = pc[i];
            out.inst = isa::decode(word[i]);
            out.effAddr = effAddr[i];
            out.memSize = memSize[i];
            out.nextPc = nextPc[i];
        }
    };

    /**
     * Capture @p program's dynamic stream with one functional run,
     * executing @p max_insts instructions or to completion
     * (max_insts == 0). The trace also keeps the run's syscall
     * output so replayed systems can report it without re-executing.
     */
    static std::shared_ptr<const InstTrace>
    capture(const prog::Program &program, InstSeq max_insts = 0);

    /** Number of captured records. */
    InstSeq length() const { return length_; }

    /** True when the program halted inside the captured window (the
     *  trace covers the whole run, not a max_insts prefix). */
    bool programHalted() const { return halted_; }

    /** Bytes written by Print* syscalls during the captured prefix. */
    const std::string &output() const { return output_; }

    /**
     * Bytes written by the first @p max_insts captured records
     * (0 = the whole capture), so a replay truncated below the
     * capture budget reports exactly what a live run at that budget
     * would have printed.
     */
    std::string outputPrefix(InstSeq max_insts) const;

    std::size_t numChunks() const { return chunks_.size(); }
    const std::shared_ptr<const Chunk> &
    chunk(std::size_t index) const
    {
        return chunks_[index];
    }

    /** Approximate heap footprint of the SoA payload in bytes. */
    std::size_t memoryBytes() const;

    /** Expand record @p seq (must be < length()). */
    void
    expand(InstSeq seq, DynInst &out) const
    {
        chunks_[seq >> kChunkShift]->expand(seq & kChunkMask, seq,
                                            out);
    }

    /**
     * One in-order pass over every record:
     * fn(pc, inst, effAddr, memSize) with the hook-equivalent
     * ordering (each record's fetch precedes its data access).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        InstSeq seq = 0;
        for (const auto &c : chunks_) {
            for (std::size_t i = 0; i < c->size(); ++i, ++seq) {
                fn(c->pc[i], isa::decode(c->word[i]), c->effAddr[i],
                   static_cast<unsigned>(c->memSize[i]));
            }
        }
    }

  private:
    InstTrace() = default;

    /** Output length watermark: after record seq retired, output_
     *  held bytes bytes. Only records that printed get a mark. */
    struct OutputMark
    {
        InstSeq seq;
        std::uint64_t bytes;
    };

    std::vector<std::shared_ptr<const Chunk>> chunks_;
    InstSeq length_ = 0;
    bool halted_ = false;
    std::string output_;
    std::vector<OutputMark> outputMarks_;
};

} // namespace func
} // namespace dscalar

#endif // DSCALAR_FUNC_INST_TRACE_HH
