/**
 * @file
 * Execution-driven functional simulator.
 *
 * Serves three roles, mirroring SimpleScalar's split in the paper:
 *  1. architectural oracle — computes the one true dynamic
 *     instruction stream that every DataScalar node commits (SPSD);
 *  2. workload driver for the in-order cache studies (Tables 1-2)
 *     via the memory-access hook;
 *  3. correctness reference for the timing simulators (final state
 *     and syscall output must match).
 */

#ifndef DSCALAR_FUNC_FUNC_SIM_HH
#define DSCALAR_FUNC_FUNC_SIM_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "mem/phys_mem.hh"
#include "prog/program.hh"

namespace dscalar {
namespace func {

/** One executed (retired) dynamic instruction. */
struct DynInst
{
    InstSeq seq = 0;
    Addr pc = 0;
    isa::Instruction inst;
    Addr effAddr = invalidAddr; ///< memory ops only
    unsigned memSize = 0;       ///< bytes, memory ops only
    Addr nextPc = 0;            ///< resolved next PC (perfect prediction)
};

/** ISA interpreter over a private PhysMem. */
class FuncSim
{
  public:
    /** Called for every data access: (addr, size, isWrite). */
    using MemHook = std::function<void(Addr, unsigned, bool)>;
    /** Called for every instruction fetch: (pc). */
    using FetchHook = std::function<void(Addr)>;

    explicit FuncSim(const prog::Program &program);

    /** @return false once HALT or SYSCALL(Exit) has retired. */
    bool halted() const { return halted_; }

    /** Architectural register read (r0 reads as zero). */
    std::uint64_t reg(RegIndex index) const { return regs_[index]; }
    Addr pc() const { return pc_; }
    InstSeq retired() const { return retired_; }

    /** Bytes written by Print* syscalls, in program order. */
    const std::string &output() const { return output_; }

    mem::PhysMem &memory() { return mem_; }
    const mem::PhysMem &memory() const { return mem_; }

    void
    setMemHook(MemHook hook)
    {
        memHook_ = std::move(hook);
        hooksEnabled_ = static_cast<bool>(memHook_) ||
                        static_cast<bool>(fetchHook_);
    }
    void
    setFetchHook(FetchHook hook)
    {
        fetchHook_ = std::move(hook);
        hooksEnabled_ = static_cast<bool>(memHook_) ||
                        static_cast<bool>(fetchHook_);
    }

    /**
     * Execute one instruction; no-op when halted.
     * @param out optional record of the executed instruction.
     * @return true when an instruction was executed.
     */
    bool step(DynInst *out = nullptr);

    /**
     * Run to completion or until @p max_insts more instructions.
     * @return number of instructions executed.
     */
    InstSeq run(InstSeq max_insts = ~static_cast<InstSeq>(0));

  private:
    std::uint64_t readReg(RegIndex index) const { return regs_[index]; }
    void writeReg(RegIndex index, std::uint64_t value);
    void doSyscall(std::int32_t code);

    /** step(), specialized at compile time on hook presence so the
     *  common hook-free interpreter loop pays no per-instruction
     *  std::function checks or calls. */
    template <bool kHooked> bool stepImpl(DynInst *out);

    /** Fetch + decode @p pc through the decode cache. */
    const isa::Instruction &fetchDecode(Addr pc);
    /** Drop cached decodes covered by a store (self-modifying code). */
    void invalidateDecode(Addr addr, unsigned size);

    mem::PhysMem mem_;
    std::uint64_t regs_[32] = {};
    Addr pc_;
    bool halted_ = false;
    InstSeq retired_ = 0;
    std::string output_;
    MemHook memHook_;
    FetchHook fetchHook_;
    bool hooksEnabled_ = false;

    // Direct-mapped decoded-instruction cache: the interpreter spends
    // much of its time re-reading and re-decoding the same static
    // instructions. Stores invalidate overlapping slots, so
    // self-modifying code still refetches.
    static constexpr std::size_t kDecodeSlots = 4096;
    struct DecodeSlot
    {
        Addr pc = invalidAddr;
        isa::Instruction inst;
    };
    DecodeSlot decodeCache_[kDecodeSlots];
};

} // namespace func
} // namespace dscalar

#endif // DSCALAR_FUNC_FUNC_SIM_HH
