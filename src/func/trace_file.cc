#include "func/trace_file.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/logging.hh"

namespace dscalar {
namespace func {

namespace {

constexpr char kMagic[8] = {'d', 's', 't', 'r', 'a', 'c', 'e', '\n'};
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::uint32_t kFlagCompressed = 1u << 0;
constexpr unsigned kColumns = 4; ///< pc(+sentinel), word, effAddr, memSize

/** Fixed file header; every multi-byte field is host (little)
 *  endian, guarded by the endian tag. */
struct RawHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t endian;
    std::uint32_t flags;
    std::uint32_t halted;
    std::uint64_t records;
    std::uint64_t imageDigest;
    std::uint64_t keyOffset;
    std::uint64_t keyBytes;
    std::uint64_t outputOffset;
    std::uint64_t outputBytes;
    std::uint64_t marksOffset;
    std::uint64_t markCount;
    std::uint64_t chunkDirOffset;
    std::uint64_t fileBytes;
    std::uint64_t payloadChecksum;
};
static_assert(sizeof(RawHeader) == 112, "header layout drifted");
static_assert(sizeof(RawHeader) % 8 == 0,
              "payload base must stay 8-aligned for borrowed columns");

/** One stored column's location (kColumns per chunk, in order). */
struct DirEntry
{
    std::uint64_t offset;
    std::uint64_t bytes;
};
static_assert(sizeof(DirEntry) == 16, "dir entry layout drifted");

/** Payload checksum: four interleaved FNV-1a lanes over 64-bit
 *  little-endian words (tail bytes zero-padded into a final word),
 *  folded into one value at the end. A byte-serial FNV is a strict
 *  dependency chain (~1 byte/cycle) and would dominate warm loads;
 *  word-wide independent lanes validate at memory speed. Any
 *  single-word corruption still flips its lane deterministically —
 *  (h ^ w) * prime is invertible in 2^64. */
std::uint64_t
fnv1a(const std::uint8_t *p, std::size_t n)
{
    constexpr std::uint64_t kOffset = 14695981039346656037ull;
    constexpr std::uint64_t kPrime = 1099511628211ull;
    std::uint64_t lane[4] = {kOffset, kOffset + 1, kOffset + 2,
                             kOffset + 3};
    std::size_t words = n / 8;
    std::size_t i = 0;
    for (; i + 4 <= words; i += 4) {
        for (unsigned l = 0; l < 4; ++l) {
            std::uint64_t w;
            std::memcpy(&w, p + (i + l) * 8, 8);
            lane[l] = (lane[l] ^ w) * kPrime;
        }
    }
    for (; i < words; ++i) {
        std::uint64_t w;
        std::memcpy(&w, p + i * 8, 8);
        lane[0] = (lane[0] ^ w) * kPrime;
    }
    if (n % 8) {
        std::uint64_t w = 0;
        std::memcpy(&w, p + words * 8, n % 8);
        lane[1] = (lane[1] ^ w) * kPrime;
    }
    std::uint64_t h = kOffset;
    for (unsigned l = 0; l < 4; ++l)
        h = (h ^ lane[l]) * kPrime;
    return h;
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void
appendRaw(std::string &buf, const void *data, std::size_t n)
{
    buf.append(static_cast<const char *>(data), n);
}

/** Pad @p buf to the next 8-byte payload boundary and return the
 *  absolute file offset of the byte that follows. */
std::uint64_t
alignPayload(std::string &buf)
{
    while ((sizeof(RawHeader) + buf.size()) % 8 != 0)
        buf.push_back('\0');
    return sizeof(RawHeader) + buf.size();
}

void
appendVarint(std::string &buf, std::uint64_t v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    buf.push_back(static_cast<char>(v));
}

bool
readVarint(const std::uint8_t *&p, const std::uint8_t *end,
           std::uint64_t &out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (p != end && shift < 64) {
        std::uint8_t b = *p++;
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80)) {
            out = v;
            return true;
        }
        shift += 7;
    }
    return false;
}

/** Append an Addr column as zigzag deltas (addresses and pcs are
 *  nearly sequential, so the varints are short). */
void
appendDeltaColumn(std::string &buf, const Addr *col, std::size_t n)
{
    Addr prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        appendVarint(buf, zigzag(static_cast<std::int64_t>(
                              col[i] - prev)));
        prev = col[i];
    }
}

bool
decodeDeltaColumn(const std::uint8_t *p, std::size_t bytes,
                  std::size_t n, std::vector<Addr> &out)
{
    const std::uint8_t *end = p + bytes;
    out.clear();
    out.reserve(n);
    Addr prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t zz = 0;
        if (!readVarint(p, end, zz))
            return false;
        prev += static_cast<Addr>(unzigzag(zz));
        out.push_back(prev);
    }
    return p == end; // a stored column must decode exactly
}

std::string
tmpPathFor(const std::string &path)
{
    static std::atomic<std::uint64_t> seq{0};
    return path + ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(seq.fetch_add(1));
}

/** Read-only whole-file mapping; unmapped when the last borrowed
 *  chunk (and the loader) lets go. */
struct Mapping
{
    const std::uint8_t *base = nullptr;
    std::size_t len = 0;

    ~Mapping()
    {
        if (base)
            ::munmap(const_cast<std::uint8_t *>(base), len);
    }
};

/** Map @p path and run the structural header checks (magic, version,
 *  endianness, size, section ranges). @return nullptr with @p error
 *  set on the first failed check. */
std::shared_ptr<Mapping>
mapAndValidate(const std::string &path, RawHeader &hdr,
               std::string &key, std::string &error)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "cannot open: " + std::string(std::strerror(errno));
        return nullptr;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        error = "cannot stat: " + std::string(std::strerror(errno));
        ::close(fd);
        return nullptr;
    }
    auto size = static_cast<std::size_t>(st.st_size);
    if (size < sizeof(RawHeader)) {
        error = "file smaller than header";
        ::close(fd);
        return nullptr;
    }
    // MAP_POPULATE batches the page-table setup in-kernel: the
    // checksum pass reads every payload page anyway, and one populate
    // is much cheaper than ~size/4K soft faults taken one at a time.
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    flags |= MAP_POPULATE;
#endif
    void *base = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
        error = "mmap failed: " + std::string(std::strerror(errno));
        return nullptr;
    }
    auto map = std::make_shared<Mapping>();
    map->base = static_cast<const std::uint8_t *>(base);
    map->len = size;

    std::memcpy(&hdr, map->base, sizeof(hdr));
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0) {
        error = "bad magic (not a dstrace file)";
        return nullptr;
    }
    if (hdr.endian != kEndianTag) {
        error = "endianness mismatch";
        return nullptr;
    }
    if (hdr.version != kTraceFileVersion) {
        error = "unsupported version " + std::to_string(hdr.version);
        return nullptr;
    }
    if (hdr.fileBytes != size) {
        error = "truncated file (header claims " +
                std::to_string(hdr.fileBytes) + " bytes, file has " +
                std::to_string(size) + ")";
        return nullptr;
    }

    auto in_range = [&](std::uint64_t off, std::uint64_t len) {
        return off >= sizeof(RawHeader) && off <= size &&
               len <= size - off;
    };
    std::uint64_t chunks =
        (hdr.records + InstTrace::kChunkRecords - 1) >>
        InstTrace::kChunkShift;
    if (!in_range(hdr.keyOffset, hdr.keyBytes) ||
        !in_range(hdr.outputOffset, hdr.outputBytes) ||
        !in_range(hdr.marksOffset,
                  hdr.markCount * sizeof(std::uint64_t) * 2) ||
        !in_range(hdr.chunkDirOffset,
                  chunks * kColumns * sizeof(DirEntry))) {
        error = "section out of range";
        return nullptr;
    }
    key.assign(reinterpret_cast<const char *>(map->base) +
                   hdr.keyOffset,
               hdr.keyBytes);
    return map;
}

} // namespace

bool
saveTraceFile(const std::string &path, const InstTrace &trace,
              const std::string &key, std::uint64_t image_digest,
              std::string &error, const TraceSaveOptions &opts)
{
    RawHeader hdr;
    std::memset(&hdr, 0, sizeof(hdr));
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kTraceFileVersion;
    hdr.endian = kEndianTag;
    hdr.flags = opts.compressed ? kFlagCompressed : 0;
    hdr.halted = trace.programHalted() ? 1 : 0;
    hdr.records = trace.length();
    hdr.imageDigest = image_digest;

    std::string buf; // payload, file offset sizeof(RawHeader)+i
    hdr.keyOffset = alignPayload(buf);
    hdr.keyBytes = key.size();
    appendRaw(buf, key.data(), key.size());

    hdr.outputOffset = alignPayload(buf);
    hdr.outputBytes = trace.output().size();
    appendRaw(buf, trace.output().data(), trace.output().size());

    hdr.marksOffset = alignPayload(buf);
    hdr.markCount = trace.outputMarks().size();
    for (const auto &m : trace.outputMarks()) {
        std::uint64_t seq = m.seq;
        appendRaw(buf, &seq, sizeof(seq));
        appendRaw(buf, &m.bytes, sizeof(m.bytes));
    }

    std::vector<DirEntry> dir;
    dir.reserve(trace.numChunks() * kColumns);
    auto raw_column = [&](const void *data, std::size_t bytes) {
        DirEntry e{alignPayload(buf), bytes};
        appendRaw(buf, data, bytes);
        dir.push_back(e);
    };
    // The dynamic stream is sequential — record i+1 executes at
    // record i's nextPc — so no nextPc column is stored. Each chunk's
    // pc column carries n+1 entries (the sentinel is the last
    // record's nextPc) and the loader aliases nextPc = pc + 1,
    // saving 8 bytes/record. The invariant is verified here so a
    // round trip can never silently rewrite a stream violating it.
    std::vector<Addr> pc_scratch;
    for (std::size_t ci = 0; ci < trace.numChunks(); ++ci) {
        const InstTrace::Chunk &c = *trace.chunk(ci);
        std::size_t n = c.size();
        for (std::size_t i = 0; i + 1 < n; ++i) {
            if (c.nextPc[i] != c.pc[i + 1]) {
                error = "trace stream is not sequential; cannot "
                        "share the pc column";
                return false;
            }
        }
        if (opts.compressed) {
            pc_scratch.assign(c.pc, c.pc + n);
            pc_scratch.push_back(c.nextPc[n - 1]);
            DirEntry e{alignPayload(buf), 0};
            appendDeltaColumn(buf, pc_scratch.data(), n + 1);
            e.bytes = sizeof(RawHeader) + buf.size() - e.offset;
            dir.push_back(e);
        } else {
            DirEntry e{alignPayload(buf), (n + 1) * sizeof(Addr)};
            appendRaw(buf, c.pc, n * sizeof(Addr));
            appendRaw(buf, &c.nextPc[n - 1], sizeof(Addr));
            dir.push_back(e);
        }
        raw_column(c.word, n * sizeof(std::uint32_t));
        if (opts.compressed) {
            DirEntry e{alignPayload(buf), 0};
            appendDeltaColumn(buf, c.effAddr, n);
            e.bytes = sizeof(RawHeader) + buf.size() - e.offset;
            dir.push_back(e);
        } else {
            raw_column(c.effAddr, n * sizeof(Addr));
        }
        raw_column(c.memSize, n * sizeof(std::uint8_t));
    }

    hdr.chunkDirOffset = alignPayload(buf);
    appendRaw(buf, dir.data(), dir.size() * sizeof(DirEntry));

    hdr.fileBytes = sizeof(RawHeader) + buf.size();
    hdr.payloadChecksum = fnv1a(
        reinterpret_cast<const std::uint8_t *>(buf.data()),
        buf.size());

    std::string tmp = tmpPathFor(path);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            error = "cannot create " + tmp;
            return false;
        }
        out.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
        out.write(buf.data(),
                  static_cast<std::streamsize>(buf.size()));
        out.flush();
        if (!out) {
            error = "short write to " + tmp;
            out.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "rename failed: " + std::string(std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::shared_ptr<const InstTrace>
loadTraceFile(const std::string &path, const std::string &expect_key,
              std::uint64_t expect_digest, std::string &error,
              TraceFileInfo *info)
{
    RawHeader hdr;
    std::string key;
    std::shared_ptr<Mapping> map =
        mapAndValidate(path, hdr, key, error);
    if (!map)
        return nullptr;

    if (!expect_key.empty()) {
        if (key != expect_key) {
            error = "workload key mismatch (stored \"" + key + "\")";
            return nullptr;
        }
        if (hdr.imageDigest != expect_digest) {
            error = "image digest mismatch (stale trace)";
            return nullptr;
        }
    }
    if (fnv1a(map->base + sizeof(RawHeader),
              map->len - sizeof(RawHeader)) != hdr.payloadChecksum) {
        error = "payload checksum mismatch";
        return nullptr;
    }

    bool compressed = (hdr.flags & kFlagCompressed) != 0;
    std::uint64_t num_chunks =
        (hdr.records + InstTrace::kChunkRecords - 1) >>
        InstTrace::kChunkShift;
    const auto *dir = reinterpret_cast<const DirEntry *>(
        map->base + hdr.chunkDirOffset);
    std::uint64_t payload_bytes = 0;

    InstTrace::Parts parts;
    parts.length = hdr.records;
    parts.halted = hdr.halted != 0;
    parts.output.assign(reinterpret_cast<const char *>(map->base) +
                            hdr.outputOffset,
                        hdr.outputBytes);
    parts.outputMarks.reserve(hdr.markCount);
    {
        const auto *m = reinterpret_cast<const std::uint64_t *>(
            map->base + hdr.marksOffset);
        InstSeq prev_seq = 0;
        for (std::uint64_t i = 0; i < hdr.markCount; ++i) {
            InstTrace::OutputMark mark{m[2 * i], m[2 * i + 1]};
            if (mark.seq >= hdr.records ||
                (i > 0 && mark.seq <= prev_seq)) {
                error = "corrupt output marks";
                return nullptr;
            }
            prev_seq = mark.seq;
            parts.outputMarks.push_back(mark);
        }
    }

    parts.chunks.reserve(num_chunks);
    for (std::uint64_t ci = 0; ci < num_chunks; ++ci) {
        std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(InstTrace::kChunkRecords,
                                    hdr.records -
                                        (ci
                                         << InstTrace::kChunkShift)));
        const DirEntry *e = dir + ci * kColumns;
        auto chunk = std::make_shared<InstTrace::Chunk>();
        chunk->backing = map;

        // Validate one column and either borrow it from the mapping
        // (raw) or leave the view null for the decoder to fill.
        auto column = [&](const DirEntry &d, std::size_t width,
                          const void *&view) -> bool {
            if (d.offset < sizeof(RawHeader) ||
                d.offset > map->len ||
                d.bytes > map->len - d.offset) {
                error = "column out of range";
                return false;
            }
            payload_bytes += d.bytes;
            if (width) { // raw fixed-width column
                if (d.bytes != n * width || d.offset % 8 != 0) {
                    error = "malformed column";
                    return false;
                }
                view = map->base + d.offset;
            }
            return true;
        };
        auto addr_column = [&](const DirEntry &d, const Addr *&view,
                               std::vector<Addr> &store) -> bool {
            const void *raw = nullptr;
            if (!column(d, compressed ? 0 : sizeof(Addr), raw))
                return false;
            if (!compressed) {
                view = static_cast<const Addr *>(raw);
                return true;
            }
            if (!decodeDeltaColumn(map->base + d.offset,
                                   static_cast<std::size_t>(d.bytes),
                                   n, store)) {
                error = "corrupt delta column";
                return false;
            }
            return true;
        };

        // The pc column carries n+1 entries — the sentinel is the
        // last record's nextPc — and the sequential-stream invariant
        // the saver verified makes nextPc a one-record-shifted view
        // of the same storage.
        const DirEntry &dpc = e[0];
        if (dpc.offset < sizeof(RawHeader) || dpc.offset > map->len ||
            dpc.bytes > map->len - dpc.offset) {
            error = "column out of range";
            return nullptr;
        }
        payload_bytes += dpc.bytes;
        if (!compressed) {
            if (dpc.bytes != (n + 1) * sizeof(Addr) ||
                dpc.offset % 8 != 0) {
                error = "malformed column";
                return nullptr;
            }
            chunk->pc = reinterpret_cast<const Addr *>(map->base +
                                                       dpc.offset);
        } else {
            if (!decodeDeltaColumn(
                    map->base + dpc.offset,
                    static_cast<std::size_t>(dpc.bytes), n + 1,
                    chunk->pcStore)) {
                error = "corrupt delta column";
                return nullptr;
            }
            chunk->pc = chunk->pcStore.data();
        }
        chunk->nextPc = chunk->pc + 1;

        const void *word_view = nullptr;
        const void *size_view = nullptr;
        if (!column(e[1], sizeof(std::uint32_t), word_view) ||
            !addr_column(e[2], chunk->effAddr, chunk->effAddrStore) ||
            !column(e[3], sizeof(std::uint8_t), size_view))
            return nullptr;
        chunk->word = static_cast<const std::uint32_t *>(word_view);
        chunk->memSize = static_cast<const std::uint8_t *>(size_view);
        chunk->seal();
        // After seal: the pc store holds n+1 entries, so the owned-
        // store maximum overshoots by the sentinel; the record count
        // is authoritative here.
        chunk->count = n;
        parts.chunks.push_back(std::move(chunk));
    }

    if (info) {
        info->version = hdr.version;
        info->compressed = compressed;
        info->records = hdr.records;
        info->halted = hdr.halted != 0;
        info->imageDigest = hdr.imageDigest;
        info->key = key;
        info->fileBytes = hdr.fileBytes;
        info->payloadBytes = payload_bytes;
    }
    error.clear();
    return InstTrace::fromParts(std::move(parts));
}

bool
probeTraceFile(const std::string &path, TraceFileInfo &info,
               std::string &error)
{
    RawHeader hdr;
    std::string key;
    std::shared_ptr<Mapping> map =
        mapAndValidate(path, hdr, key, error);
    if (!map)
        return false;
    std::uint64_t chunks =
        (hdr.records + InstTrace::kChunkRecords - 1) >>
        InstTrace::kChunkShift;
    const auto *dir = reinterpret_cast<const DirEntry *>(
        map->base + hdr.chunkDirOffset);
    std::uint64_t payload_bytes = 0;
    for (std::uint64_t i = 0; i < chunks * kColumns; ++i)
        payload_bytes += dir[i].bytes;
    info.version = hdr.version;
    info.compressed = (hdr.flags & kFlagCompressed) != 0;
    info.records = hdr.records;
    info.halted = hdr.halted != 0;
    info.imageDigest = hdr.imageDigest;
    info.key = key;
    info.fileBytes = hdr.fileBytes;
    info.payloadBytes = payload_bytes;
    error.clear();
    return true;
}

} // namespace func
} // namespace dscalar
