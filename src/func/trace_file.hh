/**
 * @file
 * Versioned on-disk format for func::InstTrace — the persistent trace
 * store.
 *
 * A trace file is one fixed little-endian header followed by a
 * payload: the workload key string, the captured syscall output, the
 * output watermarks, the SoA column data of every 4096-record chunk,
 * and a chunk directory locating each stored column. The header
 * carries magic, format version, the program's image digest, the
 * record count, and a word-wide four-lane FNV-1a checksum over the
 * whole payload (memory-speed to validate), so a loader can reject
 * truncated, corrupted, stale, or foreign files before trusting a
 * byte of them.
 *
 * No nextPc column is stored: the dynamic stream is sequential
 * (record i+1 executes at record i's nextPc — verified at save
 * time), so each chunk's pc column carries n+1 entries, the sentinel
 * being the last record's nextPc, and the loader aliases
 * nextPc = pc + 1. That is 8 bytes/record the file never pays.
 *
 * Two storage modes per file:
 *  - raw: every column is stored as its native fixed-width array at
 *    an 8-byte-aligned offset. loadTraceFile() then mmaps the file
 *    read-only and *borrows* the columns straight out of the mapping
 *    (InstTrace::Chunk::backing keeps it alive), so loading a
 *    multi-GB trace is O(pages touched) and replay never copies a
 *    record.
 *  - compressed: the pc and effAddr columns are stored as
 *    zigzag-delta varints (they are nearly sequential, so this is
 *    ~3-4x smaller); the word and memSize columns stay raw and
 *    borrowed. The delta columns are decoded into owned chunk
 *    storage at load time.
 *
 * Writes are atomic: the file is assembled next to its final path as
 * `<path>.tmp.<pid>.<n>` and rename()d into place, so concurrent
 * writers racing the same key publish one complete winner and
 * readers never observe a torn file.
 */

#ifndef DSCALAR_FUNC_TRACE_FILE_HH
#define DSCALAR_FUNC_TRACE_FILE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "func/inst_trace.hh"

namespace dscalar {
namespace func {

/** Current trace file format version (header field). */
constexpr std::uint32_t kTraceFileVersion = 1;

/** Parsed header summary, for tools, benches, and tests. */
struct TraceFileInfo
{
    std::uint32_t version = 0;
    bool compressed = false;
    std::uint64_t records = 0;
    bool halted = false;
    std::uint64_t imageDigest = 0;
    std::string key;
    std::uint64_t fileBytes = 0;    ///< total file size
    std::uint64_t payloadBytes = 0; ///< stored column bytes only
};

struct TraceSaveOptions
{
    /** Store pc/effAddr/nextPc as zigzag-delta varint columns. */
    bool compressed = false;
};

/**
 * Atomically write @p trace to @p path, stamped with @p key (the
 * cache key string) and @p image_digest (prog::Program::imageDigest()
 * of the program it was captured from).
 * @return false with @p error set on any I/O failure; the final path
 * is never left half-written.
 */
bool saveTraceFile(const std::string &path, const InstTrace &trace,
                   const std::string &key, std::uint64_t image_digest,
                   std::string &error,
                   const TraceSaveOptions &opts = {});

/**
 * mmap @p path and rebuild its InstTrace, validating magic, version,
 * endianness, total size, payload checksum, and — unless
 * @p expect_key is empty — that the stored key and image digest match
 * @p expect_key / @p expect_digest exactly.
 *
 * @return the trace, or nullptr with @p error describing the first
 * check that failed (callers fall back to a fresh capture). On
 * success @p info, when non-null, receives the header summary.
 */
std::shared_ptr<const InstTrace>
loadTraceFile(const std::string &path, const std::string &expect_key,
              std::uint64_t expect_digest, std::string &error,
              TraceFileInfo *info = nullptr);

/** Read and validate only the header (no payload checksum scan).
 *  @return false with @p error set when the file is unreadable or
 *  structurally invalid. */
bool probeTraceFile(const std::string &path, TraceFileInfo &info,
                    std::string &error);

} // namespace func
} // namespace dscalar

#endif // DSCALAR_FUNC_TRACE_FILE_HH
