/**
 * @file
 * Client side of the dsserve wire protocol: connect to a daemon's
 * Unix-domain socket and exchange request/reply blocks. Used by
 * dsbench, the serve tests, and anything else that wants warm-cache
 * simulation results without forking a dsrun per run.
 */

#ifndef DSCALAR_SERVE_CLIENT_HH
#define DSCALAR_SERVE_CLIENT_HH

#include <memory>
#include <string>

#include "driver/run_request.hh"
#include "serve/protocol.hh"

namespace dscalar {
namespace serve {

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    /** Movable: the handle transfers, the source disconnects. */
    Client(Client &&other) noexcept
        : fd_(other.fd_), reader_(std::move(other.reader_))
    {
        other.fd_ = -1;
    }
    Client &
    operator=(Client &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            reader_ = std::move(other.reader_);
            other.fd_ = -1;
        }
        return *this;
    }

    /** Connect to a daemon. @return false with @p error set when the
     *  socket cannot be reached. */
    bool connect(const std::string &socket_path, std::string &error);

    void close();
    bool connected() const { return fd_ >= 0; }

    /** Execute @p req remotely. Reply::json carries the stats JSON
     *  (byte-identical to a cold dsrun --stats-json of the same
     *  request); cycles/instructions/ipc/drained/cache_hit arrive as
     *  header fields. */
    Reply run(const driver::RunRequest &req);

    /** Liveness probe. */
    Reply ping();

    /** Server counters as a stats JSON document (Reply::json). */
    Reply serverStats();

    /** Server counters as Prometheus text exposition (Reply::json
     *  carries the text body; see serve::renderMetricsText). */
    Reply metrics();

    /** Ask the daemon to shut down (it drains in-flight requests);
     *  the server closes this connection afterwards. */
    Reply shutdown();

  private:
    /** Send one block (terminator appended) and read the reply. */
    Reply exchange(const std::string &block);

    int fd_ = -1;
    std::unique_ptr<BlockReader> reader_;
};

} // namespace serve
} // namespace dscalar

#endif // DSCALAR_SERVE_CLIENT_HH
