#include "serve/protocol.hh"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>

#include "common/kv.hh"

namespace dscalar {
namespace serve {

namespace kv = common::kv;

std::string
Reply::field(const std::string &key) const
{
    auto it = fields.find(key);
    return it == fields.end() ? "" : it->second;
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        // send + MSG_NOSIGNAL: a peer that disconnected before its
        // reply must surface as EPIPE here, not kill the process.
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
BlockReader::fill()
{
    if (eof_ || error_)
        return false;
    char chunk[4096];
    ssize_t n;
    do {
        n = ::read(fd_, chunk, sizeof(chunk));
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
        error_ = true;
        return false;
    }
    if (n == 0) {
        eof_ = true;
        return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
    return true;
}

BlockReader::Status
BlockReader::readBlock(std::string &block, std::size_t max_bytes)
{
    std::string out;
    std::size_t scanned = 0; // bytes of buf_ already known line-less
    for (;;) {
        std::size_t nl = buf_.find('\n', scanned);
        if (nl == std::string::npos) {
            if (buf_.size() > max_bytes)
                return Status::Oversize;
            scanned = buf_.size();
            if (!fill()) {
                if (error_)
                    return Status::Error;
                // EOF: flush any unterminated final line.
                out += buf_;
                buf_.clear();
                if (out.empty())
                    return Status::Eof;
                block = std::move(out);
                return Status::Block;
            }
            continue;
        }
        std::string line = buf_.substr(0, nl + 1);
        buf_.erase(0, nl + 1);
        scanned = 0;
        if (kv::trim(line).empty()) {
            // Blank line: terminator when the block has content,
            // an (invalid) empty block otherwise.
            block = std::move(out);
            return Status::Block;
        }
        out += line;
        if (out.size() > max_bytes)
            return Status::Oversize;
    }
}

bool
BlockReader::readBytes(std::size_t n, std::string &out)
{
    while (buf_.size() < n) {
        if (!fill())
            return false;
    }
    out = buf_.substr(0, n);
    buf_.erase(0, n);
    return true;
}

std::string
formatErrorReply(const std::string &message)
{
    std::ostringstream os;
    kv::emit(os, "status", "error");
    kv::emit(os, "error", message);
    os << "\n";
    return os.str();
}

bool
parseReplyHeader(const std::string &block, Reply &out)
{
    out = Reply{};
    std::istringstream in(block);
    std::string line;
    while (std::getline(in, line)) {
        std::string t = kv::trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::string key, value;
        if (!kv::splitLine(t, key, value))
            continue;
        out.fields.emplace(key, value);
    }
    auto status = out.fields.find("status");
    if (status == out.fields.end())
        return false;
    out.ok = status->second == "ok";
    out.error = out.field("error");
    return true;
}

} // namespace serve
} // namespace dscalar
