#include "serve/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/kv.hh"

namespace dscalar {
namespace serve {

namespace kv = common::kv;

Client::~Client()
{
    close();
}

bool
Client::connect(const std::string &socket_path, std::string &error)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long";
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        error = std::string("connect '") + socket_path +
                "': " + std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    reader_ = std::make_unique<BlockReader>(fd_);
    return true;
}

void
Client::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
    reader_.reset();
}

Reply
Client::exchange(const std::string &block)
{
    Reply reply;
    if (!connected()) {
        reply.error = "not connected";
        return reply;
    }
    if (!writeAll(fd_, block + "\n")) {
        reply.error = "write failed";
        return reply;
    }
    std::string header;
    // Reply headers are small; 64 KB is far past any legal one.
    BlockReader::Status st = reader_->readBlock(header, 64 * 1024);
    if (st != BlockReader::Status::Block) {
        reply.error = "connection closed by server";
        return reply;
    }
    if (!parseReplyHeader(header, reply)) {
        reply.error = "malformed reply header";
        return reply;
    }
    std::uint64_t body_bytes = 0;
    if (kv::parseU64(reply.field("json_bytes"), body_bytes) &&
        body_bytes) {
        if (!reader_->readBytes(body_bytes, reply.json)) {
            reply.ok = false;
            reply.error = "truncated reply body";
        }
    }
    return reply;
}

Reply
Client::run(const driver::RunRequest &req)
{
    return exchange(driver::formatRunRequest(req));
}

Reply
Client::ping()
{
    return exchange("op = ping\n");
}

Reply
Client::serverStats()
{
    return exchange("op = stats\n");
}

Reply
Client::metrics()
{
    return exchange("op = metrics\n");
}

Reply
Client::shutdown()
{
    return exchange("op = shutdown\n");
}

} // namespace serve
} // namespace dscalar
