#include "serve/server.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <sstream>

#include "common/kv.hh"
#include "obs/span.hh"
#include "serve/protocol.hh"
#include "stats/json_writer.hh"
#include "stats/snapshot.hh"

namespace dscalar {
namespace serve {

namespace kv = common::kv;

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg))
{
    if (!cfg_.traceDir.empty())
        cache_.setTraceDir(cfg_.traceDir);
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string &error)
{
    if (running_) {
        error = "already running";
        return false;
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.empty() ||
        cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
        error = "socket path must be 1.." +
                std::to_string(sizeof(addr.sun_path) - 1) +
                " bytes (use a short relative path)";
        return false;
    }
    std::memcpy(addr.sun_path, cfg_.socketPath.c_str(),
                cfg_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    ::unlink(cfg_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listenFd_, 128) < 0) {
        error = std::string("bind/listen '") + cfg_.socketPath +
                "': " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    pool_ = std::make_unique<common::ThreadPool>(cfg_.jobs);
    stopping_ = false;
    running_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener closed by stop()
        }
        if (stopping_) {
            ::close(fd);
            break;
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        reapConnections();
        {
            std::lock_guard<std::mutex> slock(statsMutex_);
            ++counters_.connections;
        }
        Connection &conn = connections_.emplace_back();
        conn.fd = fd;
        conn.thread =
            std::thread([this, &conn] { handleConnection(&conn); });
    }
}

void
Server::reapConnections()
{
    // Caller holds connMutex_. The fd closes here, after the join,
    // so its number cannot be recycled under a live thread.
    for (auto it = connections_.begin(); it != connections_.end();) {
        if (it->done) {
            it->thread.join();
            ::close(it->fd);
            it = connections_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::handleConnection(Connection *conn)
{
    BlockReader reader(conn->fd);
    for (;;) {
        std::string block;
        BlockReader::Status st =
            reader.readBlock(block, cfg_.maxRequestBytes);
        if (st == BlockReader::Status::Oversize) {
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++counters_.requests;
                ++counters_.rejectedOversize;
            }
            // Framing is lost mid-block; reply and drop the
            // connection.
            writeAll(conn->fd,
                     formatErrorReply(
                         "oversized request (max " +
                         std::to_string(cfg_.maxRequestBytes) +
                         " bytes)"));
            break;
        }
        if (st != BlockReader::Status::Block)
            break;
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.requests;
        }
        bool close_after = false;
        std::string reply = handleBlock(block, close_after);
        // The reply flush happens after the header is serialized, so
        // its cost can only be accounted in the server-wide phase
        // totals, never in the reply's own span keys.
        auto write_start = std::chrono::steady_clock::now();
        bool write_ok = writeAll(conn->fd, reply);
        std::uint64_t write_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - write_start)
                .count();
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            counters_.phaseUs["reply_write"] += write_us;
        }
        if (!write_ok || close_after)
            break;
    }
    // The fd itself closes after the join (reap/stop), so signal EOF
    // to the peer now; buffered replies still flush first.
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->done = true;
}

std::string
Server::handleBlock(const std::string &block, bool &close_after)
{
    // Split off the op line; everything else stays a RunRequest
    // block.
    std::string op = "run";
    std::string rest;
    std::istringstream in(block);
    std::string line;
    while (std::getline(in, line)) {
        std::string key, value;
        if (kv::splitLine(kv::trim(line), key, value) && key == "op")
            op = value;
        else
            rest += line + "\n";
    }

    if (op == "ping")
        return "status = ok\n\n";
    if (op == "shutdown") {
        {
            std::lock_guard<std::mutex> lock(shutdownMutex_);
            shutdownRequested_ = true;
        }
        shutdownCv_.notify_all();
        close_after = true;
        return "status = ok\n\n";
    }
    if (op == "stats" || op == "metrics") {
        // Same framing either way: json_bytes is the body byte
        // count, whatever the body's format.
        std::string body = op == "stats" ? statsJson() : metricsText();
        std::ostringstream os;
        kv::emit(os, "status", "ok");
        kv::emit(os, "json_bytes", std::uint64_t(body.size()));
        os << "\n" << body;
        return os.str();
    }
    if (op != "run") {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.rejectedParse;
        return formatErrorReply("unknown op '" + op + "'");
    }
    std::istringstream req_in(rest);
    return handleRun(req_in);
}

std::string
Server::handleRun(std::istream &in)
{
    auto reject = [this](std::uint64_t ServerStats::*counter,
                         const std::string &message) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++(counters_.*counter);
        }
        return formatErrorReply(message);
    };

    driver::RunRequest req;
    std::string error;
    if (!driver::parseRunRequest(in, req, error))
        return reject(&ServerStats::rejectedParse, error);

    // The wire cannot carry local attachments; scrub anything a
    // parse could never set and match dsrun's always-on recorder.
    req.program = nullptr;
    req.trace = nullptr;
    req.sampler = nullptr;
    req.spans = nullptr; // admitAndRun attaches the per-request one
    req.traceToStderr = false;
    req.flightRecorder = true;
    // The daemon's persistent store is set by --trace-dir alone; a
    // remote client must not redirect it (or make runOne sidestep
    // the shared cache with a private one).
    req.traceDir.clear();

    if (!req.perfettoPath.empty()) {
        if (cfg_.outputDir.empty())
            return reject(&ServerStats::rejectedParse,
                          "perfetto output disabled on this server");
        // Server-side file: basename only, under outputDir.
        std::size_t slash = req.perfettoPath.find_last_of('/');
        std::string base = slash == std::string::npos
                               ? req.perfettoPath
                               : req.perfettoPath.substr(slash + 1);
        req.perfettoPath = cfg_.outputDir + "/" + base;
    }

    if (cfg_.maxInstBudget &&
        (req.config.maxInsts == 0 ||
         req.config.maxInsts > cfg_.maxInstBudget))
        return reject(&ServerStats::rejectedBudget,
                      "instruction budget exceeded (request "
                      "max_insts in 1.." +
                          std::to_string(cfg_.maxInstBudget) + ")");

    return admitAndRun(std::move(req));
}

std::string
Server::admitAndRun(driver::RunRequest req)
{
    // Per-request span recorder: single-writer, handed from this
    // connection thread to the pool worker and back — the worker is
    // done with it before future.get() returns. Its closed top-level
    // spans become the reply's span_<name>_us keys, the latency
    // histogram samples, and the server's per-phase wall totals.
    obs::SpanRecorder rec;

    std::size_t admission = rec.begin("admission");
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        if (counters_.queueDepth >= cfg_.maxQueueDepth) {
            ++counters_.rejectedOverload;
            return formatErrorReply(
                "server overloaded (" +
                std::to_string(counters_.queueDepth) +
                " requests in flight)");
        }
        ++counters_.queueDepth;
        if (counters_.queueDepth > counters_.queuePeak)
            counters_.queuePeak = counters_.queueDepth;
    }
    rec.end(admission);

    req.spans = &rec;

    // shared_ptrs because ThreadPool tasks are copyable
    // std::functions.
    auto preq =
        std::make_shared<driver::RunRequest>(std::move(req));
    auto promise =
        std::make_shared<std::promise<driver::RunResponse>>();
    std::future<driver::RunResponse> future = promise->get_future();
    unsigned hold = cfg_.testHoldMillis;
    driver::TraceCache *cache = &cache_;
    std::size_t queue_wait = rec.begin("queue_wait");
    pool_->submit([preq, promise, hold, cache, &rec, queue_wait] {
        // The test hold counts as queue wait: it exists to pin
        // requests "in flight", exactly what the wait measures.
        if (hold)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(hold));
        rec.end(queue_wait);
        promise->set_value(driver::runOne(*preq, cache));
    });
    driver::RunResponse resp = future.get();

    std::string body;
    if (resp.ok()) {
        obs::SpanScope span(&rec, "render");
        body = resp.statsJson();
    }

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        --counters_.queueDepth;
        if (resp.ok()) {
            ++counters_.completed;
            counters_.latencyUs.sample(rec.elapsedUs());
            counters_.queueWaitUs.sample(rec.spanUs("queue_wait"));
            counters_.runUs.sample(rec.spanUs("sim_run"));
            for (const auto &span : rec.spans())
                if (!span.open && span.depth == 0)
                    counters_.phaseUs[span.name] += span.durNs / 1000;
        } else {
            ++counters_.failed;
        }
    }

    if (!resp.ok())
        return formatErrorReply(resp.error);

    std::ostringstream os;
    kv::emit(os, "status", "ok");
    kv::emit(os, "cycles", resp.result.cycles);
    kv::emit(os, "instructions", resp.result.instructions);
    kv::emit(os, "ipc", resp.result.ipc);
    kv::emit(os, "drained", std::uint64_t(resp.drained ? 1 : 0));
    kv::emit(os, "cache_hit", std::uint64_t(resp.cacheHit ? 1 : 0));
    rec.emitHeaderKeys(os);
    kv::emit(os, "span_total_us", rec.elapsedUs());
    kv::emit(os, "json_bytes", std::uint64_t(body.size()));
    os << "\n" << body;
    return os.str();
}

namespace {

void
emitMetric(std::ostream &os, const char *name, const char *type,
           const char *help, std::uint64_t value)
{
    os << "# HELP " << name << ' ' << help << '\n'
       << "# TYPE " << name << ' ' << type << '\n'
       << name << ' ' << value << '\n';
}

void
emitHistogramMetric(std::ostream &os, const std::string &name,
                    const char *help, const stats::Histogram &h)
{
    os << "# HELP " << name << ' ' << help << '\n'
       << "# TYPE " << name << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bucketCount(); ++i) {
        if (h.bucket(i) == 0)
            continue; // cumulative buckets: elide flat spans
        cum += h.bucket(i);
        os << name << "_bucket{le=\"" << (i + 1) * h.bucketWidth()
           << "\"} " << cum << '\n';
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n'
       << name << "_sum " << stats::formatDouble(h.sum()) << '\n'
       << name << "_count " << h.count() << '\n';
}

} // namespace

std::string
renderMetricsText(const ServerStats &s)
{
    std::ostringstream os;
    emitMetric(os, "dsserve_connections_total", "counter",
               "Accepted connections.", s.connections);
    emitMetric(os, "dsserve_requests_total", "counter",
               "Request blocks received.", s.requests);
    emitMetric(os, "dsserve_completed_total", "counter",
               "Runs finished successfully.", s.completed);
    emitMetric(os, "dsserve_failed_total", "counter",
               "Admitted runs that errored.", s.failed);
    os << "# HELP dsserve_rejected_total Requests rejected before "
          "admission, by reason.\n"
          "# TYPE dsserve_rejected_total counter\n"
       << "dsserve_rejected_total{reason=\"parse\"} "
       << s.rejectedParse << '\n'
       << "dsserve_rejected_total{reason=\"budget\"} "
       << s.rejectedBudget << '\n'
       << "dsserve_rejected_total{reason=\"overload\"} "
       << s.rejectedOverload << '\n'
       << "dsserve_rejected_total{reason=\"oversize\"} "
       << s.rejectedOversize << '\n';
    emitMetric(os, "dsserve_queue_depth", "gauge",
               "Runs in flight now.", s.queueDepth);
    emitMetric(os, "dsserve_queue_peak", "gauge",
               "Max runs ever in flight.", s.queuePeak);
    emitMetric(os, "dsserve_trace_captures_total", "counter",
               "Functional captures executed.", s.traceCaptures);
    emitMetric(os, "dsserve_trace_hits_total", "counter",
               "Trace acquires served from cache.", s.traceHits);
    emitMetric(os, "dsserve_trace_bytes", "gauge",
               "Bytes held across cached traces.", s.traceBytes);
    emitMetric(os, "dsserve_trace_disk_hits_total", "counter",
               "Cache misses served from the trace store.",
               s.traceDiskHits);
    emitMetric(os, "dsserve_trace_disk_writes_total", "counter",
               "Trace files written to the store.", s.traceDiskWrites);
    if (!s.phaseUs.empty()) {
        os << "# HELP dsserve_phase_us_total Cumulative wall "
              "microseconds by request phase.\n"
              "# TYPE dsserve_phase_us_total counter\n";
        for (const auto &entry : s.phaseUs)
            os << "dsserve_phase_us_total{phase=\"" << entry.first
               << "\"} " << entry.second << '\n';
    }
    emitHistogramMetric(os, "dsserve_request_latency_us",
                        "End-to-end request latency (completed "
                        "runs), microseconds.",
                        s.latencyUs);
    emitHistogramMetric(os, "dsserve_queue_wait_us",
                        "Pool queue wait (completed runs), "
                        "microseconds.",
                        s.queueWaitUs);
    emitHistogramMetric(os, "dsserve_run_us",
                        "Timing-run wall time (completed runs), "
                        "microseconds.",
                        s.runUs);
    return os.str();
}

ServerStats
Server::stats() const
{
    ServerStats out;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out = counters_;
    }
    out.traceCaptures = cache_.captures();
    out.traceHits = cache_.hits();
    out.traceBytes = cache_.memoryBytes();
    out.traceDiskHits = cache_.diskHits();
    out.traceDiskWrites = cache_.diskWrites();
    return out;
}

std::string
Server::statsJson() const
{
    ServerStats s = stats();
    stats::Snapshot snap;
    auto &server = snap.addGroup("server", "---- dsserve ----");
    snap.addCounter(server, "connections", s.connections,
                    "accepted connections");
    snap.addCounter(server, "requests", s.requests,
                    "request blocks received");
    snap.addCounter(server, "completed", s.completed,
                    "runs finished successfully");
    snap.addCounter(server, "failed", s.failed,
                    "admitted runs that errored");
    snap.addCounter(server, "rejected_parse", s.rejectedParse,
                    "malformed request blocks");
    snap.addCounter(server, "rejected_budget", s.rejectedBudget,
                    "instruction budget rejections");
    snap.addCounter(server, "rejected_overload", s.rejectedOverload,
                    "queue-depth admission rejections");
    snap.addCounter(server, "rejected_oversize", s.rejectedOversize,
                    "oversized request blocks");
    snap.addCounter(server, "queue_depth", s.queueDepth,
                    "runs in flight now");
    snap.addCounter(server, "queue_peak", s.queuePeak,
                    "max runs ever in flight");
    auto &cache = snap.addGroup("trace_cache", "trace cache:");
    snap.addCounter(cache, "captures", s.traceCaptures,
                    "functional captures executed");
    snap.addCounter(cache, "hits", s.traceHits,
                    "acquires served from cache");
    snap.addCounter(cache, "bytes", s.traceBytes,
                    "bytes held across cached traces");
    snap.addCounter(cache, "disk_hits", s.traceDiskHits,
                    "misses served from the trace store");
    snap.addCounter(cache, "disk_writes", s.traceDiskWrites,
                    "trace files written to the store");
    auto &latency = snap.addGroup("latency", "latency:");
    snap.addHistogram(latency, "request_latency_us", s.latencyUs,
                      "end-to-end request latency (completed runs)");
    snap.addHistogram(latency, "queue_wait_us", s.queueWaitUs,
                      "pool queue wait (completed runs)");
    snap.addHistogram(latency, "run_us", s.runUs,
                      "timing-run wall time (completed runs)");
    auto &phases = snap.addGroup("phases", "request phases:");
    for (const auto &entry : s.phaseUs)
        snap.addCounter(phases, entry.first + "_us", entry.second,
                        "cumulative wall microseconds in this phase");

    stats::RunMeta meta;
    meta.add("service", "dsserve");
    meta.add("socket", cfg_.socketPath);
    std::ostringstream os;
    stats::JsonWriter::write(os, meta, snap);
    return os.str();
}

void
Server::waitShutdownRequest()
{
    std::unique_lock<std::mutex> lock(shutdownMutex_);
    shutdownCv_.wait(lock, [this] {
        return shutdownRequested_.load() || stopping_.load();
    });
}

void
Server::stop()
{
    if (!running_)
        return;
    {
        std::lock_guard<std::mutex> lock(shutdownMutex_);
        stopping_ = true;
    }
    shutdownCv_.notify_all();

    // Unblock the accept loop, then the connection readers. Write
    // sides stay open: in-flight runs finish and reply before their
    // threads join.
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    if (acceptThread_.joinable())
        acceptThread_.join();
    listenFd_ = -1;

    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (Connection &conn : connections_)
            if (!conn.done)
                ::shutdown(conn.fd, SHUT_RD);
        for (Connection &conn : connections_) {
            conn.thread.join();
            ::close(conn.fd);
        }
        connections_.clear();
    }

    pool_.reset(); // drains remaining tasks
    ::unlink(cfg_.socketPath.c_str());
    running_ = false;
}

} // namespace serve
} // namespace dscalar
