/**
 * @file
 * Wire protocol of the dsserve daemon: newline-delimited `key = value`
 * text over a Unix-domain stream socket, in the same line convention
 * as dsfuzz repro files and RunRequest serialization (common/kv.hh).
 *
 * A *block* is a run of non-blank lines terminated by one blank line
 * (or connection EOF). Requests are one block: an optional
 * `op = run|stats|metrics|ping|shutdown` line (default run) plus,
 * for run, the RunRequest keys of driver::parseRunRequest. Replies
 * are one header block — `status = ok|error`, result fields
 * (including `span_<name>_us` wall-clock request spans on run
 * replies), and `json_bytes = N` when a body follows — then exactly
 * N body bytes (stats JSON for run/stats, Prometheus text exposition
 * for metrics; `json_bytes` is the body byte count regardless of
 * format). A connection carries any number of request/reply
 * exchanges in sequence. Full schema: docs/SERVING.md.
 */

#ifndef DSCALAR_SERVE_PROTOCOL_HH
#define DSCALAR_SERVE_PROTOCOL_HH

#include <cstddef>
#include <map>
#include <string>

namespace dscalar {
namespace serve {

/** One parsed reply: header fields plus the optional JSON body. */
struct Reply
{
    bool ok = false;    ///< status field was "ok"
    std::string error;  ///< error field (or transport failure)
    /** Every header field verbatim (status, cycles, ipc, ...). */
    std::map<std::string, std::string> fields;
    std::string json;   ///< stats JSON body ("" when none)

    /** @return the named header field, or "" when absent. */
    std::string field(const std::string &key) const;
};

/** Write all of @p data to @p fd, retrying short writes.
 *  @return false on any write error. */
bool writeAll(int fd, const std::string &data);

/**
 * Buffered block reader over one socket. Reads are consumed through
 * the terminating blank line, so back-to-back blocks on one
 * connection frame correctly.
 */
class BlockReader
{
  public:
    explicit BlockReader(int fd) : fd_(fd) {}

    enum class Status {
        Block,    ///< one complete block returned
        Eof,      ///< clean end of stream, no pending content
        Oversize, ///< block exceeded max_bytes before terminating
        Error     ///< read error
    };

    /**
     * Read the next block into @p block (terminator not included;
     * trailing newline on the last line kept). A stream ending
     * without a final blank line still yields its content as a
     * block.
     */
    Status readBlock(std::string &block, std::size_t max_bytes);

    /** Read exactly @p n body bytes. @return false on EOF/error. */
    bool readBytes(std::size_t n, std::string &out);

  private:
    /** Pull more data into the buffer. @return false on EOF/error. */
    bool fill();

    int fd_;
    std::string buf_;
    bool eof_ = false;
    bool error_ = false;
};

/** Render an error reply block (status, error, terminator). */
std::string formatErrorReply(const std::string &message);

/**
 * Parse a reply header block into @p out (fields, ok, error).
 * @return false when the block has no parseable `status` line.
 */
bool parseReplyHeader(const std::string &block, Reply &out);

} // namespace serve
} // namespace dscalar

#endif // DSCALAR_SERVE_PROTOCOL_HH
