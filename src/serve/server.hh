/**
 * @file
 * The dsserve daemon core: a Unix-domain socket server executing
 * driver::RunRequests on a shared common::ThreadPool with one
 * process-wide driver::TraceCache.
 *
 * Threading model: one accept thread; one lightweight thread per
 * connection that frames requests and writes replies; a fixed
 * ThreadPool (ServerConfig::jobs workers) that runs the actual
 * simulations. Admission control bounds the work outstanding on the
 * pool (maxQueueDepth) and optionally the per-request instruction
 * budget (maxInstBudget); rejected requests get `status = error`
 * replies and never touch the pool.
 *
 * Responses are byte-identical to a cold one-shot dsrun of the same
 * request: both go through driver::runOne + RunResponse::statsJson,
 * and the trace cache only changes wall-clock (SPSD replay,
 * PR 3/PR 6). Locked by tests/test_dsserve.cc.
 *
 * stop() drains: the listener closes, every connection's read side
 * shuts down, in-flight simulations finish and their replies are
 * written before the connection threads join.
 */

#ifndef DSCALAR_SERVE_SERVER_HH
#define DSCALAR_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/thread_pool.hh"
#include "common/types.hh"
#include "driver/run_request.hh"
#include "driver/trace_cache.hh"
#include "stats/stats.hh"

namespace dscalar {
namespace serve {

/** Deployment knobs (documented in docs/SERVING.md). */
struct ServerConfig
{
    /** Socket filesystem path. Keep it short and relative: sun_path
     *  holds ~107 bytes. An existing file is unlinked on start. */
    std::string socketPath = "dsserve.sock";
    /** Simulation worker threads (0 = hardware concurrency).
     *  Connection threads are extra but only frame and wait. */
    unsigned jobs = 0;
    /** Admission: max simulations queued or running; requests beyond
     *  it are rejected, not delayed. */
    unsigned maxQueueDepth = 256;
    /** Admission: per-request instruction budget. When nonzero,
     *  requests must set max_insts in (0, budget]. 0 = unlimited. */
    InstSeq maxInstBudget = 0;
    /** Max bytes of one request block; larger ones are rejected and
     *  the connection closed (framing is lost past this point). */
    std::size_t maxRequestBytes = 16 * 1024;
    /** Directory for server-side Perfetto trace files; requests with
     *  a `perfetto` key are rejected when empty. The requested path's
     *  basename lands in this directory (no traversal). */
    std::string outputDir;
    /** Persistent trace store directory ("" = off): the process-wide
     *  TraceCache mmap-loads stored traces on miss and writes fresh
     *  captures back, so a restarted daemon starts warm. Wire
     *  requests cannot point the store elsewhere — any `trace_dir`
     *  key they carry is scrubbed. */
    std::string traceDir;
    /** Test-only: hold each simulation this long before it runs, so
     *  overload/drain tests can pin requests in flight. */
    unsigned testHoldMillis = 0;
};

/**
 * One snapshot of the server counters (op = stats renders these as a
 * stats JSON document, op = metrics as Prometheus text exposition).
 *
 * Coherence contract: every live field mutates, and stats() copies
 * the whole struct, under one mutex (Server::statsMutex_) — a
 * snapshot can never show a request as both in flight and finished,
 * so `completed + failed <= requests` and the latency histogram's
 * count equals `completed` in every snapshot (locked by
 * tests/test_metrics.cc).
 */
struct ServerStats
{
    std::uint64_t connections = 0;     ///< accepted connections
    std::uint64_t requests = 0;        ///< request blocks received
    std::uint64_t completed = 0;       ///< runs finished successfully
    std::uint64_t failed = 0;          ///< admitted runs that errored
    std::uint64_t rejectedParse = 0;   ///< malformed request blocks
    std::uint64_t rejectedBudget = 0;  ///< instruction budget exceeded
    std::uint64_t rejectedOverload = 0;///< queue-depth admission
    std::uint64_t rejectedOversize = 0;///< oversized request blocks
    std::uint64_t queueDepth = 0;      ///< runs in flight now
    std::uint64_t queuePeak = 0;       ///< max queueDepth ever
    std::uint64_t traceCaptures = 0;   ///< TraceCache::captures()
    std::uint64_t traceHits = 0;       ///< TraceCache::hits()
    std::uint64_t traceBytes = 0;      ///< TraceCache::memoryBytes()
    std::uint64_t traceDiskHits = 0;   ///< TraceCache::diskHits()
    std::uint64_t traceDiskWrites = 0; ///< TraceCache::diskWrites()

    /** Wall-microsecond distributions over *completed* runs, sampled
     *  from each request's span recorder (1 ms buckets, 0..200 ms +
     *  overflow). latencyUs covers admission through reply render;
     *  queueWaitUs the pool wait (including any test hold); runUs the
     *  sim_run span alone. */
    stats::Histogram latencyUs{nullptr, "request_latency_us",
                               "end-to-end request latency", 1000, 200};
    stats::Histogram queueWaitUs{nullptr, "queue_wait_us",
                                 "pool queue wait", 1000, 200};
    stats::Histogram runUs{nullptr, "run_us",
                           "timing-run wall time", 1000, 200};
    /** Cumulative wall microseconds by request phase: one entry per
     *  top-level span name (admission, queue_wait, build, trace_*,
     *  sim_run, render) plus reply_write, accounted by the
     *  connection thread after each reply flush. */
    std::map<std::string, std::uint64_t> phaseUs;
};

/** Render @p s as Prometheus text exposition — the `op = metrics`
 *  reply body. Counters end in `_total`, gauges are bare, the three
 *  histograms emit cumulative `_bucket{le="..."}` lines (microsecond
 *  upper bounds, zero-increment buckets elided) plus `_sum` and
 *  `_count`. Pure function of the snapshot, so golden-text testable
 *  without a socket (tests/test_metrics.cc). */
std::string renderMetricsText(const ServerStats &s);

class Server
{
  public:
    explicit Server(ServerConfig cfg);
    /** Stops (and drains) if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the socket and start serving.
     *  @return false with @p error set on socket setup failure. */
    bool start(std::string &error);

    /** Drain and shut down: no new connections or requests, every
     *  in-flight run completes and its reply is written (idempotent). */
    void stop();

    bool running() const { return running_; }

    /** True once a client sent `op = shutdown`. */
    bool shutdownRequested() const { return shutdownRequested_; }

    /** Block until a client requests shutdown (or stop() is called);
     *  the caller then invokes stop(). */
    void waitShutdownRequest();

    const ServerConfig &config() const { return cfg_; }
    driver::TraceCache &traceCache() { return cache_; }

    ServerStats stats() const;
    /** The op = stats reply body: counters as a stats JSON document
     *  (run_meta carries service/socket), including the latency
     *  histograms and per-phase wall totals. */
    std::string statsJson() const;
    /** The op = metrics reply body: renderMetricsText(stats()). */
    std::string metricsText() const { return renderMetricsText(stats()); }

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop();
    void handleConnection(Connection *conn);
    /** @return the reply for one request block. @p close_after is
     *  set when framing was lost and the connection must drop. */
    std::string handleBlock(const std::string &block,
                            bool &close_after);
    std::string handleRun(std::istream &in);
    /** Run on the pool behind admission control. */
    std::string admitAndRun(driver::RunRequest req);

    /** Join connection threads that already finished. */
    void reapConnections();

    ServerConfig cfg_;
    driver::TraceCache cache_;
    std::unique_ptr<common::ThreadPool> pool_;

    int listenFd_ = -1;
    std::thread acceptThread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    std::mutex connMutex_;
    std::list<Connection> connections_;

    mutable std::mutex statsMutex_;
    ServerStats counters_; ///< trace* fields filled on read

    std::atomic<bool> shutdownRequested_{false};
    std::mutex shutdownMutex_;
    std::condition_variable shutdownCv_;
};

} // namespace serve
} // namespace dscalar

#endif // DSCALAR_SERVE_SERVER_HH
