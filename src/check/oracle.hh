/**
 * @file
 * Differential fuzzing oracle.
 *
 * One generated program is executed once through FuncSim as the
 * golden architectural model (captured as a func::InstTrace), then
 * through a sampled matrix of timing configurations — system family
 * × node count × interconnect × cache geometry × event-driven
 * on/off × tick-thread count × trace replay on/off × fault
 * injection / hard BSHR capacity on/off — and every run is checked
 * against the golden stream and the protocol invariants:
 *
 *  - SPSD: every run retires exactly the golden instruction count
 *    (clipped by the budget) and reports the golden syscall output
 *    for the executed prefix; every DataScalar node commits the
 *    identical stream.
 *  - Drain: on a reliable medium, every broadcast is consumed —
 *    protocolDrained() plus the per-node broadcast-conservation
 *    identity. Under injected faults or hard BSHR capacity the
 *    exactly-once premise is deliberately broken, so the relaxed
 *    form is checked instead: full commit everywhere and no waiter
 *    left behind.
 *  - Cache correspondence: canonical load misses, commit-time store
 *    misses, and dirty write-backs identical on every node.
 *  - Differential cross-checks: a trace-replay run must be
 *    cycle-and-stats identical to the live run, an event-driven
 *    run identical to the single-stepping run, and a parallel-tick
 *    run identical to the serial loop, for the same config.
 *
 * On failure the harness (tools/dsfuzz.cc) shrinks the generation
 * parameters to a minimal still-failing case and writes a repro
 * file (check/repro.hh).
 */

#ifndef DSCALAR_CHECK_ORACLE_HH
#define DSCALAR_CHECK_ORACLE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/program_gen.hh"
#include "common/random.hh"
#include "core/protocol_mutation.hh"
#include "core/sim_config.hh"
#include "driver/driver.hh"
#include "func/inst_trace.hh"
#include "prog/program.hh"

namespace dscalar {
namespace check {

class CoverageMap;

/** One sampled point of the configuration matrix. */
struct TrialConfig
{
    driver::SystemKind system = driver::SystemKind::DataScalar;
    unsigned nodes = 2;
    core::InterconnectKind interconnect = core::InterconnectKind::Bus;

    // Cache geometry (the timing L1D).
    std::uint64_t dcacheBytes = 16 * 1024;
    unsigned dcacheAssoc = 1;
    bool writeAllocate = false;

    bool eventDriven = true;
    /** Also run the opposite run-loop mode and require identical
     *  cycles / stats. */
    bool crossEventDriven = false;
    /** Intra-simulation tick threads (SimConfig::tickThreads);
     *  1 = the serial loop. */
    unsigned tickThreads = 1;
    /** Also run with the serial/parallel tick loop flipped and
     *  require identical cycles / output / stats. */
    bool crossTickThreads = false;
    /** Also replay the golden trace through the same config and
     *  require identical cycles / output / stats. */
    bool crossReplay = false;
    /** When non-empty: persist the golden trace into this directory
     *  (func::saveTraceFile), mmap-load it back, and replay the
     *  loaded copy through the same config, requiring identical
     *  cycles / output / stats. Catches trace-store serialization
     *  bugs the in-memory crossReplay differential cannot see. */
    std::string traceDir;

    /** Drop/dup/delay fault injection with re-request recovery
     *  armed (DataScalar only). */
    bool faults = false;
    /** Hard BSHR capacity with a small bank (DataScalar only). */
    bool hardBshr = false;
    /**
     * Testing hook, never sampled: inject duplicate/delay faults
     * but leave the oracle's reliable-medium expectations strict —
     * the shape of bug the fuzzer exists to flag (a fault config
     * whose author forgot recovery). Used by tests/test_fuzz_oracle.
     */
    bool faultsNoRecovery = false;

    unsigned bshrCapacity = 128;
    InstSeq maxInsts = 0; ///< 0 = run to completion
    std::uint64_t faultSeed = 1;

    /**
     * Testing hook, never sampled: plant a known single-line protocol
     * bug in the concrete BSHR for the duration of the timing runs
     * (core/protocol_mutation.hh). The golden architectural run is
     * unaffected — mutations live in the timing layer — so the oracle
     * is expected to flag the damage. Carried in repro files so a
     * mutation-triggered failure replays standalone.
     */
    core::ProtocolMutation mutation = core::ProtocolMutation::None;
};

/** One-line human/machine description, e.g. for repro summaries. */
std::string describeConfig(const TrialConfig &config);

/** Expand a sampled point into a full simulator configuration. */
core::SimConfig toSimConfig(const TrialConfig &config);

/** Expand a sampled point into a driver::RunRequest (system +
 *  toSimConfig; the caller attaches the generated program). */
driver::RunRequest toRunRequest(const TrialConfig &config);

/** The golden architectural run every config is checked against. */
struct GoldenRun
{
    std::shared_ptr<const func::InstTrace> trace;
    InstSeq retired = 0;
    std::string output;
};

/**
 * Execute @p program once through FuncSim (capturing the trace).
 * Fatal if the program fails to halt within @p budget instructions —
 * generated programs terminate by construction.
 */
GoldenRun runGolden(const prog::Program &program,
                    InstSeq budget = 50'000'000);

/** First mismatch found by a fuzz trial. */
struct TrialFailure
{
    std::uint64_t seed = 0;
    GenParams params;
    TrialConfig config;
    std::string mismatch;
};

/** Aggregate counters for a fuzz campaign. */
struct OracleStats
{
    std::uint64_t trials = 0;
    std::uint64_t configsChecked = 0;
    std::uint64_t timingRuns = 0;
};

/** Matrix sampling / checking knobs. */
struct OracleOptions
{
    unsigned configsPerTrial = 2;
    InstSeq goldenBudget = 50'000'000;
    /** When non-empty, sampleConfig points a fraction of configs at
     *  this directory (TrialConfig::traceDir) so campaigns cover the
     *  disk-loaded replay differential. The rng draw happens either
     *  way, so setting this never reshuffles the rest of the matrix
     *  a seed explores. */
    std::string traceDir;
    /** When non-null, every DataScalar timing run's protocol-event
     *  history is folded into this map (check/coverage.hh) and the
     *  run's coverage gain is exposed via lastCoverageGain(). Not
     *  owned; must outlive the oracle. */
    CoverageMap *coverage = nullptr;
};

/** The differential oracle: golden run + sampled config checks. */
class Oracle
{
  public:
    explicit Oracle(OracleOptions options = {},
                    GenParams gen = GenParams::fuzzDefault());

    const OracleOptions &options() const { return options_; }
    const GenParams &genParams() const { return gen_; }
    const OracleStats &stats() const { return stats_; }

    /** Draw one config from the matrix (deterministic in @p rng). */
    TrialConfig sampleConfig(Random &rng) const;

    /**
     * Check one (program, config) pair against @p golden.
     * @return "" when every invariant held, else a mismatch summary.
     */
    std::string checkConfig(const prog::Program &program,
                            const GoldenRun &golden,
                            const TrialConfig &config);

    /**
     * Run one full trial: generate the program for @p seed with
     * @p params (falling back to the constructor's GenParams),
     * execute the golden model, then check configsPerTrial sampled
     * points. @return the first failure, or nothing.
     */
    std::optional<TrialFailure> runTrial(std::uint64_t seed);
    std::optional<TrialFailure> runTrial(std::uint64_t seed,
                                         const GenParams &params);

    /**
     * Re-check one (seed, params, config) triple from scratch —
     * regenerates the program and the golden run. The predicate the
     * shrinker and repro replay are built on.
     */
    std::string recheck(std::uint64_t seed, const GenParams &params,
                        const TrialConfig &config);

    /**
     * Flight-recorder dump (obs::FlightRecorder) of the failing
     * timing run behind the most recent non-empty mismatch from
     * checkConfig/recheck — the last protocol events of each node,
     * in text-trace format. Empty when the last check passed or the
     * failing run emitted no protocol events (Perfect system).
     */
    const std::string &lastFlightLog() const { return lastFlightLog_; }

    /** New coverage n-grams contributed by the timing runs of the
     *  most recent checkConfig/recheck call (0 when OracleOptions::
     *  coverage is unset). */
    std::uint64_t lastCoverageGain() const { return lastCoverageGain_; }

  private:
    OracleOptions options_;
    GenParams gen_;
    OracleStats stats_;
    std::string lastFlightLog_;
    std::uint64_t lastCoverageGain_ = 0;
};

// -------------------------------------------------------------------
// Auto-shrinking
// -------------------------------------------------------------------

/**
 * Does (seed, params) still fail? Returns the mismatch summary, or
 * "" when the candidate passes. The fuzzer's predicate regenerates
 * the program and re-runs the failing config; tests may substitute
 * synthetic predicates.
 */
using FailurePredicate =
    std::function<std::string(std::uint64_t seed,
                              const GenParams &params)>;

/** Outcome of shrinking one failing case. */
struct ShrinkResult
{
    GenParams params;     ///< minimal still-failing parameters
    std::string mismatch; ///< mismatch of the final failing run
    unsigned passes = 0;  ///< greedy outer iterations used
    unsigned attempts = 0; ///< candidate re-runs evaluated
};

/**
 * Greedily shrink the generation parameters of a failing case:
 * for each structural dimension (outer iterations, block ops, data
 * pages) try pinning to the absolute floor, then halving the range,
 * keeping any candidate that still fails. Repeats until a full pass
 * makes no progress; an always-failing case therefore converges in
 * two passes (one that pins everything, one that confirms the
 * fixpoint).
 */
ShrinkResult shrinkParams(std::uint64_t seed, GenParams start,
                          std::string initial_mismatch,
                          const FailurePredicate &still_fails);

} // namespace check
} // namespace dscalar

#endif // DSCALAR_CHECK_ORACLE_HH
