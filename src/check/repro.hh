/**
 * @file
 * Self-contained repro files for dsfuzz failures.
 *
 * A repro is everything needed to regenerate and re-check one
 * failing case: the program seed, the (possibly shrunken) generation
 * parameters, the failing TrialConfig, and the mismatch summary that
 * was observed. The format is line-oriented `key = value` text —
 * stable across versions that know the same keys, diffable, and
 * human-editable (docs/FUZZING.md documents every key). Replay with
 * `dsfuzz --repro FILE`.
 */

#ifndef DSCALAR_CHECK_REPRO_HH
#define DSCALAR_CHECK_REPRO_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "check/oracle.hh"
#include "check/program_gen.hh"

namespace dscalar {
namespace check {

/** One failing fuzz case, as persisted to disk. */
struct ReproCase
{
    std::uint64_t seed = 0;
    GenParams params;
    TrialConfig config;
    std::string mismatch; ///< summary observed when the case was saved
};

/** Serialize @p repro in the repro-file format. */
std::string formatRepro(const ReproCase &repro);

/**
 * Parse a repro file.
 * @return false (with @p error set) on unknown keys, malformed
 * values, or a missing seed; unset known keys keep their defaults.
 */
bool parseRepro(std::istream &in, ReproCase &out, std::string &error);

/** Write @p repro to @p path. @return false when the file cannot be
 *  created. */
bool saveRepro(const std::string &path, const ReproCase &repro);

/** Load @p path. @return false with @p error set on any failure. */
bool loadRepro(const std::string &path, ReproCase &out,
               std::string &error);

} // namespace check
} // namespace dscalar

#endif // DSCALAR_CHECK_REPRO_HH
