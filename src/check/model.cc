#include "check/model.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace dscalar {
namespace check {

namespace {

using core::ProtocolMutation;

constexpr unsigned kMaxNodes = 4;
constexpr unsigned kMaxLines = 4;
constexpr unsigned kMaxEpisodes = 6;

/** Lifecycle of one episode on one node. Commits are in-order, so
 *  every node's stage array is a Committed prefix followed by the
 *  active window. */
enum Stage : std::uint8_t {
    NotIssued = 0,
    WaitData,     ///< fetched on a non-owner; BSHR waiter outstanding
    ReadyFetched, ///< fetched, data in hand (claim at commit)
    ReadyNoFetch, ///< never fetched (pure false hit at commit)
    Committed
};

/**
 * One abstract protocol state. Everything is a small saturating
 * counter; the encoding below packs exactly the bytes the configured
 * shape uses, so the hashed visited-set stays dense.
 */
struct State
{
    std::uint8_t stage[kMaxNodes][kMaxEpisodes]{};
    // BSHR bank per (node, line).
    std::uint8_t waiters[kMaxNodes][kMaxLines]{};
    std::uint8_t buffered[kMaxNodes][kMaxLines]{};
    std::uint8_t pending[kMaxNodes][kMaxLines]{};
    // Per-node consumption/delivery accounting (conservation).
    std::uint8_t woken[kMaxNodes]{};
    std::uint8_t bufferedHits[kMaxNodes]{};
    std::uint8_t squashes[kMaxNodes]{};
    std::uint8_t received[kMaxNodes]{};
    // In-flight broadcast copies per (line, destination).
    std::uint8_t inflight[kMaxLines][kMaxNodes]{};
    // Fault budgets consumed so far.
    std::uint8_t dups = 0;
    std::uint8_t drops = 0;
    std::uint8_t rerequests[kMaxNodes][kMaxLines]{};
};

/** Event kinds; the outcome is folded in so traces read on their
 *  own ("deliver ... wake waiter" vs a bare "deliver"). */
enum class Ev : std::uint8_t {
    IssueFetchOwner, ///< owner fetch: ESP broadcast at issue
    IssueFetchWait,  ///< non-owner fetch: BSHR waiter allocated
    IssueFetchHit,   ///< non-owner fetch: buffered broadcast consumed
    IssueNoFetch,    ///< no DCUB entry this episode
    CommitClaim,     ///< canonical miss claims the episode's fetch
    CommitReparative,    ///< owner false hit: reparative broadcast
    CommitSquashBuffered, ///< false hit squashes a buffered broadcast
    CommitSquashPending,  ///< false hit registers a pending squash
    DeliverWake,   ///< broadcast wakes the oldest waiter
    DeliverBuffer, ///< broadcast buffered for a future request
    DeliverSquash, ///< broadcast consumed by a pending squash
    FaultDup,      ///< fault: duplicate one in-flight copy
    FaultDrop,     ///< fault: lose one in-flight copy
    Rerequest      ///< stranded waiter re-requests; owner re-floods
};

/** Packed event: kind | node | episode (0xff = n/a) | line. */
std::uint32_t
packEvent(Ev kind, unsigned node, unsigned ep, unsigned line)
{
    return (static_cast<std::uint32_t>(kind) << 24) |
           (node << 16) | (ep << 8) | line;
}

std::string
eventName(std::uint32_t packed)
{
    auto kind = static_cast<Ev>(packed >> 24);
    unsigned node = (packed >> 16) & 0xff;
    unsigned ep = (packed >> 8) & 0xff;
    unsigned line = packed & 0xff;
    char buf[96];
    switch (kind) {
      case Ev::IssueFetchOwner:
        std::snprintf(buf, sizeof(buf),
                      "issue   n%u ep%u line%u: fetch, owner "
                      "broadcast", node, ep, line);
        break;
      case Ev::IssueFetchWait:
        std::snprintf(buf, sizeof(buf),
                      "issue   n%u ep%u line%u: fetch, BSHR waiter",
                      node, ep, line);
        break;
      case Ev::IssueFetchHit:
        std::snprintf(buf, sizeof(buf),
                      "issue   n%u ep%u line%u: fetch, buffered hit",
                      node, ep, line);
        break;
      case Ev::IssueNoFetch:
        std::snprintf(buf, sizeof(buf),
                      "issue   n%u ep%u line%u: no fetch (false "
                      "hit)", node, ep, line);
        break;
      case Ev::CommitClaim:
        std::snprintf(buf, sizeof(buf),
                      "commit  n%u ep%u line%u: claim fetch", node,
                      ep, line);
        break;
      case Ev::CommitReparative:
        std::snprintf(buf, sizeof(buf),
                      "commit  n%u ep%u line%u: reparative "
                      "broadcast", node, ep, line);
        break;
      case Ev::CommitSquashBuffered:
        std::snprintf(buf, sizeof(buf),
                      "commit  n%u ep%u line%u: squash buffered "
                      "broadcast", node, ep, line);
        break;
      case Ev::CommitSquashPending:
        std::snprintf(buf, sizeof(buf),
                      "commit  n%u ep%u line%u: register pending "
                      "squash", node, ep, line);
        break;
      case Ev::DeliverWake:
        std::snprintf(buf, sizeof(buf),
                      "deliver line%u -> n%u: wake waiter", line,
                      node);
        break;
      case Ev::DeliverBuffer:
        std::snprintf(buf, sizeof(buf),
                      "deliver line%u -> n%u: buffer", line, node);
        break;
      case Ev::DeliverSquash:
        std::snprintf(buf, sizeof(buf),
                      "deliver line%u -> n%u: consume pending "
                      "squash", line, node);
        break;
      case Ev::FaultDup:
        std::snprintf(buf, sizeof(buf),
                      "fault   duplicate line%u -> n%u", line, node);
        break;
      case Ev::FaultDrop:
        std::snprintf(buf, sizeof(buf),
                      "fault   drop line%u -> n%u", line, node);
        break;
      case Ev::Rerequest:
        std::snprintf(buf, sizeof(buf),
                      "rerequest n%u line%u: owner re-broadcasts",
                      node, line);
        break;
      default:
        std::snprintf(buf, sizeof(buf), "event %#x", packed);
    }
    return buf;
}

unsigned
ownerOf(const ModelConfig &cfg, unsigned line)
{
    return line % cfg.nodes;
}

/** Pack exactly the bytes the configured shape uses. */
std::string
encode(const ModelConfig &cfg, const State &s)
{
    std::string out;
    out.reserve(cfg.nodes * (cfg.episodes + 3 * cfg.lines + 4) +
                cfg.lines * cfg.nodes + 2 +
                (cfg.faults ? cfg.nodes * cfg.lines : 0));
    for (unsigned n = 0; n < cfg.nodes; ++n) {
        for (unsigned e = 0; e < cfg.episodes; ++e)
            out.push_back(static_cast<char>(s.stage[n][e]));
        for (unsigned l = 0; l < cfg.lines; ++l) {
            out.push_back(static_cast<char>(s.waiters[n][l]));
            out.push_back(static_cast<char>(s.buffered[n][l]));
            out.push_back(static_cast<char>(s.pending[n][l]));
        }
        out.push_back(static_cast<char>(s.woken[n]));
        out.push_back(static_cast<char>(s.bufferedHits[n]));
        out.push_back(static_cast<char>(s.squashes[n]));
        out.push_back(static_cast<char>(s.received[n]));
    }
    for (unsigned l = 0; l < cfg.lines; ++l)
        for (unsigned n = 0; n < cfg.nodes; ++n)
            out.push_back(static_cast<char>(s.inflight[l][n]));
    out.push_back(static_cast<char>(s.dups));
    out.push_back(static_cast<char>(s.drops));
    if (cfg.faults)
        for (unsigned n = 0; n < cfg.nodes; ++n)
            for (unsigned l = 0; l < cfg.lines; ++l)
                out.push_back(static_cast<char>(s.rerequests[n][l]));
    return out;
}

State
decode(const ModelConfig &cfg, const std::string &in)
{
    State s;
    std::size_t i = 0;
    auto u8 = [&in, &i] {
        return static_cast<std::uint8_t>(in[i++]);
    };
    for (unsigned n = 0; n < cfg.nodes; ++n) {
        for (unsigned e = 0; e < cfg.episodes; ++e)
            s.stage[n][e] = u8();
        for (unsigned l = 0; l < cfg.lines; ++l) {
            s.waiters[n][l] = u8();
            s.buffered[n][l] = u8();
            s.pending[n][l] = u8();
        }
        s.woken[n] = u8();
        s.bufferedHits[n] = u8();
        s.squashes[n] = u8();
        s.received[n] = u8();
    }
    for (unsigned l = 0; l < cfg.lines; ++l)
        for (unsigned n = 0; n < cfg.nodes; ++n)
            s.inflight[l][n] = u8();
    s.dups = u8();
    s.drops = u8();
    if (cfg.faults)
        for (unsigned n = 0; n < cfg.nodes; ++n)
            for (unsigned l = 0; l < cfg.lines; ++l)
                s.rerequests[n][l] = u8();
    panic_if(i != in.size(), "model state decode size mismatch");
    return s;
}

bool
isTerminal(const ModelConfig &cfg, const State &s)
{
    for (unsigned n = 0; n < cfg.nodes; ++n)
        if (s.stage[n][cfg.episodes - 1] != Committed)
            return false;
    for (unsigned l = 0; l < cfg.lines; ++l)
        for (unsigned n = 0; n < cfg.nodes; ++n)
            if (s.inflight[l][n])
                return false;
    return true;
}

/** The broadcast fan-out: one copy in flight per other node. */
void
flood(const ModelConfig &cfg, State &s, unsigned from, unsigned line)
{
    for (unsigned n = 0; n < cfg.nodes; ++n)
        if (n != from)
            ++s.inflight[line][n];
}

/** Bshr::deliver, abstractly: squash, wake, or buffer (in the
 *  concrete priority order), honouring the planted mutation. */
std::uint32_t
applyDeliver(const ModelConfig &cfg,
             const std::vector<unsigned> &script, State &s,
             unsigned line, unsigned dest)
{
    ++s.received[dest];
    if (s.pending[dest][line] > 0) {
        --s.pending[dest][line];
        ++s.squashes[dest];
        if (cfg.mutation == ProtocolMutation::DeliverSquashBuffers)
            ++s.buffered[dest][line];
        return packEvent(Ev::DeliverSquash, dest, 0, line);
    }
    if (s.waiters[dest][line] > 0) {
        --s.waiters[dest][line];
        ++s.woken[dest];
        // Per-line FIFO matching: the oldest waiting episode of this
        // line wakes, exactly as the concrete BSHR matches arrivals.
        for (unsigned e = 0; e < cfg.episodes; ++e) {
            if (s.stage[dest][e] == WaitData && script[e] == line) {
                s.stage[dest][e] = ReadyFetched;
                return packEvent(Ev::DeliverWake, dest, e, line);
            }
        }
        panic("model: waiter count with no WaitData episode");
    }
    ++s.buffered[dest][line];
    return packEvent(Ev::DeliverBuffer, dest, 0, line);
}

struct Succ
{
    std::uint32_t event;
    State next;
};

void
successors(const ModelConfig &cfg, const std::vector<unsigned> &script,
           const State &s, std::vector<Succ> &out)
{
    out.clear();

    for (unsigned n = 0; n < cfg.nodes; ++n) {
        // Issue: the first not-yet-issued episode, with a free
        // fetched / not-fetched choice (the abstraction of every
        // issue-order and DCUB-occupancy outcome the OoO core can
        // produce).
        unsigned issue = cfg.episodes;
        for (unsigned e = 0; e < cfg.episodes; ++e) {
            if (s.stage[n][e] == NotIssued) {
                issue = e;
                break;
            }
        }
        if (issue < cfg.episodes) {
            unsigned line = script[issue];
            if (ownerOf(cfg, line) == n) {
                State t = s;
                t.stage[n][issue] = ReadyFetched;
                flood(cfg, t, n, line);
                out.push_back({packEvent(Ev::IssueFetchOwner, n,
                                         issue, line),
                               t});
            } else if (s.buffered[n][line] > 0) {
                State t = s;
                if (cfg.mutation !=
                    ProtocolMutation::BufferedHitKeepsData)
                    --t.buffered[n][line];
                ++t.bufferedHits[n];
                t.stage[n][issue] = ReadyFetched;
                out.push_back({packEvent(Ev::IssueFetchHit, n, issue,
                                         line),
                               t});
            } else {
                State t = s;
                ++t.waiters[n][line];
                t.stage[n][issue] = WaitData;
                out.push_back({packEvent(Ev::IssueFetchWait, n,
                                         issue, line),
                               t});
            }
            State t = s;
            t.stage[n][issue] = ReadyNoFetch;
            out.push_back(
                {packEvent(Ev::IssueNoFetch, n, issue, line), t});
        }

        // Commit: in order; WaitData blocks until the waiter wakes.
        unsigned pc = 0;
        while (pc < cfg.episodes && s.stage[n][pc] == Committed)
            ++pc;
        if (pc < cfg.episodes) {
            unsigned line = script[pc];
            if (s.stage[n][pc] == ReadyFetched) {
                State t = s;
                t.stage[n][pc] = Committed;
                out.push_back(
                    {packEvent(Ev::CommitClaim, n, pc, line), t});
            } else if (s.stage[n][pc] == ReadyNoFetch) {
                State t = s;
                t.stage[n][pc] = Committed;
                if (ownerOf(cfg, line) == n) {
                    flood(cfg, t, n, line);
                    out.push_back({packEvent(Ev::CommitReparative, n,
                                             pc, line),
                                   t});
                } else if (s.buffered[n][line] > 0) {
                    --t.buffered[n][line];
                    ++t.squashes[n];
                    out.push_back(
                        {packEvent(Ev::CommitSquashBuffered, n, pc,
                                   line),
                         t});
                } else {
                    if (cfg.mutation !=
                        ProtocolMutation::SquashPendingLost)
                        ++t.pending[n][line];
                    out.push_back(
                        {packEvent(Ev::CommitSquashPending, n, pc,
                                   line),
                         t});
                }
            }
        }
    }

    // Deliveries: any in-flight copy may arrive next (arbitrary
    // order subsumes every delay pattern).
    for (unsigned l = 0; l < cfg.lines; ++l) {
        for (unsigned n = 0; n < cfg.nodes; ++n) {
            if (!s.inflight[l][n])
                continue;
            State t = s;
            --t.inflight[l][n];
            std::uint32_t ev = applyDeliver(cfg, script, t, l, n);
            out.push_back({ev, t});
        }
    }

    if (!cfg.faults)
        return;

    const unsigned rerequestBudget =
        cfg.episodes + cfg.maxDrops + 1;
    for (unsigned l = 0; l < cfg.lines; ++l) {
        for (unsigned n = 0; n < cfg.nodes; ++n) {
            if (s.inflight[l][n]) {
                if (s.dups < cfg.maxDups) {
                    State t = s;
                    ++t.inflight[l][n];
                    ++t.dups;
                    out.push_back(
                        {packEvent(Ev::FaultDup, n, 0xff, l), t});
                }
                if (s.drops < cfg.maxDrops) {
                    State t = s;
                    --t.inflight[l][n];
                    ++t.drops;
                    out.push_back(
                        {packEvent(Ev::FaultDrop, n, 0xff, l), t});
                }
            } else if (s.waiters[n][l] > 0 &&
                       s.rerequests[n][l] < rerequestBudget) {
                // Re-request recovery, as the concrete protocol does
                // it: the stranded node asks, the owner re-reads
                // memory and re-broadcasts to everyone. Guarded on
                // "nothing in flight for me" so enumeration cannot
                // burn the budget while data is already on the way.
                State t = s;
                ++t.rerequests[n][l];
                flood(cfg, t, ownerOf(cfg, l), l);
                out.push_back(
                    {packEvent(Ev::Rerequest, n, 0xff, l), t});
            }
        }
    }
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[256];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

/** Invariants of a finished (terminal) state — the oracle's checks,
 *  strict on a reliable medium, relaxed under faults. */
std::string
checkTerminal(const ModelConfig &cfg, const State &s)
{
    for (unsigned n = 0; n < cfg.nodes; ++n) {
        for (unsigned l = 0; l < cfg.lines; ++l) {
            if (s.waiters[n][l])
                return format("stranded waiter: node %u line %u has "
                              "%u waiters after completion",
                              n, l, s.waiters[n][l]);
            if (cfg.faults)
                continue; // residue is benign once delivery faults
            if (s.buffered[n][l] || s.pending[n][l])
                return format(
                    "protocol not drained: node %u line %u left %u "
                    "buffered / %u pending squashes",
                    n, l, s.buffered[n][l], s.pending[n][l]);
        }
        if (!cfg.faults) {
            unsigned consumed = s.woken[n] + s.bufferedHits[n] +
                                s.squashes[n];
            if (consumed != s.received[n])
                return format("broadcast conservation violation on "
                              "node %u: consumed %u of %u received",
                              n, consumed, s.received[n]);
        }
    }
    return "";
}

std::string
describeDeadlock(const ModelConfig &cfg,
                 const std::vector<unsigned> &script, const State &s)
{
    for (unsigned n = 0; n < cfg.nodes; ++n)
        for (unsigned e = 0; e < cfg.episodes; ++e)
            if (s.stage[n][e] == WaitData)
                return format("deadlock: node %u episode %u still "
                              "waits for line %u with no broadcast "
                              "in flight",
                              n, e, script[e]);
    return "deadlock: no event enabled before completion";
}

struct Rec
{
    std::uint32_t parent;
    std::uint32_t event;
    std::uint16_t depth;
};

std::vector<std::string>
buildTrace(const std::vector<Rec> &recs, std::uint32_t idx)
{
    std::vector<std::string> out;
    while (idx != 0) {
        out.push_back(eventName(recs[idx].event));
        idx = recs[idx].parent;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace

std::string
describeModelConfig(const ModelConfig &c)
{
    std::ostringstream os;
    os << "nodes=" << c.nodes << " lines=" << c.lines
       << " episodes=" << c.episodes
       << " faults=" << (c.faults ? 1 : 0);
    if (c.faults)
        os << " maxdups=" << c.maxDups << " maxdrops=" << c.maxDrops;
    if (c.depthBound)
        os << " depth<=" << c.depthBound;
    if (c.mutation != ProtocolMutation::None)
        os << " mutation=" << protocolMutationName(c.mutation);
    return os.str();
}

ModelResult
checkScript(const ModelConfig &cfg,
            const std::vector<unsigned> &script)
{
    fatal_if(cfg.nodes < 2 || cfg.nodes > kMaxNodes,
             "model: nodes must be 2..%u", kMaxNodes);
    fatal_if(cfg.lines < 1 || cfg.lines > kMaxLines,
             "model: lines must be 1..%u", kMaxLines);
    fatal_if(cfg.episodes < 1 || cfg.episodes > kMaxEpisodes,
             "model: episodes must be 1..%u", kMaxEpisodes);
    fatal_if(script.size() != cfg.episodes,
             "model: script length %zu != episodes %u",
             script.size(), cfg.episodes);
    for (unsigned line : script)
        fatal_if(line >= cfg.lines, "model: script line %u out of "
                 "range", line);

    ModelResult res;
    res.scriptsChecked = 1;
    res.script = script;

    std::vector<std::string> keys;
    std::vector<Rec> recs;
    std::unordered_map<std::string, std::uint32_t> seen;

    State init{};
    keys.push_back(encode(cfg, init));
    recs.push_back({0, 0, 0});
    seen.emplace(keys[0], 0);

    std::vector<Succ> succs;
    for (std::uint32_t idx = 0; idx < keys.size(); ++idx) {
        const State s = decode(cfg, keys[idx]);
        const unsigned depth = recs[idx].depth;
        res.maxDepth = std::max(res.maxDepth, depth);

        if (isTerminal(cfg, s)) {
            std::string bad = checkTerminal(cfg, s);
            if (!bad.empty()) {
                res.ok = false;
                res.violation = std::move(bad);
                res.trace = buildTrace(recs, idx);
                res.states = keys.size();
                return res;
            }
            continue;
        }

        successors(cfg, script, s, succs);
        if (succs.empty()) {
            res.ok = false;
            res.violation = describeDeadlock(cfg, script, s);
            res.trace = buildTrace(recs, idx);
            res.states = keys.size();
            return res;
        }

        if (cfg.depthBound && depth >= cfg.depthBound) {
            res.exhaustive = false;
            continue;
        }

        for (Succ &succ : succs) {
            ++res.transitions;
            std::string key = encode(cfg, succ.next);
            auto [it, inserted] =
                seen.emplace(std::move(key), keys.size());
            if (!inserted)
                continue;
            if (keys.size() >= cfg.maxStates) {
                seen.erase(it);
                res.exhaustive = false;
                continue;
            }
            keys.push_back(it->first);
            recs.push_back({idx, succ.event,
                            static_cast<std::uint16_t>(depth + 1)});
        }
    }

    res.states = keys.size();
    return res;
}

ModelResult
checkModel(const ModelConfig &cfg)
{
    ModelResult total;
    total.scriptsChecked = 0;

    std::vector<unsigned> script(cfg.episodes, 0);
    for (;;) {
        ModelResult one = checkScript(cfg, script);
        total.states += one.states;
        total.transitions += one.transitions;
        total.maxDepth = std::max(total.maxDepth, one.maxDepth);
        total.exhaustive = total.exhaustive && one.exhaustive;
        ++total.scriptsChecked;
        if (!one.ok) {
            total.ok = false;
            total.violation = std::move(one.violation);
            total.script = std::move(one.script);
            total.trace = std::move(one.trace);
            return total;
        }
        // Next script, counting in base `lines`.
        unsigned pos = 0;
        while (pos < cfg.episodes && ++script[pos] == cfg.lines) {
            script[pos] = 0;
            ++pos;
        }
        if (pos == cfg.episodes)
            break;
    }
    return total;
}

TrialConfig
modelTrialConfig(const ModelConfig &cfg)
{
    TrialConfig c;
    c.system = driver::SystemKind::DataScalar;
    c.nodes = cfg.nodes;
    c.mutation = cfg.mutation;
    // The model's fault mode (duplicates/drops with recovery and
    // relaxed invariants) maps to concrete fault injection with
    // re-request recovery armed.
    c.faults = cfg.faults;
    return c;
}

std::string
formatCounterexample(const ModelConfig &cfg, const ModelResult &res)
{
    if (res.ok)
        return "";
    std::ostringstream os;
    os << "model counterexample (" << describeModelConfig(cfg)
       << ")\n";
    os << "script:";
    for (std::size_t e = 0; e < res.script.size(); ++e)
        os << " ep" << e << "=line" << res.script[e] << "(owner n"
           << (res.script[e] % cfg.nodes) << ")";
    os << "\nviolation: " << res.violation << "\n";
    for (std::size_t i = 0; i < res.trace.size(); ++i) {
        char num[32];
        std::snprintf(num, sizeof(num), "%3zu. ", i + 1);
        os << num << res.trace[i] << "\n";
    }
    return os.str();
}

} // namespace check
} // namespace dscalar
