#include "check/oracle.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "baseline/perfect.hh"
#include "baseline/traditional.hh"
#include "check/coverage.hh"
#include "common/logging.hh"
#include "core/datascalar.hh"
#include "func/func_sim.hh"
#include "func/trace_file.hh"
#include "obs/flight_recorder.hh"

namespace dscalar {
namespace check {

namespace {

/** Everything one timing run exposes to the equivalence checks. */
struct RunOutcome
{
    core::RunResult result;
    std::string output;
    std::string stats;          ///< DataScalar dumpStats; else empty
    std::string invariantError; ///< first violated system invariant
    std::string flightLog;      ///< flight-recorder dump (DataScalar)
};

/** Flight-recorder depth for oracle runs: enough context to read a
 *  failure, small enough to keep repro files skimmable. */
constexpr std::size_t kOracleFlightCapacity = 256;

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

/** System-internal invariants of one finished DataScalar run. */
std::string
checkDataScalarInvariants(const core::DataScalarSystem &sys,
                          const core::RunResult &r,
                          const TrialConfig &config,
                          const core::SimConfig &cfg)
{
    const unsigned nodes = cfg.numNodes;

    // SPSD: every node commits the identical full stream.
    for (NodeId n = 0; n < nodes; ++n) {
        InstSeq committed = sys.node(n).core().committedSeq();
        if (committed != r.instructions)
            return format("SPSD violation: node %u committed %llu "
                          "of %llu instructions",
                          n, (unsigned long long)committed,
                          (unsigned long long)r.instructions);
    }

    // Cache correspondence: canonical behaviour identical
    // everywhere, faults or not (values come from the oracle, so
    // injected faults may perturb timing only).
    for (NodeId n = 1; n < nodes; ++n) {
        const auto &a = sys.node(0).core().coreStats();
        const auto &b = sys.node(n).core().coreStats();
        if (b.canonicalLoadMisses != a.canonicalLoadMisses ||
            b.storeCommitMisses != a.storeCommitMisses ||
            b.dirtyWriteBacks != a.dirtyWriteBacks)
            return format(
                "cache correspondence violation on node %u: "
                "canonical misses %llu/%llu, store misses "
                "%llu/%llu, write-backs %llu/%llu (vs node 0)",
                n, (unsigned long long)b.canonicalLoadMisses,
                (unsigned long long)a.canonicalLoadMisses,
                (unsigned long long)b.storeCommitMisses,
                (unsigned long long)a.storeCommitMisses,
                (unsigned long long)b.dirtyWriteBacks,
                (unsigned long long)a.dirtyWriteBacks);
    }

    const bool relaxed = config.faults || config.hardBshr;
    if (relaxed) {
        // Exactly-once delivery is deliberately broken: benign BSHR
        // residue is expected, but no waiter may be left behind.
        for (NodeId n = 0; n < nodes; ++n)
            for (const core::BshrEntryInfo &e :
                 sys.node(n).bshr().entries())
                if (e.waiters != 0)
                    return format("stranded waiter: node %u line "
                                  "%#llx has %u waiters after "
                                  "completion",
                                  n, (unsigned long long)e.line,
                                  e.waiters);
        return "";
    }

    // Reliable medium: every broadcast consumed exactly once.
    if (!sys.protocolDrained())
        return "protocol not drained: BSHR residue or in-flight "
               "delivery after completion on a reliable medium";

    // Broadcast conservation (bus only: every node sees every other
    // node's broadcasts exactly once).
    if (cfg.interconnect == core::InterconnectKind::Bus) {
        std::uint64_t sent = 0;
        for (NodeId n = 0; n < nodes; ++n)
            sent += sys.node(n).nodeStats().totalBroadcasts();
        for (NodeId n = 0; n < nodes; ++n) {
            const auto &bs = sys.node(n).bshr().bshrStats();
            std::uint64_t consumed =
                bs.wokenWaiters + bs.bufferedHits + bs.squashes;
            std::uint64_t received =
                sent - sys.node(n).nodeStats().totalBroadcasts();
            if (consumed != received)
                return format("broadcast conservation violation on "
                              "node %u: consumed %llu of %llu "
                              "received",
                              n, (unsigned long long)consumed,
                              (unsigned long long)received);
        }
    }
    return "";
}

/** Run @p cfg once (live, or replaying @p trace when non-null).
 *  When @p coverage is set, DataScalar runs fold their protocol-event
 *  history into it and add their gain to @p coverageGain. */
RunOutcome
runConfigOnce(const prog::Program &program,
              const core::SimConfig &cfg, const TrialConfig &config,
              std::shared_ptr<const func::InstTrace> trace,
              CoverageMap *coverage = nullptr,
              std::uint64_t *coverageGain = nullptr)
{
    // Plant the requested protocol bug for the timing run only; the
    // golden architectural model never goes through the BSHR.
    core::ScopedProtocolMutation plant(config.mutation);
    RunOutcome out;
    switch (config.system) {
      case driver::SystemKind::Perfect:
      case driver::SystemKind::Traditional: {
        // The baselines have no system-internal invariants to poke
        // at, so they go through the driver API like any other run.
        driver::RunRequest req = toRunRequest(config);
        req.config = cfg; // caller may have flipped run-loop knobs
        req.program = std::shared_ptr<const prog::Program>(
            std::shared_ptr<const prog::Program>(), &program);
        req.trace = std::move(trace);
        driver::RunResponse resp = driver::runOne(req);
        out.result = std::move(resp.result);
        out.output = std::move(resp.output);
        break;
      }
      case driver::SystemKind::DataScalar: {
        core::DataScalarSystem sys(
            program, cfg,
            driver::figure7PageTable(program, cfg.numNodes),
            std::move(trace));
        obs::FlightRecorder recorder(kOracleFlightCapacity);
        sys.addTraceSink(&recorder);
        out.result = sys.run();
        out.output = sys.output();
        std::ostringstream os;
        sys.dumpStats(os);
        out.stats = os.str();
        out.invariantError =
            checkDataScalarInvariants(sys, out.result, config, cfg);
        out.flightLog = recorder.dumpString();
        if (coverage && coverageGain)
            *coverageGain += coverage->record(recorder);
        break;
      }
    }
    return out;
}

/** Architectural equivalence of one run against the golden model. */
std::string
checkAgainstGolden(const RunOutcome &out, const GoldenRun &golden,
                   const core::SimConfig &cfg)
{
    InstSeq expected =
        cfg.maxInsts ? std::min(golden.retired, cfg.maxInsts)
                     : golden.retired;
    if (out.result.instructions != expected)
        return format("retirement-stream divergence: retired %llu, "
                      "golden model retired %llu",
                      (unsigned long long)out.result.instructions,
                      (unsigned long long)expected);
    std::string want = cfg.maxInsts
                           ? golden.trace->outputPrefix(expected)
                           : golden.output;
    if (out.output != want)
        return format("output divergence: %zu bytes vs golden %zu "
                      "bytes for the executed prefix",
                      out.output.size(), want.size());
    return "";
}

/** Field-wise equality of two runs of the same configuration. */
std::string
compareOutcomes(const RunOutcome &a, const RunOutcome &b,
                const char *what)
{
    if (a.result.cycles != b.result.cycles)
        return format("%s: cycle divergence %llu vs %llu", what,
                      (unsigned long long)a.result.cycles,
                      (unsigned long long)b.result.cycles);
    if (a.result.instructions != b.result.instructions)
        return format("%s: instruction divergence %llu vs %llu",
                      what,
                      (unsigned long long)a.result.instructions,
                      (unsigned long long)b.result.instructions);
    if (a.output != b.output)
        return format("%s: output divergence", what);
    if (a.stats != b.stats)
        return format("%s: stats-dump divergence", what);
    return "";
}

} // namespace

std::string
describeConfig(const TrialConfig &c)
{
    std::ostringstream os;
    os << "system=" << driver::systemKindName(c.system)
       << " nodes=" << c.nodes << " interconnect="
       << driver::interconnectKindName(c.interconnect)
       << " dcache=" << c.dcacheBytes << "B/" << c.dcacheAssoc
       << "way" << (c.writeAllocate ? "/wa" : "")
       << " ed=" << (c.eventDriven ? 1 : 0)
       << " xed=" << (c.crossEventDriven ? 1 : 0)
       << " tt=" << c.tickThreads
       << " xtt=" << (c.crossTickThreads ? 1 : 0)
       << " xreplay=" << (c.crossReplay ? 1 : 0)
       << " faults=" << (c.faults ? 1 : 0)
       << " hardbshr=" << (c.hardBshr ? 1 : 0)
       << " bshrcap=" << c.bshrCapacity
       << " maxinsts=" << c.maxInsts << " faultseed=" << c.faultSeed;
    if (!c.traceDir.empty())
        os << " tracedir=" << c.traceDir;
    if (c.faultsNoRecovery)
        os << " faults-no-recovery=1";
    if (c.mutation != core::ProtocolMutation::None)
        os << " mutation=" << core::protocolMutationName(c.mutation);
    return os.str();
}

core::SimConfig
toSimConfig(const TrialConfig &c)
{
    core::SimConfig cfg = driver::paperConfig();
    cfg.numNodes = c.nodes;
    cfg.interconnect = c.interconnect;
    cfg.core.dcache.sizeBytes = c.dcacheBytes;
    cfg.core.dcache.assoc = c.dcacheAssoc;
    cfg.core.dcache.writeAllocate = c.writeAllocate;
    cfg.eventDriven = c.eventDriven;
    cfg.tickThreads = c.tickThreads;
    cfg.maxInsts = c.maxInsts;
    cfg.bshrCapacity = c.bshrCapacity;
    if (c.faults) {
        cfg.fault.dropProb = 0.02;
        cfg.fault.dupProb = 0.02;
        cfg.fault.delayProb = 0.1;
        cfg.fault.maxDelay = 24;
        cfg.fault.seed = c.faultSeed;
        cfg.rerequestTimeout = 2'000;
    }
    if (c.faultsNoRecovery) {
        // Duplicates and jitter only — nothing is lost, so the run
        // completes, but the reliable-medium drain invariant breaks.
        cfg.fault.dupProb = 0.05;
        cfg.fault.delayProb = 0.2;
        cfg.fault.maxDelay = 40;
        cfg.fault.seed = c.faultSeed;
    }
    if (c.hardBshr) {
        cfg.bshrHardCapacity = true;
        cfg.rerequestTimeout = 2'000;
    }
    return cfg;
}

driver::RunRequest
toRunRequest(const TrialConfig &c)
{
    driver::RunRequest req;
    req.system = c.system;
    req.config = toSimConfig(c);
    return req;
}

GoldenRun
runGolden(const prog::Program &program, InstSeq budget)
{
    GoldenRun g;
    g.trace = func::InstTrace::capture(program, budget);
    fatal_if(!g.trace->programHalted(),
             "generated program '%s' did not halt within %llu "
             "instructions",
             program.name.c_str(), (unsigned long long)budget);
    g.retired = g.trace->length();
    g.output = g.trace->output();
    return g;
}

Oracle::Oracle(OracleOptions options, GenParams gen)
    : options_(options), gen_(gen)
{
}

TrialConfig
Oracle::sampleConfig(Random &rng) const
{
    TrialConfig c;
    unsigned pick = rng.below(8);
    c.system = pick < 5 ? driver::SystemKind::DataScalar
               : pick < 7 ? driver::SystemKind::Traditional
                          : driver::SystemKind::Perfect;
    c.nodes = 2 + static_cast<unsigned>(rng.below(3));
    const bool ds = c.system == driver::SystemKind::DataScalar;
    if (ds && rng.chance(0.3))
        c.interconnect = core::InterconnectKind::Ring;

    static constexpr std::uint64_t sizes[] = {256, 1024, 4096,
                                              16 * 1024, 64 * 1024};
    c.dcacheBytes = sizes[rng.below(5)];
    c.dcacheAssoc = 1u << rng.below(3);
    c.writeAllocate = rng.chance(0.3);

    c.eventDriven = !rng.chance(0.25);
    c.crossEventDriven = rng.chance(0.25);
    c.crossReplay = rng.chance(0.35);
    // Drawn unconditionally so configuring a trace store never
    // reshuffles the rest of the config stream for a given seed.
    bool diskReplay = rng.chance(0.25);
    if (diskReplay && !options_.traceDir.empty())
        c.traceDir = options_.traceDir;
    // Parallel ticking only changes anything on a multi-node
    // DataScalar run, but sampling it everywhere also exercises the
    // resolve-to-serial paths of the baselines.
    if (rng.chance(0.3))
        c.tickThreads = 2 + static_cast<unsigned>(rng.below(3));
    c.crossTickThreads = rng.chance(0.25);

    if (ds) {
        c.faults = rng.chance(0.25);
        c.hardBshr = !c.faults && rng.chance(0.15);
        if (c.hardBshr)
            c.bshrCapacity = 4u << rng.below(3); // 4 / 8 / 16
        else if (rng.chance(0.1))
            c.bshrCapacity = 8; // soft overflow reporting path
    }
    c.maxInsts =
        rng.chance(0.3) ? 2'000 + rng.below(8'000) : InstSeq(0);
    c.faultSeed = 1 + rng.below(1'000);
    return c;
}

std::string
Oracle::checkConfig(const prog::Program &program,
                    const GoldenRun &golden,
                    const TrialConfig &config)
{
    ++stats_.configsChecked;
    core::SimConfig cfg = toSimConfig(config);
    lastFlightLog_.clear();
    lastCoverageGain_ = 0;

    auto run = [&](const core::SimConfig &c,
                   std::shared_ptr<const func::InstTrace> tr) {
        return runConfigOnce(program, c, config, std::move(tr),
                             options_.coverage, &lastCoverageGain_);
    };

    // Returns the mismatch unchanged, remembering the failing run's
    // flight-recorder dump for post-mortems (dsfuzz repro files).
    auto fail = [this](const RunOutcome &o, std::string msg) {
        lastFlightLog_ = o.flightLog;
        return msg;
    };

    ++stats_.timingRuns;
    RunOutcome live = run(cfg, nullptr);
    if (!live.invariantError.empty())
        return fail(live, live.invariantError);
    std::string err = checkAgainstGolden(live, golden, cfg);
    if (!err.empty())
        return fail(live, err);

    if (config.crossReplay) {
        ++stats_.timingRuns;
        RunOutcome rep = run(cfg, golden.trace);
        if (!rep.invariantError.empty())
            return fail(rep, "trace-replay run: " + rep.invariantError);
        err = checkAgainstGolden(rep, golden, cfg);
        if (!err.empty())
            return fail(rep, "trace-replay run: " + err);
        err = compareOutcomes(live, rep, "trace-replay vs live");
        if (!err.empty())
            return fail(rep, err);
    }

    if (!config.traceDir.empty()) {
        // Disk round trip: save the golden trace, mmap-load it back
        // (key/digest/checksum validated), replay the loaded copy.
        ::mkdir(config.traceDir.c_str(), 0777);
        std::uint64_t digest = program.imageDigest();
        char leaf[64];
        std::snprintf(leaf, sizeof(leaf), "/fuzz-%016llx.dstrace",
                      (unsigned long long)digest);
        std::string path = config.traceDir + leaf;
        std::string key = "fuzz/" + program.name;
        func::TraceSaveOptions save;
        save.compressed = (digest & 1) != 0; // cover both layouts
        std::string ferr;
        if (!func::saveTraceFile(path, *golden.trace, key, digest,
                                 ferr, save))
            return "trace-store save failed: " + ferr;
        std::shared_ptr<const func::InstTrace> loaded =
            func::loadTraceFile(path, key, digest, ferr);
        if (!loaded)
            return "trace-store load failed: " + ferr;
        ++stats_.timingRuns;
        RunOutcome rep = run(cfg, loaded);
        if (!rep.invariantError.empty())
            return fail(rep, "disk-replay run: " + rep.invariantError);
        err = checkAgainstGolden(rep, golden, cfg);
        if (!err.empty())
            return fail(rep, "disk-replay run: " + err);
        err = compareOutcomes(live, rep, "disk-replay vs live");
        if (!err.empty())
            return fail(rep, err);
    }

    if (config.crossEventDriven) {
        core::SimConfig flipped = cfg;
        flipped.eventDriven = !cfg.eventDriven;
        ++stats_.timingRuns;
        RunOutcome other = run(flipped, nullptr);
        if (!other.invariantError.empty())
            return fail(other,
                        "flipped run-loop mode: " +
                            other.invariantError);
        err = compareOutcomes(live, other,
                              cfg.eventDriven
                                  ? "event-driven vs single-stepping"
                                  : "single-stepping vs event-driven");
        if (!err.empty())
            return fail(other, err);
    }

    if (config.crossTickThreads) {
        core::SimConfig flipped = cfg;
        flipped.tickThreads = cfg.tickThreads > 1 ? 1 : 4;
        ++stats_.timingRuns;
        RunOutcome other = run(flipped, nullptr);
        if (!other.invariantError.empty())
            return fail(other,
                        "flipped tick-thread count: " +
                            other.invariantError);
        err = compareOutcomes(live, other,
                              cfg.tickThreads > 1
                                  ? "parallel vs serial tick loop"
                                  : "serial vs parallel tick loop");
        if (!err.empty())
            return fail(other, err);
    }
    return "";
}

std::optional<TrialFailure>
Oracle::runTrial(std::uint64_t seed)
{
    return runTrial(seed, gen_);
}

std::optional<TrialFailure>
Oracle::runTrial(std::uint64_t seed, const GenParams &params)
{
    ++stats_.trials;
    ProgramGen gen(params);
    prog::Program program = gen.generate(seed);
    GoldenRun golden = runGolden(program, options_.goldenBudget);

    // The config-sampling stream is decoupled from the program
    // generator's stream (different mix constant), so changing the
    // op mix never reshuffles which configs a seed explores.
    Random rng(seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
    for (unsigned i = 0; i < options_.configsPerTrial; ++i) {
        TrialConfig config = sampleConfig(rng);
        std::string mismatch = checkConfig(program, golden, config);
        if (!mismatch.empty())
            return TrialFailure{seed, params, config,
                                std::move(mismatch)};
    }
    return std::nullopt;
}

std::string
Oracle::recheck(std::uint64_t seed, const GenParams &params,
                const TrialConfig &config)
{
    ProgramGen gen(params);
    prog::Program program = gen.generate(seed);
    GoldenRun golden = runGolden(program, options_.goldenBudget);
    return checkConfig(program, golden, config);
}

// -------------------------------------------------------------------
// Auto-shrinking
// -------------------------------------------------------------------

namespace {

/** One shrinkable structural dimension of GenParams. */
struct Dimension
{
    const char *name;
    unsigned GenParams::*lo;
    unsigned GenParams::*hi;
    unsigned floor;
};

constexpr Dimension kDimensions[] = {
    {"iters", &GenParams::minIters, &GenParams::maxIters, 1},
    {"blockOps", &GenParams::minBlockOps, &GenParams::maxBlockOps, 1},
    {"dataPages", &GenParams::minDataPages, &GenParams::maxDataPages,
     1},
};

/** Smaller candidates for one dimension, most aggressive first. */
std::vector<GenParams>
candidatesFor(const GenParams &params, const Dimension &dim)
{
    std::vector<GenParams> out;
    unsigned lo = params.*(dim.lo);
    unsigned hi = params.*(dim.hi);
    if (lo == dim.floor && hi == dim.floor)
        return out;
    GenParams pinned = params;
    pinned.*(dim.lo) = dim.floor;
    pinned.*(dim.hi) = dim.floor;
    out.push_back(pinned);
    if (hi > lo) {
        GenParams halved = params;
        halved.*(dim.hi) = lo + (hi - lo) / 2;
        out.push_back(halved);
    } else if (lo > dim.floor) {
        GenParams lowered = params;
        unsigned mid = dim.floor + (lo - dim.floor) / 2;
        lowered.*(dim.lo) = mid;
        lowered.*(dim.hi) = mid;
        out.push_back(lowered);
    }
    return out;
}

} // namespace

ShrinkResult
shrinkParams(std::uint64_t seed, GenParams start,
             std::string initial_mismatch,
             const FailurePredicate &still_fails)
{
    ShrinkResult res;
    res.params = start;
    res.mismatch = std::move(initial_mismatch);

    bool progress = true;
    while (progress) {
        ++res.passes;
        progress = false;
        for (const Dimension &dim : kDimensions) {
            for (const GenParams &cand :
                 candidatesFor(res.params, dim)) {
                ++res.attempts;
                std::string mismatch = still_fails(seed, cand);
                if (!mismatch.empty()) {
                    res.params = cand;
                    res.mismatch = std::move(mismatch);
                    progress = true;
                    break;
                }
            }
        }
    }
    return res;
}

} // namespace check
} // namespace dscalar
