#include "check/coverage.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/flight_recorder.hh"

namespace dscalar {
namespace check {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t
fnv1a(std::uint64_t h, std::uint8_t byte)
{
    return (h ^ byte) * kFnvPrime;
}

} // namespace

CoverageMap::CoverageMap(unsigned maxNgram) : maxNgram_(maxNgram)
{
    fatal_if(maxNgram_ < 1 || maxNgram_ > 8,
             "coverage: n-gram size must be 1..8, got %u", maxNgram_);
}

void
CoverageMap::fingerprint(const std::vector<std::uint8_t> &kinds,
                         std::unordered_set<std::uint64_t> &out) const
{
    for (std::size_t start = 0; start < kinds.size(); ++start) {
        // Seed each window's hash with its length so a 1-gram and a
        // longer window never collide structurally.
        std::uint64_t h = kFnvOffset;
        std::size_t maxLen = std::min<std::size_t>(
            maxNgram_, kinds.size() - start);
        for (std::size_t len = 0; len < maxLen; ++len) {
            h = fnv1a(h, kinds[start + len]);
            out.insert(fnv1a(h, static_cast<std::uint8_t>(len + 1)));
        }
    }
}

std::uint64_t
CoverageMap::record(
    const std::vector<std::vector<std::uint8_t>> &histories)
{
    std::unordered_set<std::uint64_t> run;
    for (const auto &kinds : histories)
        fingerprint(kinds, run);
    std::uint64_t gain = 0;
    for (std::uint64_t h : run)
        if (seen_.insert(h).second)
            ++gain;
    ++runs_;
    return gain;
}

std::uint64_t
CoverageMap::record(const obs::FlightRecorder &recorder)
{
    std::vector<std::vector<std::uint8_t>> histories;
    histories.reserve(recorder.nodeCount());
    for (std::size_t n = 0; n < recorder.nodeCount(); ++n)
        histories.push_back(
            recorder.kindHistory(static_cast<NodeId>(n)));
    return record(histories);
}

} // namespace check
} // namespace dscalar
