#include "check/repro.hh"

#include <fstream>
#include <sstream>

#include "common/kv.hh"
#include "driver/driver.hh"

namespace dscalar {
namespace check {

// The `key = value` line convention is shared with RunRequest
// serialization and the dsserve wire protocol (common/kv.hh), so the
// three formats cannot drift apart.
using common::kv::emit;
using common::kv::parseU64;
using common::kv::splitLine;
using common::kv::trim;

namespace {

constexpr char kMagic[] = "# dsfuzz repro v1";

} // namespace

std::string
formatRepro(const ReproCase &r)
{
    std::ostringstream os;
    os << kMagic << "\n";
    os << "# " << describeConfig(r.config) << "\n";
    emit(os, "seed", r.seed);

    const GenParams &p = r.params;
    emit(os, "min_data_pages", p.minDataPages);
    emit(os, "max_data_pages", p.maxDataPages);
    emit(os, "min_iters", p.minIters);
    emit(os, "max_iters", p.maxIters);
    emit(os, "min_block_ops", p.minBlockOps);
    emit(os, "max_block_ops", p.maxBlockOps);
    emit(os, "mix_load_accum", p.mix.loadAccum);
    emit(os, "mix_store_data", p.mix.storeData);
    emit(os, "mix_load_xor", p.mix.loadXor);
    emit(os, "mix_branch_skip", p.mix.branchSkip);
    emit(os, "mix_cursor_mul", p.mix.cursorMul);
    emit(os, "mix_cursor_hash", p.mix.cursorHash);
    emit(os, "mix_fp_mix", p.mix.fpMix);
    emit(os, "mix_print_syscall", p.mix.printSyscall);
    emit(os, "mix_alias_store_load", p.mix.aliasStoreLoad);
    emit(os, "mix_byte_ops", p.mix.byteOps);
    emit(os, "mix_page_cross", p.mix.pageCross);

    const TrialConfig &c = r.config;
    emit(os, "system", driver::systemKindName(c.system));
    emit(os, "nodes", c.nodes);
    emit(os, "interconnect", driver::interconnectKindName(c.interconnect));
    emit(os, "dcache_bytes", c.dcacheBytes);
    emit(os, "dcache_assoc", c.dcacheAssoc);
    emit(os, "write_allocate", c.writeAllocate ? 1 : 0);
    emit(os, "event_driven", c.eventDriven ? 1 : 0);
    emit(os, "cross_event_driven", c.crossEventDriven ? 1 : 0);
    emit(os, "tick_threads", c.tickThreads);
    emit(os, "cross_tick_threads", c.crossTickThreads ? 1 : 0);
    emit(os, "cross_replay", c.crossReplay ? 1 : 0);
    emit(os, "faults", c.faults ? 1 : 0);
    emit(os, "hard_bshr", c.hardBshr ? 1 : 0);
    emit(os, "faults_no_recovery", c.faultsNoRecovery ? 1 : 0);
    emit(os, "bshr_capacity", c.bshrCapacity);
    emit(os, "max_insts", c.maxInsts);
    emit(os, "fault_seed", c.faultSeed);
    emit(os, "trace_dir", c.traceDir);
    // Only mutation-sensitivity repros carry this key, so ordinary
    // repro files stay byte-identical to the v1 layout.
    if (c.mutation != core::ProtocolMutation::None)
        emit(os, "mutation", core::protocolMutationName(c.mutation));

    emit(os, "mismatch", r.mismatch.c_str());
    return os.str();
}

bool
parseRepro(std::istream &in, ReproCase &out, std::string &error)
{
    ReproCase r;
    bool saw_seed = false;
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        std::string key, value;
        if (!splitLine(t, key, value)) {
            error = "line " + std::to_string(lineno) + ": missing '=' or malformed value";
            return false;
        }

        // String-valued keys first.
        if (key == "mismatch") {
            r.mismatch = value;
            continue;
        }
        if (key == "trace_dir") {
            r.config.traceDir = value;
            continue;
        }
        if (key == "system") {
            if (!driver::parseSystemKind(value, r.config.system)) {
                error = "line " + std::to_string(lineno) +
                        ": unknown system '" + value + "'";
                return false;
            }
            continue;
        }
        if (key == "interconnect") {
            if (!driver::parseInterconnectKind(value,
                                               r.config.interconnect)) {
                error = "line " + std::to_string(lineno) +
                        ": unknown interconnect '" + value + "'";
                return false;
            }
            continue;
        }
        if (key == "mutation") {
            if (!core::parseProtocolMutation(value,
                                             r.config.mutation)) {
                error = "line " + std::to_string(lineno) +
                        ": unknown mutation '" + value + "'";
                return false;
            }
            continue;
        }

        std::uint64_t v = 0;
        if (!parseU64(value, v)) {
            error = "line " + std::to_string(lineno) +
                    ": non-numeric value for '" + key + "'";
            return false;
        }
        auto u = [v] { return static_cast<unsigned>(v); };
        if (key == "seed") {
            r.seed = v;
            saw_seed = true;
        } else if (key == "min_data_pages")
            r.params.minDataPages = u();
        else if (key == "max_data_pages")
            r.params.maxDataPages = u();
        else if (key == "min_iters")
            r.params.minIters = u();
        else if (key == "max_iters")
            r.params.maxIters = u();
        else if (key == "min_block_ops")
            r.params.minBlockOps = u();
        else if (key == "max_block_ops")
            r.params.maxBlockOps = u();
        else if (key == "mix_load_accum")
            r.params.mix.loadAccum = u();
        else if (key == "mix_store_data")
            r.params.mix.storeData = u();
        else if (key == "mix_load_xor")
            r.params.mix.loadXor = u();
        else if (key == "mix_branch_skip")
            r.params.mix.branchSkip = u();
        else if (key == "mix_cursor_mul")
            r.params.mix.cursorMul = u();
        else if (key == "mix_cursor_hash")
            r.params.mix.cursorHash = u();
        else if (key == "mix_fp_mix")
            r.params.mix.fpMix = u();
        else if (key == "mix_print_syscall")
            r.params.mix.printSyscall = u();
        else if (key == "mix_alias_store_load")
            r.params.mix.aliasStoreLoad = u();
        else if (key == "mix_byte_ops")
            r.params.mix.byteOps = u();
        else if (key == "mix_page_cross")
            r.params.mix.pageCross = u();
        else if (key == "nodes")
            r.config.nodes = u();
        else if (key == "dcache_bytes")
            r.config.dcacheBytes = v;
        else if (key == "dcache_assoc")
            r.config.dcacheAssoc = u();
        else if (key == "write_allocate")
            r.config.writeAllocate = v != 0;
        else if (key == "event_driven")
            r.config.eventDriven = v != 0;
        else if (key == "cross_event_driven")
            r.config.crossEventDriven = v != 0;
        else if (key == "tick_threads")
            r.config.tickThreads = u();
        else if (key == "cross_tick_threads")
            r.config.crossTickThreads = v != 0;
        else if (key == "cross_replay")
            r.config.crossReplay = v != 0;
        else if (key == "faults")
            r.config.faults = v != 0;
        else if (key == "hard_bshr")
            r.config.hardBshr = v != 0;
        else if (key == "faults_no_recovery")
            r.config.faultsNoRecovery = v != 0;
        else if (key == "bshr_capacity")
            r.config.bshrCapacity = u();
        else if (key == "max_insts")
            r.config.maxInsts = v;
        else if (key == "fault_seed")
            r.config.faultSeed = v;
        else {
            error = "line " + std::to_string(lineno) +
                    ": unknown key '" + key + "'";
            return false;
        }
    }
    if (!saw_seed) {
        error = "repro file has no 'seed' key";
        return false;
    }
    out = r;
    return true;
}

bool
saveRepro(const std::string &path, const ReproCase &repro)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << formatRepro(repro);
    return static_cast<bool>(out);
}

bool
loadRepro(const std::string &path, ReproCase &out, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    return parseRepro(in, out, error);
}

} // namespace check
} // namespace dscalar
