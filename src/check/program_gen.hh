/**
 * @file
 * Reusable random-program generator for property tests and the
 * dsfuzz differential fuzzer.
 *
 * Generation is a pure function of (seed, GenParams): the same pair
 * always produces a byte-identical program image on every host.
 * The default parameters reproduce, draw for draw, the historical
 * randomProgram() from tests/test_properties.cc, so seeds that
 * passed there keep generating the exact same programs here.
 *
 * Every generated program terminates by construction: a bounded
 * outer loop over a straight-line block of randomized operations,
 * closed by PrintInt/Exit/HALT. The op mix is tunable — loads,
 * stores, data-dependent branches, FP arithmetic, mid-loop
 * syscalls, store-to-load aliasing, byte-granularity accesses, and
 * page-boundary-straddling access pairs — so the fuzzer can dial in
 * pressure the fixed test seeds never reach.
 */

#ifndef DSCALAR_CHECK_PROGRAM_GEN_HH
#define DSCALAR_CHECK_PROGRAM_GEN_HH

#include <cstdint>

#include "prog/program.hh"

namespace dscalar {
namespace check {

/**
 * Relative weights of the per-op choice inside the loop block.
 * Defaults reproduce the historical test_properties mix: the first
 * six ops equally weighted, the extended ops off. Field order is
 * load-bearing — the selection table is built in declaration order,
 * so the default table maps draw n to historical switch case n.
 */
struct OpMix
{
    unsigned loadAccum = 1;      ///< ld + add into the checksum
    unsigned storeData = 1;      ///< sd of the checksum
    unsigned loadXor = 1;        ///< lw + xor into the checksum
    unsigned branchSkip = 1;     ///< data-dependent forward branch
    unsigned cursorMul = 1;      ///< cursor *= random odd constant
    unsigned cursorHash = 1;     ///< cursor xorshift mix
    // Extended ops (weight 0 keeps legacy seed streams untouched).
    unsigned fpMix = 0;          ///< cvtif/fadd/fmul/fslt/cvtfi chain
    unsigned printSyscall = 0;   ///< mid-loop PrintInt of checksum byte
    unsigned aliasStoreLoad = 0; ///< sd then overlapping ld/lw reload
    unsigned byteOps = 0;        ///< sb/lbu at byte granularity
    unsigned pageCross = 0;      ///< access pair straddling a page edge

    unsigned
    total() const
    {
        return loadAccum + storeData + loadXor + branchSkip +
               cursorMul + cursorHash + fpMix + printSyscall +
               aliasStoreLoad + byteOps + pageCross;
    }
};

/** Structural generation ranges; values are drawn uniformly. */
struct GenParams
{
    unsigned minDataPages = 4;  ///< multi-page data area
    unsigned maxDataPages = 15;
    unsigned minIters = 40;     ///< outer-loop trip count
    unsigned maxIters = 160;
    unsigned minBlockOps = 10;  ///< randomized ops per block
    unsigned maxBlockOps = 39;
    OpMix mix;

    /** The fuzzer's default mix: legacy ops plus every extended op,
     *  biased toward memory traffic. */
    static GenParams fuzzDefault();
};

/** The concrete values one generation drew (diagnostics, repros). */
struct GenChoices
{
    unsigned dataPages = 0;
    unsigned iters = 0;
    unsigned blockOps = 0;
};

/** Deterministic generator over a fixed parameter set. */
class ProgramGen
{
  public:
    explicit ProgramGen(GenParams params = {});

    const GenParams &params() const { return params_; }

    /**
     * Generate the program for @p seed. Pure: same (params, seed)
     * in, byte-identical image out. @p choices optionally receives
     * the drawn structural values.
     */
    prog::Program generate(std::uint64_t seed,
                           GenChoices *choices = nullptr) const;

  private:
    GenParams params_;
};

} // namespace check
} // namespace dscalar

#endif // DSCALAR_CHECK_PROGRAM_GEN_HH
