/**
 * @file
 * Exhaustive model checking of the ESP/BSHR/DCUB correspondence
 * protocol.
 *
 * check::ProtocolModel is a small abstract model of the protocol
 * docs/PROTOCOL.md specifies: a few nodes run a shared script of
 * canonical-miss episodes over a few communicated lines, and every
 * nondeterministic choice the concrete machine resolves by timing —
 * whether a node's issue stream fetched an episode (DCUB entry) or
 * committed a pure false hit, the interleaving of issues, commits,
 * and broadcast arrivals, and (optionally) duplicate / drop faults
 * with re-request recovery — becomes an explicit branch. The checker
 * enumerates the full state space breadth-first with a hashed
 * visited set and checks, in every reachable state, the invariants
 * the differential oracle asserts on concrete runs:
 *
 *  - broadcast conservation on a reliable medium (consumed ==
 *    received at every non-owner, consumption = woken waiters +
 *    buffered hits + squashes);
 *  - full drain on a reliable medium (no waiter, buffered line, or
 *    pending squash survives completion);
 *  - no stranded BSHR waiter under faults (residue is benign, a
 *    waiter left behind is not);
 *  - deadlock freedom (every non-final state has a successor).
 *
 * Because commits are in-order and issues per node are in-order with
 * a free fetched/not-fetched choice, the model covers every
 * fetched-pattern × delivery-interleaving the concrete out-of-order
 * cores can produce, per line episode. What is deliberately *not*
 * modeled: timing (delays are subsumed by arbitrary delivery order),
 * replicated pages (they never touch the protocol), hard-BSHR
 * capacity, and values (the architectural oracle supplies them).
 *
 * The same core::ProtocolMutation hook the concrete BSHR honours is
 * mirrored here, so a planted single-line bug is caught twice: as a
 * model counterexample (a minimal event trace, BFS guarantees
 * shortest) and as a concrete dsfuzz failure. checkModel() explores
 * every episode→line script of the configured shape; a
 * counterexample converts to a concrete check::ReproCase via
 * modelTrialConfig() + the ordinary oracle seed search (see
 * tools/dsfuzz.cc --model).
 */

#ifndef DSCALAR_CHECK_MODEL_HH
#define DSCALAR_CHECK_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.hh"
#include "core/protocol_mutation.hh"

namespace dscalar {
namespace check {

/** Shape and bounds of one model-checking run. */
struct ModelConfig
{
    unsigned nodes = 2;    ///< 2..4 nodes (owner of line l is l % nodes)
    unsigned lines = 2;    ///< 1..4 distinct communicated lines
    unsigned episodes = 3; ///< 1..6 canonical-miss episodes per script

    /** Enable duplicate/drop fault events plus modeled re-request
     *  recovery; invariants relax exactly as the oracle's do. */
    bool faults = false;
    unsigned maxDups = 1;  ///< total duplicate-delivery budget
    unsigned maxDrops = 1; ///< total dropped-delivery budget

    /** BFS depth bound; 0 = unbounded (exhaustive enumeration). */
    unsigned depthBound = 0;
    /** Visited-state safety cap; enumeration stops (non-exhaustive)
     *  when reached. */
    std::uint64_t maxStates = 4'000'000;

    /** Planted protocol bug mirrored by the concrete BSHR. */
    core::ProtocolMutation mutation = core::ProtocolMutation::None;
};

/** One-line summary of @p config (logs, test failure messages). */
std::string describeModelConfig(const ModelConfig &config);

/** Outcome of one enumeration (one script, or all scripts). */
struct ModelResult
{
    bool ok = true;
    /** True when the state space was fully enumerated — no depth
     *  bound or state cap cut any branch. */
    bool exhaustive = true;
    std::uint64_t states = 0;      ///< distinct states visited
    std::uint64_t transitions = 0; ///< edges explored
    unsigned maxDepth = 0;         ///< deepest state reached
    unsigned scriptsChecked = 0;   ///< scripts enumerated

    /** Empty when ok; else the violated invariant, e.g.\ "broadcast
     *  conservation violation on node 1: consumed 1 of 2 received". */
    std::string violation;
    /** Episode→line assignment of the failing script. */
    std::vector<unsigned> script;
    /** Counterexample: event names from the initial state to the
     *  violating state, shortest possible (BFS order). */
    std::vector<std::string> trace;
};

/**
 * Enumerate one script's state space. @p script maps each episode to
 * a line index (< config.lines). Stops at the first violation (its
 * trace is minimal) or when the space is exhausted / bounded out.
 */
ModelResult checkScript(const ModelConfig &config,
                        const std::vector<unsigned> &script);

/**
 * Enumerate every script of config.episodes episodes over
 * config.lines lines (lines^episodes state spaces). Aggregates
 * state/transition counts; returns at the first failing script.
 */
ModelResult checkModel(const ModelConfig &config);

/**
 * The concrete-simulator configuration matching @p config's protocol
 * shape: a DataScalar run with the same node count, the same planted
 * mutation, and fault injection + recovery when the model ran its
 * fault mode. Used to convert a model counterexample into a
 * check::ReproCase by ordinary oracle seed search (dsfuzz --model).
 */
TrialConfig modelTrialConfig(const ModelConfig &config);

/** Multi-line rendering of a counterexample: config, script, and
 *  numbered trace (empty string when @p result is ok). */
std::string formatCounterexample(const ModelConfig &config,
                                 const ModelResult &result);

} // namespace check
} // namespace dscalar

#endif // DSCALAR_CHECK_MODEL_HH
