/**
 * @file
 * Protocol-event coverage map for coverage-guided fuzzing.
 *
 * Every timing run leaves a per-node protocol-event history in the
 * oracle's obs::FlightRecorder. CoverageMap fingerprints those
 * histories as the set of event-kind n-grams (all window sizes
 * 1..maxNgram, FNV-1a hashed) and accumulates them globally across a
 * campaign. The gain a run reports — how many of its n-grams were
 * never seen before — is the guidance signal dsfuzz --coverage uses:
 * trials that exercised a new protocol-event sequence keep their
 * generation parameters in the corpus and get mutated further, trials
 * that only retread known sequences are discarded.
 *
 * Node ids are deliberately left out of the fingerprint: the protocol
 * is symmetric in the nodes, so "node 3 saw Broadcast→BshrWake" and
 * "node 0 saw Broadcast→BshrWake" are the same behaviour, and folding
 * them keeps the map measuring protocol-sequence diversity rather
 * than node-count diversity.
 */

#ifndef DSCALAR_CHECK_COVERAGE_HH
#define DSCALAR_CHECK_COVERAGE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace dscalar {

namespace obs {
class FlightRecorder;
}

namespace check {

class CoverageMap
{
  public:
    /** @p maxNgram = largest event-kind window hashed (1..8). */
    explicit CoverageMap(unsigned maxNgram = 3);

    unsigned maxNgram() const { return maxNgram_; }

    /**
     * Fingerprint one node's event-kind history: the FNV-1a hashes
     * of every 1..maxNgram window. Exposed for tests and for callers
     * that export histories without a FlightRecorder.
     */
    void fingerprint(const std::vector<std::uint8_t> &kinds,
                     std::unordered_set<std::uint64_t> &out) const;

    /**
     * Fold one run's histories into the map. @return the gain: how
     * many n-grams this run was first to reach.
     */
    std::uint64_t
    record(const std::vector<std::vector<std::uint8_t>> &histories);

    /** Convenience: record() on every node ring of @p recorder. */
    std::uint64_t record(const obs::FlightRecorder &recorder);

    /** Distinct n-grams seen so far across the whole campaign. */
    std::uint64_t uniqueNgrams() const { return seen_.size(); }
    /** Runs folded in so far. */
    std::uint64_t runsRecorded() const { return runs_; }

  private:
    unsigned maxNgram_;
    std::uint64_t runs_ = 0;
    std::unordered_set<std::uint64_t> seen_;
};

} // namespace check
} // namespace dscalar

#endif // DSCALAR_CHECK_COVERAGE_HH
