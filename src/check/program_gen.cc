#include "check/program_gen.hh"

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace check {

namespace {

/** Op identities, in OpMix declaration order (== the historical
 *  switch-case order for the first six). */
enum class Op : std::uint8_t {
    LoadAccum,
    StoreData,
    LoadXor,
    BranchSkip,
    CursorMul,
    CursorHash,
    FpMix,
    PrintSyscall,
    AliasStoreLoad,
    ByteOps,
    PageCross
};

std::vector<Op>
buildTable(const OpMix &mix)
{
    std::vector<Op> table;
    table.reserve(mix.total());
    auto put = [&table](Op op, unsigned weight) {
        for (unsigned i = 0; i < weight; ++i)
            table.push_back(op);
    };
    put(Op::LoadAccum, mix.loadAccum);
    put(Op::StoreData, mix.storeData);
    put(Op::LoadXor, mix.loadXor);
    put(Op::BranchSkip, mix.branchSkip);
    put(Op::CursorMul, mix.cursorMul);
    put(Op::CursorHash, mix.cursorHash);
    put(Op::FpMix, mix.fpMix);
    put(Op::PrintSyscall, mix.printSyscall);
    put(Op::AliasStoreLoad, mix.aliasStoreLoad);
    put(Op::ByteOps, mix.byteOps);
    put(Op::PageCross, mix.pageCross);
    return table;
}

/** Largest power of two <= @p v (v >= 1). */
unsigned
floorPow2(unsigned v)
{
    unsigned p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

GenParams
GenParams::fuzzDefault()
{
    GenParams p;
    // Memory ops weighted up; one print op per ~17 draws keeps the
    // output stream growing without dominating runtime.
    p.mix.loadAccum = 2;
    p.mix.storeData = 2;
    p.mix.loadXor = 2;
    p.mix.fpMix = 1;
    p.mix.printSyscall = 1;
    p.mix.aliasStoreLoad = 2;
    p.mix.byteOps = 1;
    p.mix.pageCross = 2;
    return p;
}

ProgramGen::ProgramGen(GenParams params) : params_(params)
{
    fatal_if(params_.mix.total() == 0, "empty op mix");
    fatal_if(params_.minDataPages < 1 ||
                 params_.minDataPages > params_.maxDataPages,
             "bad data-page range [%u, %u]", params_.minDataPages,
             params_.maxDataPages);
    fatal_if(params_.maxDataPages > 512,
             "data-page ceiling %u exceeds 512 (4 MB image)",
             params_.maxDataPages);
    fatal_if(params_.minIters < 1 ||
                 params_.minIters > params_.maxIters,
             "bad iteration range [%u, %u]", params_.minIters,
             params_.maxIters);
    fatal_if(params_.minBlockOps < 1 ||
                 params_.minBlockOps > params_.maxBlockOps,
             "bad block-op range [%u, %u]", params_.minBlockOps,
             params_.maxBlockOps);
}

prog::Program
ProgramGen::generate(std::uint64_t seed, GenChoices *choices) const
{
    using namespace prog::reg;

    Random rng(seed);
    prog::Program p;
    p.name = "random_" + std::to_string(seed);

    const unsigned data_pages = static_cast<unsigned>(
        rng.range(params_.minDataPages, params_.maxDataPages));
    const std::uint32_t data_bytes = data_pages * prog::pageSize;
    Addr g = p.allocGlobal(data_bytes);
    for (Addr off = 0; off < data_bytes; off += 8)
        p.poke64(g + off, rng.next());

    prog::Assembler a(p);
    a.la(s1, g);
    a.li(s2, 0);                  // checksum
    a.li(s3, static_cast<std::int32_t>(rng.range(17, 8191))); // cursor
    const unsigned iters = static_cast<unsigned>(
        rng.range(params_.minIters, params_.maxIters));
    a.li(s0, static_cast<std::int32_t>(iters));

    a.label("outer");
    const unsigned block = static_cast<unsigned>(
        rng.range(params_.minBlockOps, params_.maxBlockOps));
    const std::vector<Op> table = buildTable(params_.mix);
    for (unsigned i = 0; i < block; ++i) {
        // Derive a legal 8-aligned data offset from the cursor.
        a.li(t6, static_cast<std::int32_t>((data_bytes / 8) - 1));
        a.and_(t0, s3, t6);
        a.slli(t0, t0, 3);
        a.add(t0, s1, t0);
        Op op = table[rng.below(table.size())];
        // PageCross needs two pages to straddle.
        if (op == Op::PageCross && data_pages < 2)
            op = Op::LoadAccum;
        switch (op) {
          case Op::LoadAccum:
            a.ld(t1, t0, 0);
            a.add(s2, s2, t1);
            break;
          case Op::StoreData:
            a.sd(s2, t0, 0);
            break;
          case Op::LoadXor:
            a.lw(t1, t0, 0);
            a.xor_(s2, s2, t1);
            break;
          case Op::BranchSkip: {
            // Data-dependent short forward branch.
            std::string skip = a.genLabel("skip");
            a.andi(t1, s2, 1);
            a.beq(t1, zero, skip);
            a.addi(s2, s2, 3);
            a.label(skip);
            break;
          }
          case Op::CursorMul:
            a.li(t1, static_cast<std::int32_t>(rng.range(3, 9973)));
            a.mul(s3, s3, t1);
            a.addi(s3, s3, 7);
            break;
          case Op::CursorHash:
            a.add(s3, s3, s2);
            a.srli(t1, s3, 3);
            a.xor_(s3, s3, t1);
            break;
          case Op::FpMix:
            // Int -> FP -> int chain; CVTFI defines out-of-range
            // conversions as 0, so the checksum stays deterministic.
            a.ld(t1, t0, 0);
            a.cvtif(t1, t1);
            a.cvtif(t2, s2);
            a.fadd(t1, t1, t2);
            a.fmul(t1, t1, t1);
            a.fslt(t2, t2, t1);
            a.cvtfi(t1, t1);
            a.xor_(s2, s2, t1);
            a.add(s2, s2, t2);
            break;
          case Op::PrintSyscall:
            a.andi(a0, s2, 0xff);
            a.syscall(isa::Syscall::PrintInt);
            break;
          case Op::AliasStoreLoad:
            // Same-address store/load pair plus an overlapping
            // narrower reload: forwarding and same-line pressure.
            a.sd(s2, t0, 0);
            a.ld(t1, t0, 0);
            a.add(s2, s2, t1);
            a.lw(t2, t0, 4);
            a.xor_(s2, s2, t2);
            break;
          case Op::ByteOps:
            a.sb(s2, t0, 3);
            a.lbu(t1, t0, 3);
            a.add(s2, s2, t1);
            break;
          case Op::PageCross: {
            // Access pair straddling the boundary below page k,
            // k in [1, data_pages-1] derived from the cursor.
            const unsigned pow2 = floorPow2(data_pages - 1);
            a.li(t6, static_cast<std::int32_t>(pow2 - 1));
            a.and_(t1, s3, t6);
            a.addi(t1, t1, 1);
            a.slli(t1, t1, 13); // * pageSize (8 KB)
            a.add(t1, s1, t1);
            a.ld(t2, t1, -8);   // last dword of page k-1
            a.ld(t3, t1, 0);    // first dword of page k
            a.add(s2, s2, t2);
            a.xor_(s2, s2, t3);
            break;
          }
        }
    }
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "outer");

    a.li(t0, 0xffff);
    a.and_(a0, s2, t0);
    a.syscall(isa::Syscall::PrintInt);
    a.syscall(isa::Syscall::Exit);
    a.halt();
    a.finalize();

    if (choices) {
        choices->dataPages = data_pages;
        choices->iters = iters;
        choices->blockOps = block;
    }
    return p;
}

} // namespace check
} // namespace dscalar
