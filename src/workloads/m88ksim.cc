/**
 * @file
 * m88ksim_s -- substitute for SPEC95 124.m88ksim.
 *
 * A CPU emulator emulating a CPU: guest "instructions" are fetched
 * from a guest text array, decoded through an in-memory dispatch
 * table of handler addresses (indirect jumps), and executed against
 * a guest register file and guest data memory. Table-driven integer
 * code with modest working set and frequent indirect control flow.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildM88ksim(unsigned scale)
{
    prog::Program p;
    p.name = "m88ksim_s";
    Assembler a(p);

    constexpr std::uint32_t guest_words = 16 * 1024; // 64 KB text
    constexpr std::uint32_t guest_data_words = 32 * 1024; // 128 KB
    constexpr std::uint32_t nhandlers = 8;
    const std::uint32_t guest_insts = 40'000 * scale;

    Addr guest_text = allocArray(p, guest_words * 4);
    Addr guest_data = allocArray(p, guest_data_words * 4);
    Addr guest_regs = p.allocGlobal(32 * 8);
    Addr dispatch = p.allocGlobal(nhandlers * 8);

    // Deterministic guest program: op in low 3 bits, register and
    // immediate fields above.
    std::uint32_t lcg = 555u;
    for (std::uint32_t i = 0; i < guest_words; ++i) {
        lcg = lcg * 1664525u + 1013904223u;
        p.poke32(guest_text + 4ull * i, lcg);
    }
    for (std::uint32_t i = 0; i < guest_data_words; i += 3)
        p.poke32(guest_data + 4ull * i, i * 2654435761u);

    // Register plan:
    //   s0 = remaining guest insts   s1 = guest pc (word index)
    //   s2 = &guest_text  s3 = &guest_regs  s4 = &guest_data
    //   s5 = &dispatch    s6 = accumulator
    //   t0 = current guest word, t1..t7 scratch
    a.la(s2, guest_text);
    a.la(s3, guest_regs);
    a.la(s4, guest_data);
    a.la(s5, dispatch);
    a.li(s6, 0);
    a.li(s1, 0);
    a.li(s0, static_cast<std::int32_t>(guest_insts));

    a.label("fetch");
    a.li(t1, guest_words - 1);
    a.and_(s1, s1, t1);       // wrap guest pc
    a.slli(t1, s1, 2);
    a.add(t1, s2, t1);
    a.lw(t0, t1, 0);          // guest instruction word
    a.addi(s1, s1, 1);
    a.andi(t2, t0, nhandlers - 1);
    a.slli(t2, t2, 3);
    a.add(t2, s5, t2);
    a.ld(t3, t2, 0);          // handler address
    a.jr(t3);

    // Handler helpers: guest reg fields rA = bits [7:3], rB = [12:8].
    auto guest_reg_a = [&] {
        a.srli(t4, t0, 3);
        a.andi(t4, t4, 31);
        a.slli(t4, t4, 3);
        a.add(t4, s3, t4); // &regs[rA]
    };
    auto guest_reg_b = [&] {
        a.srli(t5, t0, 8);
        a.andi(t5, t5, 31);
        a.slli(t5, t5, 3);
        a.add(t5, s3, t5); // &regs[rB]
    };

    // h0: add -- regs[rA] += regs[rB]
    a.label("h0");
    guest_reg_a();
    guest_reg_b();
    a.ld(t6, t4, 0);
    a.ld(t7, t5, 0);
    a.add(t6, t6, t7);
    a.sd(t6, t4, 0);
    a.j("next");

    // h1: addi -- regs[rA] += imm (bits [28:13])
    a.label("h1");
    guest_reg_a();
    a.srli(t6, t0, 13);
    a.ld(t7, t4, 0);
    a.add(t7, t7, t6);
    a.sd(t7, t4, 0);
    a.j("next");

    // h2: load -- regs[rA] = guest_data[imm & mask]
    a.label("h2");
    guest_reg_a();
    a.srli(t6, t0, 9);
    a.li(t7, guest_data_words - 1);
    a.and_(t6, t6, t7);
    a.slli(t6, t6, 2);
    a.add(t6, s4, t6);
    a.lw(t7, t6, 0);
    a.sd(t7, t4, 0);
    a.j("next");

    // h3: store -- guest_data[imm & mask] = regs[rA]
    a.label("h3");
    guest_reg_a();
    a.ld(t7, t4, 0);
    a.srli(t6, t0, 9);
    a.li(t5, guest_data_words - 1);
    a.and_(t6, t6, t5);
    a.slli(t6, t6, 2);
    a.add(t6, s4, t6);
    a.sw(t7, t6, 0);
    a.j("next");

    // h4: branch -- if regs[rA] odd, hop the guest pc forward
    a.label("h4");
    guest_reg_a();
    a.ld(t6, t4, 0);
    a.andi(t6, t6, 1);
    a.beq(t6, zero, "next");
    a.srli(t7, t0, 11);
    a.andi(t7, t7, 1023);
    a.add(s1, s1, t7);
    a.j("next");

    // h5: logic -- regs[rA] ^= regs[rB] rotated
    a.label("h5");
    guest_reg_a();
    guest_reg_b();
    a.ld(t6, t4, 0);
    a.ld(t7, t5, 0);
    a.slli(t7, t7, 5);
    a.xor_(t6, t6, t7);
    a.sd(t6, t4, 0);
    a.j("next");

    // h6: mul accumulate into the emulator's own accumulator
    a.label("h6");
    guest_reg_a();
    a.ld(t6, t4, 0);
    a.li(t7, 31);
    a.mul(t6, t6, t7);
    a.add(s6, s6, t6);
    a.j("next");

    // h7: nop-ish bookkeeping
    a.label("h7");
    a.addi(s6, s6, 1);
    a.j("next");

    a.label("next");
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "fetch");

    a.li(t0, 0xffff);
    a.and_(a0, s6, t0);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();

    // Fill the dispatch table now that handler labels are bound.
    const char *handler_names[nhandlers] = {"h0", "h1", "h2", "h3",
                                            "h4", "h5", "h6", "h7"};
    for (std::uint32_t h = 0; h < nhandlers; ++h)
        p.poke64(dispatch + 8ull * h, a.labelAddr(handler_names[h]));

    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
