/**
 * @file
 * compress_s -- substitute for SPEC95 129.compress.
 *
 * LZW-style coder: a software LCG produces the "input stream"; each
 * symbol is hashed against a prefix code and looked up in a hash
 * table. Misses insert (two stores); every emitted code is written
 * to an output ring. The defining property the paper leans on is
 * that compress "issues almost as many stores as loads", which makes
 * ESP's elimination of off-chip write traffic dominant.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildCompress(unsigned scale)
{
    prog::Program p;
    p.name = "compress_s";
    Assembler a(p);

    // Sized so table probes miss moderately (~1 per few symbols)
    // while the sequential buffer stores miss constantly: compress's
    // off-chip traffic is then dominated by write traffic, which ESP
    // eliminates entirely (the paper's explanation for compress's
    // standout result).
    constexpr std::uint32_t table_entries = 4 * 1024;
    constexpr std::uint32_t out_words = 16 * 1024;     // 64 KB ring
    const std::uint32_t symbols = 60'000 * scale;

    Addr keys = allocArray(p, table_entries * 4);   // 128 KB
    Addr codes = allocArray(p, table_entries * 4);  // 128 KB
    Addr out = allocArray(p, out_words * 4);        // 64 KB
    Addr inbuf = allocArray(p, out_words * 4);      // 64 KB input ring
    // Keys start empty (0 = free slot; key values are made nonzero).

    // Register plan:
    //   s0 = symbol counter     s1 = LCG state
    //   s2 = prefix code        s3 = next free code
    //   s4 = &keys  s5 = &codes  s6 = &out  s7 = out index
    //   t0..t7 scratch
    a.la(s4, keys);
    a.la(s5, codes);
    a.la(s6, out);
    a.li(s7, 0);
    a.li(s0, static_cast<std::int32_t>(symbols));
    a.li(s1, 12345);
    a.li(s2, 1);
    a.li(s3, 2);

    a.label("sym_loop");
    // ch = LCG step, 8-bit symbol.
    a.li(t0, 25173);
    a.mul(s1, s1, t0);
    a.li(t0, 13849);
    a.add(s1, s1, t0);
    a.li(t0, 0xffff);
    a.and_(s1, s1, t0);
    a.andi(t1, s1, 0xff); // t1 = ch

    // Stage the symbol through the input ring (compress copies its
    // input through a buffer; keeps stores ~= loads, the property
    // the paper highlights for this benchmark).
    a.li(t2, out_words - 1);
    a.and_(t2, s0, t2);
    a.slli(t2, t2, 2);
    a.la(t3, inbuf);
    a.add(t2, t3, t2);
    a.sw(t1, t2, 0);

    // key = mix(prefix, ch) | 1  (nonzero); h = key & (entries-1).
    // The mixing rounds model compress's per-byte hashing work.
    a.slli(t2, s2, 5);
    a.xor_(t2, t2, t1);
    a.li(t3, 2654435);
    a.mul(t2, t2, t3);
    a.srli(t3, t2, 13);
    a.xor_(t2, t2, t3);
    a.li(t3, 40503);
    a.mul(t2, t2, t3);
    a.srli(t3, t2, 9);
    a.xor_(t2, t2, t3);
    a.li(t3, 0x0fffffff);
    a.and_(t2, t2, t3);
    a.ori(t2, t2, 1);         // t2 = key
    a.li(t3, table_entries - 1);
    a.and_(t3, t2, t3);       // t3 = h
    a.slli(t3, t3, 2);        // byte offset

    a.add(t4, s4, t3);
    a.lw(t5, t4, 0);          // probe keys[h]
    a.beq(t5, t2, "hit");

    // Miss: install key and a fresh code.
    a.sw(t2, t4, 0);          // keys[h] = key
    a.add(t6, s5, t3);
    a.sw(s3, t6, 0);          // codes[h] = next code
    a.addi(s3, s3, 1);
    a.add(s2, t1, zero);      // prefix = ch
    a.j("emit");

    a.label("hit");
    a.add(t6, s5, t3);
    a.lw(s2, t6, 0);          // prefix = codes[h]

    // Emit the current code to the output ring every symbol (the
    // compressed output stream is written continuously).
    a.label("emit");
    a.andi(t7, s7, out_words - 1);
    a.slli(t7, t7, 2);
    a.add(t7, s6, t7);
    a.sw(s2, t7, 0);
    a.addi(s7, s7, 1);
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "sym_loop");

    // Print the number of emitted codes and the final prefix.
    a.add(a0, s7, zero);
    a.syscall(Syscall::PrintInt);
    a.add(a0, s2, zero);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
