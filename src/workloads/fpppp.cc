/**
 * @file
 * fpppp_s -- substitute for SPEC95 145.fpppp.
 *
 * Gaussian-integral-style code: a handful of enormous straight-line
 * basic blocks (thousands of FP operations each, generated
 * deterministically) over a small scratch array, looped. fpppp's
 * signature in the paper is a very large text footprint with long
 * instruction datathreads and a comparatively small data set.
 */

#include "workloads/workloads.hh"

#include "common/random.hh"
#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildFpppp(unsigned scale)
{
    prog::Program p;
    p.name = "fpppp_s";
    Assembler a(p);

    constexpr std::uint32_t scratch_elems = 2 * 1024; // 16 KB
    constexpr unsigned nblocks = 4;
    constexpr unsigned block_ops = 2'000;
    const std::uint32_t iters = 6 * scale;

    Addr scratch = p.allocGlobal(scratch_elems * 8);
    for (std::uint32_t i = 0; i < scratch_elems; ++i)
        p.pokeDouble(scratch + 8ull * i, 0.5 + (i % 29) * 0.03125);

    // s1 = &scratch, s0 = iteration counter; FP values rotate
    // through t0..t7 and s2..s7.
    a.la(s1, scratch);
    // Prime the register pool from memory.
    for (RegIndex r = t0; r <= t7; ++r)
        a.ld(r, s1, 8 * (r - t0));
    for (RegIndex r = s2; r <= s7; ++r)
        a.ld(r, s1, 8 * (8 + r - s2));
    a.li(s0, static_cast<std::int32_t>(iters));

    a.label("outer");
    Random rng(0xf9f9f9);
    const RegIndex pool[] = {t0, t1, t2, t3, t4,  t5, t6,
                             t7, s2, s3, s4, s5, s6, s7};
    constexpr unsigned pool_size = sizeof(pool) / sizeof(pool[0]);

    for (unsigned b = 0; b < nblocks; ++b) {
        for (unsigned op = 0; op < block_ops; ++op) {
            auto rd = pool[rng.below(pool_size)];
            auto rs = pool[rng.below(pool_size)];
            auto rt = pool[rng.below(pool_size)];
            switch (rng.below(16)) {
              case 0:
              case 1:
              case 2:
              case 3:
              case 4:
              case 5:
                a.fadd(rd, rs, rt);
                break;
              case 6:
              case 7:
              case 8:
              case 9:
              case 10:
                a.fmul(rd, rs, rt);
                break;
              case 11:
              case 12:
              case 13:
                a.fsub(rd, rs, rt);
                break;
              case 14: {
                auto off = static_cast<std::int32_t>(
                    8 * rng.below(scratch_elems));
                a.ld(rd, s1, off);
                break;
              }
              default: {
                auto off = static_cast<std::int32_t>(
                    8 * rng.below(scratch_elems));
                a.sd(rs, s1, off);
                break;
              }
            }
        }
    }

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "outer");

    a.cvtfi(a0, t0);
    a.li(t1, 0xffff);
    a.and_(a0, a0, t1);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
