/**
 * @file
 * Partitionable workload for the hybrid SPMD/DataScalar study
 * (paper Section 5.2): a 2-D Jacobi-style relaxation whose rows
 * split cleanly across nodes.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildStencilStrip(unsigned node, unsigned num_nodes, unsigned scale)
{
    prog::Program p;
    p.name = "stencil_strip_" + std::to_string(node) + "of" +
             std::to_string(num_nodes);

    constexpr std::uint32_t n = 128;         // full grid dimension
    const std::uint32_t rows = n / num_nodes;
    const std::uint32_t elems = rows * n;    // this node's strip
    const std::uint32_t sweeps = 2 * scale;

    Addr grid = allocArray(p, elems * 8);
    Addr out = allocArray(p, elems * 8);
    Addr consts = p.allocGlobal(8);
    p.pokeDouble(consts, 0.25);

    for (std::uint32_t i = 0; i < elems; i += 2) {
        p.pokeDouble(grid + 8ull * i,
                     1.0 + ((i + node * 37) % 21) * 0.0625);
    }

    constexpr std::int32_t row_bytes = 8 * n; // 1 KB

    Assembler a(p);
    a.la(s1, grid);
    a.la(s2, out);
    a.la(t0, consts);
    a.ld(s3, t0, 0);
    a.li(s0, static_cast<std::int32_t>(sweeps));

    a.label("sweep");
    a.li(s7, static_cast<std::int32_t>(n + 1)); // (1,1) of the strip
    a.label("point");
    a.slli(t0, s7, 3);
    a.add(t1, s1, t0);
    a.ld(t2, t1, 8);
    a.ld(t3, t1, -8);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, row_bytes);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, -row_bytes);
    a.fadd(t2, t2, t3);
    a.fmul(t2, t2, s3);
    a.add(t1, s2, t0);
    a.sd(t2, t1, 0);
    a.addi(s7, s7, 1);
    a.li(t0, static_cast<std::int32_t>(elems - n - 1));
    a.blt(s7, t0, "point");
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "sweep");

    a.li(t0, static_cast<std::int32_t>(elems / 2));
    a.slli(t0, t0, 3);
    a.add(t0, s2, t0);
    a.ld(t1, t0, 0);
    a.cvtfi(a0, t1);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
