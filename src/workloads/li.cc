/**
 * @file
 * li_s -- substitute for SPEC95 130.li.
 *
 * Lisp-interpreter heap behaviour: cons cells (car, cdr) scattered
 * through a small heap form several lists; repeated passes chase
 * cdr chains summing cars, destructively increment cars, and splice
 * cells between lists. The data set is deliberately small -- the
 * paper notes most of li's data ends up replicated, giving it very
 * long datathreads.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildLi(unsigned scale)
{
    prog::Program p;
    p.name = "li_s";
    Assembler a(p);

    constexpr std::uint32_t ncells = 3 * 1024; // x 8 B = 24 KB heap
    constexpr std::uint32_t nlists = 4;
    const std::uint32_t passes = 30 * scale;

    // Cell layout (8 B): +0 car (int32), +4 cdr (ptr32).
    Addr cells = p.allocHeap(ncells * 8);
    Addr heads = p.allocGlobal(nlists * 4);

    // Thread the cells into lists in shuffled order so cdr chains
    // hop around the heap (true pointer chasing).
    std::vector<std::uint32_t> order(ncells);
    for (std::uint32_t i = 0; i < ncells; ++i)
        order[i] = i;
    std::uint32_t lcg = 424242u;
    for (std::uint32_t i = ncells - 1; i > 0; --i) {
        lcg = lcg * 1664525u + 1013904223u;
        std::swap(order[i], order[lcg % (i + 1)]);
    }
    for (std::uint32_t l = 0; l < nlists; ++l) {
        std::uint32_t prev = 0; // null
        for (std::uint32_t k = l; k < ncells; k += nlists) {
            std::uint32_t cell = order[k];
            Addr base = cells + 8ull * cell;
            p.poke32(base + 0, cell + 1);
            p.poke32(base + 4, prev);
            prev = static_cast<std::uint32_t>(base);
        }
        p.poke32(heads + 4ull * l, prev);
    }

    // s0 pass ctr, s1 &heads, s2 list idx, s3 cursor, s4 sum
    a.la(s1, heads);
    a.li(s4, 0);
    a.li(s0, static_cast<std::int32_t>(passes));

    a.label("pass");
    a.li(s2, 0);
    a.label("list_loop");
    a.slli(t0, s2, 2);
    a.add(t0, s1, t0);
    a.lw(s3, t0, 0);          // cursor = head

    a.label("chase");
    a.beq(s3, zero, "list_done");
    a.lw(t1, s3, 0);          // car
    a.add(s4, s4, t1);
    // destructive update on every 8th car value
    a.andi(t2, t1, 7);
    a.bne(t2, zero, "no_update");
    a.addi(t1, t1, 1);
    a.sw(t1, s3, 0);
    a.label("no_update");
    a.lw(s3, s3, 4);          // cursor = cdr
    a.j("chase");

    a.label("list_done");
    a.addi(s2, s2, 1);
    a.li(t0, nlists);
    a.blt(s2, t0, "list_loop");

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "pass");

    a.li(t0, 0xffff);
    a.and_(a0, s4, t0);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
