/**
 * @file
 * mgrid_s -- substitute for SPEC95 107.mgrid.
 *
 * Multigrid V-cycle skeleton over a 32x32x32 double grid with a
 * 16^3 coarse grid: smoothing sweeps touch unit, row (32-element)
 * and plane (1024-element) strides -- the power-of-two striding that
 * gives mgrid its page-crossing behaviour -- plus restriction and
 * prolongation passes between levels.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildMgrid(unsigned scale)
{
    prog::Program p;
    p.name = "mgrid_s";
    Assembler a(p);

    constexpr std::uint32_t n = 32;             // fine grid dimension
    constexpr std::uint32_t fine_elems = n * n * n;      // 256 KB
    constexpr std::uint32_t cn = 16;
    constexpr std::uint32_t coarse_elems = cn * cn * cn; // 32 KB
    const std::uint32_t vcycles = scale;

    Addr fine = allocArray(p, fine_elems * 8);
    Addr resid = allocArray(p, fine_elems * 8);
    Addr coarse = allocArray(p, coarse_elems * 8);
    Addr consts = p.allocGlobal(4 * 8);
    p.pokeDouble(consts, 0.5);
    p.pokeDouble(consts + 8, 0.25);
    p.pokeDouble(consts + 16, -4.0);

    // Deterministic nonzero initial field.
    for (std::uint32_t i = 0; i < fine_elems; i += 7)
        p.pokeDouble(fine + 8ull * i, 1.0 + (i % 13) * 0.125);

    constexpr std::int32_t row = 8 * n;          // 256 B
    constexpr std::int32_t plane = 8 * n * n;    // 8192 B (one page)

    // s0 = v-cycle counter, s1 = &fine, s2 = &resid, s3 = &coarse,
    // t registers scratch; f-values in r16..r23? reuse t regs.
    a.la(s1, fine);
    a.la(s2, resid);
    a.la(s3, coarse);
    a.la(s6, consts);
    a.ld(s7, s6, 0);          // 0.5
    a.ld(s5, s6, 8);          // 0.25
    a.li(s0, static_cast<std::int32_t>(vcycles));

    a.label("vcycle");

    // --- Smooth: 7-point stencil over the interior of the fine
    //     grid (strides 8, 256, 8192). ---
    a.li(t0, static_cast<std::int32_t>(n * n + n + 1)); // (1,1,1)
    a.label("smooth_loop");
    a.slli(t1, t0, 3);
    a.add(t1, s1, t1);
    a.ld(t2, t1, 8);
    a.ld(t3, t1, -8);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, row);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, -row);
    a.fadd(t2, t2, t3);
    // Up-plane neighbours only: the +/-plane pair would sit exactly
    // one cache-size apart (16 KB) and thrash a direct-mapped L1;
    // real mgrid pads its arrays to avoid the same pathology.
    a.ld(t3, t1, plane);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, plane + row);
    a.fadd(t2, t2, t3);
    a.fmul(t2, t2, s5);       // * 0.25
    a.ld(t4, t1, 0);          // centre
    a.fmul(t4, t4, s7);
    a.fadd(t2, t2, t4);
    a.fmul(t4, t2, s5);       // extra relaxation work per point
    a.fadd(t2, t2, t4);
    a.slli(t3, t0, 3);
    a.add(t3, s2, t3);
    a.sd(t2, t3, 0);          // resid[i] = smoothed
    a.addi(t0, t0, 1);        // unit stride through the volume
    a.li(t1, static_cast<std::int32_t>(fine_elems - n * n - n - 1));
    a.blt(t0, t1, "smooth_loop");

    // --- Restrict: coarse[c] = 0.5 * resid[2c] (plane-strided). ---
    a.li(t0, 0);
    a.label("restrict_loop");
    // fine index = 2*(ci) mapped through doubled coordinates: use
    // index scaling by 2 within each dimension collapsed to a flat
    // doubling, which preserves the strided access pattern.
    a.slli(t1, t0, 1);
    a.li(t2, static_cast<std::int32_t>(fine_elems - 1));
    a.and_(t1, t1, t2);
    a.slli(t1, t1, 3);
    a.add(t1, s2, t1);
    a.ld(t3, t1, 0);
    a.fmul(t3, t3, s7);
    a.slli(t4, t0, 3);
    a.add(t4, s3, t4);
    a.sd(t3, t4, 0);
    a.addi(t0, t0, 1);
    a.li(t1, static_cast<std::int32_t>(coarse_elems));
    a.blt(t0, t1, "restrict_loop");

    // --- Prolongate + correct: fine[2c] += 0.5 * coarse[c]. ---
    a.li(t0, 0);
    a.label("prolong_loop");
    a.slli(t4, t0, 3);
    a.add(t4, s3, t4);
    a.ld(t3, t4, 0);
    a.fmul(t3, t3, s7);
    a.slli(t1, t0, 1);
    a.li(t2, static_cast<std::int32_t>(fine_elems - 1));
    a.and_(t1, t1, t2);
    a.slli(t1, t1, 3);
    a.add(t1, s1, t1);
    a.ld(t2, t1, 0);
    a.fadd(t2, t2, t3);
    a.sd(t2, t1, 0);
    a.addi(t0, t0, 1);
    a.li(t1, static_cast<std::int32_t>(coarse_elems));
    a.blt(t0, t1, "prolong_loop");

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "vcycle");

    // Checksum: integerized centre value.
    a.li(t0, static_cast<std::int32_t>(fine_elems / 2));
    a.slli(t0, t0, 3);
    a.add(t0, s1, t0);
    a.ld(t1, t0, 0);
    a.cvtfi(a0, t1);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
