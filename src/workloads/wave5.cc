/**
 * @file
 * wave5_s -- substitute for SPEC95 146.wave5.
 *
 * Particle-in-cell plasma step: a particle array (positions and
 * velocities) is swept sequentially; each particle gathers a field
 * value from a grid cell derived from its position, scatters charge
 * back to that cell, and integrates its position. Sequential
 * particle traffic plus data-dependent grid scatter.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildWave5(unsigned scale)
{
    prog::Program p;
    p.name = "wave5_s";
    Assembler a(p);

    constexpr std::uint32_t nparticles = 16 * 1024;
    constexpr std::uint32_t ncells = 8 * 1024;
    const std::uint32_t steps = 2 * scale;

    Addr pos = allocArray(p, nparticles * 8);   // 128 KB
    Addr vel = allocArray(p, nparticles * 8);   // 128 KB
    Addr field = allocArray(p, ncells * 8);     // 64 KB
    Addr charge = allocArray(p, ncells * 8);    // 64 KB
    Addr consts = p.allocGlobal(2 * 8);
    p.pokeDouble(consts, 0.001);                // dt
    p.pokeDouble(consts + 8, 0.125);            // deposit weight

    std::uint32_t lcg = 24680u;
    for (std::uint32_t i = 0; i < nparticles; ++i) {
        lcg = lcg * 1664525u + 1013904223u;
        p.pokeDouble(pos + 8ull * i,
                     static_cast<double>(lcg % (ncells * 16)) / 16.0);
        p.pokeDouble(vel + 8ull * i,
                     0.5 + static_cast<double>(i % 9) * 0.0625);
    }
    for (std::uint32_t c = 0; c < ncells; c += 2)
        p.pokeDouble(field + 8ull * c, 0.25 + (c % 31) * 0.015625);

    // s0 step ctr, s1 &pos, s2 &vel, s3 &field, s4 &charge,
    // s5 dt, s6 weight, s7 particle index
    a.la(s1, pos);
    a.la(s2, vel);
    a.la(s3, field);
    a.la(s4, charge);
    a.la(t0, consts);
    a.ld(s5, t0, 0);
    a.ld(s6, t0, 8);
    a.li(s0, static_cast<std::int32_t>(steps));

    a.label("step");
    a.li(s7, 0);
    a.label("particle");
    a.slli(t0, s7, 3);
    a.add(t1, s1, t0);        // &pos[i]
    a.add(t2, s2, t0);        // &vel[i]
    a.ld(t3, t1, 0);          // x
    a.ld(t4, t2, 0);          // v

    // cell = (i/2 + jitter(x)) & (ncells-1): particles are kept
    // spatially sorted (as PIC codes do), so deposits walk the grid
    // with small data-dependent jitter.
    a.cvtfi(t5, t3);
    a.andi(t5, t5, 31);       // jitter from the position
    a.srli(t6, s7, 1);
    a.add(t5, t5, t6);
    a.li(t6, ncells - 1);
    a.and_(t5, t5, t6);
    a.slli(t5, t5, 3);

    // gather: v += dt * field[cell]
    a.add(t6, s3, t5);
    a.ld(t7, t6, 0);
    a.fmul(t7, t7, s5);
    a.fadd(t4, t4, t7);
    a.sd(t4, t2, 0);

    // scatter: charge[cell] += weight
    a.add(t6, s4, t5);
    a.ld(t7, t6, 0);
    a.fadd(t7, t7, s6);
    a.sd(t7, t6, 0);

    // push: x += v * dt
    a.fmul(t7, t4, s5);
    a.fadd(t3, t3, t7);
    a.sd(t3, t1, 0);

    // energy accumulation (extra field work per particle)
    a.fmul(t7, t4, t4);
    a.fadd(t3, t3, t7);
    a.fmul(t7, t3, s6);
    a.fadd(t4, t4, t7);

    a.addi(s7, s7, 1);
    a.li(t0, nparticles);
    a.blt(s7, t0, "particle");

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "step");

    a.ld(t1, s4, 8 * 100);
    a.cvtfi(a0, t1);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
