#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace dscalar {
namespace workloads {

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> registry = {
        {"tomcatv_s", "tomcatv", "fp",
         "2-D mesh-generation stencil, neighbour accesses", buildTomcatv},
        {"swim_s", "swim", "fp",
         "shallow-water stencil, interleaved array streams", buildSwim},
        {"hydro2d_s", "hydro2d", "fp",
         "2-D hydrodynamics, row/column sweeps", buildHydro2d},
        {"mgrid_s", "mgrid", "fp",
         "multigrid, power-of-two strided 3-D sweeps", buildMgrid},
        {"applu_s", "applu", "fp",
         "blocked SSOR solver sweeps", buildApplu},
        {"m88ksim_s", "m88ksim", "int",
         "CPU emulator: dispatch tables, guest state", buildM88ksim},
        {"turb3d_s", "turb3d", "fp",
         "3-D FFT butterflies, power-of-two strides", buildTurb3d},
        {"gcc_s", "gcc", "int",
         "IR graph walk, pointer-heavy and branchy", buildGcc},
        {"compress_s", "compress", "int",
         "LZW-style hash coder; as many stores as loads", buildCompress},
        {"li_s", "li", "int",
         "cons-cell list interpreter, small data set", buildLi},
        {"perl_s", "perl", "int",
         "string hashing into buckets", buildPerl},
        {"fpppp_s", "fpppp", "fp",
         "huge straight-line FP basic blocks (big text)", buildFpppp},
        {"wave5_s", "wave5", "fp",
         "particle-in-cell gather/scatter", buildWave5},
        {"go_s", "go", "int",
         "game-tree evaluation over board arrays", buildGo},
    };
    return registry;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (name == w.name)
            return w;
    fatal("unknown workload '%s'", name.c_str());
}

const std::vector<std::string> &
timingWorkloadNames()
{
    static const std::vector<std::string> names = {
        "applu_s", "compress_s", "go_s", "mgrid_s", "turb3d_s",
        "wave5_s",
    };
    return names;
}

} // namespace workloads
} // namespace dscalar
