/**
 * @file
 * Registry of the synthetic SPEC95 substitutes.
 *
 * SPEC95 binaries are unavailable, so each benchmark the paper uses
 * is replaced by a program written in the simulated ISA whose memory
 * behaviour (load/store mix, stride pattern, footprint, text size)
 * matches the original's role in the paper's experiments. See
 * DESIGN.md for the substitution rationale.
 */

#ifndef DSCALAR_WORKLOADS_WORKLOADS_HH
#define DSCALAR_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "prog/program.hh"

namespace dscalar {
namespace workloads {

/** Builds the program at a given size scale (1 = test size). */
using BuilderFn = prog::Program (*)(unsigned scale);

/** One registered workload. */
struct Workload
{
    const char *name;    ///< our name, e.g.\ "compress_s"
    const char *spec;    ///< SPEC95 benchmark it substitutes
    const char *kind;    ///< "int" or "fp"
    const char *desc;    ///< one-line behaviour summary
    BuilderFn build;
};

/** All 14 substitutes, in the paper's Table 1 order. */
const std::vector<Workload> &allWorkloads();

/** Lookup by name; fatal on unknown names. */
const Workload &findWorkload(const std::string &name);

/** Names of the six benchmarks used in the timing runs (Figure 7). */
const std::vector<std::string> &timingWorkloadNames();

/**
 * Allocate a global array preceded by a staggering pad so that
 * same-index elements of successive arrays do not land in the same
 * set of a direct-mapped cache (array sizes here are multiples of
 * 16 KB, which would otherwise make corresponding elements collide
 * on every access — the classic padding fix real codes apply).
 */
inline Addr
allocArray(prog::Program &p, std::uint64_t bytes)
{
    p.allocGlobal(1312, 8);
    return p.allocGlobal(bytes, 8);
}

// Individual builders ------------------------------------------------
prog::Program buildTomcatv(unsigned scale);
prog::Program buildSwim(unsigned scale);
prog::Program buildHydro2d(unsigned scale);
prog::Program buildMgrid(unsigned scale);
prog::Program buildApplu(unsigned scale);
prog::Program buildM88ksim(unsigned scale);
prog::Program buildTurb3d(unsigned scale);
prog::Program buildGcc(unsigned scale);
prog::Program buildCompress(unsigned scale);
prog::Program buildLi(unsigned scale);
prog::Program buildPerl(unsigned scale);
prog::Program buildFpppp(unsigned scale);
prog::Program buildWave5(unsigned scale);
prog::Program buildGo(unsigned scale);

/**
 * One node's strip of an embarrassingly parallel 2-D relaxation
 * (Section 5.2's hybrid-execution study): node @p node of
 * @p num_nodes smooths its private rows and prints a checksum.
 * With num_nodes == 1 this is the whole (serial) job.
 */
prog::Program buildStencilStrip(unsigned node, unsigned num_nodes,
                                unsigned scale);

} // namespace workloads
} // namespace dscalar

#endif // DSCALAR_WORKLOADS_WORKLOADS_HH
