/**
 * @file
 * tomcatv_s -- substitute for SPEC95 101.tomcatv.
 *
 * Vectorized mesh-generation stencil: two coordinate arrays are
 * relaxed with 4-neighbour stencils into residual arrays, then
 * corrected. Long unit-stride runs with high spatial locality.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildTomcatv(unsigned scale)
{
    prog::Program p;
    p.name = "tomcatv_s";
    Assembler a(p);

    constexpr std::uint32_t n = 64;
    constexpr std::uint32_t elems = n * n; // 32 KB per array
    const std::uint32_t iters = 2 * scale;

    Addr x = allocArray(p, elems * 8);
    Addr y = allocArray(p, elems * 8);
    Addr rx = allocArray(p, elems * 8);
    Addr ry = allocArray(p, elems * 8);
    Addr consts = p.allocGlobal(2 * 8);
    p.pokeDouble(consts, -4.0);
    p.pokeDouble(consts + 8, 0.0625);

    for (std::uint32_t i = 0; i < elems; ++i) {
        p.pokeDouble(x + 8ull * i, (i % n) * 0.5);
        p.pokeDouble(y + 8ull * i, (i / n) * 0.5);
    }

    constexpr std::int32_t row = 8 * n; // 512 B

    // s0 iter, s1 &x, s2 &y, s3 &rx, s4 &ry, s5 -4.0, s6 0.0625
    a.la(s1, x);
    a.la(s2, y);
    a.la(s3, rx);
    a.la(s4, ry);
    a.la(t0, consts);
    a.ld(s5, t0, 0);
    a.ld(s6, t0, 8);
    a.li(s0, static_cast<std::int32_t>(iters));

    a.label("iter");
    // Residual pass over the interior, unit stride.
    a.li(s7, static_cast<std::int32_t>(n + 1));
    a.label("resid_loop");
    a.slli(t0, s7, 3);

    // rx[i] = x[e]+x[w]+x[n]+x[s] - 4 x[c]
    a.add(t1, s1, t0);
    a.ld(t2, t1, 8);
    a.ld(t3, t1, -8);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, row);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, -row);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, 0);
    a.fmul(t3, t3, s5);
    a.fadd(t2, t2, t3);
    a.add(t4, s3, t0);
    a.sd(t2, t4, 0);

    // same stencil for y into ry
    a.add(t1, s2, t0);
    a.ld(t2, t1, 8);
    a.ld(t3, t1, -8);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, row);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, -row);
    a.fadd(t2, t2, t3);
    a.ld(t3, t1, 0);
    a.fmul(t3, t3, s5);
    a.fadd(t2, t2, t3);
    a.add(t4, s4, t0);
    a.sd(t2, t4, 0);

    a.addi(s7, s7, 1);
    a.li(t0, static_cast<std::int32_t>(elems - n - 1));
    a.blt(s7, t0, "resid_loop");

    // Correction pass: x += 0.0625 * rx (and y likewise).
    a.li(s7, 0);
    a.label("corr_loop");
    a.slli(t0, s7, 3);
    a.add(t1, s1, t0);
    a.add(t2, s3, t0);
    a.ld(t3, t2, 0);
    a.fmul(t3, t3, s6);
    a.ld(t4, t1, 0);
    a.fadd(t4, t4, t3);
    a.sd(t4, t1, 0);
    a.add(t1, s2, t0);
    a.add(t2, s4, t0);
    a.ld(t3, t2, 0);
    a.fmul(t3, t3, s6);
    a.ld(t4, t1, 0);
    a.fadd(t4, t4, t3);
    a.sd(t4, t1, 0);
    a.addi(s7, s7, 1);
    a.li(t0, static_cast<std::int32_t>(elems));
    a.blt(s7, t0, "corr_loop");

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "iter");

    a.ld(t1, s1, 8 * (n + 5));
    a.cvtfi(a0, t1);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
