/**
 * @file
 * hydro2d_s -- substitute for SPEC95 104.hydro2d.
 *
 * Navier-Stokes-style 2-D sweeps: a row pass at unit stride followed
 * by a column pass striding a full row per access, over several
 * hydrodynamic variables. The alternating access direction mixes
 * long and short spatial runs.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildHydro2d(unsigned scale)
{
    prog::Program p;
    p.name = "hydro2d_s";
    Assembler a(p);

    constexpr std::uint32_t n = 96;
    constexpr std::uint32_t elems = n * n;
    const std::uint32_t steps = 2 * scale;

    Addr ro = allocArray(p, elems * 8);
    Addr en = allocArray(p, elems * 8);
    Addr fx = allocArray(p, elems * 8);
    Addr consts = p.allocGlobal(8);
    p.pokeDouble(consts, 0.2);

    for (std::uint32_t i = 0; i < elems; i += 2) {
        p.pokeDouble(ro + 8ull * i, 1.0 + (i % 23) * 0.015625);
        p.pokeDouble(en + 8ull * i, 0.75 + (i % 13) * 0.03125);
    }

    constexpr std::int32_t row = 8 * n; // 768 B

    a.la(s1, ro);
    a.la(s2, en);
    a.la(s3, fx);
    a.la(t0, consts);
    a.ld(s4, t0, 0);
    a.li(s0, static_cast<std::int32_t>(steps));

    a.label("step");

    // Row pass: fx[i] = c * (ro[i+1] - ro[i-1]) + en[i], unit stride.
    a.li(t0, 8);
    a.label("row_loop");
    a.add(t1, s1, t0);
    a.ld(t2, t1, 8);
    a.ld(t3, t1, -8);
    a.fsub(t2, t2, t3);
    a.fmul(t2, t2, s4);
    a.add(t1, s2, t0);
    a.ld(t3, t1, 0);
    a.fadd(t2, t2, t3);
    a.add(t1, s3, t0);
    a.sd(t2, t1, 0);
    a.addi(t0, t0, 8);
    a.li(t1, static_cast<std::int32_t>((elems - 1) * 8));
    a.blt(t0, t1, "row_loop");

    // Column pass: en[i] += c * (fx[i+n] - fx[i-n]), row stride,
    // walking down one column then moving to the next.
    a.li(s5, 0); // column index
    a.label("col_outer");
    a.slli(t0, s5, 3);
    a.addi(t0, t0, row); // start at row 1 of this column
    a.li(s6, 1);         // row counter
    a.label("col_inner");
    a.add(t1, s3, t0);
    a.ld(t2, t1, row);
    a.ld(t3, t1, -row);
    a.fsub(t2, t2, t3);
    a.fmul(t2, t2, s4);
    a.add(t1, s2, t0);
    a.ld(t3, t1, 0);
    a.fadd(t3, t3, t2);
    a.sd(t3, t1, 0);
    a.addi(t0, t0, row);
    a.addi(s6, s6, 1);
    a.li(t1, static_cast<std::int32_t>(n - 1));
    a.blt(s6, t1, "col_inner");
    a.addi(s5, s5, 1);
    a.li(t1, static_cast<std::int32_t>(n));
    a.blt(s5, t1, "col_outer");

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "step");

    a.ld(t1, s2, 8 * 50);
    a.cvtfi(a0, t1);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
