/**
 * @file
 * go_s -- substitute for SPEC95 099.go.
 *
 * Irregular, branchy integer code: repeated evaluation sweeps over
 * board arrays with neighbour inspection and data-dependent control
 * flow, plus pseudo-random play-outs updating the boards and a large
 * pattern/history table. No floating point, poor spatial regularity
 * -- the class of code the paper says resists parallelization and
 * benefits from datathreading.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildGo(unsigned scale)
{
    prog::Program p;
    p.name = "go_s";
    Assembler a(p);

    constexpr std::uint32_t dim = 32;            // padded 32x32 board
    constexpr std::uint32_t board_words = dim * dim;
    constexpr std::uint32_t history_words = 32 * 1024; // 128 KB
    const std::uint32_t playouts = 200 * scale;

    Addr board = allocArray(p, board_words * 4);
    Addr shadow = allocArray(p, board_words * 4);
    Addr history = allocArray(p, history_words * 4);

    // Seed the board with a deterministic sprinkle of stones
    // (0 empty, 1 black, 2 white); border ring = 3 (off-board).
    std::uint32_t lcg = 987654321u;
    for (std::uint32_t i = 0; i < dim; ++i) {
        for (std::uint32_t j = 0; j < dim; ++j) {
            std::uint32_t v;
            if (i == 0 || j == 0 || i == dim - 1 || j == dim - 1) {
                v = 3;
            } else {
                lcg = lcg * 1664525u + 1013904223u;
                v = (lcg >> 13) % 4;
                if (v == 3)
                    v = 0;
            }
            p.poke32(board + 4 * (i * dim + j), v);
        }
    }

    // Register plan:
    //   s0 = playout counter  s1 = LCG state  s2 = &board
    //   s3 = &history         s4 = score      s5 = &shadow
    //   t0..t7 scratch
    a.la(s2, board);
    a.la(s3, history);
    a.la(s5, shadow);
    a.li(s1, 777);
    a.li(s4, 0);
    a.li(s0, static_cast<std::int32_t>(playouts));

    a.label("playout");

    // --- Random move: pick a point, branch on its contents. ---
    a.li(t0, 1103);
    a.mul(s1, s1, t0);
    a.addi(s1, s1, 12345);
    a.li(t0, 0x7fffffff);
    a.and_(s1, s1, t0);
    // point index within the interior
    a.li(t0, board_words - 1);
    a.and_(t1, s1, t0);
    a.slli(t2, t1, 2);
    a.add(t2, s2, t2);
    a.lw(t3, t2, 0);          // stone at point
    a.bne(t3, zero, "occupied");
    // empty: place a stone coloured by the LCG parity
    a.andi(t4, s1, 1);
    a.addi(t4, t4, 1);
    a.sw(t4, t2, 0);
    a.addi(s4, s4, 1);
    a.j("move_done");
    a.label("occupied");
    // occupied or border: record into the history table
    a.srli(t4, s1, 7);
    a.li(t5, history_words - 1);
    a.and_(t4, t4, t5);
    a.slli(t4, t4, 2);
    a.add(t4, s3, t4);
    a.lw(t5, t4, 0);
    a.add(t5, t5, t3);
    a.sw(t5, t4, 0);
    a.label("move_done");

    // --- Evaluation sweep every 16th playout: neighbour counting
    //     over the whole board with data-dependent branches. ---
    a.andi(t0, s0, 15);
    a.bne(t0, zero, "skip_eval");

    a.li(t0, dim + 1);        // linear index of (1,1)
    a.label("eval_loop");
    a.slli(t1, t0, 2);
    a.add(t1, s2, t1);
    a.lw(t2, t1, 0);          // centre stone
    a.beq(t2, zero, "eval_next");
    // count like-coloured neighbours (N, S, E, W)
    a.lw(t3, t1, 4);
    a.lw(t4, t1, -4);
    a.lw(t5, t1, 4 * dim);
    a.lw(t6, t1, -4 * static_cast<std::int32_t>(dim));
    a.li(t7, 0);
    a.bne(t3, t2, "go_n1");
    a.addi(t7, t7, 1);
    a.label("go_n1");
    a.bne(t4, t2, "go_n2");
    a.addi(t7, t7, 1);
    a.label("go_n2");
    a.bne(t5, t2, "go_n3");
    a.addi(t7, t7, 1);
    a.label("go_n3");
    a.bne(t6, t2, "go_n4");
    a.addi(t7, t7, 1);
    a.label("go_n4");
    // lonely stones get captured into the shadow board
    a.bne(t7, zero, "eval_acc");
    a.slli(t3, t0, 2);
    a.add(t3, s5, t3);
    a.sw(t2, t3, 0);
    a.label("eval_acc");
    a.add(s4, s4, t7);
    a.label("eval_next");
    a.addi(t0, t0, 1);
    a.li(t1, board_words - dim - 1);
    a.blt(t0, t1, "eval_loop");

    a.label("skip_eval");
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "playout");

    a.add(a0, s4, zero);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
