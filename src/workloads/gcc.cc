/**
 * @file
 * gcc_s -- substitute for SPEC95 126.gcc.
 *
 * Compiler-shaped pointer code: a heap of IR nodes (kind, two child
 * pointers, a value) forms a random DAG; repeated passes walk it
 * with an explicit work stack, branching on node kind and rewriting
 * value fields. Pointer-chasing with irregular branches and a large
 * text-to-data ratio.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildGcc(unsigned scale)
{
    prog::Program p;
    p.name = "gcc_s";
    Assembler a(p);

    constexpr std::uint32_t nnodes = 8 * 1024; // x 16 B = 128 KB
    const std::uint32_t passes = 24 * scale;

    // Node layout (16 B): +0 kind, +4 left, +8 right, +12 value.
    Addr nodes = p.allocHeap(nnodes * 16);
    Addr work_stack = p.allocHeap(4 * 1024 * 4); // explicit stack

    // Build a random DAG: children always at higher indices.
    std::uint32_t lcg = 31337u;
    for (std::uint32_t i = 0; i < nnodes; ++i) {
        Addr base = nodes + 16ull * i;
        lcg = lcg * 1664525u + 1013904223u;
        std::uint32_t kind = (lcg >> 11) & 3;
        std::uint32_t span = nnodes - i - 1;
        auto pick_child = [&]() -> std::uint32_t {
            if (span == 0)
                return 0; // null
            lcg = lcg * 1664525u + 1013904223u;
            std::uint32_t child = i + 1 + (lcg >> 7) % span;
            return static_cast<std::uint32_t>(nodes + 16ull * child);
        };
        if (span == 0)
            kind = 0; // leaves terminate the walk
        p.poke32(base + 0, kind);
        p.poke32(base + 4, kind >= 1 ? pick_child() : 0);
        p.poke32(base + 8, kind >= 2 ? pick_child() : 0);
        p.poke32(base + 12, i * 7 + 1);
    }

    // s0 pass ctr, s1 &nodes, s2 stack base, s3 stack idx,
    // s4 accumulator, s5 visit budget, t* scratch
    a.la(s1, nodes);
    a.la(s2, work_stack);
    a.li(s4, 0);
    a.li(s0, static_cast<std::int32_t>(passes));

    a.label("pass");
    // Push eight pass-dependent roots (functions of the pass
    // counter) so a run of unlucky leaves cannot end the walk early.
    a.li(s3, 0);
    for (int k = 0; k < 8; ++k) {
        a.li(t0, 1009);
        a.mul(t1, s0, t0);
        a.addi(t1, t1, 131 * k + 7);
        a.li(t0, nnodes - 1);
        a.and_(t1, t1, t0);
        a.slli(t1, t1, 4);     // node index -> 16 B offset
        a.add(t1, s1, t1);
        a.slli(t2, s3, 2);
        a.add(t2, s2, t2);
        a.sw(t1, t2, 0);
        a.addi(s3, s3, 1);
    }
    a.li(s5, 3000); // nodes visited per pass

    a.label("walk");
    a.beq(s3, zero, "pass_done");
    a.beq(s5, zero, "pass_done");
    a.addi(s5, s5, -1);
    // pop
    a.addi(s3, s3, -1);
    a.slli(t0, s3, 2);
    a.add(t0, s2, t0);
    a.lw(t1, t0, 0);          // node ptr
    a.beq(t1, zero, "walk");

    a.lw(t2, t1, 0);          // kind
    a.lw(t3, t1, 12);         // value
    a.add(s4, s4, t3);
    // mark the node visited (compiler passes stamp their nodes)
    a.ori(t4, t3, 1);
    a.sw(t4, t1, 12);

    a.beq(t2, zero, "walk");  // leaf
    // push left
    a.lw(t4, t1, 4);
    a.slli(t5, s3, 2);
    a.add(t5, s2, t5);
    a.sw(t4, t5, 0);
    a.addi(s3, s3, 1);
    a.li(t6, 2);
    a.blt(t2, t6, "after_children");
    // push right
    a.lw(t4, t1, 8);
    a.slli(t5, s3, 2);
    a.add(t5, s2, t5);
    a.sw(t4, t5, 0);
    a.addi(s3, s3, 1);
    a.label("after_children");
    // kind 3 rewrites the node's value (a "transformation")
    a.li(t6, 3);
    a.bne(t2, t6, "walk");
    a.slli(t7, t3, 1);
    a.xori(t7, t7, 0x5a5);
    a.sw(t7, t1, 12);
    a.j("walk");

    a.label("pass_done");
    a.addi(s0, s0, -1);
    a.bne(s0, zero, "pass");

    a.li(t0, 0x7fff);
    a.and_(a0, s4, t0);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
