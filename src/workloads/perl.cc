/**
 * @file
 * perl_s -- substitute for SPEC95 134.perl.
 *
 * Scripting-language inner loops: word-packed "strings" drawn from a
 * text pool are hashed token by token and inserted into a bucketed
 * hash with per-bucket counters and a chain array -- associative
 * data structure traffic with moderate stores and data-dependent
 * string lengths.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildPerl(unsigned scale)
{
    prog::Program p;
    p.name = "perl_s";
    Assembler a(p);

    constexpr std::uint32_t pool_words = 32 * 1024; // 128 KB text pool
    constexpr std::uint32_t nbuckets = 4 * 1024;
    constexpr std::uint32_t chain_words = 16 * 1024;
    const std::uint32_t nstrings = 8'000 * scale;

    Addr pool = allocArray(p, pool_words * 4);
    Addr buckets = allocArray(p, nbuckets * 4);
    Addr chains = allocArray(p, chain_words * 4);

    std::uint32_t lcg = 20011u;
    for (std::uint32_t i = 0; i < pool_words; ++i) {
        lcg = lcg * 1664525u + 1013904223u;
        p.poke32(pool + 4ull * i, lcg);
    }

    // s0 string ctr, s1 &pool, s2 &buckets, s3 &chains,
    // s4 LCG, s5 chain cursor, s6 checksum
    a.la(s1, pool);
    a.la(s2, buckets);
    a.la(s3, chains);
    a.li(s4, 97);
    a.li(s5, 0);
    a.li(s6, 0);
    a.li(s0, static_cast<std::int32_t>(nstrings));

    a.label("string");
    // pick offset and length from the LCG
    a.li(t0, 69069);
    a.mul(s4, s4, t0);
    a.addi(s4, s4, 1);
    a.li(t0, 0x7fffffff);
    a.and_(s4, s4, t0);
    a.li(t0, pool_words - 64);
    a.rem(t1, s4, t0);        // start word
    a.andi(t2, s4, 15);
    a.addi(t2, t2, 4);        // length 4..19 words

    a.slli(t1, t1, 2);
    a.add(t1, s1, t1);        // cursor into the pool
    a.slli(t2, t2, 2);        // length in bytes
    a.li(t3, 0);              // hash

    // Byte-wise hashing, as string code really does.
    a.label("hash_loop");
    a.lbu(t4, t1, 0);
    a.xor_(t3, t3, t4);
    a.li(t5, 131);
    a.mul(t3, t3, t5);
    a.addi(t1, t1, 1);
    a.addi(t2, t2, -1);
    a.bne(t2, zero, "hash_loop");

    // bucket insert
    a.li(t5, nbuckets - 1);
    a.and_(t6, t3, t5);
    a.slli(t6, t6, 2);
    a.add(t6, s2, t6);
    a.lw(t7, t6, 0);
    a.addi(t7, t7, 1);
    a.sw(t7, t6, 0);

    // append hash to the chain ring
    a.li(t5, chain_words - 1);
    a.and_(t7, s5, t5);
    a.slli(t7, t7, 2);
    a.add(t7, s3, t7);
    a.sw(t3, t7, 0);
    a.addi(s5, s5, 1);
    a.add(s6, s6, t3);

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "string");

    a.li(t0, 0xffff);
    a.and_(a0, s6, t0);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
