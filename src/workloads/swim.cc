/**
 * @file
 * swim_s -- substitute for SPEC95 102.swim.
 *
 * Shallow-water time step over six large arrays: every point of the
 * output arrays combines corresponding points of several input
 * arrays (the c[i] = a[i] + b[i] shape). When those arrays land on
 * different owners, the interleaving cuts datathreads short -- the
 * effect the paper calls out for swim.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildSwim(unsigned scale)
{
    prog::Program p;
    p.name = "swim_s";
    Assembler a(p);

    constexpr std::uint32_t n = 96;
    constexpr std::uint32_t elems = n * n; // 72 KB per array
    const std::uint32_t steps = 2 * scale;

    Addr u = allocArray(p, elems * 8);
    Addr v = allocArray(p, elems * 8);
    Addr pr = allocArray(p, elems * 8);
    Addr unew = allocArray(p, elems * 8);
    Addr vnew = allocArray(p, elems * 8);
    Addr pnew = allocArray(p, elems * 8);
    Addr consts = p.allocGlobal(8);
    p.pokeDouble(consts, 0.1);

    for (std::uint32_t i = 0; i < elems; i += 2) {
        p.pokeDouble(u + 8ull * i, 1.0 + (i % 19) * 0.03125);
        p.pokeDouble(v + 8ull * i, 0.5 + (i % 7) * 0.0625);
        p.pokeDouble(pr + 8ull * i, 2.0 + (i % 5) * 0.125);
    }

    // s0 step, s1..s3 inputs, s4..s6 outputs, s7 dt
    a.la(s1, u);
    a.la(s2, v);
    a.la(s3, pr);
    a.la(s4, unew);
    a.la(s5, vnew);
    a.la(s6, pnew);
    a.la(t0, consts);
    a.ld(s7, t0, 0);
    a.li(s0, static_cast<std::int32_t>(steps));

    a.label("step");
    a.li(t0, 0); // flat element index in bytes, advanced by 8
    a.label("point");
    // unew = u + dt*(p - v); vnew = v + dt*(u - p); pnew = p + dt*(v - u)
    a.add(t1, s1, t0);
    a.ld(t2, t1, 0);          // u
    a.add(t1, s2, t0);
    a.ld(t3, t1, 0);          // v
    a.add(t1, s3, t0);
    a.ld(t4, t1, 0);          // p

    a.fsub(t5, t4, t3);
    a.fmul(t5, t5, s7);
    a.fadd(t5, t5, t2);
    a.add(t1, s4, t0);
    a.sd(t5, t1, 0);

    a.fsub(t5, t2, t4);
    a.fmul(t5, t5, s7);
    a.fadd(t5, t5, t3);
    a.add(t1, s5, t0);
    a.sd(t5, t1, 0);

    a.fsub(t5, t3, t2);
    a.fmul(t5, t5, s7);
    a.fadd(t5, t5, t4);
    a.add(t1, s6, t0);
    a.sd(t5, t1, 0);

    a.addi(t0, t0, 8);
    a.li(t1, static_cast<std::int32_t>(elems * 8));
    a.blt(t0, t1, "point");

    // Copy-back pass: u <- unew etc., also interleaved streams.
    a.li(t0, 0);
    a.label("copy");
    a.add(t1, s4, t0);
    a.ld(t2, t1, 0);
    a.add(t1, s1, t0);
    a.sd(t2, t1, 0);
    a.add(t1, s5, t0);
    a.ld(t2, t1, 0);
    a.add(t1, s2, t0);
    a.sd(t2, t1, 0);
    a.add(t1, s6, t0);
    a.ld(t2, t1, 0);
    a.add(t1, s3, t0);
    a.sd(t2, t1, 0);
    a.addi(t0, t0, 8);
    a.li(t1, static_cast<std::int32_t>(elems * 8));
    a.blt(t0, t1, "copy");

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "step");

    a.ld(t1, s1, 8 * 40);
    a.cvtfi(a0, t1);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
