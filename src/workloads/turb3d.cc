/**
 * @file
 * turb3d_s -- substitute for SPEC95 125.turb3d.
 *
 * In-place FFT-style butterfly passes over a 32K-element complex
 * signal (512 KB): each pass pairs elements a power-of-two stride
 * apart, halving the stride per pass. The large power-of-two strides
 * in early passes hop across pages, which is what shortens turb3d's
 * data datathreads in the paper's Table 2.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildTurb3d(unsigned scale)
{
    prog::Program p;
    p.name = "turb3d_s";
    Assembler a(p);

    constexpr std::uint32_t nelems = 32 * 1024; // complex points
    const std::uint32_t rounds = scale;

    Addr re = allocArray(p, nelems * 8);  // 256 KB
    Addr im = allocArray(p, nelems * 8);  // 256 KB
    Addr consts = p.allocGlobal(2 * 8);
    p.pokeDouble(consts, 0.70710678);     // twiddle-ish factor
    p.pokeDouble(consts + 8, 0.5);

    for (std::uint32_t i = 0; i < nelems; i += 2) {
        p.pokeDouble(re + 8ull * i, 1.0 + (i % 17) * 0.0625);
        p.pokeDouble(im + 8ull * i + 8, 0.25 * (i % 5));
    }

    // s0 round ctr, s1 &re, s2 &im, s3 twiddle, s4 half,
    // s5 stride (elements), s6 index, s7 partner byte offset
    a.la(s1, re);
    a.la(s2, im);
    a.la(t0, consts);
    a.ld(s3, t0, 0);
    a.ld(s4, t0, 8);
    a.li(s0, static_cast<std::int32_t>(rounds));

    a.label("round");
    // First-stage stride of 2048 elements (16 KB): partners are
    // exactly one cache-size apart and conflict in a direct-mapped
    // L1 -- real FFTs suffer this at power-of-two sizes, and it is
    // what drives turb3d's high false-hit/squash rates (Table 3) and
    // its poor two-node showing in the paper. Later stages (512 and
    // below) are conflict-free.
    a.li(s5, 2048);

    a.label("stage");
    a.li(s6, 0);
    a.slli(s7, s5, 3);                     // partner offset in bytes

    a.label("butterfly");
    // skip indices whose stride bit is set (each pair visited once)
    a.and_(t0, s6, s5);
    a.bne(t0, zero, "bf_next");
    a.slli(t1, s6, 3);
    a.add(t2, s1, t1);                     // &re[i]
    a.add(t3, s2, t1);                     // &im[i]
    a.add(t4, t2, s7);                     // &re[i+stride]
    a.add(t5, t3, s7);                     // &im[i+stride]
    a.ld(t6, t2, 0);
    a.ld(t7, t4, 0);
    a.fadd(t0, t6, t7);                    // re sum
    a.fsub(t6, t6, t7);                    // re diff
    a.fmul(t6, t6, s3);
    a.sd(t0, t2, 0);
    a.sd(t6, t4, 0);
    a.ld(t6, t3, 0);
    a.ld(t7, t5, 0);
    a.fadd(t0, t6, t7);
    a.fsub(t6, t6, t7);
    a.fmul(t6, t6, s3);
    // twiddle rotation (extra FP work per butterfly)
    a.fmul(t7, t0, s4);
    a.fadd(t0, t0, t7);
    a.fmul(t7, t6, s3);
    a.fadd(t6, t6, t7);
    a.fmul(t7, t0, s3);
    a.fsub(t0, t0, t7);
    a.sd(t0, t3, 0);
    a.sd(t6, t5, 0);
    a.label("bf_next");
    a.addi(s6, s6, 1);        // unit-stride walk; pairs once each
    // Each stage covers a quarter of the signal per round, so the
    // conflicting first stage contributes its false-hit behaviour
    // without monopolizing the run.
    a.li(t0, nelems / 4);
    a.blt(s6, t0, "butterfly");

    a.srli(s5, s5, 2);                     // stride /= 4 per stage
    a.li(t0, 8);
    a.bge(s5, t0, "stage");

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "round");

    a.ld(t1, s1, 8 * 33);
    a.cvtfi(a0, t1);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
