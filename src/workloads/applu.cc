/**
 * @file
 * applu_s -- substitute for SPEC95 110.applu.
 *
 * Blocked SSOR-style solver: forward and backward sweeps over a
 * 64x64 grid of 5-wide "blocks" of doubles, with multiply-add chains
 * and periodic divides, reading neighbour blocks from the previous
 * row/column. Sequential block traffic with a long dependence chain
 * per block.
 */

#include "workloads/workloads.hh"

#include "prog/assembler.hh"

namespace dscalar {
namespace workloads {

using namespace prog::reg;
using prog::Assembler;
using isa::Syscall;

prog::Program
buildApplu(unsigned scale)
{
    prog::Program p;
    p.name = "applu_s";
    Assembler a(p);

    constexpr std::uint32_t n = 64;          // grid dimension
    constexpr std::uint32_t blk = 5;         // block width (doubles)
    constexpr std::uint32_t elems = n * n * blk; // 160 KB per array
    const std::uint32_t sweeps = 2 * scale;

    Addr u = allocArray(p, elems * 8);
    Addr rsd = allocArray(p, elems * 8);
    Addr consts = p.allocGlobal(2 * 8);
    p.pokeDouble(consts, 0.8);
    p.pokeDouble(consts + 8, 1.25);

    for (std::uint32_t i = 0; i < elems; i += 3)
        p.pokeDouble(u + 8ull * i, 0.5 + (i % 11) * 0.0625);
    for (std::uint32_t i = 0; i < elems; i += 4)
        p.pokeDouble(rsd + 8ull * i, 1.0 + (i % 7) * 0.03125);

    constexpr std::int32_t row_bytes = 8 * n * blk; // 2560 B

    // s0 sweep ctr, s1 &u, s2 &rsd, s3 omega, s4 inv, s5 block ptr
    a.la(s1, u);
    a.la(s2, rsd);
    a.la(t0, consts);
    a.ld(s3, t0, 0);
    a.ld(s4, t0, 8);
    a.li(s0, static_cast<std::int32_t>(sweeps));

    a.label("sweep");

    // Forward sweep: block (i,j) updated from (i-1,j) and (i,j-1).
    a.li(s6, 1);                           // i = 1..n-1 collapsed:
    a.label("fwd_outer");
    a.li(s7, 1);
    a.label("fwd_inner");
    // block base = ((i * n) + j) * blk * 8
    a.li(t0, static_cast<std::int32_t>(n));
    a.mul(t1, s6, t0);
    a.add(t1, t1, s7);
    a.li(t0, blk * 8);
    a.mul(t1, t1, t0);
    a.add(s5, s1, t1);                     // &u block
    a.add(t7, s2, t1);                     // &rsd block
    // chained 5-element block update with a small triangular solve
    a.ld(t2, s5, -row_bytes);              // north neighbour elem 0
    a.ld(t3, s5, -static_cast<std::int32_t>(blk * 8)); // west elem 0
    a.fadd(t2, t2, t3);
    for (unsigned e = 0; e < blk; ++e) {
        auto off = static_cast<std::int32_t>(8 * e);
        a.ld(t3, s5, off);
        a.fmul(t3, t3, s3);
        a.fadd(t2, t2, t3);
        a.fmul(t5, t2, s4);                // extra solve work per
        a.fadd(t5, t5, t3);                // element (applu's dense
        a.fmul(t5, t5, s3);                // 5x5 block solves)
        a.fadd(t2, t2, t5);
        a.ld(t4, t7, off);
        a.fadd(t4, t4, t2);
        a.fmul(t4, t4, s4);
        a.sd(t4, s5, off);
    }
    a.addi(s7, s7, 1);
    a.li(t0, static_cast<std::int32_t>(n));
    a.blt(s7, t0, "fwd_inner");
    a.addi(s6, s6, 1);
    a.blt(s6, t0, "fwd_outer");

    // Backward sweep: unit-stride walk back through rsd with a
    // divide chain per block.
    a.li(t0, static_cast<std::int32_t>(elems - blk));
    a.label("bwd_loop");
    a.slli(t1, t0, 3);
    a.add(t1, s2, t1);
    a.ld(t2, t1, 0);
    a.ld(t3, t1, 8);
    a.ld(t5, t1, 16);
    a.fadd(t3, t3, s3);
    a.fdiv(t2, t2, t3);
    a.fmul(t2, t2, s4);
    a.fadd(t2, t2, t5);
    a.fmul(t5, t2, s3);
    a.fadd(t5, t5, t3);
    a.sd(t2, t1, 0);
    a.sd(t5, t1, 8);
    a.addi(t0, t0, -static_cast<std::int32_t>(blk));
    a.bge(t0, zero, "bwd_loop");

    a.addi(s0, s0, -1);
    a.bne(s0, zero, "sweep");

    a.ld(t1, s1, 8 * 17);
    a.cvtfi(a0, t1);
    a.syscall(Syscall::PrintInt);
    a.syscall(Syscall::Exit);
    a.halt();
    a.finalize();
    return p;
}

} // namespace workloads
} // namespace dscalar
