#include "driver/driver.hh"

#include "common/logging.hh"
#include "func/func_sim.hh"
#include "mem/cache.hh"

namespace dscalar {
namespace driver {

core::SimConfig
paperConfig()
{
    // Section 4.2: 8-way issue, 256-entry RUU, LSQ = RUU/2, 16 KB
    // direct-mapped single-cycle split L1s (write-back,
    // write-noallocate data cache), 8 ns on-chip banks behind a
    // 256-bit bus at core clock, an 8-byte global bus at 1/10 core
    // clock, 2-cycle interface penalties, 128-entry 1 ns BSHRs.
    core::SimConfig cfg;
    cfg.core = ooo::CoreParams{};
    cfg.mem = mem::MainMemoryParams{};
    cfg.bus = interconnect::BusParams{};
    cfg.numNodes = 2;
    cfg.bshrLatency = 1;
    cfg.bshrCapacity = 128;
    return cfg;
}

core::PageHeat
profilePages(const prog::Program &program, InstSeq max_insts)
{
    func::FuncSim sim(program);
    core::PageHeat heat;
    sim.setMemHook([&heat](Addr addr, unsigned, bool) {
        ++heat[prog::pageBase(addr)];
    });
    sim.setFetchHook(
        [&heat](Addr pc) { ++heat[prog::pageBase(pc)]; });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return heat;
}

// -------------------------------------------------------------------
// Table 1
// -------------------------------------------------------------------

double
TrafficResult::bytesEliminated() const
{
    if (totalBytes() == 0)
        return 0.0;
    return static_cast<double>(requestBytes + writeBackBytes) /
           static_cast<double>(totalBytes());
}

double
TrafficResult::transactionsEliminated() const
{
    if (totalTransactions() == 0)
        return 0.0;
    return static_cast<double>(requests + writeBacks) /
           static_cast<double>(totalTransactions());
}

TrafficResult
measureEspTraffic(const prog::Program &program, InstSeq max_insts,
                  const mem::CacheParams &dcache_params)
{
    func::FuncSim sim(program);
    mem::Cache dcache(dcache_params);
    TrafficResult result;

    constexpr std::uint64_t header = 8;
    const std::uint64_t line = dcache_params.lineSize;

    sim.setMemHook([&](Addr addr, unsigned, bool is_write) {
        mem::CacheAccessResult r = dcache.access(addr, is_write);
        if (!r.hit && r.allocated) {
            // Miss fetch: one request out, one line response back.
            ++result.requests;
            result.requestBytes += header;
            ++result.responses;
            result.responseBytes += header + line;
        } else if (!r.hit && !r.allocated) {
            // Write-noallocate store miss: a word write crosses the
            // interconnect (counts as write traffic ESP removes).
            ++result.writeBacks;
            result.writeBackBytes += header + 8;
        }
        if (r.evicted && r.victimDirty) {
            ++result.writeBacks;
            result.writeBackBytes += header + line;
        }
    });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return result;
}

// -------------------------------------------------------------------
// Table 2
// -------------------------------------------------------------------

void
RunCounter::feed(NodeId node)
{
    ++refs_;
    if (!active_ || node != curNode_) {
        if (active_)
            ++completedRuns_;
        active_ = true;
        curNode_ = node;
    }
}

std::uint64_t
RunCounter::runs() const
{
    return completedRuns_ + (active_ ? 1 : 0);
}

double
RunCounter::mean() const
{
    std::uint64_t r = runs();
    return r ? static_cast<double>(refs_) / static_cast<double>(r) : 0.0;
}

DatathreadResult
measureDatathreads(const prog::Program &program,
                   const mem::PageTable &ptable,
                   const core::ReplicationReport &rep,
                   InstSeq max_insts)
{
    func::FuncSim sim(program);
    // Section 3's study cache: 64 KB two-way (shared approximation
    // for both reference kinds; the paper filtered through its L1).
    mem::Cache dcache({64 * 1024, 2, 32, true});
    mem::Cache icache({64 * 1024, 2, 32, true});

    DatathreadResult result;
    result.replicated = rep;

    RunCounter all;
    RunCounter text;
    RunCounter data;
    // Replicated-run counting: consecutive *replicated* misses.
    std::uint64_t repl_refs = 0;
    std::uint64_t repl_runs = 0;
    bool in_repl_run = false;

    auto classify = [&](Addr addr, bool is_text) {
        ++result.missRefs;
        mem::PageEntry entry = ptable.lookup(addr);
        if (entry.replicated) {
            ++repl_refs;
            if (!in_repl_run) {
                in_repl_run = true;
                ++repl_runs;
            }
            // Replicated references are local everywhere and do not
            // break a communicated run.
            return;
        }
        in_repl_run = false;
        all.feed(entry.owner);
        if (is_text)
            text.feed(entry.owner);
        else
            data.feed(entry.owner);
    };

    sim.setMemHook([&](Addr addr, unsigned, bool is_write) {
        mem::CacheAccessResult r = dcache.access(addr, is_write);
        if (!r.hit)
            classify(addr, false);
    });
    Addr last_iline = invalidAddr;
    sim.setFetchHook([&](Addr pc) {
        Addr iline = icache.lineAlign(pc);
        if (iline == last_iline)
            return;
        last_iline = iline;
        mem::CacheAccessResult r = icache.access(pc, false);
        if (!r.hit)
            classify(pc, true);
    });

    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));

    result.meanAll = all.mean();
    result.meanText = text.mean();
    result.meanData = data.mean();
    result.meanRepl =
        repl_runs ? static_cast<double>(repl_refs) /
                        static_cast<double>(repl_runs)
                  : 0.0;
    return result;
}

// -------------------------------------------------------------------
// Timing-run conveniences
// -------------------------------------------------------------------

mem::PageTable
figure7PageTable(const prog::Program &program, unsigned num_nodes,
                 unsigned block_pages)
{
    core::DistributionConfig dist;
    dist.numNodes = num_nodes;
    dist.replicateText = true;
    dist.replicatedDataPages = 0;
    dist.blockPages = block_pages;
    return core::buildPageTable(program, dist);
}

core::RunResult
runDataScalar(const prog::Program &program,
              const core::SimConfig &config)
{
    core::DataScalarSystem system(
        program, config, figure7PageTable(program, config.numNodes));
    return system.run();
}

core::RunResult
runTraditional(const prog::Program &program,
               const core::SimConfig &config)
{
    baseline::TraditionalSystem system(
        program, config, figure7PageTable(program, config.numNodes));
    return system.run();
}

core::RunResult
runPerfect(const prog::Program &program, const core::SimConfig &config)
{
    baseline::PerfectSystem system(program, config);
    return system.run();
}

} // namespace driver
} // namespace dscalar
