#include "driver/driver.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "func/func_sim.hh"
#include "mem/cache.hh"
#include "workloads/workloads.hh"

namespace dscalar {
namespace driver {

core::SimConfig
paperConfig()
{
    // Section 4.2: 8-way issue, 256-entry RUU, LSQ = RUU/2, 16 KB
    // direct-mapped single-cycle split L1s (write-back,
    // write-noallocate data cache), 8 ns on-chip banks behind a
    // 256-bit bus at core clock, an 8-byte global bus at 1/10 core
    // clock, 2-cycle interface penalties, 128-entry 1 ns BSHRs.
    core::SimConfig cfg;
    cfg.core = ooo::CoreParams{};
    cfg.mem = mem::MainMemoryParams{};
    cfg.bus = interconnect::BusParams{};
    cfg.numNodes = 2;
    cfg.bshrLatency = 1;
    cfg.bshrCapacity = 128;
    return cfg;
}

const char *
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Perfect: return "perfect";
      case SystemKind::DataScalar: return "datascalar";
      case SystemKind::Traditional: return "traditional";
    }
    fatal("unknown SystemKind %d", static_cast<int>(kind));
}

bool
parseSystemKind(const std::string &name, SystemKind &out)
{
    if (name == "perfect")
        out = SystemKind::Perfect;
    else if (name == "datascalar")
        out = SystemKind::DataScalar;
    else if (name == "traditional")
        out = SystemKind::Traditional;
    else
        return false;
    return true;
}

mem::CacheParams
table1CacheParams()
{
    return mem::CacheParams{64 * 1024, 2, 32, true};
}

core::PageHeat
profilePages(const prog::Program &program, InstSeq max_insts)
{
    func::FuncSim sim(program);
    core::PageHeat heat;
    sim.setMemHook([&heat](Addr addr, unsigned, bool) {
        ++heat[prog::pageBase(addr)];
    });
    sim.setFetchHook(
        [&heat](Addr pc) { ++heat[prog::pageBase(pc)]; });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return heat;
}

// -------------------------------------------------------------------
// Table 1
// -------------------------------------------------------------------

double
TrafficResult::bytesEliminated() const
{
    if (totalBytes() == 0)
        return 0.0;
    return static_cast<double>(requestBytes + writeBackBytes) /
           static_cast<double>(totalBytes());
}

double
TrafficResult::transactionsEliminated() const
{
    if (totalTransactions() == 0)
        return 0.0;
    return static_cast<double>(requests + writeBacks) /
           static_cast<double>(totalTransactions());
}

TrafficResult
measureEspTraffic(const prog::Program &program, InstSeq max_insts,
                  const mem::CacheParams &dcache_params)
{
    func::FuncSim sim(program);
    mem::Cache dcache(dcache_params);
    TrafficResult result;

    constexpr std::uint64_t header = 8;
    const std::uint64_t line = dcache_params.lineSize;

    sim.setMemHook([&](Addr addr, unsigned, bool is_write) {
        mem::CacheAccessResult r = dcache.access(addr, is_write);
        if (!r.hit && r.allocated) {
            // Miss fetch: one request out, one line response back.
            ++result.requests;
            result.requestBytes += header;
            ++result.responses;
            result.responseBytes += header + line;
        } else if (!r.hit && !r.allocated) {
            // Write-noallocate store miss: a word write crosses the
            // interconnect (counts as write traffic ESP removes).
            ++result.writeBacks;
            result.writeBackBytes += header + 8;
        }
        if (r.evicted && r.victimDirty) {
            ++result.writeBacks;
            result.writeBackBytes += header + line;
        }
    });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return result;
}

// -------------------------------------------------------------------
// Table 2
// -------------------------------------------------------------------

void
RunCounter::feed(NodeId node)
{
    ++refs_;
    if (!active_ || node != curNode_) {
        if (active_)
            ++completedRuns_;
        active_ = true;
        curNode_ = node;
    }
}

std::uint64_t
RunCounter::runs() const
{
    return completedRuns_ + (active_ ? 1 : 0);
}

double
RunCounter::mean() const
{
    std::uint64_t r = runs();
    return r ? static_cast<double>(refs_) / static_cast<double>(r) : 0.0;
}

DatathreadResult
measureDatathreads(const prog::Program &program,
                   const mem::PageTable &ptable,
                   const core::ReplicationReport &rep,
                   InstSeq max_insts)
{
    func::FuncSim sim(program);
    // Section 3's study cache (shared approximation for both
    // reference kinds; the paper filtered through its L1).
    mem::Cache dcache(table1CacheParams());
    mem::Cache icache(table1CacheParams());

    DatathreadResult result;
    result.replicated = rep;

    RunCounter all;
    RunCounter text;
    RunCounter data;
    // Replicated-run counting: consecutive *replicated* misses.
    std::uint64_t repl_refs = 0;
    std::uint64_t repl_runs = 0;
    bool in_repl_run = false;

    auto classify = [&](Addr addr, bool is_text) {
        ++result.missRefs;
        mem::PageEntry entry = ptable.lookup(addr);
        if (entry.replicated) {
            ++repl_refs;
            if (!in_repl_run) {
                in_repl_run = true;
                ++repl_runs;
            }
            // Replicated references are local everywhere and do not
            // break a communicated run.
            return;
        }
        in_repl_run = false;
        all.feed(entry.owner);
        if (is_text)
            text.feed(entry.owner);
        else
            data.feed(entry.owner);
    };

    sim.setMemHook([&](Addr addr, unsigned, bool is_write) {
        mem::CacheAccessResult r = dcache.access(addr, is_write);
        if (!r.hit)
            classify(addr, false);
    });
    Addr last_iline = invalidAddr;
    sim.setFetchHook([&](Addr pc) {
        Addr iline = icache.lineAlign(pc);
        if (iline == last_iline)
            return;
        last_iline = iline;
        mem::CacheAccessResult r = icache.access(pc, false);
        if (!r.hit)
            classify(pc, true);
    });

    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));

    result.meanAll = all.mean();
    result.meanText = text.mean();
    result.meanData = data.mean();
    result.meanRepl =
        repl_runs ? static_cast<double>(repl_refs) /
                        static_cast<double>(repl_runs)
                  : 0.0;
    return result;
}

// -------------------------------------------------------------------
// Timing-run conveniences
// -------------------------------------------------------------------

mem::PageTable
figure7PageTable(const prog::Program &program, unsigned num_nodes,
                 unsigned block_pages)
{
    core::DistributionConfig dist;
    dist.numNodes = num_nodes;
    dist.replicateText = true;
    dist.replicatedDataPages = 0;
    dist.blockPages = block_pages;
    return core::buildPageTable(program, dist);
}

core::RunResult
runSystem(SystemKind system, const prog::Program &program,
          const core::SimConfig &config, unsigned block_pages)
{
    switch (system) {
      case SystemKind::Perfect: {
        baseline::PerfectSystem sys(program, config);
        return sys.run();
      }
      case SystemKind::DataScalar: {
        core::DataScalarSystem sys(
            program, config,
            figure7PageTable(program, config.numNodes, block_pages));
        return sys.run();
      }
      case SystemKind::Traditional: {
        baseline::TraditionalSystem sys(
            program, config,
            figure7PageTable(program, config.numNodes, block_pages));
        return sys.run();
      }
    }
    fatal("unknown SystemKind %d", static_cast<int>(system));
}

core::RunResult
runDataScalar(const prog::Program &program,
              const core::SimConfig &config)
{
    return runSystem(SystemKind::DataScalar, program, config);
}

core::RunResult
runTraditional(const prog::Program &program,
               const core::SimConfig &config)
{
    return runSystem(SystemKind::Traditional, program, config);
}

core::RunResult
runPerfect(const prog::Program &program, const core::SimConfig &config)
{
    return runSystem(SystemKind::Perfect, program, config);
}

// -------------------------------------------------------------------
// Parallel experiment sweeps
// -------------------------------------------------------------------

namespace {

core::RunResult
runSweepPoint(const SweepPoint &pt)
{
    prog::Program program =
        workloads::findWorkload(pt.workload).build(pt.scale);
    return runSystem(pt.system, program, pt.config, pt.blockPages);
}

} // namespace

std::vector<core::RunResult>
runSweep(const std::vector<SweepPoint> &points, unsigned jobs)
{
    // Every point builds its own program and simulator state; the
    // only shared write is each task's pre-assigned result slot.
    std::vector<core::RunResult> results(points.size());
    common::parallelFor(jobs, points.size(), [&](std::size_t i) {
        results[i] = runSweepPoint(points[i]);
    });
    return results;
}

stats::Table
fig7IpcTable(const std::vector<std::string> &workload_names,
             InstSeq budget, unsigned jobs, bool event_driven)
{
    std::vector<SweepPoint> points;
    for (const std::string &name : workload_names) {
        core::SimConfig cfg = paperConfig();
        cfg.maxInsts = budget;
        cfg.eventDriven = event_driven;
        auto add = [&](SystemKind system, unsigned nodes) {
            cfg.numNodes = nodes;
            points.push_back(SweepPoint{name, system, cfg, 1, 1});
        };
        add(SystemKind::Perfect, 2);
        add(SystemKind::DataScalar, 2);
        add(SystemKind::DataScalar, 4);
        add(SystemKind::Traditional, 2);
        add(SystemKind::Traditional, 4);
    }

    std::vector<core::RunResult> results = runSweep(points, jobs);

    stats::Table table({"benchmark", "perfect", "DS-2", "DS-4",
                        "trad-1/2", "trad-1/4", "DS2/trad2",
                        "DS4/trad4"});
    for (std::size_t w = 0; w < workload_names.size(); ++w) {
        const core::RunResult &perfect = results[5 * w + 0];
        const core::RunResult &ds2 = results[5 * w + 1];
        const core::RunResult &ds4 = results[5 * w + 2];
        const core::RunResult &t2 = results[5 * w + 3];
        const core::RunResult &t4 = results[5 * w + 4];
        table.addRow({workload_names[w],
                      stats::Table::num(perfect.ipc, 3),
                      stats::Table::num(ds2.ipc, 3),
                      stats::Table::num(ds4.ipc, 3),
                      stats::Table::num(t2.ipc, 3),
                      stats::Table::num(t4.ipc, 3),
                      stats::Table::num(ds2.ipc / t2.ipc, 2),
                      stats::Table::num(ds4.ipc / t4.ipc, 2)});
    }
    return table;
}

} // namespace driver
} // namespace dscalar
