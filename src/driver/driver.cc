#include "driver/driver.hh"

#include "common/logging.hh"
#include "func/func_sim.hh"
#include "mem/cache.hh"

namespace dscalar {
namespace driver {

// paperConfig and the SystemKind/InterconnectKind helpers are defined
// with the RunRequest API in driver/run_request.cc.

mem::CacheParams
table1CacheParams()
{
    return mem::CacheParams{64 * 1024, 2, 32, true};
}

core::PageHeat
profilePages(const prog::Program &program, InstSeq max_insts)
{
    func::FuncSim sim(program);
    core::PageHeat heat;
    sim.setMemHook([&heat](Addr addr, unsigned, bool) {
        ++heat[prog::pageBase(addr)];
    });
    sim.setFetchHook(
        [&heat](Addr pc) { ++heat[prog::pageBase(pc)]; });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return heat;
}

core::PageHeat
profilePages(const func::InstTrace &trace)
{
    core::PageHeat heat;
    trace.forEach([&heat](Addr pc, const isa::Instruction &,
                          Addr eff_addr, unsigned mem_size) {
        ++heat[prog::pageBase(pc)];
        if (mem_size)
            ++heat[prog::pageBase(eff_addr)];
    });
    return heat;
}

// -------------------------------------------------------------------
// Table 1
// -------------------------------------------------------------------

double
TrafficResult::bytesEliminated() const
{
    if (totalBytes() == 0)
        return 0.0;
    return static_cast<double>(requestBytes + writeBackBytes) /
           static_cast<double>(totalBytes());
}

double
TrafficResult::transactionsEliminated() const
{
    if (totalTransactions() == 0)
        return 0.0;
    return static_cast<double>(requests + writeBacks) /
           static_cast<double>(totalTransactions());
}

namespace {

/** The Table 1 memHook body, shared by the functional-run and
 *  trace-pass overloads so both decompose traffic identically. */
class TrafficAccumulator
{
  public:
    explicit TrafficAccumulator(const mem::CacheParams &dcache_params)
        : dcache_(dcache_params), line_(dcache_params.lineSize)
    {
    }

    void
    access(Addr addr, bool is_write)
    {
        constexpr std::uint64_t header = 8;
        mem::CacheAccessResult r = dcache_.access(addr, is_write);
        if (!r.hit && r.allocated) {
            // Miss fetch: one request out, one line response back.
            ++result.requests;
            result.requestBytes += header;
            ++result.responses;
            result.responseBytes += header + line_;
        } else if (!r.hit && !r.allocated) {
            // Write-noallocate store miss: a word write crosses the
            // interconnect (counts as write traffic ESP removes).
            ++result.writeBacks;
            result.writeBackBytes += header + 8;
        }
        if (r.evicted && r.victimDirty) {
            ++result.writeBacks;
            result.writeBackBytes += header + line_;
        }
    }

    TrafficResult result;

  private:
    mem::Cache dcache_;
    std::uint64_t line_;
};

} // namespace

TrafficResult
measureEspTraffic(const prog::Program &program, InstSeq max_insts,
                  const mem::CacheParams &dcache_params)
{
    func::FuncSim sim(program);
    TrafficAccumulator acc(dcache_params);
    sim.setMemHook([&acc](Addr addr, unsigned, bool is_write) {
        acc.access(addr, is_write);
    });
    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return acc.result;
}

TrafficResult
measureEspTraffic(const func::InstTrace &trace,
                  const mem::CacheParams &dcache_params)
{
    TrafficAccumulator acc(dcache_params);
    trace.forEach([&acc](Addr, const isa::Instruction &inst,
                         Addr eff_addr, unsigned mem_size) {
        if (mem_size)
            acc.access(eff_addr, inst.isStore());
    });
    return acc.result;
}

// -------------------------------------------------------------------
// Table 2
// -------------------------------------------------------------------

void
RunCounter::feed(NodeId node)
{
    ++refs_;
    if (!active_ || node != curNode_) {
        if (active_)
            ++completedRuns_;
        active_ = true;
        curNode_ = node;
    }
}

std::uint64_t
RunCounter::runs() const
{
    return completedRuns_ + (active_ ? 1 : 0);
}

double
RunCounter::mean() const
{
    std::uint64_t r = runs();
    return r ? static_cast<double>(refs_) / static_cast<double>(r) : 0.0;
}

namespace {

/**
 * The Table 2 hook bodies, shared by the functional-run and
 * trace-pass overloads. Order-sensitive: each instruction's fetch is
 * classified before its data access, exactly as FuncSim fires its
 * hooks, so both overloads walk the miss stream identically.
 */
class DatathreadAccumulator
{
  public:
    explicit DatathreadAccumulator(const mem::PageTable &ptable)
        // Section 3's study cache (shared approximation for both
        // reference kinds; the paper filtered through its L1).
        : ptable_(ptable), dcache_(table1CacheParams()),
          icache_(table1CacheParams())
    {
    }

    void
    fetch(Addr pc)
    {
        Addr iline = icache_.lineAlign(pc);
        if (iline == lastIline_)
            return;
        lastIline_ = iline;
        mem::CacheAccessResult r = icache_.access(pc, false);
        if (!r.hit)
            classify(pc, true);
    }

    void
    data(Addr addr, bool is_write)
    {
        mem::CacheAccessResult r = dcache_.access(addr, is_write);
        if (!r.hit)
            classify(addr, false);
    }

    DatathreadResult
    finish(const core::ReplicationReport &rep) const
    {
        DatathreadResult result;
        result.replicated = rep;
        result.missRefs = missRefs_;
        result.meanAll = all_.mean();
        result.meanText = text_.mean();
        result.meanData = data_.mean();
        result.meanRepl =
            replRuns_ ? static_cast<double>(replRefs_) /
                            static_cast<double>(replRuns_)
                      : 0.0;
        return result;
    }

  private:
    void
    classify(Addr addr, bool is_text)
    {
        ++missRefs_;
        mem::PageEntry entry = ptable_.lookup(addr);
        if (entry.replicated) {
            ++replRefs_;
            if (!inReplRun_) {
                inReplRun_ = true;
                ++replRuns_;
            }
            // Replicated references are local everywhere and do not
            // break a communicated run.
            return;
        }
        inReplRun_ = false;
        all_.feed(entry.owner);
        if (is_text)
            text_.feed(entry.owner);
        else
            data_.feed(entry.owner);
    }

    const mem::PageTable &ptable_;
    mem::Cache dcache_;
    mem::Cache icache_;
    Addr lastIline_ = invalidAddr;
    RunCounter all_;
    RunCounter text_;
    RunCounter data_;
    std::uint64_t missRefs_ = 0;
    // Replicated-run counting: consecutive *replicated* misses.
    std::uint64_t replRefs_ = 0;
    std::uint64_t replRuns_ = 0;
    bool inReplRun_ = false;
};

} // namespace

DatathreadResult
measureDatathreads(const prog::Program &program,
                   const mem::PageTable &ptable,
                   const core::ReplicationReport &rep,
                   InstSeq max_insts)
{
    func::FuncSim sim(program);
    DatathreadAccumulator acc(ptable);

    sim.setMemHook([&acc](Addr addr, unsigned, bool is_write) {
        acc.data(addr, is_write);
    });
    sim.setFetchHook([&acc](Addr pc) { acc.fetch(pc); });

    sim.run(max_insts ? max_insts : ~static_cast<InstSeq>(0));
    return acc.finish(rep);
}

DatathreadResult
measureDatathreads(const func::InstTrace &trace,
                   const mem::PageTable &ptable,
                   const core::ReplicationReport &rep)
{
    DatathreadAccumulator acc(ptable);
    trace.forEach([&acc](Addr pc, const isa::Instruction &inst,
                         Addr eff_addr, unsigned mem_size) {
        acc.fetch(pc);
        if (mem_size)
            acc.data(eff_addr, inst.isStore());
    });
    return acc.finish(rep);
}

// -------------------------------------------------------------------
// Timing-run conveniences
// -------------------------------------------------------------------

mem::PageTable
figure7PageTable(const prog::Program &program, unsigned num_nodes,
                 unsigned block_pages)
{
    core::DistributionConfig dist;
    dist.numNodes = num_nodes;
    dist.replicateText = true;
    dist.replicatedDataPages = 0;
    dist.blockPages = block_pages;
    return core::buildPageTable(program, dist);
}

core::RunResult
runSystem(SystemKind system, const prog::Program &program,
          const core::SimConfig &config, unsigned block_pages,
          std::shared_ptr<const func::InstTrace> trace,
          obs::Sampler *sampler)
{
    RunRequest req;
    req.system = system;
    req.config = config;
    req.blockPages = block_pages;
    // Non-owning alias: the caller's program outlives the run.
    req.program = std::shared_ptr<const prog::Program>(
        std::shared_ptr<const prog::Program>(), &program);
    req.trace = std::move(trace);
    req.sampler = sampler;
    return runOne(req).result;
}

core::RunResult
runDataScalar(const prog::Program &program,
              const core::SimConfig &config)
{
    return runSystem(SystemKind::DataScalar, program, config);
}

core::RunResult
runTraditional(const prog::Program &program,
               const core::SimConfig &config)
{
    return runSystem(SystemKind::Traditional, program, config);
}

core::RunResult
runPerfect(const prog::Program &program, const core::SimConfig &config)
{
    return runSystem(SystemKind::Perfect, program, config);
}

// -------------------------------------------------------------------
// Parallel experiment sweeps
// -------------------------------------------------------------------

RunRequest
toRunRequest(const SweepPoint &pt)
{
    RunRequest req;
    req.workload = pt.workload;
    req.scale = pt.scale;
    req.system = pt.system;
    req.config = pt.config;
    req.blockPages = pt.blockPages;
    return req;
}

namespace {

std::vector<RunRequest>
toRunRequests(const std::vector<SweepPoint> &points)
{
    std::vector<RunRequest> requests;
    requests.reserve(points.size());
    for (const SweepPoint &pt : points)
        requests.push_back(toRunRequest(pt));
    return requests;
}

std::vector<core::RunResult>
toRunResults(std::vector<RunResponse> responses)
{
    std::vector<core::RunResult> results;
    results.reserve(responses.size());
    for (RunResponse &resp : responses) {
        if (!resp.ok())
            fatal("sweep point failed: %s", resp.error.c_str());
        results.push_back(std::move(resp.result));
    }
    return results;
}

} // namespace

std::vector<core::RunResult>
runSweep(const std::vector<SweepPoint> &points, TraceCache &cache,
         unsigned jobs)
{
    return toRunResults(runMany(toRunRequests(points), cache, jobs));
}

std::vector<core::RunResult>
runSweep(const std::vector<SweepPoint> &points, unsigned jobs,
         bool reuse_traces)
{
    if (reuse_traces) {
        TraceCache cache;
        return runSweep(points, cache, jobs);
    }
    return toRunResults(runMany(toRunRequests(points), jobs));
}

stats::Table
fig7IpcTable(const std::vector<std::string> &workload_names,
             InstSeq budget, unsigned jobs, bool event_driven,
             bool trace_reuse)
{
    std::vector<RunRequest> requests;
    for (const std::string &name : workload_names) {
        RunRequest req;
        req.workload = name;
        req.config.maxInsts = budget;
        req.config.eventDriven = event_driven;
        auto add = [&](SystemKind system, unsigned nodes) {
            req.system = system;
            req.config.numNodes = nodes;
            requests.push_back(req);
        };
        add(SystemKind::Perfect, 2);
        add(SystemKind::DataScalar, 2);
        add(SystemKind::DataScalar, 4);
        add(SystemKind::Traditional, 2);
        add(SystemKind::Traditional, 4);
    }

    std::vector<RunResponse> responses;
    if (trace_reuse) {
        TraceCache cache;
        responses = runMany(requests, cache, jobs);
    } else {
        responses = runMany(requests, jobs);
    }

    stats::Table table({"benchmark", "perfect", "DS-2", "DS-4",
                        "trad-1/2", "trad-1/4", "DS2/trad2",
                        "DS4/trad4"});
    for (std::size_t w = 0; w < workload_names.size(); ++w) {
        const core::RunResult &perfect = responses[5 * w + 0].result;
        const core::RunResult &ds2 = responses[5 * w + 1].result;
        const core::RunResult &ds4 = responses[5 * w + 2].result;
        const core::RunResult &t2 = responses[5 * w + 3].result;
        const core::RunResult &t4 = responses[5 * w + 4].result;
        table.addRow({workload_names[w],
                      stats::Table::num(perfect.ipc, 3),
                      stats::Table::num(ds2.ipc, 3),
                      stats::Table::num(ds4.ipc, 3),
                      stats::Table::num(t2.ipc, 3),
                      stats::Table::num(t4.ipc, 3),
                      stats::Table::num(ds2.ipc / t2.ipc, 2),
                      stats::Table::num(ds4.ipc / t4.ipc, 2)});
    }
    return table;
}

} // namespace driver
} // namespace dscalar
